//! Tour of the synthetic dataset profiles (the Table 1 stand-ins).
//!
//! Prints each profile's shape, a few sample matched pairs with their
//! injected dirtiness, and the recall of a naive hash blocker — a quick
//! way to see what the debugger is up against per dataset.
//!
//! Run with: `cargo run --release --example dataset_tour`

use mc_bench::blockers::table2_suite;
use mc_blocking::BlockerReport;
use mc_datagen::noise::Side;
use mc_datagen::profiles::{errors_for, DatasetProfile};

fn main() {
    for profile in [
        DatasetProfile::AmazonGoogle,
        DatasetProfile::AcmDblp,
        DatasetProfile::FodorsZagats,
        DatasetProfile::Music1,
    ] {
        let scale = if profile == DatasetProfile::Music1 {
            0.05
        } else {
            0.5
        };
        let ds = profile.generate_scaled(7, scale);
        let (na, nb, m, attrs, la, lb) = ds.table1_row();
        println!("== {} (scale {scale})", ds.name);
        println!("   |A|={na} |B|={nb} matches={m} attrs={attrs} avg chars {la:.0}/{lb:.0}");

        // Show one matched pair with its ground-truth perturbations.
        if let Some((x, y)) = ds.gold.iter().next() {
            let schema = ds.a.schema();
            println!("   sample match (a{x}, b{y}):");
            for attr in schema.attr_ids().take(4) {
                println!(
                    "     {:<12} A={:?} B={:?}",
                    schema.name(attr),
                    ds.a.value(x, attr).unwrap_or("∅"),
                    ds.b.value(y, attr).unwrap_or("∅"),
                );
            }
            let injected: Vec<String> = errors_for(&ds.errors, Side::B, y)
                .into_iter()
                .map(|(attr, kind)| format!("{} on {}", kind.label(), schema.name(attr)))
                .collect();
            if !injected.is_empty() {
                println!("     injected B-side errors: {}", injected.join(", "));
            }
        }

        // How do the Table 2 blockers fare on this data?
        for nb in table2_suite(profile, ds.a.schema()).iter().take(2) {
            let c = nb.blocker.apply(&ds.a, &ds.b);
            let r = BlockerReport::from_candidates(
                format!("({}) {}", nb.label, nb.blocker.describe(ds.a.schema())),
                &c,
                &ds.a,
                &ds.b,
                &ds.gold,
            );
            println!("   {r}");
        }
        println!();
    }
}

//! Pervasiveness analysis — the paper's §8 future work in action.
//!
//! After a debugging session finds killed-off matches, the user wants to
//! fix the *most pervasive* problems first. This example debugs a hash
//! blocker on the restaurants dataset, groups the candidate pairs by
//! problem signature with the batch [`DiagnosisKernel`], and for one
//! confirmed killed match lists the other pairs suffering from the same
//! problem. The same scenario is asserted in
//! `tests/pervasiveness_example.rs`, so this output can't silently rot.
//!
//! Run with: `cargo run --release --example pervasiveness`

use matchcatcher::debugger::{DebuggerParams, MatchCatcher};
use matchcatcher::joint::CandidateUnion;
use matchcatcher::oracle::GoldOracle;
use matchcatcher::DiagnosisKernel;
use mc_blocking::{Blocker, KeyFunc};
use mc_datagen::profiles::DatasetProfile;

fn main() {
    let ds = DatasetProfile::FodorsZagats.generate(42);
    let schema = ds.a.schema().clone();
    let blocker = Blocker::Hash(KeyFunc::Attr(schema.expect_id("city")));
    let c = blocker.apply(&ds.a, &ds.b);

    let mut params = DebuggerParams::default();
    params.joint.k = 500;
    let mc = MatchCatcher::new(params);
    let prepared = mc.prepare(&ds.a, &ds.b);
    let joint = mc.topk(&prepared, &c);
    let mut oracle = GoldOracle::exact(&ds.gold);
    let (union, outcome) = mc.verify(&ds.a, &ds.b, &prepared, &joint.lists, &mut oracle);
    let confirmed: Vec<(u32, u32)> = outcome
        .matches
        .iter()
        .map(|&k| mc_table::split_pair_key(k))
        .collect();
    println!(
        "blocker {} killed {} matches; debugger confirmed {}\n",
        blocker.describe(&schema),
        ds.gold.killed(&c),
        confirmed.len()
    );

    // Group all candidates by problem signature, most pervasive first —
    // one columnar pass over the whole union via the batch kernel.
    let union2 = CandidateUnion::build(&joint.lists);
    let kernel = DiagnosisKernel::build(&ds.a, &ds.b, 0);
    let groups = kernel.pervasiveness(&union2, &confirmed);
    assert!(!groups.is_empty(), "a lossy blocker must surface problems");
    println!("top problem groups across E = {} candidates:", union.len());
    for g in groups.iter().take(6) {
        println!(
            "  {:>5} pairs ({} confirmed matches): {}",
            g.pairs.len(),
            g.confirmed,
            g.signature.describe(&schema)
        );
    }
    let stats = kernel.stats();
    println!(
        "\nkernel: {} diagnoses served from {} cached value pairs ({} hits)",
        stats.lookups,
        stats.cache_entries,
        stats.cache_hits()
    );

    // Drill into the first confirmed match.
    if let Some(&m) = confirmed.first() {
        let sim = kernel.similar_pairs(&union2, m);
        let name = schema.expect_id("name");
        println!(
            "\nkilled match (a{}, b{}) = {:?} / {:?}",
            m.0,
            m.1,
            ds.a.value(m.0, name).unwrap_or("-"),
            ds.b.value(m.1, name).unwrap_or("-")
        );
        println!(
            "{} candidate pairs share (at least) its problems, e.g.:",
            sim.len()
        );
        for (x, y) in sim.iter().take(4) {
            println!(
                "  (a{x}, b{y}): {:?} / {:?}",
                ds.a.value(*x, name).unwrap_or("-"),
                ds.b.value(*y, name).unwrap_or("-")
            );
        }
    }
}

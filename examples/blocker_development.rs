//! Iterative blocker development on the restaurants dataset
//! (Fodors-Zagats profile) — the end-to-end workflow of §6.3: start with
//! a simple blocker, debug it with MatchCatcher, apply the suggested
//! fixes, repeat until the debugger reports no substantial problems.
//!
//! Run with: `cargo run --release --example blocker_development`

use matchcatcher::debugger::{DebuggerParams, MatchCatcher};
use matchcatcher::oracle::GoldOracle;
use mc_blocking::{Blocker, BlockerReport, KeyFunc};
use mc_datagen::profiles::DatasetProfile;
use mc_strsim::measures::SetMeasure;
use mc_strsim::tokenize::Tokenizer;

fn main() {
    let ds = DatasetProfile::FodorsZagats.generate(42);
    let schema = ds.a.schema().clone();
    println!(
        "dataset {}: |A|={} |B|={} gold matches={}\n",
        ds.name,
        ds.a.len(),
        ds.b.len(),
        ds.gold.len()
    );

    let name = schema.expect_id("name");
    let city = schema.expect_id("city");
    let addr = schema.expect_id("addr");

    // Development iterations: each blocker incorporates the fix suggested
    // by the previous debugging round.
    let versions: Vec<(&str, Blocker)> = vec![
        ("v1: hash(city)", Blocker::Hash(KeyFunc::Attr(city))),
        (
            "v2: v1 OR hash(name)",
            Blocker::Union(vec![
                Blocker::Hash(KeyFunc::Attr(city)),
                Blocker::Hash(KeyFunc::Attr(name)),
            ]),
        ),
        (
            "v3: v2 OR cos_word(name) >= 0.5 OR jac_3gram(addr) >= 0.4",
            Blocker::Union(vec![
                Blocker::Hash(KeyFunc::Attr(city)),
                Blocker::Hash(KeyFunc::Attr(name)),
                Blocker::Sim {
                    attr: name,
                    tokenizer: Tokenizer::Word,
                    measure: SetMeasure::Cosine,
                    threshold: 0.5,
                },
                Blocker::Sim {
                    attr: addr,
                    tokenizer: Tokenizer::QGram(3),
                    measure: SetMeasure::Jaccard,
                    threshold: 0.4,
                },
            ]),
        ),
    ];

    let mut params = DebuggerParams::default();
    params.joint.k = 500;
    let mc = MatchCatcher::new(params);

    for (label, blocker) in versions {
        let c = blocker.apply(&ds.a, &ds.b);
        let report = BlockerReport::from_candidates(label.to_string(), &c, &ds.a, &ds.b, &ds.gold);
        println!("== {label}");
        println!(
            "   |C|={} selectivity={:.4}% true recall={:.1}% (killed {})",
            report.candidates,
            report.selectivity * 100.0,
            report.recall * 100.0,
            report.killed
        );
        let mut oracle = GoldOracle::exact(&ds.gold);
        let dbg = mc.run(&ds.a, &ds.b, &c, &mut oracle);
        println!(
            "   debugger: |E|={} confirmed {} killed-off matches in {} iterations ({} labels)",
            dbg.e_size,
            dbg.confirmed_matches.len(),
            dbg.iteration_count(),
            dbg.labeled
        );
        if dbg.confirmed_matches.is_empty() {
            println!("   no killed-off matches found — stopping development here\n");
            break;
        }
        println!("   top problems to fix next:");
        for (p, n) in dbg.problems.iter().take(4) {
            println!("     {n}x {p}");
        }
        // Show a couple of concrete killed matches like the paper's UI.
        for &(x, y) in dbg.confirmed_matches.iter().take(3) {
            println!(
                "     e.g. A:{:?} / B:{:?}",
                ds.a.value(x, name).unwrap_or("-"),
                ds.b.value(y, name).unwrap_or("-")
            );
        }
        println!();
    }
}

//! Observability tour: run the debugger on a small synthetic dataset and
//! print the pipeline's stage-breakdown report.
//!
//! Every stage of the pipeline (blocker execution, tokenization, joint
//! top-k joins, verification, explanation) records spans and counters
//! into the process-wide `mc-obs` registry; capturing a
//! [`MetricsSnapshot`] before and after the run and diffing them yields
//! exactly what this run did — candidate/pruning counts, overlap-cache
//! reuse, per-stage wall times, verifier convergence.
//!
//! Run with: `cargo run --release --example obs_report`

use matchcatcher::debugger::{DebuggerParams, MatchCatcher};
use matchcatcher::oracle::GoldOracle;
use mc_blocking::{Blocker, KeyFunc};
use mc_datagen::profiles::DatasetProfile;
use mc_obs::MetricsSnapshot;
use mc_strsim::tokenize::Tokenizer;
use mc_strsim::SetMeasure;

fn main() {
    let baseline = MetricsSnapshot::capture();

    let ds = DatasetProfile::FodorsZagats.generate(42);
    println!(
        "dataset {}: {} × {} tuples, {} gold matches",
        ds.name,
        ds.a.len(),
        ds.b.len(),
        ds.gold.len()
    );

    // A lossy blocker: restaurants must share a city AND have similar
    // names — the name-similarity conjunct exercises the prefix-filter
    // join counters, the hash conjunct the key executors.
    let name = ds.a.schema().expect_id("name");
    let city = ds.a.schema().expect_id("city");
    let blocker = Blocker::Intersect(vec![
        Blocker::Sim {
            attr: name,
            tokenizer: Tokenizer::Word,
            measure: SetMeasure::Jaccard,
            threshold: 0.3,
        },
        Blocker::Hash(KeyFunc::Attr(city)),
    ]);
    let c = blocker.apply(&ds.a, &ds.b);
    println!(
        "blocker kept {} pairs, killing {} matches",
        c.len(),
        ds.gold.killed(&c)
    );

    let mut params = DebuggerParams::small();
    params.joint.k = 200;
    let mc = MatchCatcher::new(params);
    let mut oracle = GoldOracle::exact(&ds.gold);
    let report = mc.run(&ds.a, &ds.b, &c, &mut oracle);

    println!(
        "debugger recovered {} killed-off matches in {} iterations ({} labels)\n",
        report.confirmed_matches.len(),
        report.iteration_count(),
        report.labeled
    );

    // Everything recorded since the baseline — blocker + full pipeline.
    let delta = MetricsSnapshot::capture().since(&baseline);
    println!("{}", delta.render());
}

//! Debugging a blocker over CSV data — the workflow a Magellan user
//! follows: load two CSV tables, run a blocker, debug its recall with an
//! interactive oracle.
//!
//! This example embeds small CSV strings; replace `from_csv` inputs with
//! `std::fs::read_to_string(path)` for real files.
//!
//! Run with: `cargo run --release --example csv_workflow`

use matchcatcher::debugger::{DebuggerParams, MatchCatcher};
use matchcatcher::oracle::Oracle;
use mc_blocking::{Blocker, KeyFunc};
use mc_table::csv::from_csv;
use mc_table::TupleId;

/// An "interactive" oracle for the demo: prints each question and answers
/// from a canned truth set (a real UI would prompt the user).
struct ScriptedUser {
    truth: Vec<(TupleId, TupleId)>,
    asked: usize,
}

impl Oracle for ScriptedUser {
    fn is_match(&mut self, a: TupleId, b: TupleId) -> bool {
        self.asked += 1;
        let answer = self.truth.contains(&(a, b));
        println!(
            "  user labels (a{a}, b{b}) -> {}",
            if answer { "MATCH" } else { "no" }
        );
        answer
    }

    fn labels_given(&self) -> usize {
        self.asked
    }
}

fn main() {
    let csv_a = "\
name,city,phone
Dave Smith,Altanta,404-555-0101
Daniel Smith,LA,213-555-0707
Joe Welson,New York,212-555-0202
Charles Williams,Chicago,312-555-0303
Charlie William,Atlanta,404-555-0404
";
    let csv_b = "\
name,city,phone
David Smith,Atlanta,404-555-0101
Joe Wilson,NY,212-555-0202
Daniel W. Smith,LA,213-555-0707
Charles Williams,Chicago,312-555-0303
";
    let a = from_csv("restaurants-a", csv_a).expect("valid CSV");
    let b = from_csv("restaurants-b", csv_b).expect("valid CSV");
    println!("loaded {} + {} tuples from CSV", a.len(), b.len());

    let city = a.schema().expect_id("city");
    let blocker = Blocker::Hash(KeyFunc::Attr(city));
    let c = blocker.apply(&a, &b);
    println!(
        "blocker {} keeps {} of {} pairs\n",
        blocker.describe(a.schema()),
        c.len(),
        a.len() * b.len()
    );

    let mut user = ScriptedUser {
        truth: vec![(0, 0), (1, 2), (2, 1), (3, 3)],
        asked: 0,
    };
    let mc = MatchCatcher::new(DebuggerParams::small());
    let report = mc.run(&a, &b, &c, &mut user);

    println!("\nkilled-off matches confirmed by the user:");
    let name = a.schema().expect_id("name");
    for (x, y) in &report.confirmed_matches {
        println!(
            "  {:?} / {:?}",
            a.value(*x, name).unwrap_or("-"),
            b.value(*y, name).unwrap_or("-")
        );
    }
    println!("\ndiagnosed problems:");
    for (p, n) in &report.problems {
        println!("  {n}x {p}");
    }
    println!(
        "\n({} pairs labeled over {} iterations)",
        report.labeled,
        report.iteration_count()
    );
}

//! Debugging a *learned* blocker (§6.2's second experiment).
//!
//! A greedy learner builds a union-of-predicates blocker from a small
//! labeled sample of the (synthetic) Papers dataset — it reaches 100%
//! recall *on the sample*. MatchCatcher then shows that the full tables
//! still contain killed-off matches, and explains why, which is exactly
//! the gap the paper demonstrates for Falcon-learned blockers.
//!
//! Run with: `cargo run --release --example debug_learned_blocker`
//! (pass `--scale 0.1` via env `SCALE` for a bigger run).

use matchcatcher::debugger::{DebuggerParams, MatchCatcher};
use matchcatcher::oracle::GoldOracle;
use mc_bench::learned::{learn_blocker, sample_pairs};
use mc_datagen::profiles::DatasetProfile;

fn main() {
    let scale: f64 = std::env::var("SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02);
    let ds = DatasetProfile::Papers.generate_scaled(42, scale);
    println!(
        "dataset {}: |A|={} |B|={} (gold matches known to the generator: {})\n",
        ds.name,
        ds.a.len(),
        ds.b.len(),
        ds.gold.len()
    );

    // Learn three blockers from three independent samples, as in §6.2.
    for (i, seed) in [1u64, 2, 3].iter().enumerate() {
        let sample = sample_pairs(&ds.a, &ds.b, &ds.gold, 40, 80, *seed);
        let learned = learn_blocker(&ds.a, &ds.b, &sample, ds.a.len() * 60);
        let c = learned.blocker.apply(&ds.a, &ds.b);
        let recall = ds.gold.recall(&c);
        println!(
            "learned blocker #{} ({} predicates): sample recall {:.1}%, full recall {:.1}%, |C|={}",
            i + 1,
            learned.predicates,
            learned.sample_recall * 100.0,
            recall * 100.0,
            c.len()
        );

        let mut params = DebuggerParams::default();
        params.joint.k = 500;
        params.verifier.max_iters = 5; // the paper stops after 5 iterations
        let mc = MatchCatcher::new(params);
        let mut oracle = GoldOracle::exact(&ds.gold);
        let dbg = mc.run(&ds.a, &ds.b, &c, &mut oracle);
        println!(
            "  after 5 debugger iterations: {} killed-off matches found",
            dbg.confirmed_matches.len()
        );
        for (p, n) in dbg.problems.iter().take(4) {
            println!("    {n}x {p}");
        }
        println!();
    }
}

//! Quickstart: the paper's Figure 1 walkthrough.
//!
//! Builds the two small person tables from Figure 1, applies the
//! attribute-equivalence blocker `Q1: a.City = b.City`, and lets
//! MatchCatcher surface the matches Q1 killed off. The user then revises
//! the blocker twice (Q2 adds a last-name hash; Q3 generalizes it to an
//! edit-distance predicate) until the debugger finds no more killed
//! matches — exactly the paper's Example 1.1.
//!
//! Run with: `cargo run --release --example quickstart`

use matchcatcher::debugger::{DebuggerParams, MatchCatcher};
use matchcatcher::oracle::GoldOracle;
use mc_blocking::{Blocker, BlockerReport, KeyFunc};
use mc_table::{GoldMatches, Schema, Table, Tuple};
use std::sync::Arc;

fn main() {
    let schema = Arc::new(Schema::from_names(["name", "city", "age"]));
    let mut a = Table::new("A", Arc::clone(&schema));
    a.push(Tuple::from_present(["Dave Smith", "Altanta", "18"]));
    a.push(Tuple::from_present(["Daniel Smith", "LA", "18"]));
    a.push(Tuple::from_present(["Joe Welson", "New York", "25"]));
    a.push(Tuple::from_present(["Charles Williams", "Chicago", "45"]));
    a.push(Tuple::from_present(["Charlie William", "Atlanta", "28"]));
    let mut b = Table::new("B", Arc::clone(&schema));
    b.push(Tuple::from_present(["David Smith", "Atlanta", "18"]));
    b.push(Tuple::from_present(["Joe Wilson", "NY", "25"]));
    b.push(Tuple::from_present(["Daniel W. Smith", "LA", "30"]));
    b.push(Tuple::from_present(["Charles Williams", "Chicago", "45"]));
    let gold = GoldMatches::from_pairs([(0, 0), (1, 2), (2, 1), (3, 3)]);

    let name = schema.expect_id("name");
    let city = schema.expect_id("city");
    let blockers = [
        ("Q1: a.City = b.City", Blocker::Hash(KeyFunc::Attr(city))),
        (
            "Q2: Q1 OR lastword(Name) equal",
            Blocker::Union(vec![
                Blocker::Hash(KeyFunc::Attr(city)),
                Blocker::Hash(KeyFunc::LastWord(name)),
            ]),
        ),
        (
            "Q3: Q1 OR ed(lastword(Name)) <= 2",
            Blocker::Union(vec![
                Blocker::Hash(KeyFunc::Attr(city)),
                Blocker::EditSim {
                    key: KeyFunc::LastWord(name),
                    max_ed: 2,
                },
            ]),
        ),
    ];

    let mc = MatchCatcher::new(DebuggerParams::small());
    for (label, blocker) in blockers {
        let c = blocker.apply(&a, &b);
        let report = BlockerReport::from_candidates(label.to_string(), &c, &a, &b, &gold);
        println!("== {label}");
        println!("   {report}");
        let mut oracle = GoldOracle::exact(&gold);
        let debug = mc.run(&a, &b, &c, &mut oracle);
        if debug.confirmed_matches.is_empty() {
            println!("   debugger: no killed-off matches found — blocker looks good\n");
            continue;
        }
        println!(
            "   debugger found {} killed-off match(es):",
            debug.confirmed_matches.len()
        );
        for (x, y) in &debug.confirmed_matches {
            println!(
                "     (a{}, b{}): {:?} vs {:?}",
                x + 1,
                y + 1,
                a.value(*x, name).unwrap_or("-"),
                b.value(*y, name).unwrap_or("-")
            );
        }
        println!("   diagnosed blocker problems:");
        for (p, n) in &debug.problems {
            println!("     {n}x {p}");
        }
        println!();
    }
}

#!/bin/bash
cd /root/repo
B=./target/release
log() { echo "$1 $(date +%H:%M:%S)" >> results/queue_progress.txt; }
[ -s results/table4.txt ] || { $B/table4 > results/table4.txt 2>&1; log T4_DONE; }
[ -s results/sec62_hash.txt ] || { $B/sec62_hash > results/sec62_hash.txt 2>&1; log S62H_DONE; }
[ -s results/sec62_learned.txt ] || { $B/sec62_learned > results/sec62_learned.txt 2>&1; log S62L_DONE; }
[ -s results/ablation_long.txt ] || { $B/ablation_long --scale 0.4 > results/ablation_long.txt 2>&1; log AL_DONE; }
[ -s results/sensitivity.txt ] || { $B/sensitivity --scale 0.4 > results/sensitivity.txt 2>&1; log SENS_DONE; }
[ -s results/figure9.txt ] || { $B/figure9 --scale 0.01 > results/figure9.txt 2>&1; log F9_DONE; }
[ -s results/ablation_joint.txt ] || { $B/ablation_joint --k 300 --scale 0.25 > results/ablation_joint.txt 2>&1; log AJ_DONE; }
[ -s results/ablation_configs.txt ] || { $B/ablation_configs --scale 0.3 > results/ablation_configs.txt 2>&1; log AC_DONE; }
[ -s results/ablation_learning.txt ] || { $B/ablation_learning --scale 0.3 > results/ablation_learning.txt 2>&1; log ALN_DONE; }
[ -s results/sec64_runtime.txt ] || { $B/sec64_runtime --scale 0.3 > results/sec64_runtime.txt 2>&1; log S64_DONE; }
$B/table3 --only music2 >> results/table3_music.txt 2>/dev/null; log T3M2_DONE
log ALL_QUEUE2_DONE

//! End-to-end integration: datagen → blocking → debugger → explanations.

use matchcatcher::debugger::{DebuggerParams, MatchCatcher};
use matchcatcher::oracle::GoldOracle;
use mc_bench::harness::table3_cell;
use mc_blocking::{Blocker, KeyFunc};
use mc_datagen::noise::{ErrorKind, Side};
use mc_datagen::profiles::{errors_for, DatasetProfile};

fn small_params() -> DebuggerParams {
    let mut p = DebuggerParams::default();
    p.joint.k = 300;
    p.joint.threads = 2;
    p
}

#[test]
fn debugger_recovers_most_killed_matches_on_restaurants() {
    let ds = DatasetProfile::FodorsZagats.generate(42);
    let blocker = Blocker::Hash(KeyFunc::Attr(ds.a.schema().expect_id("city")));
    let c = blocker.apply(&ds.a, &ds.b);
    let killed = ds.gold.killed(&c);
    assert!(
        killed > 5,
        "fixture should kill a handful of matches, got {killed}"
    );

    let mc = MatchCatcher::new(small_params());
    let mut oracle = GoldOracle::exact(&ds.gold);
    let report = mc.run(&ds.a, &ds.b, &c, &mut oracle);

    // Every confirmed match must be a real killed-off gold match.
    for &(x, y) in &report.confirmed_matches {
        assert!(ds.gold.is_match(x, y), "({x},{y}) is not gold");
        assert!(!c.contains(x, y), "({x},{y}) was not killed");
    }
    // The debugger should recover a large fraction.
    let frac = report.confirmed_matches.len() as f64 / killed as f64;
    assert!(
        frac >= 0.7,
        "recovered only {:.0}% of killed matches",
        frac * 100.0
    );
}

#[test]
fn table3_invariants_hold_across_blocker_types() {
    let ds = DatasetProfile::AcmDblp.generate_scaled(7, 0.3);
    let suite = mc_bench::blockers::table2_suite(DatasetProfile::AcmDblp, ds.a.schema());
    for nb in suite {
        let row = table3_cell(&ds, nb.label, &nb.blocker, small_params());
        assert!(row.me <= row.md, "{}: ME > MD", nb.label);
        assert!(row.f <= row.me, "{}: F > ME", nb.label);
        assert!(row.e <= 300 * 15, "{}: E larger than k × configs", nb.label);
        assert!(row.i >= 1);
    }
}

#[test]
fn explanations_reflect_injected_errors() {
    let ds = DatasetProfile::FodorsZagats.generate(11);
    let blocker = Blocker::Hash(KeyFunc::Attr(ds.a.schema().expect_id("city")));
    let c = blocker.apply(&ds.a, &ds.b);
    let mc = MatchCatcher::new(small_params());
    let mut oracle = GoldOracle::exact(&ds.gold);
    let report = mc.run(&ds.a, &ds.b, &c, &mut oracle);
    assert!(!report.confirmed_matches.is_empty());

    // For matches killed because of an injected city abbreviation, the
    // debugger's diagnosis of the city attribute must be a disagreement.
    let city = ds.a.schema().expect_id("city");
    let mut checked = 0;
    for e in &report.explanations {
        let (_, y) = e.pair;
        let injected = errors_for(&ds.errors, Side::B, y);
        if injected.contains(&(city, ErrorKind::Abbreviation)) {
            let diag = e.per_attr[city.index()].1;
            assert!(
                !diag.is_agreement(),
                "abbreviated city diagnosed as agreement"
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "no abbreviation-killed matches surfaced");
}

#[test]
fn perfect_blocker_terminates_quickly_with_nothing() {
    let ds = DatasetProfile::FodorsZagats.generate(5);
    // A "blocker" that keeps every gold pair: nothing is killed.
    let mut c = mc_table::PairSet::new();
    for (x, y) in ds.gold.iter() {
        c.insert(x, y);
    }
    let mc = MatchCatcher::new(small_params());
    let mut oracle = GoldOracle::exact(&ds.gold);
    let report = mc.run(&ds.a, &ds.b, &c, &mut oracle);
    assert!(report.confirmed_matches.is_empty());
    assert!(report.iteration_count() <= small_params().verifier.stop_after_empty + 1);
}

#[test]
fn debugger_is_deterministic() {
    let ds = DatasetProfile::FodorsZagats.generate(3);
    let blocker = Blocker::Hash(KeyFunc::Attr(ds.a.schema().expect_id("city")));
    let c = blocker.apply(&ds.a, &ds.b);
    let mc = MatchCatcher::new(small_params());
    let run = || {
        let mut oracle = GoldOracle::exact(&ds.gold);
        let mut m = mc.run(&ds.a, &ds.b, &c, &mut oracle).confirmed_matches;
        m.sort_unstable();
        m
    };
    assert_eq!(run(), run());
}

#[test]
fn union_blocker_monotonically_improves_recall() {
    let ds = DatasetProfile::FodorsZagats.generate(9);
    let schema = ds.a.schema();
    let b1 = Blocker::Hash(KeyFunc::Attr(schema.expect_id("city")));
    let b2 = Blocker::Union(vec![
        b1.clone(),
        Blocker::Hash(KeyFunc::Attr(schema.expect_id("name"))),
    ]);
    let r1 = ds.gold.recall(&b1.apply(&ds.a, &ds.b));
    let r2 = ds.gold.recall(&b2.apply(&ds.a, &ds.b));
    assert!(r2 >= r1);
}

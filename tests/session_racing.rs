//! Two racing `DebugSession`s sharing one artifact store directory —
//! the contention pattern `mc-serve` creates the moment two clients
//! open the same dataset.
//!
//! Contracts:
//!
//! * both sessions produce **byte-identical** result-bearing reports,
//!   whether their arenas came from a cold build or a concurrent
//!   publisher's mmap artifact (first-to-publish wins is invisible in
//!   results);
//! * each session's `ObsContext` snapshot counts only its **own**
//!   incremental work — `mc.core.incr.*` metrics must not bleed across
//!   concurrently attached sessions on different threads.

use matchcatcher::debugger::{DebugReport, DebuggerParams, MatchCatcher};
use matchcatcher::joint::QStrategy;
use matchcatcher::oracle::GoldOracle;
use matchcatcher::verify::IterationRecord;
use mc_blocking::{Blocker, KeyFunc};
use mc_datagen::delta::{random_delta, DeltaSpec};
use mc_datagen::profiles::DatasetProfile;
use mc_obs::ObsContext;
use mc_store::StoreConfig;
use mc_table::{AttrId, TupleId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Barrier;

fn temp_store_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mc-racing-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

type ReportSummary = (
    Vec<(TupleId, TupleId)>,
    usize,
    usize,
    usize,
    Vec<IterationRecord>,
    Vec<(String, usize)>,
);

fn summarize(r: &DebugReport) -> ReportSummary {
    (
        r.confirmed_matches.clone(),
        r.e_size,
        r.q_used,
        r.labeled,
        r.iterations.clone(),
        r.problems.clone(),
    )
}

#[test]
fn racing_sessions_share_a_store_without_bleeding() {
    let dir = temp_store_dir();
    let barrier = Barrier::new(2);

    // Each thread: cold-open a session over the shared store, then run a
    // distinct number of delta reruns (1 vs 2) inside its own obs scope.
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2u64)
            .map(|t| {
                let dir = dir.clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    let ds = DatasetProfile::FodorsZagats.generate_scaled(7, 0.3);
                    let killed = Blocker::Hash(KeyFunc::Attr(AttrId(0))).apply(&ds.a, &ds.b);
                    let mut params = DebuggerParams::small();
                    params.joint.q = QStrategy::Fixed(1);
                    params.store = Some(StoreConfig::at(&dir));
                    let ctx = ObsContext::session();
                    params.obs = ctx.clone();
                    let mc = MatchCatcher::new(params);
                    let mut oracle = GoldOracle::exact(&ds.gold);
                    // Race the opens: whichever publishes arenas first,
                    // the other may warm-load them mid-build.
                    barrier.wait();
                    let (mut session, start) = mc.start_session(ds.a, ds.b, killed, &mut oracle);
                    let reruns = t as usize + 1;
                    let mut rng = StdRng::seed_from_u64(99); // same deltas on both threads
                    let mut last = summarize(&start);
                    for _ in 0..reruns {
                        let da = random_delta(
                            session.table_a(),
                            DeltaSpec::fraction_of(session.table_a().len(), 0.03),
                            &mut rng,
                        );
                        let db = random_delta(
                            session.table_b(),
                            DeltaSpec::fraction_of(session.table_b().len(), 0.03),
                            &mut rng,
                        );
                        let report = session
                            .rerun(&da, &db, None, &mut oracle)
                            .expect("valid delta");
                        last = summarize(&report);
                    }
                    let snap = ctx.snapshot();
                    (summarize(&start), last, reruns, snap)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("thread"))
            .collect()
    });

    // Identical fixture + identical deltas → byte-identical reports,
    // regardless of who won the store publish race.
    let (start_a, _, _, snap_a) = &results[0];
    let (start_b, _, _, snap_b) = &results[1];
    assert_eq!(start_a, start_b, "cold/warm opens must agree");

    // Metrics non-bleed: each scope counted exactly its own reruns.
    for (i, (_, _, reruns, snap)) in results.iter().enumerate() {
        assert_eq!(
            snap.counter("mc.core.incr.reruns"),
            *reruns as u64,
            "session {i} counted another session's reruns"
        );
    }
    // The two scopes saw different amounts of work — bleeding would have
    // equalized them.
    assert_ne!(
        snap_a.counter("mc.core.incr.reruns"),
        snap_b.counter("mc.core.incr.reruns")
    );

    // Store artifacts were produced under the race (publishes from at
    // least one session; hits whenever the loser warm-loaded).
    let published: u64 = results
        .iter()
        .map(|(_, _, _, s)| s.counter("mc.store.publishes"))
        .sum();
    assert!(published > 0, "someone must have published arenas");

    let _ = std::fs::remove_dir_all(&dir);
}

//! Acceptance tests for the persistent artifact store (`mc-store`) wired
//! through the debugger:
//!
//! * a warm run must reproduce the cold run's `DebugReport` byte for
//!   byte (ranked `D`, iteration records, recall numbers) at any thread
//!   count, while recording store hits and **skipping** tokenization and
//!   arena building entirely;
//! * corrupt or truncated artifacts must silently degrade to a cold
//!   recomputation with identical results;
//! * randomized tables and configs must round-trip structurally through
//!   real store files.
//!
//! The metrics registry is process-global, so every test that asserts a
//! span is *absent* holds the file-local `SERIAL` lock to keep sibling
//! tests (which run cold pipelines) from contaminating its delta.

use matchcatcher::debugger::{DebugReport, DebuggerParams, MatchCatcher};
use matchcatcher::joint::{CandidateUnion, QStrategy};
use matchcatcher::oracle::GoldOracle;
use matchcatcher::store_io;
use matchcatcher::verify::IterationRecord;
use matchcatcher::Config;
use mc_blocking::{Blocker, KeyFunc};
use mc_datagen::profiles::DatasetProfile;
use mc_obs::MetricsSnapshot;
use mc_store::{ArtifactKind, Digest, DigestWriter, Store, StoreConfig};
use mc_strsim::arena::RecordArena;
use mc_strsim::dict::TokenizedTable;
use mc_strsim::tokenize::Tokenizer;
use mc_table::{pair_key, AttrId, Schema, Table, Tuple, TupleId};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

static SERIAL: Mutex<()> = Mutex::new(());
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_store_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "mc-store-test-{}-{}-{}",
        tag,
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The result-bearing fields of a [`DebugReport`] — everything the user
/// sees, minus the metrics snapshot (which legitimately differs between
/// cold and warm runs).
type ReportSummary = (
    Vec<(TupleId, TupleId)>,
    usize,
    usize,
    usize,
    Vec<IterationRecord>,
    Vec<(String, usize)>,
);

fn summarize(r: &DebugReport) -> ReportSummary {
    (
        r.confirmed_matches.clone(),
        r.e_size,
        r.q_used,
        r.labeled,
        r.iterations.clone(),
        r.problems.clone(),
    )
}

fn run_once(dir: &Path, threads: usize) -> (DebugReport, MetricsSnapshot) {
    run_once_with(dir, threads, QStrategy::Fixed(1))
}

fn run_once_with(dir: &Path, threads: usize, q: QStrategy) -> (DebugReport, MetricsSnapshot) {
    let ds = DatasetProfile::FodorsZagats.generate_scaled(3, 0.4);
    let blocker = Blocker::Hash(KeyFunc::Attr(AttrId(0)));
    let c = blocker.apply(&ds.a, &ds.b);
    let mut params = DebuggerParams::small();
    params.joint.threads = threads;
    params.joint.q = q;
    params.store = Some(StoreConfig::at(dir));
    let mc = MatchCatcher::new(params);
    let mut oracle = GoldOracle::exact(&ds.gold);
    let before = MetricsSnapshot::capture();
    let report = mc.run(&ds.a, &ds.b, &c, &mut oracle);
    let delta = MetricsSnapshot::capture().since(&before);
    (report, delta)
}

#[test]
fn warm_run_is_byte_identical_and_skips_tokenization_and_arenas() {
    let _guard = SERIAL.lock().unwrap();
    let dir = temp_store_dir("warm");

    let (cold, cold_delta) = run_once(&dir, 2);
    assert!(
        cold_delta.counter("mc.store.publishes") > 0,
        "cold run must publish artifacts"
    );
    assert!(
        !cold.confirmed_matches.is_empty(),
        "fixture recovers matches"
    );

    // Warm runs at *different* thread counts: the union key excludes the
    // thread count because the joint stage is bit-deterministic.
    for threads in [1usize, 4] {
        let (warm, delta) = run_once(&dir, threads);
        assert_eq!(
            summarize(&cold),
            summarize(&warm),
            "warm report diverged at {threads} threads"
        );
        assert!(
            delta.counter("mc.store.hits") > 0,
            "warm run must hit the store ({threads} threads)"
        );
        for span in [
            "mc.strsim.dict.build",
            "mc.core.joint.build_arenas",
            "mc.strsim.arena.build",
            "mc.core.joint.run",
        ] {
            assert_eq!(
                delta.span(span).count,
                0,
                "{span} must not run warm ({threads} threads)"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_start_round_trips_the_threshold_kernel_and_score_cache() {
    // Audit for the scoring-kernel change: the candidate-union cache key
    // needs no bump because the threshold-aware merge, the keyed-bound
    // memo, and the prelude score cache all leave published scores
    // bit-identical. A cold Auto-q run — whose preludes populate the
    // cross-q pair → score cache and whose main run consumes it — must
    // warm-start byte for byte and skip the joint stage entirely
    // (`q_used` is part of the summarized report, so the empirically
    // selected q round-trips through the artifact too).
    let _guard = SERIAL.lock().unwrap();
    let dir = temp_store_dir("kernel");
    let q = QStrategy::Auto {
        max_q: 3,
        prelude_k: 30,
    };

    let (cold, cold_delta) = run_once_with(&dir, 2, q);
    assert!(
        cold_delta.counter("mc.core.ssj.cache_hits") > 0,
        "cold Auto-q run must exercise the prelude score cache"
    );

    let (warm, delta) = run_once_with(&dir, 2, q);
    assert_eq!(
        summarize(&cold),
        summarize(&warm),
        "warm Auto-q report diverged"
    );
    assert!(delta.counter("mc.store.hits") > 0, "warm run must hit");
    assert_eq!(
        delta.span("mc.core.joint.run").count,
        0,
        "the union must be served from the store, not recomputed"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_artifacts_degrade_to_cold_recomputation() {
    let _guard = SERIAL.lock().unwrap();
    let dir = temp_store_dir("corrupt");
    let (cold, _) = run_once(&dir, 2);

    // Truncate every union artifact and bit-flip every tokenization
    // artifact on disk.
    let mangle = |kind: &str, f: &dyn Fn(Vec<u8>) -> Vec<u8>| {
        let d = dir.join("objects").join(kind);
        for entry in std::fs::read_dir(&d).expect("kind dir exists") {
            let path = entry.expect("entry").path();
            if path.extension().is_some_and(|e| e == "mcs") {
                let bytes = std::fs::read(&path).expect("read artifact");
                std::fs::write(&path, f(bytes)).expect("write mangled");
            }
        }
    };
    mangle("union", &|b| b[..b.len().min(10)].to_vec());
    mangle("tok", &|mut b| {
        let mid = b.len() / 2;
        b[mid] ^= 0x10;
        b
    });

    let (again, delta) = run_once(&dir, 2);
    assert_eq!(
        summarize(&cold),
        summarize(&again),
        "corruption must not change results"
    );
    assert!(
        delta.counter("mc.store.corrupt") > 0,
        "corruption must be detected and counted"
    );
    assert!(
        delta.span("mc.core.joint.run").count > 0,
        "the joint stage must recompute after corruption"
    );

    // The recomputation republished; a third run is warm again.
    let (third, delta3) = run_once(&dir, 2);
    assert_eq!(summarize(&cold), summarize(&third));
    assert_eq!(delta3.span("mc.core.joint.run").count, 0, "third run warm");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_format_version_is_a_silent_miss() {
    let _guard = SERIAL.lock().unwrap();
    let dir = temp_store_dir("version");
    let (cold, _) = run_once(&dir, 2);

    // Bump the format-version field (bytes 4..8 of the header) of every
    // artifact of every kind.
    for kind in ["tok", "arena", "union", "post"] {
        let d = dir.join("objects").join(kind);
        for entry in std::fs::read_dir(&d).expect("kind dir") {
            let path = entry.expect("entry").path();
            let mut bytes = std::fs::read(&path).expect("read");
            bytes[4] = bytes[4].wrapping_add(1);
            std::fs::write(&path, bytes).expect("write");
        }
    }
    let (again, delta) = run_once(&dir, 2);
    assert_eq!(summarize(&cold), summarize(&again));
    assert_eq!(
        delta.counter("mc.store.hits"),
        0,
        "version-mismatched artifacts must all miss"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_copy_arenas_mmap_warm_and_fall_back_on_corruption() {
    let _guard = SERIAL.lock().unwrap();
    let dir = temp_store_dir("zc");
    let (cold, _) = run_once(&dir, 2);

    // The cold run published arenas in the zero-copy layout.
    let post_dir = dir.join("objects").join("post");
    let post_files: Vec<PathBuf> = std::fs::read_dir(&post_dir)
        .expect("post dir exists")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "mcs"))
        .collect();
    assert!(!post_files.is_empty(), "zero-copy arenas must be published");

    // Drop the unions so the next run must reach the arena path, then
    // warm-run: arenas come from the mapping, never from a rebuild.
    let drop_unions = || {
        for entry in std::fs::read_dir(dir.join("objects").join("union")).expect("union dir") {
            std::fs::remove_file(entry.expect("entry").path()).expect("remove union");
        }
    };
    drop_unions();
    let (warm, delta) = run_once(&dir, 2);
    assert_eq!(summarize(&cold), summarize(&warm), "mapped warm diverged");
    assert!(
        delta.counter("mc.store.mmap_maps") > 0,
        "warm arenas must come from a mapping"
    );
    assert_eq!(
        delta.span("mc.strsim.arena.build").count,
        0,
        "no arena rebuild on the mapped path"
    );

    // Corrupt the zero-copy *payload* while keeping the store header
    // valid (recompute the FNV): the store hits, `map_arena` refuses,
    // and with no byte-codec fallback artifact the arenas rebuild —
    // with identical results.
    for path in &post_files {
        let mut bytes = std::fs::read(path).expect("read post artifact");
        bytes[32] ^= 0xff; // first payload byte: breaks the sub-magic
        let sum = mc_table::digest::fnv64(&bytes[32..]);
        bytes[24..32].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(path, bytes).expect("write mangled");
    }
    drop_unions();
    let (rebuilt, delta2) = run_once(&dir, 2);
    assert_eq!(summarize(&cold), summarize(&rebuilt), "fallback diverged");
    assert!(
        delta2.counter("mc.store.decode_failed") > 0,
        "refused zero-copy payloads must be counted"
    );
    assert!(
        delta2.span("mc.strsim.arena.build").count > 0,
        "arenas must rebuild after the mapped payload is refused"
    );

    // The rebuild republished; a third run maps cleanly again.
    drop_unions();
    let (third, delta3) = run_once(&dir, 2);
    assert_eq!(summarize(&cold), summarize(&third));
    assert_eq!(
        delta3.span("mc.strsim.arena.build").count,
        0,
        "mapped again"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn random_table(rng: &mut StdRng, name: &str, schema: &Arc<Schema>, rows: usize) -> Table {
    let mut t = Table::new(name, Arc::clone(schema));
    for _ in 0..rows {
        let values: Vec<Option<String>> = (0..schema.len())
            .map(|_| {
                if rng.random_range(0..10u32) == 0 {
                    None
                } else {
                    let n = rng.random_range(1usize..6);
                    Some(
                        (0..n)
                            .map(|_| format!("w{}", rng.random_range(0..40u32)))
                            .collect::<Vec<_>>()
                            .join(" "),
                    )
                }
            })
            .collect();
        t.push(Tuple::new(values));
    }
    t
}

#[test]
fn randomized_artifacts_roundtrip_through_real_store_files() {
    let dir = temp_store_dir("random");
    let store = Store::open(&StoreConfig::at(dir.clone())).expect("open store");
    let mut rng = StdRng::seed_from_u64(0xca11ab1e);

    for trial in 0u64..8 {
        let n_attrs = rng.random_range(1usize..4);
        let names: Vec<String> = (0..n_attrs).map(|i| format!("f{i}")).collect();
        let schema = Arc::new(Schema::from_names(names.iter().map(|s| s.as_str())));
        let rows_a = rng.random_range(1usize..30);
        let rows_b = rng.random_range(1usize..30);
        let a = random_table(&mut rng, "A", &schema, rows_a);
        let b = random_table(&mut rng, "B", &schema, rows_b);
        let attrs: Vec<AttrId> = (0..n_attrs as u16).map(AttrId).collect();
        let (ta, tb, order) = TokenizedTable::build_pair(&a, &b, &attrs, Tokenizer::Word);

        // Tokenization through the store.
        let key = {
            let mut w = DigestWriter::new();
            w.write_u64(trial);
            w.finish()
        };
        let payload = store_io::encode_tokenization(&order, &ta, &tb);
        assert!(store.publish(ArtifactKind::Tokenization, key, &payload));
        let loaded = store
            .load(ArtifactKind::Tokenization, key)
            .expect("hit just-published artifact");
        let (order2, ta2, tb2) = store_io::decode_tokenization(&loaded).expect("decode");
        assert_eq!(order.rank_table(), order2.rank_table(), "trial {trial}");
        for (orig, redone) in [(&ta, &ta2), (&tb, &tb2)] {
            assert_eq!(orig.rows(), redone.rows());
            for attr in 0..orig.attr_count() {
                for t in 0..orig.rows() as TupleId {
                    assert_eq!(orig.ranks(attr, t), redone.ranks(attr, t), "trial {trial}");
                }
            }
        }

        // A random config's arenas through the store.
        let n_pos = rng.random_range(1usize..=n_attrs);
        let mut positions: Vec<usize> = (0..n_attrs).collect();
        for i in (1..positions.len()).rev() {
            positions.swap(i, rng.random_range(0..=i));
        }
        let mut positions: Vec<usize> = positions.into_iter().take(n_pos).collect();
        positions.sort_unstable();
        let arena = RecordArena::from_tokenized(&ta, &positions);
        let akey = store_io::arena_key(key, 0, &positions);
        assert!(store.publish(ArtifactKind::Arena, akey, &store_io::encode_arena(&arena)));
        let arena2 =
            store_io::decode_arena(&store.load(ArtifactKind::Arena, akey).expect("arena hit"))
                .expect("arena decode");
        assert_eq!(arena.len(), arena2.len());
        assert_eq!(arena.rank_bound(), arena2.rank_bound());
        for t in 0..arena.len() as TupleId {
            assert_eq!(arena.record(t), arena2.record(t), "trial {trial}");
        }

        // A random candidate union through the store.
        let n_pairs = rng.random_range(0usize..20);
        let pairs: Vec<u64> = (0..n_pairs as u32)
            .map(|i| pair_key(i, i * 3 % 17))
            .collect();
        let n_configs = rng.random_range(1usize..4);
        let configs: Vec<Config> = (0..n_configs)
            .map(|i| Config::from_positions([i % n_attrs.max(1)]))
            .collect();
        let scores: Vec<Vec<Option<f64>>> = (0..n_configs)
            .map(|_| {
                (0..n_pairs)
                    .map(|_| {
                        if rng.random_range(0..3u32) == 0 {
                            None
                        } else {
                            Some(rng.random_range(0..1_000_000u32) as f64 / 1_000_000.0)
                        }
                    })
                    .collect()
            })
            .collect();
        let union = CandidateUnion { pairs, scores };
        let ukey = store_io::arena_key(key, 9, &[trial as usize]);
        let q = rng.random_range(1usize..4);
        assert!(store.publish(
            ArtifactKind::CandidateUnion,
            ukey,
            &store_io::encode_union(&configs, q, &union)
        ));
        let (c2, q2, u2) = store_io::decode_union(
            &store
                .load(ArtifactKind::CandidateUnion, ukey)
                .expect("union hit"),
        )
        .expect("union decode");
        assert_eq!(configs, c2, "trial {trial}");
        assert_eq!(q, q2);
        assert_eq!(union.pairs, u2.pairs);
        let bits = |rows: &[Vec<Option<f64>>]| -> Vec<Vec<Option<u64>>> {
            rows.iter()
                .map(|r| r.iter().map(|s| s.map(f64::to_bits)).collect())
                .collect()
        };
        assert_eq!(bits(&union.scores), bits(&u2.scores), "trial {trial}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// Silence an unused-import lint pathway: Digest is part of the public
// key-derivation API exercised above via DigestWriter::finish.
#[allow(dead_code)]
fn _digest_is_exported(d: Digest) -> String {
    d.to_hex()
}

//! Randomized property tests for the data-model substrate: CSV
//! round-trips, pair-key packing, gold-set arithmetic. Each property is
//! checked over many seeded random cases (deterministic across runs).

use mc_table::csv::{from_csv, to_csv};
use mc_table::{pair_key, split_pair_key, GoldMatches, PairSet, Schema, Table, Tuple};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt as _, SeedableRng};
use std::sync::Arc;

const CASES: usize = 64;

/// A random CSV-ish value: letters, digits, separators, quotes,
/// newlines — the characters that stress a CSV writer. `None` with
/// probability 1/4.
fn random_value(rng: &mut StdRng) -> Option<String> {
    if rng.random_bool(0.25) {
        return None;
    }
    const ALPHABET: &[char] = &['a', 'b', 'z', '0', '9', ' ', ',', '"', '\n', 'q', 'x', '7'];
    let len = rng.random_range(0..=12usize);
    let s: String = (0..len).map(|_| *ALPHABET.choose(rng).unwrap()).collect();
    Some(s)
}

#[test]
fn csv_roundtrip_preserves_tables() {
    let mut rng = StdRng::seed_from_u64(0xC5F);
    for case in 0..CASES {
        let schema = Arc::new(Schema::from_names(["colx", "coly"]));
        let mut t = Table::new("T", schema);
        let rows = rng.random_range(0..10usize);
        for _ in 0..rows {
            // CSV cannot distinguish empty-present from missing unless
            // quoted; our writer writes missing as empty, so normalize
            // empty strings to missing for the round-trip property.
            let norm = |v: Option<String>| v.filter(|s| !s.is_empty());
            t.push(Tuple::new(vec![
                norm(random_value(&mut rng)),
                norm(random_value(&mut rng)),
            ]));
        }
        let text = to_csv(&t);
        let back = from_csv("T", &text).unwrap();
        assert_eq!(back.len(), t.len(), "case {case}");
        for id in t.ids() {
            for attr in t.schema().attr_ids() {
                assert_eq!(
                    back.value(id, attr),
                    t.value(id, attr),
                    "case {case} row {id} attr {attr}"
                );
            }
        }
    }
}

#[test]
fn pair_key_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x9A1);
    for _ in 0..1000 {
        let a = rng.random_range(0..=u32::MAX);
        let b = rng.random_range(0..=u32::MAX);
        assert_eq!(split_pair_key(pair_key(a, b)), (a, b));
    }
    // Edge cases.
    for (a, b) in [(0, 0), (0, u32::MAX), (u32::MAX, 0), (u32::MAX, u32::MAX)] {
        assert_eq!(split_pair_key(pair_key(a, b)), (a, b));
    }
}

#[test]
fn pairset_behaves_like_hashset() {
    let mut rng = StdRng::seed_from_u64(0x5E7);
    for case in 0..CASES {
        let mut ours = PairSet::new();
        let mut reference = std::collections::HashSet::new();
        let ops = rng.random_range(0..60usize);
        for _ in 0..ops {
            let a = rng.random_range(0..16u32);
            let b = rng.random_range(0..16u32);
            if rng.random_bool(0.5) {
                assert_eq!(ours.insert(a, b), reference.insert((a, b)), "case {case}");
            } else {
                assert_eq!(ours.remove(a, b), reference.remove(&(a, b)), "case {case}");
            }
        }
        assert_eq!(ours.len(), reference.len(), "case {case}");
        for &(a, b) in &reference {
            assert!(ours.contains(a, b), "case {case}: missing ({a},{b})");
        }
    }
}

#[test]
fn recall_is_monotone_in_candidates() {
    let mut rng = StdRng::seed_from_u64(0x60D);
    for case in 0..CASES {
        let n_gold = rng.random_range(1..20usize);
        let gold_pairs: Vec<(u32, u32)> = (0..n_gold)
            .map(|_| (rng.random_range(0..10u32), rng.random_range(0..10u32)))
            .collect();
        let n_extra = rng.random_range(0..20usize);
        let extra: Vec<(u32, u32)> = (0..n_extra)
            .map(|_| (rng.random_range(0..10u32), rng.random_range(0..10u32)))
            .collect();
        let gold = GoldMatches::from_pairs(gold_pairs.iter().copied());
        let c1: PairSet = gold_pairs
            .iter()
            .copied()
            .take(gold_pairs.len() / 2)
            .collect();
        let mut c2 = c1.clone();
        c2.extend(extra.iter().copied());
        // Adding candidates can only help recall.
        assert!(gold.recall(&c2) >= gold.recall(&c1) - 1e-12, "case {case}");
        assert!(gold.killed(&c2) <= gold.killed(&c1), "case {case}");
        // Identities.
        assert_eq!(
            gold.surviving(&c2) + gold.killed(&c2),
            gold.len(),
            "case {case}"
        );
    }
}

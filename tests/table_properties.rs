//! Property-based tests for the data-model substrate: CSV round-trips,
//! pair-key packing, gold-set arithmetic.

use mc_table::csv::{from_csv, to_csv};
use mc_table::{pair_key, split_pair_key, GoldMatches, PairSet, Schema, Table, Tuple};
use proptest::prelude::*;
use std::sync::Arc;

fn value_strategy() -> impl Strategy<Value = Option<String>> {
    prop_oneof![
        3 => "[a-z0-9 ,\"\n]{0,12}".prop_map(Some),
        1 => Just(None),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csv_roundtrip_preserves_tables(
        rows in prop::collection::vec((value_strategy(), value_strategy()), 0..10)
    ) {
        let schema = Arc::new(Schema::from_names(["colx", "coly"]));
        let mut t = Table::new("T", schema);
        for (x, y) in rows {
            // CSV cannot distinguish empty-present from missing unless
            // quoted; our writer writes missing as empty, so normalize
            // empty strings to missing for the round-trip property.
            let norm = |v: Option<String>| v.filter(|s| !s.is_empty());
            t.push(Tuple::new(vec![norm(x), norm(y)]));
        }
        let text = to_csv(&t);
        let back = from_csv("T", &text).unwrap();
        prop_assert_eq!(back.len(), t.len());
        for id in t.ids() {
            for attr in t.schema().attr_ids() {
                prop_assert_eq!(
                    back.value(id, attr),
                    t.value(id, attr),
                    "row {} attr {}",
                    id,
                    attr
                );
            }
        }
    }

    #[test]
    fn pair_key_roundtrip(a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(split_pair_key(pair_key(a, b)), (a, b));
    }

    #[test]
    fn pairset_behaves_like_hashset(
        ops in prop::collection::vec((0u32..16, 0u32..16, any::<bool>()), 0..60)
    ) {
        let mut ours = PairSet::new();
        let mut reference = std::collections::HashSet::new();
        for (a, b, insert) in ops {
            if insert {
                prop_assert_eq!(ours.insert(a, b), reference.insert((a, b)));
            } else {
                prop_assert_eq!(ours.remove(a, b), reference.remove(&(a, b)));
            }
        }
        prop_assert_eq!(ours.len(), reference.len());
        for &(a, b) in &reference {
            prop_assert!(ours.contains(a, b));
        }
    }

    #[test]
    fn recall_is_monotone_in_candidates(
        gold_pairs in prop::collection::vec((0u32..10, 0u32..10), 1..20),
        extra in prop::collection::vec((0u32..10, 0u32..10), 0..20),
    ) {
        let gold = GoldMatches::from_pairs(gold_pairs.iter().copied());
        let c1: PairSet = gold_pairs.iter().copied().take(gold_pairs.len() / 2).collect();
        let mut c2 = c1.clone();
        c2.extend(extra.iter().copied());
        // Adding candidates can only help recall.
        prop_assert!(gold.recall(&c2) >= gold.recall(&c1) - 1e-12);
        prop_assert!(gold.killed(&c2) <= gold.killed(&c1));
        // Identities.
        prop_assert_eq!(gold.surviving(&c2) + gold.killed(&c2), gold.len());
    }
}

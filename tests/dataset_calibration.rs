//! Dataset calibration: the synthetic profiles must exercise the same
//! regimes as the paper's datasets — blockers with imperfect, *varying*
//! recall (the paper observes 2.5–98.2%), dirty-but-recognizable matched
//! pairs, and clean profiles where good blockers reach ~100%.

use mc_bench::blockers::{best_hash_blocker, table2_suite};
use mc_datagen::profiles::DatasetProfile;

#[test]
fn blocker_recalls_vary_within_each_dirty_profile() {
    for (profile, scale) in [
        (DatasetProfile::AmazonGoogle, 0.5),
        (DatasetProfile::FodorsZagats, 1.0),
    ] {
        let ds = profile.generate_scaled(42, scale);
        let recalls: Vec<f64> = table2_suite(profile, ds.a.schema())
            .iter()
            .map(|nb| ds.gold.recall(&nb.blocker.apply(&ds.a, &ds.b)))
            .collect();
        let min = recalls.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = recalls.iter().cloned().fold(0.0, f64::max);
        assert!(
            max - min > 0.05,
            "{}: blocker recalls should vary, got {recalls:?}",
            profile.name()
        );
        assert!(
            min < 0.999,
            "{}: some blocker must be imperfect",
            profile.name()
        );
    }
}

#[test]
fn best_hash_blockers_are_strong_but_imperfect_on_dirty_data() {
    let ds = DatasetProfile::AmazonGoogle.generate_scaled(42, 0.5);
    let best = best_hash_blocker(DatasetProfile::AmazonGoogle, ds.a.schema());
    let recall = ds.gold.recall(&best.apply(&ds.a, &ds.b));
    // The paper's A-G best-hash sits at 75.6%; ours must land in the
    // same "good but clearly lossy" band.
    assert!(
        (0.4..0.999).contains(&recall),
        "A-G best hash recall {recall} out of the calibrated band"
    );
}

#[test]
fn clean_profile_supports_near_perfect_blocking() {
    let ds = DatasetProfile::AcmDblp.generate_scaled(42, 0.5);
    let best = best_hash_blocker(DatasetProfile::AcmDblp, ds.a.schema());
    let recall = ds.gold.recall(&best.apply(&ds.a, &ds.b));
    assert!(
        recall > 0.95,
        "A-D best hash recall {recall}; the profile is too dirty"
    );
}

#[test]
fn music_profiles_share_generator_but_differ_in_match_density() {
    let m1 = DatasetProfile::Music1.generate_scaled(1, 0.02);
    let m2 = DatasetProfile::Music2.generate_scaled(1, 0.02);
    assert_eq!(m1.a.schema().len(), m2.a.schema().len());
    // Music2's match density (matches per tuple) is much higher.
    let d1 = m1.gold.len() as f64 / m1.a.len() as f64;
    let d2 = m2.gold.len() as f64 / m2.a.len() as f64;
    assert!(d2 > d1 * 2.0, "densities {d1} vs {d2}");
}

#[test]
fn selectivity_is_realistic() {
    // Blocking must actually block: candidate sets far below |A × B|.
    let ds = DatasetProfile::FodorsZagats.generate(42);
    for nb in table2_suite(DatasetProfile::FodorsZagats, ds.a.schema()) {
        let c = nb.blocker.apply(&ds.a, &ds.b);
        let sel = c.len() as f64 / (ds.a.len() * ds.b.len()) as f64;
        assert!(
            sel < 0.25,
            "({}) keeps {:.0}% of the cross product",
            nb.label,
            sel * 100.0
        );
    }
}

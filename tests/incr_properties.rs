//! Randomized exactness oracle for the incremental debugging path.
//!
//! The contract under test ([`matchcatcher::incr`]): after any sequence
//! of table deltas and killed-set diffs, `DebugSession::rerun` produces a
//! `DebugReport` **byte-identical** (metrics aside) to a cold
//! `start_session` on the patched tables with the same killed set and
//! parameters — for every similarity measure, at shard counts 1 and 4,
//! and for `q > 1`. The comparison covers every result-bearing field:
//! ranked candidates (via `e_size`), confirmed matches in discovery
//! order, per-iteration verifier records, label counts, and the problem
//! summary.

use matchcatcher::debugger::{DebugReport, DebuggerParams, MatchCatcher};
use matchcatcher::joint::QStrategy;
use matchcatcher::oracle::GoldOracle;
use matchcatcher::verify::IterationRecord;
use mc_blocking::{Blocker, KeyFunc};
use mc_datagen::delta::{perturb_killed, random_delta, DeltaSpec};
use mc_datagen::profiles::DatasetProfile;
use mc_obs::MetricsSnapshot;
use mc_strsim::measures::SetMeasure;
use mc_table::{AttrId, GoldMatches, PairSet, Table, TableDelta, TupleId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The result-bearing fields of a [`DebugReport`] — everything the user
/// sees, minus the metrics snapshot.
type ReportSummary = (
    Vec<(TupleId, TupleId)>,
    usize,
    usize,
    usize,
    Vec<IterationRecord>,
    Vec<(String, usize)>,
);

fn summarize(r: &DebugReport) -> ReportSummary {
    (
        r.confirmed_matches.clone(),
        r.e_size,
        r.q_used,
        r.labeled,
        r.iterations.clone(),
        r.problems.clone(),
    )
}

fn fixture(seed: u64) -> (Table, Table, PairSet, GoldMatches) {
    let ds = DatasetProfile::FodorsZagats.generate_scaled(seed, 0.35);
    let killed = Blocker::Hash(KeyFunc::Attr(AttrId(0))).apply(&ds.a, &ds.b);
    (ds.a, ds.b, killed, ds.gold)
}

fn session_params(measure: SetMeasure, q: usize, shards: usize) -> DebuggerParams {
    let mut p = DebuggerParams::small();
    p.joint.measure = measure;
    p.joint.q = QStrategy::Fixed(q);
    p.joint.shards = shards;
    // Exercise the requested shard count even on small CI machines.
    p.joint.clamp_shards = false;
    p.incr.margin = 32;
    p
}

/// Runs `rounds` random deltas through one live session, checking each
/// report against a cold session on the patched state.
fn check_incremental_exactness(params: DebuggerParams, seed: u64, rounds: usize) {
    let (a, b, killed, gold) = fixture(seed);
    let mc = MatchCatcher::new(params);
    let mut oracle = GoldOracle::exact(&gold);
    let (mut session, start) = mc.start_session(a, b, killed, &mut oracle);
    assert!(start.e_size > 0, "fixture produces candidates");

    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    for round in 0..rounds {
        let spec_a = DeltaSpec::fraction_of(session.table_a().len(), 0.03);
        let spec_b = DeltaSpec::fraction_of(session.table_b().len(), 0.03);
        let delta_a = random_delta(session.table_a(), spec_a, &mut rng);
        let delta_b = random_delta(session.table_b(), spec_b, &mut rng);
        let nk = perturb_killed(
            session.killed(),
            (session.table_a().len() + delta_a.inserts.len()) as u32,
            (session.table_b().len() + delta_b.inserts.len()) as u32,
            0.05,
            8,
            &mut rng,
        );
        let incr = session
            .rerun(&delta_a, &delta_b, Some(nk), &mut oracle)
            .expect("generated deltas are valid");

        let (_, cold) = mc.start_session(
            session.table_a().clone(),
            session.table_b().clone(),
            session.killed().clone(),
            &mut GoldOracle::exact(&gold),
        );
        assert_eq!(
            summarize(&cold),
            summarize(&incr),
            "incremental report diverged from cold run at round {round}"
        );
    }
}

#[test]
fn incremental_matches_cold_jaccard() {
    check_incremental_exactness(session_params(SetMeasure::Jaccard, 1, 1), 3, 3);
}

#[test]
fn incremental_matches_cold_cosine() {
    check_incremental_exactness(session_params(SetMeasure::Cosine, 1, 1), 4, 3);
}

#[test]
fn incremental_matches_cold_dice() {
    check_incremental_exactness(session_params(SetMeasure::Dice, 1, 1), 5, 3);
}

#[test]
fn incremental_matches_cold_overlap() {
    check_incremental_exactness(session_params(SetMeasure::Overlap, 1, 1), 6, 3);
}

#[test]
fn incremental_matches_cold_sharded() {
    check_incremental_exactness(session_params(SetMeasure::Jaccard, 1, 4), 7, 3);
}

#[test]
fn incremental_matches_cold_q2() {
    check_incremental_exactness(session_params(SetMeasure::Jaccard, 2, 1), 8, 3);
}

/// The killed-only fast path must reuse every join: zero pairs rescored
/// by delta joins beyond the direct re-scores, and an identical report.
#[test]
fn killed_only_diff_reuses_joins() {
    let (a, b, killed, gold) = fixture(9);
    let mc = MatchCatcher::new(session_params(SetMeasure::Jaccard, 1, 1));
    let mut oracle = GoldOracle::exact(&gold);
    let (mut session, _) = mc.start_session(a, b, killed, &mut oracle);

    let mut rng = StdRng::seed_from_u64(99);
    let nk = perturb_killed(
        session.killed(),
        session.table_a().len() as u32,
        session.table_b().len() as u32,
        0.2,
        10,
        &mut rng,
    );
    let before = MetricsSnapshot::capture();
    let incr = session
        .rerun(
            &TableDelta::new(),
            &TableDelta::new(),
            Some(nk),
            &mut oracle,
        )
        .unwrap();
    let delta = MetricsSnapshot::capture().since(&before);
    assert!(
        delta.counter("mc.core.incr.killed_fast_path") > 0,
        "killed-only diff must take the fast path"
    );
    assert!(
        delta.counter("mc.core.incr.pairs_reused") > 0,
        "fast path must reuse maintained entries"
    );
    assert_eq!(
        delta.counter("mc.core.incr.records_patched"),
        0,
        "no records may be patched on a killed-only diff"
    );

    let (_, cold) = mc.start_session(
        session.table_a().clone(),
        session.table_b().clone(),
        session.killed().clone(),
        &mut GoldOracle::exact(&gold),
    );
    assert_eq!(summarize(&cold), summarize(&incr));
}

/// Repeated deletes must eventually trip arena compaction, and the
/// session must stay exact across it.
#[test]
fn compaction_preserves_exactness() {
    let (a, b, killed, gold) = fixture(10);
    let mut params = session_params(SetMeasure::Jaccard, 1, 1);
    params.incr.compact_threshold = 0.05;
    let mc = MatchCatcher::new(params);
    let mut oracle = GoldOracle::exact(&gold);
    let (mut session, _) = mc.start_session(a, b, killed, &mut oracle);

    let mut rng = StdRng::seed_from_u64(1010);
    let before = MetricsSnapshot::capture();
    for _ in 0..4 {
        let spec = DeltaSpec {
            updates: session.table_a().len() / 10,
            deletes: 2,
            inserts: 2,
        };
        let delta_a = random_delta(session.table_a(), spec, &mut rng);
        session
            .rerun(&delta_a, &TableDelta::new(), None, &mut oracle)
            .unwrap();
    }
    let delta = MetricsSnapshot::capture().since(&before);
    assert!(
        delta.counter("mc.core.incr.compactions") > 0,
        "aggressive threshold must trigger compaction"
    );

    let (_, cold) = mc.start_session(
        session.table_a().clone(),
        session.table_b().clone(),
        session.killed().clone(),
        &mut GoldOracle::exact(&gold),
    );
    let replay = session
        .rerun(&TableDelta::new(), &TableDelta::new(), None, &mut oracle)
        .unwrap();
    assert_eq!(summarize(&cold), summarize(&replay));
}

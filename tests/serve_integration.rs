//! End-to-end acceptance tests for the `mc-serve` daemon.
//!
//! A real daemon is spawned on an ephemeral port and spoken to over TCP
//! with the frame codec — the same path `mcd` serves. The core
//! contract: a warm session `rerun` response must be **byte-identical**
//! (as serialized JSON) to the summary of a cold `MatchCatcher::run` on
//! the patched tables, and concurrent sessions must not bleed into each
//! other's metrics or reports.

use matchcatcher::debugger::{DebuggerParams, MatchCatcher};
use matchcatcher::joint::QStrategy;
use matchcatcher::oracle::GoldOracle;
use mc_blocking::{Blocker, KeyFunc};
use mc_datagen::delta::{random_delta, DeltaSpec};
use mc_datagen::profiles::DatasetProfile;
use mc_obs::JsonValue;
use mc_serve::proto::report_summary;
use mc_serve::{Client, Daemon, ServeParams};
use mc_table::{AttrId, GoldMatches, PairSet, Table, TableDelta, Tuple};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mc-serve-test-{}-{}-{}",
        tag,
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const SEED: u64 = 11;
const SCALE: f64 = 0.35;

fn fixture() -> (Table, Table, PairSet, GoldMatches) {
    let ds = DatasetProfile::FodorsZagats.generate_scaled(SEED, SCALE);
    let killed = Blocker::Hash(KeyFunc::Attr(AttrId(0))).apply(&ds.a, &ds.b);
    (ds.a, ds.b, killed, ds.gold)
}

/// The parameters an `open {profile, q: 1}` request resolves to, minus
/// serve-side obs/store wiring: what a cold reference run must use for
/// byte-identity.
fn reference_params() -> DebuggerParams {
    let mut p = DebuggerParams::small();
    p.joint.q = QStrategy::Fixed(1);
    // Sessions normalize these off for incremental exactness.
    p.joint.reuse_overlaps = false;
    p.joint.reuse_topk = false;
    p
}

fn connect(daemon: &Daemon) -> Client {
    Client::connect(daemon.addr(), Duration::from_secs(60)).expect("connect")
}

fn obj(members: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn open_profile_request() -> JsonValue {
    obj(vec![
        ("verb", "open".into()),
        ("profile", "fodors-zagats".into()),
        ("scale", JsonValue::Num(SCALE)),
        ("seed", SEED.into()),
        ("blocker_attr", 0u64.into()),
        ("q", 1u64.into()),
    ])
}

/// Serializes a concrete [`TableDelta`] as the wire's explicit form.
fn delta_json(d: &TableDelta, width: usize) -> JsonValue {
    let row = |t: &Tuple| {
        JsonValue::Arr(
            (0..width)
                .map(|i| match t.value(AttrId(i as u16)) {
                    Some(s) => JsonValue::Str(s.to_string()),
                    None => JsonValue::Null,
                })
                .collect(),
        )
    };
    obj(vec![
        (
            "updates",
            JsonValue::Arr(
                d.updates
                    .iter()
                    .map(|e| {
                        obj(vec![
                            ("id", (e.id as u64).into()),
                            ("values", row(&e.tuple)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "deletes",
            JsonValue::Arr(d.deletes.iter().map(|&id| (id as u64).into()).collect()),
        ),
        (
            "inserts",
            JsonValue::Arr(d.inserts.iter().map(row).collect()),
        ),
    ])
}

#[test]
fn warm_rerun_is_byte_identical_to_cold_run_on_patched_tables() {
    let daemon = Daemon::spawn(ServeParams {
        store_root: Some(temp_dir("identity")),
        ..ServeParams::default()
    })
    .expect("spawn");
    let mut client = connect(&daemon);

    // Open: response must equal a cold run on the unpatched fixture.
    let resp = client.call_ok(&open_profile_request()).expect("open");
    let session = resp.get("session").unwrap().as_u64().expect("session id");
    let (a, b, killed, gold) = fixture();
    let mc = MatchCatcher::new(reference_params());
    let cold_open = mc.run(&a, &b, &killed, &mut GoldOracle::exact(&gold));
    assert_eq!(
        resp.get("report").unwrap().to_json_string(),
        report_summary(&cold_open).to_json_string(),
        "open report differs from the cold reference run"
    );
    assert!(resp.get("resident_bytes").unwrap().as_u64().unwrap() > 0);

    // Three rounds of explicit deltas: each warm rerun must match a cold
    // run on the locally patched tables, byte for byte.
    let (mut a, mut b) = (a, b);
    let mut rng = StdRng::seed_from_u64(0xd0_0d);
    for round in 0..3 {
        let da = random_delta(&a, DeltaSpec::fraction_of(a.len(), 0.04), &mut rng);
        let db = random_delta(&b, DeltaSpec::fraction_of(b.len(), 0.04), &mut rng);
        let width = a.schema().len();
        let req = obj(vec![
            ("verb", "rerun".into()),
            ("session", session.into()),
            ("delta_a", delta_json(&da, width)),
            ("delta_b", delta_json(&db, width)),
        ]);
        let resp = client
            .call_ok(&req)
            .unwrap_or_else(|e| panic!("rerun {round}: {e:?}"));
        da.apply(&mut a).expect("delta A applies");
        db.apply(&mut b).expect("delta B applies");
        let cold = mc.run(&a, &b, &killed, &mut GoldOracle::exact(&gold));
        assert_eq!(
            resp.get("report").unwrap().to_json_string(),
            report_summary(&cold).to_json_string(),
            "round {round}: warm rerun differs from the cold reference"
        );
    }

    // Page through the explanations of the last report.
    let resp = client
        .call_ok(&obj(vec![
            ("verb", "page".into()),
            ("session", session.into()),
            ("offset", 0u64.into()),
            ("limit", 5u64.into()),
        ]))
        .expect("page");
    let total = resp.get("total").unwrap().as_u64().unwrap();
    let items = resp.get("items").unwrap().as_array().unwrap();
    assert_eq!(items.len() as u64, total.min(5));
    if let Some(first) = items.first() {
        let attrs = first.get("attrs").unwrap().as_array().unwrap();
        assert_eq!(attrs.len(), a.schema().len());
        assert!(attrs[0].get("diagnosis").unwrap().as_str().is_some());
    }

    // Metrics are the session's own scope and include incremental work.
    let resp = client
        .call_ok(&obj(vec![
            ("verb", "metrics".into()),
            ("session", session.into()),
        ]))
        .expect("metrics");
    let counters = resp.get("metrics").unwrap().get("counters").unwrap();
    assert_eq!(
        counters
            .get("mc.core.incr.reruns")
            .and_then(JsonValue::as_u64),
        Some(3),
        "session metrics must count exactly this session's reruns"
    );

    client
        .call_ok(&obj(vec![
            ("verb", "close".into()),
            ("session", session.into()),
        ]))
        .expect("close");

    let handle = daemon.handle();
    assert_eq!(handle.resident_sessions(), 0);
    client.shutdown().expect("shutdown frame");
    let (requests, protocol_errors) = daemon.shutdown();
    assert!(requests >= 6, "served {requests} requests");
    assert_eq!(
        protocol_errors, 0,
        "clean scripts must not trip protocol errors"
    );
}

#[test]
fn concurrent_sessions_do_not_bleed() {
    let daemon = Daemon::spawn(ServeParams::default()).expect("spawn");
    let addr = daemon.addr();

    // Each thread runs its own session script with a distinct number of
    // reruns; session metrics must report exactly that many.
    let reports: Vec<(u64, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                scope.spawn(move || {
                    let mut client =
                        Client::connect(addr, Duration::from_secs(120)).expect("connect");
                    let resp = client.call_ok(&open_profile_request()).expect("open");
                    let session = resp.get("session").unwrap().as_u64().unwrap();
                    let reruns = t + 1;
                    let mut last = resp.get("report").unwrap().to_json_string();
                    for i in 0..reruns {
                        let resp = client
                            .call_ok(&obj(vec![
                                ("verb", "rerun".into()),
                                ("session", session.into()),
                                (
                                    "delta_a",
                                    obj(vec![(
                                        "spec",
                                        obj(vec![
                                            ("frac", JsonValue::Num(0.03)),
                                            ("seed", (t * 100 + i).into()),
                                        ]),
                                    )]),
                                ),
                            ]))
                            .expect("rerun");
                        last = resp.get("report").unwrap().to_json_string();
                    }
                    let resp = client
                        .call_ok(&obj(vec![
                            ("verb", "metrics".into()),
                            ("session", session.into()),
                        ]))
                        .expect("metrics");
                    let counted = resp
                        .get("metrics")
                        .unwrap()
                        .get("counters")
                        .unwrap()
                        .get("mc.core.incr.reruns")
                        .and_then(JsonValue::as_u64)
                        .unwrap_or(0);
                    assert_eq!(
                        counted, reruns,
                        "session {session} metrics bled in another session's reruns"
                    );
                    (session, last)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("thread"))
            .collect()
    });

    // Distinct sessions, and every script got a real report.
    let mut ids: Vec<u64> = reports.iter().map(|(id, _)| *id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 4, "session ids must be unique");
    for (_, report) in &reports {
        assert!(report.contains("\"e_size\""));
    }

    let (_, protocol_errors) = daemon.shutdown();
    assert_eq!(protocol_errors, 0);
}

#[test]
fn error_codes_are_precise() {
    let daemon = Daemon::spawn(ServeParams {
        max_sessions: 1,
        ..ServeParams::default()
    })
    .expect("spawn");
    let mut client = connect(&daemon);

    // Unknown session: never issued.
    let err = client
        .call_ok(&obj(vec![
            ("verb", "metrics".into()),
            ("session", 999u64.into()),
        ]))
        .expect_err("unknown session must fail");
    assert_eq!(err.0, "unknown_session");

    // Unknown verb and malformed requests are protocol errors but keep
    // the connection usable.
    let resp = client
        .call(&obj(vec![("verb", "frobnicate".into())]))
        .expect("transport survives");
    assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false));
    assert_eq!(
        resp.get("error").unwrap().get("code").unwrap().as_str(),
        Some("bad_request")
    );

    // Validation: a zero-row inline table is rejected up front.
    let err = client
        .call_ok(&obj(vec![
            ("verb", "open".into()),
            (
                "tables",
                obj(vec![
                    ("schema", JsonValue::Arr(vec!["name".into()])),
                    ("a", JsonValue::Arr(vec![])),
                    ("b", JsonValue::Arr(vec![])),
                ]),
            ),
            ("killed", JsonValue::Arr(vec![])),
        ]))
        .expect_err("empty tables must fail");
    assert_eq!(err.0, "bad_request");

    // Eviction: with max_sessions = 1, a second open evicts the first,
    // and the first's id reports `session_evicted` (not unknown).
    let first = client.call_ok(&open_profile_request()).expect("open 1");
    let first_id = first.get("session").unwrap().as_u64().unwrap();
    client.call_ok(&open_profile_request()).expect("open 2");
    let err = client
        .call_ok(&obj(vec![
            ("verb", "metrics".into()),
            ("session", first_id.into()),
        ]))
        .expect_err("evicted session must fail");
    assert_eq!(err.0, "session_evicted");

    let handle = daemon.handle();
    assert_eq!(handle.resident_sessions(), 1);
    // Only the unparseable verb counts as a protocol error; the empty
    // tables parsed fine and failed session validation instead.
    assert_eq!(handle.protocol_errors(), 1);
    drop(daemon);
}

#[test]
fn gc_verb_requires_a_store_and_collects_the_warm_tier() {
    // Without a store root, gc is a precise bad_request, not a panic.
    let daemon = Daemon::spawn(ServeParams::default()).expect("spawn");
    let mut client = connect(&daemon);
    let err = client
        .call_ok(&obj(vec![
            ("verb", "gc".into()),
            ("max_bytes", 0u64.into()),
        ]))
        .expect_err("gc without a store must fail");
    assert_eq!(err.0, "bad_request");
    drop(daemon);

    // With a store root: opening a session persists warm artifacts;
    // gc(0) then sweeps every unpinned byte and reports what it removed.
    let root = temp_dir("gc");
    let daemon = Daemon::spawn(ServeParams {
        store_root: Some(root.clone()),
        ..ServeParams::default()
    })
    .expect("spawn");
    let mut client = connect(&daemon);
    let resp = client.call_ok(&open_profile_request()).expect("open");
    let session = resp.get("session").unwrap().as_u64().unwrap();
    client
        .call_ok(&obj(vec![
            ("verb", "close".into()),
            ("session", session.into()),
        ]))
        .expect("close");
    let resp = client
        .call_ok(&obj(vec![
            ("verb", "gc".into()),
            ("max_bytes", 0u64.into()),
        ]))
        .expect("gc with a store");
    let removed_files = resp.get("removed_files").unwrap().as_u64().unwrap();
    let removed_bytes = resp.get("removed_bytes").unwrap().as_u64().unwrap();
    assert!(removed_files > 0, "open must have persisted warm artifacts");
    assert!(removed_bytes > 0);
    assert_eq!(resp.get("kept_bytes").unwrap().as_u64(), Some(0));

    // Idempotent: a second sweep finds an already-empty tier.
    let resp = client
        .call_ok(&obj(vec![
            ("verb", "gc".into()),
            ("max_bytes", 0u64.into()),
        ]))
        .expect("second gc");
    assert_eq!(resp.get("removed_files").unwrap().as_u64(), Some(0));

    let (_, protocol_errors) = daemon.shutdown();
    assert_eq!(protocol_errors, 0);
    let _ = std::fs::remove_dir_all(&root);
}

//! Cross-crate verifier behaviour: strategies, oracle noise, Table 4
//! style first-iteration accuracy.

use matchcatcher::debugger::{DebuggerParams, MatchCatcher};
use matchcatcher::oracle::{GoldOracle, Oracle};
use matchcatcher::verify::RankStrategy;
use mc_blocking::{Blocker, KeyFunc};
use mc_datagen::profiles::DatasetProfile;

fn params() -> DebuggerParams {
    let mut p = DebuggerParams::default();
    p.joint.k = 300;
    p.joint.threads = 2;
    p
}

fn fz_setup() -> (mc_datagen::EmDataset, mc_table::PairSet) {
    let ds = DatasetProfile::FodorsZagats.generate(42);
    let blocker = Blocker::Hash(KeyFunc::Attr(ds.a.schema().expect_id("city")));
    let c = blocker.apply(&ds.a, &ds.b);
    (ds, c)
}

#[test]
fn learning_is_at_least_as_good_as_static_medrank() {
    let (ds, c) = fz_setup();
    let budget = 6usize;
    let mut results = Vec::new();
    for strategy in [RankStrategy::Learning, RankStrategy::MedRank] {
        let mut p = params();
        p.verifier.strategy = strategy;
        p.verifier.max_iters = budget;
        p.verifier.stop_after_empty = budget;
        let mc = MatchCatcher::new(p);
        let mut oracle = GoldOracle::exact(&ds.gold);
        let r = mc.run(&ds.a, &ds.b, &c, &mut oracle);
        results.push(r.confirmed_matches.len());
    }
    // Allow a small wobble (different early batches), but learning must
    // not be substantially worse.
    assert!(
        results[0] + 2 >= results[1],
        "learning found {} vs medrank {}",
        results[0],
        results[1]
    );
}

#[test]
fn wmr_strategy_finds_matches_too() {
    let (ds, c) = fz_setup();
    let mut p = params();
    p.verifier.strategy = RankStrategy::Wmr;
    let mc = MatchCatcher::new(p);
    let mut oracle = GoldOracle::exact(&ds.gold);
    let r = mc.run(&ds.a, &ds.b, &c, &mut oracle);
    assert!(!r.confirmed_matches.is_empty());
}

#[test]
fn noisy_oracle_still_surfaces_matches() {
    let (ds, c) = fz_setup();
    let mc = MatchCatcher::new(params());
    let mut noisy = GoldOracle::noisy(&ds.gold, 0.1, 3);
    let r = mc.run(&ds.a, &ds.b, &c, &mut noisy);
    // With 10% label noise the debugger should still surface a good
    // number of (claimed) matches; we only check it does not collapse.
    assert!(
        r.confirmed_matches.len() >= ds.gold.killed(&c) / 3,
        "noisy run found only {}",
        r.confirmed_matches.len()
    );
}

#[test]
fn first_iterations_are_match_dense() {
    // Table 4's premise: the first few iterations already contain many
    // matches when the blocker has problems.
    let (ds, c) = fz_setup();
    let killed = ds.gold.killed(&c);
    let mut p = params();
    p.verifier.max_iters = 3;
    let mc = MatchCatcher::new(p);
    let mut oracle = GoldOracle::exact(&ds.gold);
    let r = mc.run(&ds.a, &ds.b, &c, &mut oracle);
    let found3 = r.matches_in_first(3);
    assert!(
        found3 * 2 >= killed.min(30),
        "first 3 iterations found {found3} of {killed} killed matches"
    );
}

#[test]
fn oracle_label_budget_equals_shown_pairs() {
    let (ds, c) = fz_setup();
    let mc = MatchCatcher::new(params());
    let mut oracle = GoldOracle::exact(&ds.gold);
    let r = mc.run(&ds.a, &ds.b, &c, &mut oracle);
    assert_eq!(oracle.labels_given(), r.labeled);
    let shown: usize = r.iterations.iter().map(|it| it.shown).sum();
    assert_eq!(shown, r.labeled);
}

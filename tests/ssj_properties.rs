//! Randomized property tests for the top-k SSJ machinery and similarity
//! substrate, using seeded random records (deterministic across runs).

use matchcatcher::ssj::{
    brute_force_topk, topk_join, ExactScorer, SsjInstance, SsjParams, TopKList,
};
use mc_strsim::join::{nested_loop_join, sim_join};
use mc_strsim::measures::{edit_distance, within_edit_distance, SetMeasure};
use mc_table::PairSet;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

const CASES: usize = 64;

/// Random sorted multiset records over a small token universe.
fn random_records(rng: &mut StdRng, max_records: usize) -> Vec<Vec<u32>> {
    let n = rng.random_range(1..max_records);
    (0..n)
        .map(|_| {
            let len = rng.random_range(0..8usize);
            let mut v: Vec<u32> = (0..len).map(|_| rng.random_range(0..24u32)).collect();
            v.sort_unstable();
            v
        })
        .collect()
}

/// Random lowercase string over a small alphabet.
fn random_string(rng: &mut StdRng, alphabet: &[u8], max_len: usize) -> String {
    let len = rng.random_range(0..=max_len);
    (0..len)
        .map(|_| alphabet[rng.random_range(0..alphabet.len())] as char)
        .collect()
}

#[test]
fn topkjoin_matches_brute_force() {
    let mut rng = StdRng::seed_from_u64(0x55A1);
    for case in 0..CASES {
        let a = random_records(&mut rng, 12);
        let b = random_records(&mut rng, 12);
        let k = rng.random_range(1..8usize);
        let killed = PairSet::new();
        let inst = SsjInstance {
            records_a: &a,
            records_b: &b,
            killed: &killed,
        };
        for m in [SetMeasure::Jaccard, SetMeasure::Cosine, SetMeasure::Dice] {
            let fast = topk_join(
                inst,
                SsjParams {
                    k,
                    q: 1,
                    measure: m,
                },
                &ExactScorer(m),
                &[],
                None,
            );
            let slow = brute_force_topk(inst, k, m);
            let fs = fast.sorted_scores();
            let ss = slow.sorted_scores();
            assert_eq!(fs.len(), ss.len(), "case {case} {m:?}");
            for (x, y) in fs.iter().zip(&ss) {
                assert!((x - y).abs() < 1e-9, "case {case} {m:?}: {fs:?} vs {ss:?}");
            }
        }
    }
}

#[test]
fn killed_pairs_never_surface() {
    let mut rng = StdRng::seed_from_u64(0x55A2);
    for _ in 0..CASES {
        let a = random_records(&mut rng, 10);
        let b = random_records(&mut rng, 10);
        // Kill a deterministic subset of pairs.
        let mut killed = PairSet::new();
        for i in 0..a.len() as u32 {
            for j in 0..b.len() as u32 {
                if (i + j) % 3 == 0 {
                    killed.insert(i, j);
                }
            }
        }
        let inst = SsjInstance {
            records_a: &a,
            records_b: &b,
            killed: &killed,
        };
        let list = topk_join(
            inst,
            SsjParams {
                k: 50,
                q: 1,
                measure: SetMeasure::Jaccard,
            },
            &ExactScorer(SetMeasure::Jaccard),
            &[],
            None,
        );
        for (_, key) in list.sorted_entries() {
            assert!(!killed.contains_key(key));
        }
    }
}

#[test]
fn qjoin_is_subset_with_correct_scores() {
    let mut rng = StdRng::seed_from_u64(0x55A3);
    for case in 0..CASES {
        let a = random_records(&mut rng, 10);
        let b = random_records(&mut rng, 10);
        let q = rng.random_range(2..4usize);
        let killed = PairSet::new();
        let inst = SsjInstance {
            records_a: &a,
            records_b: &b,
            killed: &killed,
        };
        let full = brute_force_topk(inst, usize::MAX >> 1, SetMeasure::Jaccard);
        let qj = topk_join(
            inst,
            SsjParams {
                k: 100,
                q,
                measure: SetMeasure::Jaccard,
            },
            &ExactScorer(SetMeasure::Jaccard),
            &[],
            None,
        );
        // Every pair QJoin returns has its exact score.
        let truth: std::collections::HashMap<u64, f64> = full
            .sorted_entries()
            .into_iter()
            .map(|(s, p)| (p, s))
            .collect();
        for (s, p) in qj.sorted_entries() {
            let t = truth.get(&p).copied().unwrap_or(0.0);
            assert!((s - t).abs() < 1e-9, "case {case} pair {p}: {s} vs {t}");
            // And shares at least q tokens.
            let (x, y) = mc_table::split_pair_key(p);
            let o = mc_strsim::multiset_overlap(&a[x as usize], &b[y as usize]);
            assert!(o >= q, "case {case}");
        }
    }
}

#[test]
fn threshold_join_equals_nested_loop() {
    let mut rng = StdRng::seed_from_u64(0x55A4);
    for case in 0..CASES {
        let a = random_records(&mut rng, 14);
        let b = random_records(&mut rng, 14);
        let t = rng.random_range(0.2f64..0.95);
        for m in [SetMeasure::Jaccard, SetMeasure::Cosine, SetMeasure::Dice] {
            let fast = sim_join(&a, &b, m, t).to_sorted_vec();
            let slow = nested_loop_join(&a, &b, m, t).to_sorted_vec();
            assert_eq!(fast, slow, "case {case} measure {m:?} t {t}");
        }
    }
}

#[test]
fn topk_list_holds_the_k_best() {
    let mut rng = StdRng::seed_from_u64(0x55A5);
    for case in 0..CASES {
        let n = rng.random_range(1..40usize);
        let scores: Vec<f64> = (0..n).map(|_| rng.random_range(0.01f64..1.0)).collect();
        let k = rng.random_range(1..10usize);
        let mut list = TopKList::new(k);
        for (i, &s) in scores.iter().enumerate() {
            list.insert(s, i as u64);
        }
        let mut expect = scores.clone();
        expect.sort_by(|a, b| b.total_cmp(a));
        expect.truncate(k);
        let got = list.sorted_scores();
        assert_eq!(got.len(), expect.len(), "case {case}");
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-12, "case {case}");
        }
        // Threshold is the k-th best (or 0 if not full).
        if scores.len() >= k {
            assert!(
                (list.threshold() - expect[expect.len() - 1]).abs() < 1e-12,
                "case {case}"
            );
        } else {
            assert_eq!(list.threshold(), 0.0, "case {case}");
        }
    }
}

#[test]
fn banded_edit_distance_is_consistent() {
    let mut rng = StdRng::seed_from_u64(0x55A6);
    for case in 0..CASES * 4 {
        let a = random_string(&mut rng, b"abcd", 8);
        let b = random_string(&mut rng, b"abcd", 8);
        let k = rng.random_range(0..5usize);
        let d = edit_distance(&a, &b);
        assert_eq!(
            within_edit_distance(&a, &b, k),
            d <= k,
            "case {case} {a:?} {b:?} k={k}"
        );
    }
}

#[test]
fn edit_distance_is_a_metric() {
    let mut rng = StdRng::seed_from_u64(0x55A7);
    for case in 0..CASES * 4 {
        let a = random_string(&mut rng, b"abc", 6);
        let b = random_string(&mut rng, b"abc", 6);
        let c = random_string(&mut rng, b"abc", 6);
        let ab = edit_distance(&a, &b);
        let ba = edit_distance(&b, &a);
        assert_eq!(ab, ba, "case {case}: symmetry");
        assert_eq!(edit_distance(&a, &a), 0, "case {case}: identity");
        let ac = edit_distance(&a, &c);
        let cb = edit_distance(&c, &b);
        assert!(ab <= ac + cb, "case {case}: triangle inequality");
    }
}

#[test]
fn measures_are_bounded_and_symmetric() {
    let mut rng = StdRng::seed_from_u64(0x55A8);
    for case in 0..CASES {
        let mut a: Vec<u32> = (0..rng.random_range(0..10usize))
            .map(|_| rng.random_range(0..16u32))
            .collect();
        let mut b: Vec<u32> = (0..rng.random_range(0..10usize))
            .map(|_| rng.random_range(0..16u32))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        for m in SetMeasure::ALL {
            let s1 = m.score(&a, &b);
            let s2 = m.score(&b, &a);
            assert!((s1 - s2).abs() < 1e-12, "case {case} {m:?} not symmetric");
            assert!(
                (0.0..=1.0 + 1e-12).contains(&s1),
                "case {case} {m:?} out of range: {s1}"
            );
        }
        if !a.is_empty() {
            for m in SetMeasure::ALL {
                assert!(
                    (m.score(&a, &a) - 1.0).abs() < 1e-12,
                    "case {case} {m:?} self-score"
                );
            }
        }
    }
}

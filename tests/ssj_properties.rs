//! Property-based tests for the top-k SSJ machinery and similarity
//! substrate (proptest).

use matchcatcher::ssj::{
    brute_force_topk, topk_join, ExactScorer, SsjInstance, SsjParams, TopKList,
};
use mc_strsim::join::{nested_loop_join, sim_join};
use mc_strsim::measures::{edit_distance, within_edit_distance, SetMeasure};
use mc_table::PairSet;
use proptest::prelude::*;

/// Random sorted multiset records over a small token universe.
fn records_strategy(max_records: usize) -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(
        prop::collection::vec(0u32..24, 0..8).prop_map(|mut v| {
            v.sort_unstable();
            v
        }),
        1..max_records,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn topkjoin_matches_brute_force(
        a in records_strategy(12),
        b in records_strategy(12),
        k in 1usize..8,
    ) {
        let killed = PairSet::new();
        let inst = SsjInstance { records_a: &a, records_b: &b, killed: &killed };
        for m in [SetMeasure::Jaccard, SetMeasure::Cosine, SetMeasure::Dice] {
            let fast = topk_join(
                inst,
                SsjParams { k, q: 1, measure: m },
                &ExactScorer(m),
                &[],
                None,
            );
            let slow = brute_force_topk(inst, k, m);
            let fs = fast.sorted_scores();
            let ss = slow.sorted_scores();
            prop_assert_eq!(fs.len(), ss.len());
            for (x, y) in fs.iter().zip(&ss) {
                prop_assert!((x - y).abs() < 1e-9, "{:?}: {:?} vs {:?}", m, fs, ss);
            }
        }
    }

    #[test]
    fn killed_pairs_never_surface(
        a in records_strategy(10),
        b in records_strategy(10),
    ) {
        // Kill a deterministic subset of pairs.
        let mut killed = PairSet::new();
        for i in 0..a.len() as u32 {
            for j in 0..b.len() as u32 {
                if (i + j) % 3 == 0 {
                    killed.insert(i, j);
                }
            }
        }
        let inst = SsjInstance { records_a: &a, records_b: &b, killed: &killed };
        let list = topk_join(
            inst,
            SsjParams { k: 50, q: 1, measure: SetMeasure::Jaccard },
            &ExactScorer(SetMeasure::Jaccard),
            &[],
            None,
        );
        for (_, key) in list.sorted_entries() {
            prop_assert!(!killed.contains_key(key));
        }
    }

    #[test]
    fn qjoin_is_subset_with_correct_scores(
        a in records_strategy(10),
        b in records_strategy(10),
        q in 2usize..4,
    ) {
        let killed = PairSet::new();
        let inst = SsjInstance { records_a: &a, records_b: &b, killed: &killed };
        let full = brute_force_topk(inst, usize::MAX >> 1, SetMeasure::Jaccard);
        let qj = topk_join(
            inst,
            SsjParams { k: 100, q, measure: SetMeasure::Jaccard },
            &ExactScorer(SetMeasure::Jaccard),
            &[],
            None,
        );
        // Every pair QJoin returns has its exact score.
        let truth: std::collections::HashMap<u64, f64> =
            full.sorted_entries().into_iter().map(|(s, p)| (p, s)).collect();
        for (s, p) in qj.sorted_entries() {
            let t = truth.get(&p).copied().unwrap_or(0.0);
            prop_assert!((s - t).abs() < 1e-9, "pair {p}: {s} vs {t}");
            // And shares at least q tokens.
            let (x, y) = mc_table::split_pair_key(p);
            let o = mc_strsim::multiset_overlap(&a[x as usize], &b[y as usize]);
            prop_assert!(o >= q);
        }
    }

    #[test]
    fn threshold_join_equals_nested_loop(
        a in records_strategy(14),
        b in records_strategy(14),
        t in 0.2f64..0.95,
    ) {
        for m in [SetMeasure::Jaccard, SetMeasure::Cosine, SetMeasure::Dice] {
            let fast = sim_join(&a, &b, m, t).to_sorted_vec();
            let slow = nested_loop_join(&a, &b, m, t).to_sorted_vec();
            prop_assert_eq!(&fast, &slow, "measure {:?} t {}", m, t);
        }
    }

    #[test]
    fn topk_list_holds_the_k_best(
        scores in prop::collection::vec(0.01f64..1.0, 1..40),
        k in 1usize..10,
    ) {
        let mut list = TopKList::new(k);
        for (i, &s) in scores.iter().enumerate() {
            list.insert(s, i as u64);
        }
        let mut expect = scores.clone();
        expect.sort_by(|a, b| b.total_cmp(a));
        expect.truncate(k);
        let got = list.sorted_scores();
        prop_assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!((g - e).abs() < 1e-12);
        }
        // Threshold is the k-th best (or 0 if not full).
        if scores.len() >= k {
            prop_assert!((list.threshold() - expect[expect.len() - 1]).abs() < 1e-12);
        } else {
            prop_assert_eq!(list.threshold(), 0.0);
        }
    }

    #[test]
    fn banded_edit_distance_is_consistent(
        a in "[a-d]{0,8}",
        b in "[a-d]{0,8}",
        k in 0usize..5,
    ) {
        let d = edit_distance(&a, &b);
        prop_assert_eq!(within_edit_distance(&a, &b, k), d <= k);
    }

    #[test]
    fn edit_distance_is_a_metric(
        a in "[a-c]{0,6}",
        b in "[a-c]{0,6}",
        c in "[a-c]{0,6}",
    ) {
        let ab = edit_distance(&a, &b);
        let ba = edit_distance(&b, &a);
        prop_assert_eq!(ab, ba, "symmetry");
        prop_assert_eq!(edit_distance(&a, &a), 0, "identity");
        let ac = edit_distance(&a, &c);
        let cb = edit_distance(&c, &b);
        prop_assert!(ab <= ac + cb, "triangle inequality");
    }

    #[test]
    fn measures_are_bounded_and_symmetric(
        a in prop::collection::vec(0u32..16, 0..10),
        b in prop::collection::vec(0u32..16, 0..10),
    ) {
        let mut a = a;
        let mut b = b;
        a.sort_unstable();
        b.sort_unstable();
        for m in SetMeasure::ALL {
            let s1 = m.score(&a, &b);
            let s2 = m.score(&b, &a);
            prop_assert!((s1 - s2).abs() < 1e-12, "{:?} not symmetric", m);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&s1), "{:?} out of range: {}", m, s1);
        }
        if !a.is_empty() {
            for m in SetMeasure::ALL {
                prop_assert!((m.score(&a, &a) - 1.0).abs() < 1e-12, "{:?} self-score", m);
            }
        }
    }
}

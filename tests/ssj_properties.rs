//! Randomized property tests for the top-k SSJ machinery and similarity
//! substrate, using seeded random records (deterministic across runs).

use matchcatcher::ssj::{
    brute_force_topk, topk_join, topk_join_with_scratch, ExactScorer, JoinScratch, SsjInstance,
    SsjParams, TopKList,
};
use mc_strsim::arena::RecordArena;
use mc_strsim::join::{nested_loop_join, sim_join};
use mc_strsim::measures::{
    edit_distance, multiset_overlap, overlap_with_bound, required_overlap, within_edit_distance,
    SetMeasure,
};
use mc_table::PairSet;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

const CASES: usize = 64;

/// Random sorted multiset records over a small token universe.
fn random_records(rng: &mut StdRng, max_records: usize) -> Vec<Vec<u32>> {
    let n = rng.random_range(1..max_records);
    (0..n)
        .map(|_| {
            let len = rng.random_range(0..8usize);
            let mut v: Vec<u32> = (0..len).map(|_| rng.random_range(0..24u32)).collect();
            v.sort_unstable();
            v
        })
        .collect()
}

/// Random killed set over the cross product.
fn random_killed(rng: &mut StdRng, na: usize, nb: usize) -> PairSet {
    let mut killed = PairSet::new();
    for i in 0..na as u32 {
        for j in 0..nb as u32 {
            if rng.random_range(0..4u32) == 0 {
                killed.insert(i, j);
            }
        }
    }
    killed
}

/// Random lowercase string over a small alphabet.
fn random_string(rng: &mut StdRng, alphabet: &[u8], max_len: usize) -> String {
    let len = rng.random_range(0..=max_len);
    (0..len)
        .map(|_| alphabet[rng.random_range(0..alphabet.len())] as char)
        .collect()
}

/// The pre-arena `topk_join` event loop, kept verbatim as a reference
/// oracle: `Vec<Vec<u32>>` records, hash-map inverted indexes, and the
/// two per-event `partition_point` occurrence scans. The production join
/// (flat arena + dense counted postings + run counters) must produce
/// **bit-identical** `sorted_entries()` — same pairs, same scores, same
/// tie-breaks — on every input.
mod reference {
    use matchcatcher::ssj::{PairScorer, SsjParams, TopKList};
    use mc_strsim::measures::SetMeasure;
    use mc_table::hash::{fx_map, FxHashMap};
    use mc_table::{pair_key, PairSet, TupleId};
    use std::collections::BinaryHeap;

    #[derive(Clone, Copy, PartialEq)]
    struct Score(f64);

    impl Eq for Score {}

    impl PartialOrd for Score {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    impl Ord for Score {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0)
        }
    }

    fn bound_with_credit(measure: SetMeasure, la: usize, p: usize, credit: usize) -> f64 {
        if credit == 0 {
            return measure.prefix_ubound(la, p, 1);
        }
        let rem = (la - p + 1 + credit).min(la) as f64;
        let la_f = la as f64;
        match measure {
            SetMeasure::Jaccard => rem / la_f,
            SetMeasure::Cosine => (rem / la_f).sqrt(),
            SetMeasure::Dice => 2.0 * rem / (la_f + rem),
            SetMeasure::Overlap => 1.0,
        }
    }

    #[derive(Clone, Copy, PartialEq, Eq)]
    struct Event {
        bound: Score,
        side: u8,
        rec: TupleId,
    }

    impl Ord for Event {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.bound
                .cmp(&other.bound)
                .then_with(|| other.side.cmp(&self.side))
                .then_with(|| other.rec.cmp(&self.rec))
        }
    }

    impl PartialOrd for Event {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    #[derive(Default, Clone, Copy)]
    struct PairState {
        common: u32,
        scored: bool,
    }

    pub fn topk_join(
        records_a: &[Vec<u32>],
        records_b: &[Vec<u32>],
        killed: &PairSet,
        params: SsjParams,
        scorer: &dyn PairScorer,
        seed: &[(f64, u64)],
    ) -> TopKList {
        let credit = params.q - 1;
        let mut k_list = TopKList::new(params.k);
        let mut states: FxHashMap<u64, PairState> = fx_map();
        for &(score, pair) in seed {
            if !killed.contains_key(pair) {
                k_list.insert(score, pair);
                states.insert(
                    pair,
                    PairState {
                        common: 0,
                        scored: true,
                    },
                );
            }
        }
        let mut pos: [Vec<u32>; 2] = [vec![0; records_a.len()], vec![0; records_b.len()]];
        let mut index: [FxHashMap<u32, Vec<TupleId>>; 2] = [fx_map(), fx_map()];
        let mut last_posted: [Vec<u32>; 2] = [
            vec![u32::MAX; records_a.len()],
            vec![u32::MAX; records_b.len()],
        ];
        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        for (side, records) in [(0u8, records_a), (1u8, records_b)] {
            for (r, rec) in records.iter().enumerate() {
                if !rec.is_empty() {
                    heap.push(Event {
                        bound: Score(bound_with_credit(params.measure, rec.len(), 1, credit)),
                        side,
                        rec: r as TupleId,
                    });
                }
            }
        }
        while let Some(ev) = heap.pop() {
            // Mirrors the production loop's canonical prune: only bounds
            // strictly below the threshold (modulo rounding slack) stop
            // the loop — an exact tie can still displace a larger pair
            // key under the canonical (score desc, key asc) order.
            if k_list.len() == k_list.k() && ev.bound.0 < k_list.threshold() - 1e-12 {
                break;
            }
            let side = ev.side as usize;
            let other = 1 - side;
            let records = if side == 0 { records_a } else { records_b };
            let rec = &records[ev.rec as usize];
            let p = pos[side][ev.rec as usize] as usize;
            let tok = rec[p];
            let first_occ = rec[..p].partition_point(|&t| t < tok);
            let occ = p - first_occ + 1;
            if let Some(partners) = index[other].get(&tok) {
                let other_records = if other == 0 { records_a } else { records_b };
                for &o in partners {
                    let (a, b) = if side == 0 { (ev.rec, o) } else { (o, ev.rec) };
                    let key = pair_key(a, b);
                    if killed.contains_key(key) {
                        continue;
                    }
                    let orec = &other_records[o as usize];
                    let opos = pos[other][o as usize] as usize;
                    let o_first = orec[..opos].partition_point(|&t| t < tok);
                    let o_count = orec[..opos].partition_point(|&t| t <= tok) - o_first;
                    if o_count < occ {
                        continue;
                    }
                    let st = states.entry(key).or_default();
                    if st.scored {
                        continue;
                    }
                    st.common += 1;
                    if st.common as usize >= params.q {
                        st.scored = true;
                        let s = scorer.score(a, b, &records_a[a as usize], &records_b[b as usize]);
                        k_list.insert(s, key);
                    }
                }
            }
            if last_posted[side][ev.rec as usize] != tok {
                last_posted[side][ev.rec as usize] = tok;
                index[side].entry(tok).or_default().push(ev.rec);
            }
            pos[side][ev.rec as usize] += 1;
            let next_p = p + 1;
            if next_p < rec.len() {
                let b = bound_with_credit(params.measure, rec.len(), next_p + 1, credit);
                if k_list.len() < k_list.k() || b >= k_list.threshold() - 1e-12 {
                    heap.push(Event {
                        bound: Score(b),
                        side: ev.side,
                        rec: ev.rec,
                    });
                }
            }
        }
        k_list
    }
}

#[test]
fn topkjoin_matches_brute_force() {
    let mut rng = StdRng::seed_from_u64(0x55A1);
    for case in 0..CASES {
        let a = RecordArena::from_records(&random_records(&mut rng, 12));
        let b = RecordArena::from_records(&random_records(&mut rng, 12));
        let k = rng.random_range(1..8usize);
        let killed = PairSet::new();
        let inst = SsjInstance {
            records_a: &a,
            records_b: &b,
            killed: &killed,
        };
        for m in [SetMeasure::Jaccard, SetMeasure::Cosine, SetMeasure::Dice] {
            let fast = topk_join(
                inst,
                SsjParams {
                    k,
                    q: 1,
                    measure: m,
                },
                &ExactScorer(m),
                &[],
                None,
            );
            let slow = brute_force_topk(inst, k, m);
            let fs = fast.sorted_scores();
            let ss = slow.sorted_scores();
            assert_eq!(fs.len(), ss.len(), "case {case} {m:?}");
            for (x, y) in fs.iter().zip(&ss) {
                assert!((x - y).abs() < 1e-9, "case {case} {m:?}: {fs:?} vs {ss:?}");
            }
        }
    }
}

#[test]
fn topkjoin_matches_brute_force_with_killed_sets() {
    // The satellite equivalence guard for the dense-postings/run-counter
    // logic: random instances with random killed sets, all four measures,
    // k ∈ {1, 10, 100}, one scratch reused throughout.
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut scratch = JoinScratch::new();
    for case in 0..50 {
        let ra = random_records(&mut rng, 14);
        let rb = random_records(&mut rng, 14);
        let killed = random_killed(&mut rng, ra.len(), rb.len());
        let a = RecordArena::from_records(&ra);
        let b = RecordArena::from_records(&rb);
        let inst = SsjInstance {
            records_a: &a,
            records_b: &b,
            killed: &killed,
        };
        for m in SetMeasure::ALL {
            for k in [1usize, 10, 100] {
                let params = SsjParams {
                    k,
                    q: 1,
                    measure: m,
                };
                let fast =
                    topk_join_with_scratch(inst, params, &ExactScorer(m), &[], None, &mut scratch);
                let slow = brute_force_topk(inst, k, m);
                let fs = fast.sorted_scores();
                let ss = slow.sorted_scores();
                assert_eq!(fs.len(), ss.len(), "case {case} {m:?} k={k}");
                for (x, y) in fs.iter().zip(&ss) {
                    assert!(
                        (x - y).abs() < 1e-9,
                        "case {case} {m:?} k={k}: {fs:?} vs {ss:?}"
                    );
                }
                for (_, key) in fast.sorted_entries() {
                    assert!(!killed.contains_key(key), "case {case} {m:?} k={k}");
                }
            }
        }
    }
}

#[test]
fn topkjoin_bit_identical_to_reference_loop() {
    // The arena/dense-postings join must return *bit-identical* entries
    // (pairs AND scores, including tie-break outcomes) to the original
    // hash-map + partition_point implementation preserved above.
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for case in 0..50 {
        let ra = random_records(&mut rng, 14);
        let rb = random_records(&mut rng, 14);
        let killed = random_killed(&mut rng, ra.len(), rb.len());
        let a = RecordArena::from_records(&ra);
        let b = RecordArena::from_records(&rb);
        let inst = SsjInstance {
            records_a: &a,
            records_b: &b,
            killed: &killed,
        };
        for m in SetMeasure::ALL {
            for (k, q) in [(1usize, 1usize), (10, 1), (100, 1), (10, 2), (10, 3)] {
                let params = SsjParams { k, q, measure: m };
                let new = topk_join(inst, params, &ExactScorer(m), &[], None);
                let old = reference::topk_join(&ra, &rb, &killed, params, &ExactScorer(m), &[]);
                assert_eq!(
                    new.sorted_entries(),
                    old.sorted_entries(),
                    "case {case} {m:?} k={k} q={q}"
                );
            }
        }
    }
}

#[test]
fn arena_roundtrips_tokenized_merged() {
    // RecordArena::from_tokenized must reproduce TokenizedTable::merged
    // exactly for every tuple and attribute subset.
    use mc_strsim::dict::TokenizedTable;
    use mc_strsim::tokenize::Tokenizer;
    use mc_table::{AttrId, Schema, Table, Tuple};
    use std::sync::Arc;

    let mut rng = StdRng::seed_from_u64(0xA7E4A);
    let schema = Arc::new(Schema::from_names(["u", "v", "w"]));
    let mut a = Table::new("A", Arc::clone(&schema));
    let mut b = Table::new("B", schema);
    let vocab = ["ab", "cd", "ef", "gh", "ij", "kl", "mn"];
    let random_value = |rng: &mut StdRng| -> Option<String> {
        if rng.random_range(0..5u32) == 0 {
            return None;
        }
        let n = rng.random_range(0..5usize);
        Some(
            (0..n)
                .map(|_| vocab[rng.random_range(0..vocab.len())])
                .collect::<Vec<_>>()
                .join(" "),
        )
    };
    for _ in 0..30 {
        a.push(Tuple::new(vec![
            random_value(&mut rng),
            random_value(&mut rng),
            random_value(&mut rng),
        ]));
        b.push(Tuple::new(vec![
            random_value(&mut rng),
            random_value(&mut rng),
            random_value(&mut rng),
        ]));
    }
    let attrs = [AttrId(0), AttrId(1), AttrId(2)];
    let (ta, tb, _) = TokenizedTable::build_pair(&a, &b, &attrs, Tokenizer::Word);
    for tok in [&ta, &tb] {
        for idx in [
            vec![0usize],
            vec![1],
            vec![2],
            vec![0, 1],
            vec![1, 2],
            vec![0, 1, 2],
        ] {
            let arena = RecordArena::from_tokenized(tok, &idx);
            assert_eq!(arena.len(), tok.rows());
            for t in 0..tok.rows() as u32 {
                assert_eq!(
                    arena.record(t),
                    tok.merged(&idx, t).as_slice(),
                    "attrs {idx:?} tuple {t}"
                );
            }
        }
    }
}

#[test]
fn killed_pairs_never_surface() {
    let mut rng = StdRng::seed_from_u64(0x55A2);
    for _ in 0..CASES {
        let a = RecordArena::from_records(&random_records(&mut rng, 10));
        let b = RecordArena::from_records(&random_records(&mut rng, 10));
        // Kill a deterministic subset of pairs.
        let mut killed = PairSet::new();
        for i in 0..a.len() as u32 {
            for j in 0..b.len() as u32 {
                if (i + j) % 3 == 0 {
                    killed.insert(i, j);
                }
            }
        }
        let inst = SsjInstance {
            records_a: &a,
            records_b: &b,
            killed: &killed,
        };
        let list = topk_join(
            inst,
            SsjParams {
                k: 50,
                q: 1,
                measure: SetMeasure::Jaccard,
            },
            &ExactScorer(SetMeasure::Jaccard),
            &[],
            None,
        );
        for (_, key) in list.sorted_entries() {
            assert!(!killed.contains_key(key));
        }
    }
}

#[test]
fn qjoin_is_subset_with_correct_scores() {
    let mut rng = StdRng::seed_from_u64(0x55A3);
    for case in 0..CASES {
        let ra = random_records(&mut rng, 10);
        let rb = random_records(&mut rng, 10);
        let a = RecordArena::from_records(&ra);
        let b = RecordArena::from_records(&rb);
        let q = rng.random_range(2..4usize);
        let killed = PairSet::new();
        let inst = SsjInstance {
            records_a: &a,
            records_b: &b,
            killed: &killed,
        };
        let full = brute_force_topk(inst, usize::MAX >> 1, SetMeasure::Jaccard);
        let qj = topk_join(
            inst,
            SsjParams {
                k: 100,
                q,
                measure: SetMeasure::Jaccard,
            },
            &ExactScorer(SetMeasure::Jaccard),
            &[],
            None,
        );
        // Every pair QJoin returns has its exact score.
        let truth: std::collections::HashMap<u64, f64> = full
            .sorted_entries()
            .into_iter()
            .map(|(s, p)| (p, s))
            .collect();
        for (s, p) in qj.sorted_entries() {
            let t = truth.get(&p).copied().unwrap_or(0.0);
            assert!((s - t).abs() < 1e-9, "case {case} pair {p}: {s} vs {t}");
            // And shares at least q tokens.
            let (x, y) = mc_table::split_pair_key(p);
            let o = mc_strsim::multiset_overlap(&ra[x as usize], &rb[y as usize]);
            assert!(o >= q, "case {case}");
        }
    }
}

#[test]
fn threshold_join_equals_nested_loop() {
    let mut rng = StdRng::seed_from_u64(0x55A4);
    for case in 0..CASES {
        let a = random_records(&mut rng, 14);
        let b = random_records(&mut rng, 14);
        let t = rng.random_range(0.2f64..0.95);
        for m in [SetMeasure::Jaccard, SetMeasure::Cosine, SetMeasure::Dice] {
            let fast = sim_join(&a, &b, m, t).to_sorted_vec();
            let slow = nested_loop_join(&a, &b, m, t).to_sorted_vec();
            assert_eq!(fast, slow, "case {case} measure {m:?} t {t}");
        }
    }
}

#[test]
fn topk_list_holds_the_k_best() {
    let mut rng = StdRng::seed_from_u64(0x55A5);
    for case in 0..CASES {
        let n = rng.random_range(1..40usize);
        let scores: Vec<f64> = (0..n).map(|_| rng.random_range(0.01f64..1.0)).collect();
        let k = rng.random_range(1..10usize);
        let mut list = TopKList::new(k);
        for (i, &s) in scores.iter().enumerate() {
            list.insert(s, i as u64);
        }
        let mut expect = scores.clone();
        expect.sort_by(|a, b| b.total_cmp(a));
        expect.truncate(k);
        let got = list.sorted_scores();
        assert_eq!(got.len(), expect.len(), "case {case}");
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-12, "case {case}");
        }
        // Threshold is the k-th best (or 0 if not full).
        if scores.len() >= k {
            assert!(
                (list.threshold() - expect[expect.len() - 1]).abs() < 1e-12,
                "case {case}"
            );
        } else {
            assert_eq!(list.threshold(), 0.0, "case {case}");
        }
    }
}

#[test]
fn overlap_with_bound_agrees_with_naive_overlap() {
    // The threshold-aware merge's full contract against the naive oracle:
    // `overlap_with_bound(a, b, o_min)` returns `Some(multiset_overlap)`
    // exactly when the bound is reachable and `None` otherwise — for
    // measure-derived bounds across all four set measures and the
    // adversarial corners (0, the exact overlap, one past it, and a bound
    // no pair can meet).
    let mut rng = StdRng::seed_from_u64(0x0B0DE);
    let random_record = |rng: &mut StdRng| -> Vec<u32> {
        let len = rng.random_range(0..12usize);
        let mut v: Vec<u32> = (0..len).map(|_| rng.random_range(0..20u32)).collect();
        v.sort_unstable();
        v
    };
    for case in 0..CASES * 4 {
        let a = random_record(&mut rng);
        let b = random_record(&mut rng);
        let o = multiset_overlap(&a, &b);
        let check = |o_min: usize| {
            assert_eq!(
                overlap_with_bound(&a, &b, o_min),
                (o >= o_min).then_some(o),
                "case {case} o_min={o_min} a={a:?} b={b:?}"
            );
        };
        // Adversarial corners.
        for o_min in [0, o, o + 1, a.len().min(b.len()) + 1, usize::MAX] {
            check(o_min);
        }
        // Measure-derived bounds, as the join computes them from the
        // current top-k heap minimum.
        for m in SetMeasure::ALL {
            for t10 in 0..=10u32 {
                check(required_overlap(m, f64::from(t10) / 10.0, a.len(), b.len()));
            }
        }
    }
}

#[test]
fn auto_q_score_cache_matches_cache_off_join() {
    // Cache-on / cache-off identity: a joint run whose main pass consumes
    // the prelude-populated pair → score cache must produce bit-identical
    // per-config lists (pairs, scores, tie-breaks) to a cache-free run at
    // the same fixed q.
    use matchcatcher::config::ConfigGenerator;
    use matchcatcher::joint::{run_joint, JointParams, QStrategy};
    use mc_datagen::profiles::DatasetProfile;
    use mc_strsim::dict::TokenizedTable;
    use mc_strsim::tokenize::Tokenizer;

    let ds = DatasetProfile::FodorsZagats.generate_scaled(7, 0.3);
    let generator = ConfigGenerator::default();
    let promising = generator.promising(&ds.a, &ds.b);
    let tree = generator.build_tree(&promising);
    let (ta, tb, _) = TokenizedTable::build_pair(&ds.a, &ds.b, &promising.attrs, Tokenizer::Word);
    let killed = PairSet::new();

    let before = mc_obs::MetricsSnapshot::capture();
    let auto = run_joint(
        &ta,
        &tb,
        &killed,
        &tree,
        JointParams {
            k: 60,
            q: QStrategy::Auto {
                max_q: 4,
                prelude_k: 50,
            },
            ..Default::default()
        },
    );
    let delta = mc_obs::MetricsSnapshot::capture().since(&before);
    assert!(
        delta.counter("mc.core.ssj.cache_hits") > 0,
        "the prelude score cache must actually serve the main run"
    );

    let fixed = run_joint(
        &ta,
        &tb,
        &killed,
        &tree,
        JointParams {
            k: 60,
            q: QStrategy::Fixed(auto.q_used),
            ..Default::default()
        },
    );
    assert_eq!(auto.q_used, fixed.q_used);
    assert_eq!(auto.lists.len(), fixed.lists.len());
    for (i, (la, lb)) in auto.lists.iter().zip(&fixed.lists).enumerate() {
        let ea = la.sorted_entries();
        let eb = lb.sorted_entries();
        assert_eq!(ea.len(), eb.len(), "config {i}");
        for ((sa, pa), (sb, pb)) in ea.iter().zip(&eb) {
            assert_eq!(
                (sa.to_bits(), pa),
                (sb.to_bits(), pb),
                "config {i}: cached score diverged from fresh computation"
            );
        }
    }
}

#[test]
fn banded_edit_distance_is_consistent() {
    let mut rng = StdRng::seed_from_u64(0x55A6);
    for case in 0..CASES * 4 {
        let a = random_string(&mut rng, b"abcd", 8);
        let b = random_string(&mut rng, b"abcd", 8);
        let k = rng.random_range(0..5usize);
        let d = edit_distance(&a, &b);
        assert_eq!(
            within_edit_distance(&a, &b, k),
            d <= k,
            "case {case} {a:?} {b:?} k={k}"
        );
    }
}

#[test]
fn edit_distance_is_a_metric() {
    let mut rng = StdRng::seed_from_u64(0x55A7);
    for case in 0..CASES * 4 {
        let a = random_string(&mut rng, b"abc", 6);
        let b = random_string(&mut rng, b"abc", 6);
        let c = random_string(&mut rng, b"abc", 6);
        let ab = edit_distance(&a, &b);
        let ba = edit_distance(&b, &a);
        assert_eq!(ab, ba, "case {case}: symmetry");
        assert_eq!(edit_distance(&a, &a), 0, "case {case}: identity");
        let ac = edit_distance(&a, &c);
        let cb = edit_distance(&c, &b);
        assert!(ab <= ac + cb, "case {case}: triangle inequality");
    }
}

#[test]
fn measures_are_bounded_and_symmetric() {
    let mut rng = StdRng::seed_from_u64(0x55A8);
    for case in 0..CASES {
        let mut a: Vec<u32> = (0..rng.random_range(0..10usize))
            .map(|_| rng.random_range(0..16u32))
            .collect();
        let mut b: Vec<u32> = (0..rng.random_range(0..10usize))
            .map(|_| rng.random_range(0..16u32))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        for m in SetMeasure::ALL {
            let s1 = m.score(&a, &b);
            let s2 = m.score(&b, &a);
            assert!((s1 - s2).abs() < 1e-12, "case {case} {m:?} not symmetric");
            assert!(
                (0.0..=1.0 + 1e-12).contains(&s1),
                "case {case} {m:?} out of range: {s1}"
            );
        }
        if !a.is_empty() {
            for m in SetMeasure::ALL {
                assert!(
                    (m.score(&a, &a) - 1.0).abs() < 1e-12,
                    "case {case} {m:?} self-score"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Bitmap/SIMD kernel equivalence (mc_strsim::bitmap vs the scalar oracle)
// ---------------------------------------------------------------------------

/// Random sorted multiset records with Zipf-like skew toward the **top**
/// of the rank space — the production dict assigns frequent tokens the
/// highest ranks, which is exactly the regime the bitmap kernel targets.
fn zipfish_records(rng: &mut StdRng, n: usize, universe: u32, max_len: usize) -> Vec<Vec<u32>> {
    (0..n)
        .map(|_| {
            let len = rng.random_range(0..=max_len);
            let mut v: Vec<u32> = (0..len)
                .map(|_| {
                    let u: f64 = rng.random_range(0.0..1.0);
                    universe - 1 - ((u * u) * universe as f64) as u32
                })
                .collect();
            v.sort_unstable();
            v
        })
        .collect()
}

#[test]
fn bitmap_kernel_matches_scalar_oracle_on_adversarial_bounds() {
    use mc_strsim::bitmap::{overlap_with_bound_bitmap, BitmapIndex};
    for case in 0..CASES / 2 {
        let mut rng = StdRng::seed_from_u64(0xb17_0000 + case as u64);
        let universe = rng.random_range(8..400u32);
        let (na, nb) = (rng.random_range(1..20), rng.random_range(1..20));
        let recs_a = zipfish_records(&mut rng, na, universe, 12);
        let recs_b = zipfish_records(&mut rng, nb, universe, 12);
        let a = RecordArena::from_records(&recs_a);
        let b = RecordArena::from_records(&recs_b);
        let bound = a.rank_bound().max(b.rank_bound());
        for bits in [0u32, 5, 64, 512] {
            let ba = BitmapIndex::build(&a, bound, bits);
            let bb = BitmapIndex::build(&b, bound, bits);
            for (i, ra) in recs_a.iter().enumerate() {
                for (j, rb) in recs_b.iter().enumerate() {
                    let o = multiset_overlap(ra, rb);
                    let min_len = ra.len().min(rb.len());
                    for o_min in [
                        0,
                        1,
                        o.saturating_sub(1),
                        o,
                        o + 1,
                        min_len,
                        min_len + 1,
                        usize::MAX,
                    ] {
                        let oracle = overlap_with_bound(ra, rb, o_min);
                        let got =
                            overlap_with_bound_bitmap(&ba, &bb, ra, rb, i as u32, j as u32, o_min);
                        assert_eq!(
                            got, oracle,
                            "case {case} bits={bits} pair=({i},{j}) o_min={o_min}"
                        );
                        assert_eq!(got, (o >= o_min).then_some(o));
                    }
                }
            }
        }
    }
}

#[test]
fn bitmap_kernel_preserves_measure_derived_gates() {
    use mc_strsim::bitmap::{overlap_with_bound_bitmap, BitmapIndex};
    for case in 0..CASES / 2 {
        let mut rng = StdRng::seed_from_u64(0xb17_4000 + case as u64);
        let universe = rng.random_range(8..200u32);
        let (na, nb) = (rng.random_range(1..16), rng.random_range(1..16));
        let recs_a = zipfish_records(&mut rng, na, universe, 10);
        let recs_b = zipfish_records(&mut rng, nb, universe, 10);
        let a = RecordArena::from_records(&recs_a);
        let b = RecordArena::from_records(&recs_b);
        let bound = a.rank_bound().max(b.rank_bound());
        let ba = BitmapIndex::build(&a, bound, 64);
        let bb = BitmapIndex::build(&b, bound, 64);
        for m in SetMeasure::ALL {
            for (i, ra) in recs_a.iter().enumerate() {
                for (j, rb) in recs_b.iter().enumerate() {
                    let s = m.score(ra, rb);
                    for t in [-1.0, 0.0, 0.25, s, 0.75, 1.0] {
                        let o_min = required_overlap(m, t, ra.len(), rb.len());
                        let got =
                            overlap_with_bound_bitmap(&ba, &bb, ra, rb, i as u32, j as u32, o_min);
                        match got {
                            Some(o) => {
                                // The gated score must agree bitwise with
                                // the ungated one.
                                let gs = m.from_overlap(o, ra.len(), rb.len());
                                assert!(s > t, "case {case} {m:?} t={t}");
                                assert_eq!(gs.to_bits(), s.to_bits());
                            }
                            None => assert!(s <= t, "case {case} {m:?} t={t}"),
                        }
                    }
                }
            }
        }
    }
}

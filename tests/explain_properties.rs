//! Randomized equivalence proofs for the batch explain engine.
//!
//! The `DiagnosisKernel` is an optimization, not a reinterpretation: on
//! any pair of tables it must produce **bit-identical** diagnoses,
//! pervasiveness groups and similar-pair lists to the per-pair path
//! (`explain::explain_match`, `pervasive::pervasiveness`,
//! `pervasive::similar_pairs`). These tests draw tables from a value
//! pool engineered to hit every [`Diagnosis`] class — including unicode
//! lowercase expansion and trim-empty edge cases — and compare the two
//! paths cell by cell across seeds and thread counts. A final test
//! drives the `explain`/`pervade` verbs over a live daemon and checks
//! the `mc-explain/v1` payload against the session's own report.

use matchcatcher::explain::{explain_match, Diagnosis};
use matchcatcher::joint::CandidateUnion;
use matchcatcher::pervasive;
use matchcatcher::DiagnosisKernel;
use mc_obs::JsonValue;
use mc_serve::{Client, Daemon, ServeParams};
use mc_table::{pair_key, Schema, Table, Tuple, TupleId};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

/// Value pool engineered so random cell pairs cover every diagnosis
/// class: exact repeats, case/punctuation variants, word reorders,
/// strict token subsets, initialisms and prefixes, one-edit
/// misspellings, close numerics, missing/blank values, unicode
/// lowercase expansion ('İ' → "i" + combining dot), and plain
/// disagreements.
const POOL: &[Option<&str>] = &[
    Some("dave smith"),
    Some("Dave Smith"),
    Some("Dave, Smith!"),
    Some("smith dave"),
    Some("dave"),
    Some("dave smith jr"),
    Some("ds"),
    Some("da"),
    Some("dave smyth"),
    Some("International Business Machines"),
    Some("IBM"),
    Some("İstanbul Grill"),
    Some("istanbul grill"),
    Some("100"),
    Some("103"),
    Some("97.5"),
    Some("250"),
    Some(""),
    Some("   "),
    Some("completely unrelated value"),
    None,
];

fn random_table(name: &str, schema: &Arc<Schema>, rows: usize, rng: &mut StdRng) -> Table {
    let mut t = Table::new(name, Arc::clone(schema));
    for _ in 0..rows {
        let row: Vec<Option<String>> = (0..schema.len())
            .map(|_| POOL[rng.random_range(0..POOL.len())].map(str::to_string))
            .collect();
        t.push(Tuple::new(row));
    }
    t
}

/// A synthetic candidate union: a random subset of the cross product,
/// with two configs' worth of random scores (some absent).
fn random_union(n_a: usize, n_b: usize, frac: f64, rng: &mut StdRng) -> CandidateUnion {
    let mut pairs = Vec::new();
    for x in 0..n_a {
        for y in 0..n_b {
            if rng.random_bool(frac) {
                pairs.push(pair_key(x as TupleId, y as TupleId));
            }
        }
    }
    let scores = (0..2)
        .map(|_| {
            pairs
                .iter()
                .map(|_| rng.random_bool(0.8).then(|| rng.random_range(0.0..1.0)))
                .collect()
        })
        .collect();
    CandidateUnion { pairs, scores }
}

#[test]
fn batch_diagnoses_equal_per_pair_oracle_on_every_cell() {
    let schema = Arc::new(Schema::from_names(["name", "city", "age"]));
    let mut covered: HashSet<std::mem::Discriminant<Diagnosis>> = HashSet::new();
    for seed in [1u64, 42, 0xfeed] {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_table("A", &schema, 30, &mut rng);
        let b = random_table("B", &schema, 30, &mut rng);
        for threads in [1usize, 4] {
            let kernel = DiagnosisKernel::build(&a, &b, threads);
            for x in 0..a.len() as TupleId {
                for y in 0..b.len() as TupleId {
                    let batch = kernel.diagnose_pair(x, y);
                    let oracle = explain_match(&a, &b, x, y);
                    assert_eq!(oracle.pair, (x, y));
                    assert_eq!(
                        batch, oracle.per_attr,
                        "seed {seed} threads {threads} pair ({x},{y}): \
                         batch and per-pair diagnoses diverge"
                    );
                    for &(_, d) in &batch {
                        covered.insert(std::mem::discriminant(&d));
                    }
                }
            }
            let stats = kernel.stats();
            assert!(
                stats.cache_hits() > 0,
                "a pool-drawn table must produce repeated value pairs"
            );
        }
    }
    // The pool must actually exercise the whole cascade, or the
    // equivalence proof above is vacuous for the untested classes.
    let all = [
        Diagnosis::Exact,
        Diagnosis::CaseOrPunct,
        Diagnosis::MissingOneSide,
        Diagnosis::MissingBoth,
        Diagnosis::Abbreviation,
        Diagnosis::WordReorder,
        Diagnosis::TokenSubset,
        Diagnosis::SmallEdit(1),
        Diagnosis::NumericClose,
        Diagnosis::Different,
    ];
    for d in all {
        assert!(
            covered.contains(&std::mem::discriminant(&d)),
            "diagnosis class {d:?} never produced by the pool"
        );
    }
}

#[test]
fn batch_pervasiveness_and_similar_pairs_equal_slow_path() {
    let schema = Arc::new(Schema::from_names(["name", "city"]));
    for seed in [7u64, 0xbeef] {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_table("A", &schema, 25, &mut rng);
        let b = random_table("B", &schema, 25, &mut rng);
        let union = random_union(a.len(), b.len(), 0.3, &mut rng);
        // A few union pairs play the confirmed killed-off matches.
        let confirmed: Vec<(TupleId, TupleId)> = union
            .pairs
            .iter()
            .step_by(17)
            .map(|&k| mc_table::split_pair_key(k))
            .collect();

        let kernel = DiagnosisKernel::build(&a, &b, 3);
        let fast = kernel.pervasiveness(&union, &confirmed);
        let slow = pervasive::pervasiveness(&a, &b, &union, &confirmed);
        assert_eq!(fast.len(), slow.len(), "seed {seed}: group counts diverge");
        for (f, s) in fast.iter().zip(&slow) {
            assert_eq!(f.signature, s.signature, "seed {seed}");
            assert_eq!(f.pairs, s.pairs, "seed {seed}");
            assert_eq!(f.confirmed, s.confirmed, "seed {seed}");
        }

        for &m in confirmed.iter().take(3) {
            assert_eq!(
                kernel.similar_pairs(&union, m),
                pervasive::similar_pairs(&a, &b, &union, m),
                "seed {seed}: similar_pairs({m:?}) diverges"
            );
        }
    }
}

fn obj(members: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[test]
fn serve_explain_and_pervade_round_trip() {
    let daemon = Daemon::spawn(ServeParams::default()).expect("spawn");
    let mut client = Client::connect(daemon.addr(), Duration::from_secs(120)).expect("connect");
    let resp = client
        .call_ok(&obj(vec![
            ("verb", "open".into()),
            ("profile", "fodors-zagats".into()),
            ("scale", JsonValue::Num(0.35)),
            ("seed", 11u64.into()),
            ("blocker_attr", 0u64.into()),
            ("q", 1u64.into()),
        ]))
        .expect("open");
    let session = resp.get("session").unwrap().as_u64().unwrap();
    let confirmed = resp
        .get("report")
        .unwrap()
        .get("confirmed")
        .unwrap()
        .as_array()
        .unwrap()
        .len() as u64;

    // explain: pages align with the report, every item carries the
    // mc-explain/v1 members, and gap = score − floor where both exist.
    let resp = client
        .call_ok(&obj(vec![
            ("verb", "explain".into()),
            ("session", session.into()),
            ("offset", 0u64.into()),
            ("limit", 100u64.into()),
        ]))
        .expect("explain");
    assert_eq!(resp.get("schema").unwrap().as_str(), Some("mc-explain/v1"));
    assert_eq!(resp.get("total").unwrap().as_u64(), Some(confirmed));
    let items = resp.get("items").unwrap().as_array().unwrap();
    assert_eq!(items.len() as u64, confirmed.min(100));
    for item in items {
        let attrs = item.get("attrs").unwrap().as_array().unwrap();
        assert!(!attrs.is_empty());
        for a in attrs {
            assert!(a.get("diagnosis").unwrap().as_str().is_some());
            assert!(a.get("agreement").unwrap().as_bool().is_some());
        }
        for s in item.get("scores").unwrap().as_array().unwrap() {
            if let (Some(score), Some(floor)) = (
                s.get("score").and_then(JsonValue::as_f64),
                s.get("floor").and_then(JsonValue::as_f64),
            ) {
                let gap = s.get("gap").and_then(JsonValue::as_f64).unwrap();
                assert!((gap - (score - floor)).abs() < 1e-12, "gap ≠ score − floor");
            }
        }
    }

    // pervade: groups are sorted most-pervasive-first and their kill
    // counts never exceed the session's confirmed matches.
    let resp = client
        .call_ok(&obj(vec![
            ("verb", "pervade".into()),
            ("session", session.into()),
            ("limit", 50u64.into()),
        ]))
        .expect("pervade");
    assert_eq!(resp.get("schema").unwrap().as_str(), Some("mc-explain/v1"));
    assert!(resp.get("union_size").unwrap().as_u64().unwrap() > 0);
    let groups = resp.get("groups").unwrap().as_array().unwrap();
    assert!(!groups.is_empty(), "a lossy blocker must show problems");
    let mut prev: Option<(u64, u64)> = None;
    let mut kills_total = 0;
    for g in groups {
        let pairs = g.get("pairs").unwrap().as_u64().unwrap();
        let kills = g.get("kills").unwrap().as_u64().unwrap();
        assert!(kills <= pairs, "a group cannot kill more than it holds");
        assert!(!g.get("problems").unwrap().as_array().unwrap().is_empty());
        assert!(g.get("signature").unwrap().as_str().is_some());
        if let Some((pk, pp)) = prev {
            assert!(
                (kills, pairs) <= (pk, pp),
                "groups must be sorted most pervasive first"
            );
        }
        prev = Some((kills, pairs));
        kills_total += kills;
    }
    assert!(
        kills_total <= confirmed,
        "killed-match attributions exceed the confirmed count"
    );

    let (_, protocol_errors) = daemon.shutdown();
    assert_eq!(protocol_errors, 0);
}

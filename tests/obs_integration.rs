//! Acceptance tests for the `mc-obs` pipeline instrumentation: a
//! [`MetricsSnapshot`] captured around [`MatchCatcher::run`] on a datagen
//! profile must cover every layer — SSJ candidate/pruning counters,
//! overlap-database reuse, per-stage spans, and per-iteration verifier
//! statistics.
//!
//! The registry is process-global and tests in this binary run in
//! parallel, so cross-run contamination can only *inflate* deltas; every
//! assertion is therefore `> 0` / `>=`, never an exact equality.

use matchcatcher::debugger::{DebuggerParams, MatchCatcher, Stage};
use matchcatcher::oracle::GoldOracle;
use mc_blocking::{Blocker, KeyFunc};
use mc_datagen::profiles::DatasetProfile;
use mc_obs::{MetricsSnapshot, ObsContext};
use mc_strsim::tokenize::Tokenizer;
use mc_strsim::SetMeasure;

#[test]
fn metrics_snapshot_covers_the_whole_pipeline() {
    let baseline = MetricsSnapshot::capture();
    let ds = DatasetProfile::FodorsZagats.generate(7);
    let name = ds.a.schema().expect_id("name");
    // A SIM blocker so the prefix-filter join counters fire too.
    let blocker = Blocker::Sim {
        attr: name,
        tokenizer: Tokenizer::Word,
        measure: SetMeasure::Jaccard,
        threshold: 0.6,
    };
    let c = blocker.apply(&ds.a, &ds.b);

    let mut params = DebuggerParams::small();
    params.joint.k = 100;
    // One worker → configs run in tree order, so parents populate the
    // overlap DB before their children read it (deterministic hits).
    params.joint.threads = 1;
    params.joint.reuse_min_avg_tokens = 0.0; // force overlap reuse on
    let mc = MatchCatcher::new(params);
    let mut oracle = GoldOracle::exact(&ds.gold);
    let report = mc.run(&ds.a, &ds.b, &c, &mut oracle);
    assert!(report.e_size > 0, "debugger must retrieve candidates");

    // ── Prefix-filter threshold join (the SIM blocker) ──────────────────
    let outer = MetricsSnapshot::capture().since(&baseline);
    assert!(
        outer.counter("mc.strsim.join.candidates") > 0,
        "SSJ candidates generated"
    );
    assert!(
        outer.counter("mc.strsim.join.length_pruned")
            + outer.counter("mc.strsim.join.verify_pruned")
            > 0,
        "prefix-filter pruned pairs"
    );
    assert!(
        outer.counter("mc.strsim.dict.builds") > 0,
        "dictionary builds recorded"
    );

    // ── The debugger's own top-k SSJ ────────────────────────────────────
    let m = &report.metrics;
    assert!(
        m.counter("mc.core.ssj.events") > 0,
        "prefix-extension events"
    );
    assert!(
        m.counter("mc.core.ssj.candidates") > 0,
        "top-k SSJ candidates discovered"
    );
    assert!(m.counter("mc.core.ssj.scored") > 0, "pairs scored");
    assert!(
        m.counter("mc.core.ssj.bound_pruned") > 0,
        "bound-based pruning fired"
    );

    // ── Overlap-database reuse (§4.2) ───────────────────────────────────
    assert!(
        m.counter("mc.core.joint.overlap_db.inserts") > 0,
        "writers recorded overlaps"
    );
    assert!(
        m.counter("mc.core.joint.overlap_db.hits") > 0,
        "children reused overlaps"
    );
    assert!(
        m.counter("mc.core.joint.overlap_db.misses") > 0,
        "fresh pairs missed the db"
    );
    assert!(
        m.counter("mc.core.joint.reuse_hits") > 0,
        "scorer-level reuse hits"
    );
    assert!(m.counter("mc.core.joint.configs_executed") > 0);

    // ── Per-stage span durations ────────────────────────────────────────
    for stage in [Stage::Prepare, Stage::TopK, Stage::Verify] {
        let stat = m.span(stage.span_name());
        assert!(stat.count >= 1, "{stage:?} span recorded");
        assert!(stat.total_us > 0, "{stage:?} span has nonzero duration");
    }
    assert!(
        m.span("mc.core.joint.run").count >= 1,
        "joint execution span"
    );
    assert!(
        m.span("mc.core.joint.config").count >= 1,
        "per-config spans"
    );

    // ── Per-iteration verifier statistics ───────────────────────────────
    assert!(m.counter("mc.core.verify.iterations") >= 1);
    assert!(
        m.counter("mc.core.verify.labeled") >= report.labeled as u64,
        "labeled counter covers this run's {} labels",
        report.labeled
    );
    let iteration_events = m.events_named("mc.core.verify.iteration");
    assert!(
        !iteration_events.is_empty(),
        "per-iteration events in the flight recorder"
    );
}

#[test]
fn every_stage_reports_a_nonzero_span() {
    // Smoke test for the `obs_report` example path: a small end-to-end
    // run must record a span for every pipeline stage and render a report
    // that mentions each of them.
    let ds = DatasetProfile::FodorsZagats.generate_scaled(13, 0.5);
    let city = ds.a.schema().expect_id("city");
    let c = Blocker::Hash(KeyFunc::Attr(city)).apply(&ds.a, &ds.b);
    let mc = MatchCatcher::new(DebuggerParams::small());
    let mut oracle = GoldOracle::exact(&ds.gold);
    let report = mc.run(&ds.a, &ds.b, &c, &mut oracle);

    for stage in Stage::ALL {
        assert!(
            report.metrics.span(stage.span_name()).count >= 1,
            "{stage:?} reported no span"
        );
    }
    let rendered = report.metrics.render();
    for stage in Stage::ALL {
        assert!(
            rendered.contains(stage.span_name()),
            "render omits {stage:?}"
        );
    }
    let json = report.metrics.to_json();
    assert!(json.contains("\"schema\": \"mc-obs/v2\""));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    // The v2 schema is self-describing: it must read back losslessly.
    let back = mc_obs::MetricsSnapshot::from_json(&json).unwrap();
    for stage in Stage::ALL {
        assert_eq!(
            back.span(stage.span_name()),
            report.metrics.span(stage.span_name()),
            "{stage:?} must survive the JSON round-trip"
        );
    }
}

/// The acceptance test for the session-scoped observability plane: two
/// concurrent [`MatchCatcher::run`] calls with distinct session
/// [`ObsContext`]s must produce *exactly* attributed snapshots — every
/// assertion here is an equality, which was impossible when the registry
/// was process-global — while the merged global view accounts for both.
#[test]
fn concurrent_sessions_do_not_bleed() {
    let ds = DatasetProfile::FodorsZagats.generate_scaled(21, 0.5);
    let city = ds.a.schema().expect_id("city");
    let c = Blocker::Hash(KeyFunc::Attr(city)).apply(&ds.a, &ds.b);
    let global_before = MetricsSnapshot::capture_from(ObsContext::global());

    let run_one = || {
        let mut params = DebuggerParams::small();
        params.obs = ObsContext::session();
        let obs = params.obs.clone();
        let mc = MatchCatcher::new(params);
        let mut oracle = GoldOracle::exact(&ds.gold);
        (mc.run(&ds.a, &ds.b, &c, &mut oracle), obs)
    };
    let ((r1, obs1), (r2, obs2)) = std::thread::scope(|s| {
        let h1 = s.spawn(run_one);
        let h2 = s.spawn(run_one);
        (h1.join().unwrap(), h2.join().unwrap())
    });

    for (r, obs) in [(&r1, &obs1), (&r2, &obs2)] {
        let m = &r.metrics;
        // One pipeline per session: stage spans appear exactly once.
        for stage in Stage::ALL {
            assert_eq!(m.span(stage.span_name()).count, 1, "{stage:?}");
        }
        // Work counters match this run's own report exactly.
        assert_eq!(
            m.counter("mc.core.joint.configs_executed"),
            r.configs.len() as u64
        );
        assert_eq!(m.counter("mc.core.verify.labeled"), r.labeled as u64);
        assert_eq!(
            m.counter("mc.core.verify.iterations"),
            r.iteration_count() as u64
        );
        // Flight-recorder attribution: the session recorder holds this
        // run's per-iteration events, nothing more.
        assert_eq!(
            m.events_named("mc.core.verify.iteration").len(),
            r.iteration_count()
        );
        // The session context's live registry agrees with the delta (the
        // baseline was empty — nothing ran in this context before).
        assert_eq!(
            obs.registry()
                .counter("mc.core.joint.configs_executed")
                .get(),
            r.configs.len() as u64
        );
    }

    // The merged process-global view accounts for both sessions (>= in
    // case other tests in this binary ran concurrently).
    let g = MetricsSnapshot::capture_from(ObsContext::global()).since(&global_before);
    assert!(
        g.counter("mc.core.joint.configs_executed") >= (r1.configs.len() + r2.configs.len()) as u64
    );
    assert!(g.counter("mc.core.verify.labeled") >= (r1.labeled + r2.labeled) as u64);
    assert!(g.span(Stage::TopK.span_name()).count >= 2);
}

//! Asserted version of `examples/pervasiveness.rs`.
//!
//! The example prints pervasiveness groups for a hash blocker on the
//! restaurants dataset; this test runs the same pipeline (at a reduced
//! scale so it stays tier-1 fast) and pins down every claim the example
//! makes, so the demo can't silently rot: the debugger confirms killed
//! matches, the batch kernel's groups equal the per-pair slow path, the
//! ordering is most-pervasive-first, and the similar-pairs drill-down is
//! consistent with the group containing the killed match.

use matchcatcher::debugger::{DebuggerParams, MatchCatcher};
use matchcatcher::joint::CandidateUnion;
use matchcatcher::oracle::GoldOracle;
use matchcatcher::{pervasive, DiagnosisKernel};
use mc_blocking::{Blocker, KeyFunc};
use mc_datagen::profiles::DatasetProfile;

#[test]
fn pervasiveness_example_scenario_holds() {
    let ds = DatasetProfile::FodorsZagats.generate_scaled(42, 0.5);
    let schema = ds.a.schema().clone();
    let blocker = Blocker::Hash(KeyFunc::Attr(schema.expect_id("city")));
    let c = blocker.apply(&ds.a, &ds.b);

    let mut params = DebuggerParams::default();
    params.joint.k = 500;
    let mc = MatchCatcher::new(params);
    let prepared = mc.prepare(&ds.a, &ds.b);
    let joint = mc.topk(&prepared, &c);
    let mut oracle = GoldOracle::exact(&ds.gold);
    let (_, outcome) = mc.verify(&ds.a, &ds.b, &prepared, &joint.lists, &mut oracle);
    let confirmed: Vec<(u32, u32)> = outcome
        .matches
        .iter()
        .map(|&k| mc_table::split_pair_key(k))
        .collect();
    assert!(ds.gold.killed(&c) > 0, "the city blocker must be lossy");
    assert!(
        !confirmed.is_empty(),
        "the debugger must confirm killed-off matches"
    );

    let union = CandidateUnion::build(&joint.lists);
    let kernel = DiagnosisKernel::build(&ds.a, &ds.b, 0);
    let groups = kernel.pervasiveness(&union, &confirmed);
    assert!(!groups.is_empty(), "a lossy blocker must surface problems");

    // The example's table is the batch kernel's output; it must equal
    // the per-pair slow path exactly.
    let slow = pervasive::pervasiveness(&ds.a, &ds.b, &union, &confirmed);
    assert_eq!(groups.len(), slow.len());
    for (f, s) in groups.iter().zip(&slow) {
        assert_eq!(f.signature, s.signature);
        assert_eq!(f.pairs, s.pairs);
        assert_eq!(f.confirmed, s.confirmed);
    }

    // Most-pervasive-first ordering, and kill counts bounded by both the
    // group population and the confirmed total.
    for w in groups.windows(2) {
        assert!(
            (w[0].confirmed, w[0].pairs.len()) >= (w[1].confirmed, w[1].pairs.len()),
            "groups must be sorted most pervasive first"
        );
    }
    for g in &groups {
        assert!(g.confirmed <= g.pairs.len());
        assert!(!g.signature.problems().is_empty());
        assert!(!g.signature.describe(&schema).is_empty());
    }
    let attributed: usize = groups.iter().map(|g| g.confirmed).sum();
    assert!(attributed <= confirmed.len());
    // Every confirmed match the blocker killed shows up in some group
    // (a killed match with no blocker problem would be unexplainable).
    assert!(attributed > 0, "killed matches must land in problem groups");

    // Zipfian value reuse: the cache must have deduplicated work.
    let stats = kernel.stats();
    assert!(stats.lookups > 0);
    assert!(
        stats.cache_hits() > 0,
        "restaurant data repeats values; the cache must hit"
    );

    // Drill-down: similar pairs of a killed match equal the slow path
    // and share the match's problem signature group membership.
    let m = confirmed[0];
    let sim = kernel.similar_pairs(&union, m);
    assert_eq!(sim, pervasive::similar_pairs(&ds.a, &ds.b, &union, m));
    assert!(
        !sim.contains(&m),
        "a match is not similar to itself by definition"
    );
    if let Some(home) = groups.iter().find(|g| g.pairs.contains(&m)) {
        // Everything in the match's own group shares its exact
        // signature, hence is a subset of the similar-pair list.
        for &p in home.pairs.iter().filter(|&&p| p != m) {
            assert!(
                sim.contains(&p),
                "{p:?} shares {m:?}'s signature but is missing from similar_pairs"
            );
        }
    }
}

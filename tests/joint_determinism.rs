//! Thread-count invariance of the *joint* stage, in the style of
//! `verifier_parallel.rs`: with parent-gated reuse and deterministic
//! empirical `q` selection, `run_joint` must produce a bit-identical
//! candidate union — same `q_used`, same pairs, same `f64` score bit
//! patterns — at every worker-thread count, on a realistic datagen
//! profile with both reuse mechanisms engaged.

use matchcatcher::debugger::{DebuggerParams, MatchCatcher};
use matchcatcher::joint::{run_joint, CandidateUnion, JointParams, QStrategy};
use mc_blocking::{Blocker, KeyFunc};
use mc_datagen::profiles::DatasetProfile;
use mc_table::AttrId;

/// The union projected to comparable bits: pairs plus per-config score
/// bit patterns.
fn union_bits(u: &CandidateUnion) -> (Vec<u64>, Vec<Vec<Option<u64>>>) {
    (
        u.pairs.clone(),
        u.scores
            .iter()
            .map(|row| row.iter().map(|s| s.map(f64::to_bits)).collect())
            .collect(),
    )
}

#[test]
fn joint_union_is_bit_identical_across_thread_counts() {
    let ds = DatasetProfile::FodorsZagats.generate_scaled(11, 0.5);
    let blocker = Blocker::Hash(KeyFunc::Attr(AttrId(0)));
    let c = blocker.apply(&ds.a, &ds.b);
    let mc = MatchCatcher::new(DebuggerParams::small());
    let prepared = mc.prepare(&ds.a, &ds.b);

    let runs: Vec<_> = [1usize, 2, 4]
        .into_iter()
        .map(|threads| {
            let out = run_joint(
                &prepared.tok_a,
                &prepared.tok_b,
                &c,
                &prepared.tree,
                JointParams {
                    k: 60,
                    threads,
                    q: QStrategy::Auto {
                        max_q: 3,
                        prelude_k: 20,
                    },
                    reuse_overlaps: true,
                    reuse_topk: true,
                    reuse_min_avg_tokens: 0.0, // force overlap reuse on
                    ..Default::default()
                },
            );
            let union = CandidateUnion::build(&out.lists);
            (out.q_used, union_bits(&union))
        })
        .collect();

    assert!(
        !runs[0].1 .0.is_empty(),
        "fixture must produce candidates for the comparison to mean anything"
    );
    for (threads, run) in [2usize, 4].iter().zip(&runs[1..]) {
        assert_eq!(runs[0].0, run.0, "q_used diverged at {threads} threads");
        assert_eq!(
            runs[0].1, run.1,
            "candidate union not bit-identical at {threads} threads"
        );
    }
}

#[test]
fn joint_union_is_bit_identical_with_seeding_only() {
    // reuse_topk without the overlap DB exercises the parent-wait gate on
    // the seeding path alone.
    let ds = DatasetProfile::FodorsZagats.generate_scaled(5, 0.25);
    let blocker = Blocker::Hash(KeyFunc::Attr(AttrId(0)));
    let c = blocker.apply(&ds.a, &ds.b);
    let mc = MatchCatcher::new(DebuggerParams::small());
    let prepared = mc.prepare(&ds.a, &ds.b);

    let run = |threads: usize| {
        let out = run_joint(
            &prepared.tok_a,
            &prepared.tok_b,
            &c,
            &prepared.tree,
            JointParams {
                k: 40,
                threads,
                reuse_overlaps: false,
                reuse_topk: true,
                ..Default::default()
            },
        );
        union_bits(&CandidateUnion::build(&out.lists))
    };
    let serial = run(1);
    for threads in [2, 4] {
        assert_eq!(serial, run(threads), "diverged at {threads} threads");
    }
}

//! Determinism guarantees of the parallel verifier stack: the flat
//! feature matrix, the per-tree-seeded random forest, and `run_verifier`
//! itself must produce identical results at any worker-thread count —
//! and the whole new pipeline must reproduce the pre-change serial
//! implementation (replicated here from the seed revision as a reference
//! oracle) on the standard `scenario()` fixtures.

use matchcatcher::features::{FeatureExtractor, FeatureMatrix};
use matchcatcher::joint::CandidateUnion;
use matchcatcher::oracle::{GoldOracle, Oracle};
use matchcatcher::rank::{medrank_order, RankedLists};
use matchcatcher::ssj::TopKList;
use matchcatcher::verify::{run_verifier, RankStrategy, VerifierParams, VerifyOutcome};
use mc_ml::{DecisionTree, ForestParams, RandomForest, RowsView, TreeParams};
use mc_strsim::dict::TokenizedTable;
use mc_strsim::tokenize::Tokenizer;
use mc_table::{pair_key, split_pair_key, AttrId, GoldMatches, Schema, Table, Tuple};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use std::sync::Arc;

/// The verification scenario from `verify.rs`'s unit tests: 40 A/B
/// tuples where (i, i) are matches for i < n_matches, with (i, i+1)
/// decoys.
fn scenario(n_matches: u32) -> (Table, Table, GoldMatches, CandidateUnion) {
    let schema = Arc::new(Schema::from_names(["name", "city"]));
    let mut a = Table::new("A", Arc::clone(&schema));
    let mut b = Table::new("B", schema);
    for i in 0..40u32 {
        a.push(Tuple::from_present([
            format!("person{} smith{}", i, i),
            format!("city{}", i % 5),
        ]));
        b.push(Tuple::from_present([
            format!("person{} smith{}", i, i),
            format!("city{}", i % 5),
        ]));
    }
    let gold = GoldMatches::from_pairs((0..n_matches).map(|i| (i, i)));
    let mut l = TopKList::new(200);
    for i in 0..40u32 {
        l.insert(0.9 - i as f64 * 0.001, pair_key(i, i));
        l.insert(0.5 - i as f64 * 0.001, pair_key(i, (i + 1) % 40));
    }
    let union = CandidateUnion::build(&[l]);
    (a, b, gold, union)
}

fn extractor_parts(a: &Table, b: &Table) -> (Vec<AttrId>, TokenizedTable, TokenizedTable) {
    let attrs = vec![AttrId(0), AttrId(1)];
    let (ta, tb, _) = TokenizedTable::build_pair(a, b, &attrs, Tokenizer::Word);
    (attrs, ta, tb)
}

fn run_with_threads(
    union: &CandidateUnion,
    fx: &FeatureExtractor<'_>,
    gold: &GoldMatches,
    strategy: RankStrategy,
    threads: usize,
) -> VerifyOutcome {
    let mut oracle = GoldOracle::exact(gold);
    let params = VerifierParams {
        n_per_iter: 10,
        strategy,
        forest: ForestParams {
            threads,
            ..ForestParams::default()
        },
        ..Default::default()
    };
    run_verifier(union, fx, &mut oracle, &params)
}

#[test]
fn verify_outcome_is_thread_count_invariant() {
    for n_matches in [0, 10, 25] {
        let (a, b, gold, union) = scenario(n_matches);
        let (attrs, ta, tb) = extractor_parts(&a, &b);
        let fx = FeatureExtractor::new(&a, &b, &attrs, &ta, &tb);
        for strategy in [
            RankStrategy::Learning,
            RankStrategy::Wmr,
            RankStrategy::MedRank,
        ] {
            let serial = run_with_threads(&union, &fx, &gold, strategy, 1);
            for threads in [2, 8] {
                let parallel = run_with_threads(&union, &fx, &gold, strategy, threads);
                assert_eq!(
                    serial, parallel,
                    "{strategy:?} with {n_matches} matches diverged at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn feature_matrix_equals_extractor_on_randomized_pairs() {
    let (a, b, _, _) = scenario(12);
    let (attrs, ta, tb) = extractor_parts(&a, &b);
    let fx = FeatureExtractor::new(&a, &b, &attrs, &ta, &tb);
    let mut rng = StdRng::seed_from_u64(0xfeed);
    for trial in 0..5 {
        let n_pairs = rng.random_range(1usize..400);
        let pairs: Vec<u64> = (0..n_pairs)
            .map(|_| pair_key(rng.random_range(0..40), rng.random_range(0..40)))
            .collect();
        let mut m = FeatureMatrix::new(pairs.len(), fx.n_features());
        // Build in randomized increments with randomized thread counts;
        // chunks must come out identical to direct extraction.
        let mut built_to = 0usize;
        while built_to < pairs.len() {
            built_to += rng.random_range(1..=pairs.len());
            m.ensure_upto(
                built_to.min(pairs.len()),
                &pairs,
                &fx,
                rng.random_range(1..5),
            );
        }
        for (i, &key) in pairs.iter().enumerate() {
            let (x, y) = split_pair_key(key);
            assert_eq!(
                m.row(i),
                fx.features(x, y).as_slice(),
                "trial {trial}, row {i}"
            );
        }
    }
}

#[test]
fn forest_fit_is_bit_identical_across_thread_counts_on_scenario_features() {
    let (a, b, gold, union) = scenario(20);
    let (attrs, ta, tb) = extractor_parts(&a, &b);
    let fx = FeatureExtractor::new(&a, &b, &attrs, &ta, &tb);
    let x: Vec<Vec<f64>> = union
        .pairs
        .iter()
        .map(|&k| {
            let (i, j) = split_pair_key(k);
            fx.features(i, j)
        })
        .collect();
    let y: Vec<bool> = union
        .pairs
        .iter()
        .map(|&k| {
            let (i, j) = split_pair_key(k);
            gold.is_match(i, j)
        })
        .collect();
    let serial = RandomForest::fit(
        &x,
        &y,
        &ForestParams {
            threads: 1,
            ..ForestParams::default()
        },
    );
    for threads in [2, 8] {
        let parallel = RandomForest::fit(
            &x,
            &y,
            &ForestParams {
                threads,
                ..ForestParams::default()
            },
        );
        assert_eq!(serial, parallel, "forest diverged at {threads} threads");
    }
    // The flat-matrix path must grow the same trees as the owned-row path.
    let buf: Vec<f64> = x.iter().flatten().copied().collect();
    let rows = RowsView::new(&buf, fx.n_features());
    let idx: Vec<usize> = (0..x.len()).collect();
    let matrix_fit = RandomForest::fit_matrix(
        rows,
        &idx,
        &y,
        &ForestParams {
            threads: 4,
            ..ForestParams::default()
        },
    );
    assert_eq!(serial, matrix_fit);
}

// ─── Pre-change reference implementation ────────────────────────────────
//
// A faithful replica of the seed revision's serial verifier: the shared
// sequential forest rng (bootstrap rows cloned per tree from one
// `StdRng` stream), lazily extracted per-candidate feature vectors, and
// full-sort batch selection. The new pipeline must reproduce its exact
// `VerifyOutcome` on the scenario fixtures.

struct OldForest {
    trees: Vec<DecisionTree>,
}

impl OldForest {
    fn fit(x: &[Vec<f64>], y: &[bool], params: &ForestParams) -> Self {
        let n_features = x[0].len();
        let per_split = if params.features_per_split == 0 {
            (n_features as f64).sqrt().ceil() as usize
        } else {
            params.features_per_split
        };
        let tree_params = TreeParams {
            max_depth: params.max_depth,
            min_samples_split: params.min_samples_split,
            features_per_split: per_split.max(1),
        };
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut trees = Vec::with_capacity(params.n_trees);
        let mut bx: Vec<Vec<f64>> = Vec::with_capacity(x.len());
        let mut by: Vec<bool> = Vec::with_capacity(x.len());
        for _ in 0..params.n_trees {
            bx.clear();
            by.clear();
            for _ in 0..x.len() {
                let i = rng.random_range(0..x.len());
                bx.push(x[i].clone());
                by.push(y[i]);
            }
            trees.push(DecisionTree::fit(&bx, &by, &tree_params, &mut rng));
        }
        OldForest { trees }
    }

    fn confidence(&self, sample: &[f64]) -> f64 {
        let votes = self.trees.iter().filter(|t| t.predict(sample)).count();
        votes as f64 / self.trees.len() as f64
    }

    fn mean_proba(&self, sample: &[f64]) -> f64 {
        self.trees
            .iter()
            .map(|t| t.predict_proba(sample))
            .sum::<f64>()
            / self.trees.len() as f64
    }
}

fn old_hybrid_batch(scored: &[(usize, f64, f64)], n: usize) -> Vec<usize> {
    let n_controversial = (n / 4).max(1);
    let mut by_uncertainty: Vec<&(usize, f64, f64)> = scored.iter().collect();
    by_uncertainty.sort_by(|a, b| {
        let ua = (a.1 - 0.5).abs();
        let ub = (b.1 - 0.5).abs();
        ua.total_cmp(&ub).then(a.0.cmp(&b.0))
    });
    let mut batch: Vec<usize> = by_uncertainty
        .iter()
        .take(n_controversial)
        .map(|t| t.0)
        .collect();
    let mut by_conf: Vec<&(usize, f64, f64)> = scored.iter().collect();
    by_conf.sort_by(|a, b| {
        b.1.total_cmp(&a.1)
            .then(b.2.total_cmp(&a.2))
            .then(a.0.cmp(&b.0))
    });
    for t in by_conf {
        if batch.len() >= n {
            break;
        }
        if !batch.contains(&t.0) {
            batch.push(t.0);
        }
    }
    batch
}

/// The seed revision's `run_verifier` for the Learning strategy,
/// returning `(matches, (shown, found) per iteration, labeled)`.
fn old_run_verifier_learning(
    union: &CandidateUnion,
    fx: &FeatureExtractor<'_>,
    oracle: &mut dyn Oracle,
    params: &VerifierParams,
) -> (Vec<u64>, Vec<(usize, usize)>, usize) {
    let items = union.len();
    let mut matches = Vec::new();
    let mut iterations = Vec::new();
    let mut labeled = 0usize;
    if items == 0 {
        return (matches, iterations, labeled);
    }
    let ranked = RankedLists::from_union(union);
    let base_order = medrank_order(&ranked);
    let mut labels: Vec<Option<bool>> = vec![None; items];
    let mut features: Vec<Option<Vec<f64>>> = vec![None; items];
    let mut al_rounds_done = 0usize;
    let mut empty_streak = 0usize;
    let n = params.n_per_iter.max(1);

    let feature_of = |i: usize, cache: &mut Vec<Option<Vec<f64>>>| -> Vec<f64> {
        if cache[i].is_none() {
            let (a, b) = split_pair_key(union.pairs[i]);
            cache[i] = Some(fx.features(a, b));
        }
        cache[i].clone().unwrap()
    };

    while iterations.len() < params.max_iters {
        let unlabeled: Vec<usize> = (0..items).filter(|&i| labels[i].is_none()).collect();
        if unlabeled.is_empty() {
            break;
        }
        let have_pos = labels.contains(&Some(true));
        let have_neg = labels.contains(&Some(false));
        let batch: Vec<usize> = if !(have_pos && have_neg) {
            base_order
                .iter()
                .copied()
                .filter(|&i| labels[i].is_none())
                .take(n)
                .collect()
        } else {
            let (x, y): (Vec<Vec<f64>>, Vec<bool>) = (0..items)
                .filter_map(|i| labels[i].map(|l| (feature_of(i, &mut features), l)))
                .unzip();
            let f = OldForest::fit(&x, &y, &params.forest);
            let scored: Vec<(usize, f64, f64)> = unlabeled
                .iter()
                .map(|&i| {
                    let feats = feature_of(i, &mut features);
                    (i, f.confidence(&feats), f.mean_proba(&feats))
                })
                .collect();
            if al_rounds_done < params.al_iters {
                al_rounds_done += 1;
                old_hybrid_batch(&scored, n)
            } else {
                let mut by_conf = scored;
                by_conf.sort_by(|a, b| {
                    b.1.total_cmp(&a.1)
                        .then(b.2.total_cmp(&a.2))
                        .then(a.0.cmp(&b.0))
                });
                by_conf.into_iter().take(n).map(|(i, _, _)| i).collect()
            }
        };
        if batch.is_empty() {
            break;
        }
        let mut found = 0usize;
        for &i in &batch {
            let (a, b) = split_pair_key(union.pairs[i]);
            let is_match = oracle.is_match(a, b);
            labels[i] = Some(is_match);
            labeled += 1;
            if is_match {
                found += 1;
                matches.push(union.pairs[i]);
            }
        }
        iterations.push((batch.len(), found));
        if found == 0 {
            empty_streak += 1;
            if empty_streak >= params.stop_after_empty {
                break;
            }
        } else {
            empty_streak = 0;
        }
    }
    (matches, iterations, labeled)
}

#[test]
fn new_verifier_reproduces_prechange_serial_outcomes() {
    for n_matches in [0, 10, 25] {
        let (a, b, gold, union) = scenario(n_matches);
        let (attrs, ta, tb) = extractor_parts(&a, &b);
        let fx = FeatureExtractor::new(&a, &b, &attrs, &ta, &tb);
        let params = VerifierParams {
            n_per_iter: 10,
            ..Default::default()
        };

        let mut old_oracle = GoldOracle::exact(&gold);
        let (old_matches, old_iters, old_labeled) =
            old_run_verifier_learning(&union, &fx, &mut old_oracle, &params);

        for threads in [1, 4] {
            let mut p = params;
            p.forest.threads = threads;
            let mut oracle = GoldOracle::exact(&gold);
            let new = run_verifier(&union, &fx, &mut oracle, &p);
            assert_eq!(
                new.matches, old_matches,
                "matches diverged from the pre-change implementation \
                 ({n_matches} matches, {threads} threads)"
            );
            let new_iters: Vec<(usize, usize)> = new
                .iterations
                .iter()
                .map(|r| (r.shown, r.matches_found))
                .collect();
            assert_eq!(new_iters, old_iters, "iteration records diverged");
            assert_eq!(new.labeled, old_labeled, "label count diverged");
        }
    }
}

//! Property-based tests for the blocking framework against its pairwise
//! semantics, using randomly generated small tables.

use mc_blocking::{Blocker, KeyFunc};
use mc_strsim::measures::SetMeasure;
use mc_strsim::tokenize::Tokenizer;
use mc_table::{AttrId, Schema, Table, Tuple};
use proptest::prelude::*;
use std::sync::Arc;

/// Random small tables over a fixed 2-attribute schema with a tiny
/// vocabulary (to force collisions).
fn table_strategy(name: &'static str) -> impl Strategy<Value = Table> {
    let word = prop::sample::select(vec![
        "smith", "smyth", "jones", "dave", "david", "joe", "atlanta", "altanta", "ny",
        "chicago", "", "la",
    ]);
    let value = prop::collection::vec(word, 1..4)
        .prop_map(|ws| {
            let s = ws.join(" ").trim().to_string();
            if s.is_empty() {
                None
            } else {
                Some(s)
            }
        });
    prop::collection::vec((value.clone(), value), 1..12).prop_map(move |rows| {
        let schema = Arc::new(Schema::from_names(["name", "city"]));
        let mut t = Table::new(name, schema);
        for (n, c) in rows {
            t.push(Tuple::new(vec![n, c]));
        }
        t
    })
}

fn blocker_strategy() -> impl Strategy<Value = Blocker> {
    prop_oneof![
        Just(Blocker::Hash(KeyFunc::Attr(AttrId(0)))),
        Just(Blocker::Hash(KeyFunc::LastWord(AttrId(0)))),
        Just(Blocker::Hash(KeyFunc::Soundex(AttrId(0)))),
        Just(Blocker::Overlap {
            attr: AttrId(0),
            tokenizer: Tokenizer::Word,
            min_common: 1
        }),
        Just(Blocker::Sim {
            attr: AttrId(0),
            tokenizer: Tokenizer::Word,
            measure: SetMeasure::Jaccard,
            threshold: 0.5
        }),
        Just(Blocker::Sim {
            attr: AttrId(1),
            tokenizer: Tokenizer::QGram(3),
            measure: SetMeasure::Dice,
            threshold: 0.6
        }),
        Just(Blocker::EditSim { key: KeyFunc::LastWord(AttrId(0)), max_ed: 1 }),
        Just(Blocker::EditSim { key: KeyFunc::Attr(AttrId(1)), max_ed: 2 }),
        Just(Blocker::SuffixKey { key: KeyFunc::LastWord(AttrId(0)), suffix_len: 3 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn apply_agrees_with_pairwise_keeps(
        a in table_strategy("A"),
        b in table_strategy("B"),
        blocker in blocker_strategy(),
    ) {
        let c = blocker.apply(&a, &b);
        for ai in a.ids() {
            for bi in b.ids() {
                prop_assert_eq!(
                    c.contains(ai, bi),
                    blocker.keeps(&a, &b, ai, bi),
                    "{} on ({}, {})",
                    blocker.describe(a.schema()),
                    ai,
                    bi
                );
            }
        }
    }

    #[test]
    fn union_is_superset_of_parts(
        a in table_strategy("A"),
        b in table_strategy("B"),
        b1 in blocker_strategy(),
        b2 in blocker_strategy(),
    ) {
        let u = Blocker::Union(vec![b1.clone(), b2.clone()]).apply(&a, &b);
        for part in [&b1, &b2] {
            for (x, y) in part.apply(&a, &b).iter() {
                prop_assert!(u.contains(x, y));
            }
        }
    }

    #[test]
    fn intersection_is_subset_of_parts(
        a in table_strategy("A"),
        b in table_strategy("B"),
        b1 in blocker_strategy(),
        b2 in blocker_strategy(),
    ) {
        let i = Blocker::Intersect(vec![b1.clone(), b2.clone()]).apply(&a, &b);
        let c1 = b1.apply(&a, &b);
        let c2 = b2.apply(&a, &b);
        for (x, y) in i.iter() {
            prop_assert!(c1.contains(x, y) && c2.contains(x, y));
        }
    }

    #[test]
    fn sorted_neighborhood_contains_equal_keys(
        a in table_strategy("A"),
        b in table_strategy("B"),
    ) {
        // Window ≥ 1 must cover at least... equal keys adjacent in sort
        // order; with a window as large as the row count, SN ⊇ hash.
        let key = KeyFunc::LastWord(AttrId(0));
        let window = a.len() + b.len();
        let sn = Blocker::SortedNeighborhood { key: key.clone(), window }.apply(&a, &b);
        let h = Blocker::Hash(key).apply(&a, &b);
        for (x, y) in h.iter() {
            prop_assert!(sn.contains(x, y), "hash pair ({x},{y}) missing from max-window SN");
        }
    }
}

//! Randomized property tests for the blocking framework against its
//! pairwise semantics, using seeded random small tables (deterministic
//! across runs).

use mc_blocking::{Blocker, KeyFunc};
use mc_strsim::measures::SetMeasure;
use mc_strsim::tokenize::Tokenizer;
use mc_table::{AttrId, Schema, Table, Tuple};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt as _, SeedableRng};
use std::sync::Arc;

const CASES: usize = 48;

/// Random small tables over a fixed 2-attribute schema with a tiny
/// vocabulary (to force collisions).
fn random_table(rng: &mut StdRng, name: &'static str) -> Table {
    const WORDS: &[&str] = &[
        "smith", "smyth", "jones", "dave", "david", "joe", "atlanta", "altanta", "ny", "chicago",
        "", "la",
    ];
    let random_value = |rng: &mut StdRng| -> Option<String> {
        let n = rng.random_range(1..4usize);
        let s = (0..n)
            .map(|_| *WORDS.choose(rng).unwrap())
            .collect::<Vec<_>>()
            .join(" ")
            .trim()
            .to_string();
        if s.is_empty() {
            None
        } else {
            Some(s)
        }
    };
    let schema = Arc::new(Schema::from_names(["name", "city"]));
    let mut t = Table::new(name, schema);
    let rows = rng.random_range(1..12usize);
    for _ in 0..rows {
        let n = random_value(rng);
        let c = random_value(rng);
        t.push(Tuple::new(vec![n, c]));
    }
    t
}

fn random_blocker(rng: &mut StdRng) -> Blocker {
    let choices: Vec<Blocker> = vec![
        Blocker::Hash(KeyFunc::Attr(AttrId(0))),
        Blocker::Hash(KeyFunc::LastWord(AttrId(0))),
        Blocker::Hash(KeyFunc::Soundex(AttrId(0))),
        Blocker::Overlap {
            attr: AttrId(0),
            tokenizer: Tokenizer::Word,
            min_common: 1,
        },
        Blocker::Sim {
            attr: AttrId(0),
            tokenizer: Tokenizer::Word,
            measure: SetMeasure::Jaccard,
            threshold: 0.5,
        },
        Blocker::Sim {
            attr: AttrId(1),
            tokenizer: Tokenizer::QGram(3),
            measure: SetMeasure::Dice,
            threshold: 0.6,
        },
        Blocker::EditSim {
            key: KeyFunc::LastWord(AttrId(0)),
            max_ed: 1,
        },
        Blocker::EditSim {
            key: KeyFunc::Attr(AttrId(1)),
            max_ed: 2,
        },
        Blocker::SuffixKey {
            key: KeyFunc::LastWord(AttrId(0)),
            suffix_len: 3,
        },
    ];
    choices.choose(rng).unwrap().clone()
}

#[test]
fn apply_agrees_with_pairwise_keeps() {
    let mut rng = StdRng::seed_from_u64(0xB10C);
    for case in 0..CASES {
        let a = random_table(&mut rng, "A");
        let b = random_table(&mut rng, "B");
        let blocker = random_blocker(&mut rng);
        let c = blocker.apply(&a, &b);
        for ai in a.ids() {
            for bi in b.ids() {
                assert_eq!(
                    c.contains(ai, bi),
                    blocker.keeps(&a, &b, ai, bi),
                    "case {case}: {} on ({}, {})",
                    blocker.describe(a.schema()),
                    ai,
                    bi
                );
            }
        }
    }
}

#[test]
fn union_is_superset_of_parts() {
    let mut rng = StdRng::seed_from_u64(0xB11);
    for case in 0..CASES {
        let a = random_table(&mut rng, "A");
        let b = random_table(&mut rng, "B");
        let b1 = random_blocker(&mut rng);
        let b2 = random_blocker(&mut rng);
        let u = Blocker::Union(vec![b1.clone(), b2.clone()]).apply(&a, &b);
        for part in [&b1, &b2] {
            for (x, y) in part.apply(&a, &b).iter() {
                assert!(u.contains(x, y), "case {case}");
            }
        }
    }
}

#[test]
fn intersection_is_subset_of_parts() {
    let mut rng = StdRng::seed_from_u64(0xB12);
    for case in 0..CASES {
        let a = random_table(&mut rng, "A");
        let b = random_table(&mut rng, "B");
        let b1 = random_blocker(&mut rng);
        let b2 = random_blocker(&mut rng);
        let i = Blocker::Intersect(vec![b1.clone(), b2.clone()]).apply(&a, &b);
        let c1 = b1.apply(&a, &b);
        let c2 = b2.apply(&a, &b);
        for (x, y) in i.iter() {
            assert!(c1.contains(x, y) && c2.contains(x, y), "case {case}");
        }
    }
}

#[test]
fn sorted_neighborhood_contains_equal_keys() {
    let mut rng = StdRng::seed_from_u64(0xB13);
    for case in 0..CASES {
        let a = random_table(&mut rng, "A");
        let b = random_table(&mut rng, "B");
        // Equal keys are adjacent in sort order; with a window as large
        // as the row count, SN ⊇ hash.
        let key = KeyFunc::LastWord(AttrId(0));
        let window = a.len() + b.len();
        let sn = Blocker::SortedNeighborhood {
            key: key.clone(),
            window,
        }
        .apply(&a, &b);
        let h = Blocker::Hash(key).apply(&a, &b);
        for (x, y) in h.iter() {
            assert!(
                sn.contains(x, y),
                "case {case}: hash pair ({x},{y}) missing from max-window SN"
            );
        }
    }
}

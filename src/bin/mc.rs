//! `mc` — the MatchCatcher workspace CLI.
//!
//! Subcommands:
//!
//! ```text
//! mc obs-report [--profile NAME] [--scale X] [--seed N] [--k N]
//!               [--store DIR] [--json] [--prom]
//! mc trace --out PATH [--profile NAME] [--scale X] [--seed N] [--k N]
//!          [--store DIR] [--snapshot PATH] [--prom PATH]
//! mc bench-compare --bench NAME --baseline PATH --fresh PATH
//!                  [--budgets PATH] [--smoke | --full]
//! mc store-init DIR
//! mc store-stats DIR
//! mc store-gc DIR --max-bytes N
//! mc serve [--addr HOST:PORT] [--workers N] [--store DIR] ...
//! ```
//!
//! `obs-report` runs the full debugging pipeline (prepare → top-k →
//! verify → explain) on a synthetic datagen profile with a hash blocker,
//! then prints the observability layer's human-readable stage breakdown;
//! `--json` adds the machine-readable `mc-obs/v2` snapshot (the same
//! schema the bench binaries emit with `--obs`) and `--prom` the
//! OpenMetrics/Prometheus text rendering. With `--store DIR` the run
//! reads and publishes warm-start artifacts — run it twice with the same
//! directory and the second run skips tokenization and every join.
//!
//! `trace` runs the same pipeline inside its own session
//! [`ObsContext`](mc_obs::ObsContext) and writes the run's spans and
//! events as a Chrome/Perfetto trace (load the file in `about:tracing`
//! or <https://ui.perfetto.dev>). `--snapshot` and `--prom` additionally
//! write the session's `mc-obs/v2` JSON and OpenMetrics renderings —
//! CI uses this to attach an observability artifact to every build.
//!
//! `bench-compare` is the perf-regression gate: it diffs a fresh
//! `BENCH_*.json` (from `ssj_baseline`, `verifier_baseline` or
//! `store_warm`) against a committed baseline under the tolerance
//! budgets in `ci/bench_budgets.json`, and exits non-zero on any
//! regression. In smoke mode (`--smoke`, or `MC_BENCH_SMOKE` set) the
//! wall-clock budgets are skipped, so only deterministic work counters
//! and allocation counts gate — that is what keeps the CI step
//! non-flaky.
//!
//! The `store-*` subcommands manage an artifact store directory:
//! `store-init` creates (and validates) it, `store-stats` prints its
//! per-kind file/byte counts, and `store-gc` evicts oldest-first down to
//! a byte budget.
//!
//! `serve` starts the persistent debug daemon (identical to the `mcd`
//! binary): concurrent sessions over a length-prefixed JSON socket
//! protocol, each backed by an incrementally-rerun
//! [`DebugSession`](matchcatcher::DebugSession). See DESIGN.md §"Debug
//! service" for the protocol and `mc_serve::cli::USAGE` for the flags.

use matchcatcher::debugger::{DebugReport, DebuggerParams, MatchCatcher, RunObserver, Stage};
use matchcatcher::oracle::GoldOracle;
use mc_bench::compare;
use mc_blocking::{Blocker, KeyFunc};
use mc_datagen::profiles::DatasetProfile;
use mc_obs::{JsonValue, MetricsSnapshot, ObsContext};
use mc_store::{Store, StoreConfig};

fn usage() -> ! {
    eprintln!(
        "usage: mc obs-report [--profile NAME] [--scale X] [--seed N] [--k N] [--store DIR] [--json] [--prom]\n\
         \x20      mc trace --out PATH [--profile NAME] [--scale X] [--seed N] [--k N] [--store DIR] [--snapshot PATH] [--prom PATH]\n\
         \x20      mc bench-compare --bench NAME --baseline PATH --fresh PATH [--budgets PATH] [--smoke | --full]\n\
         \x20      mc store-init DIR\n\
         \x20      mc store-stats DIR\n\
         \x20      mc store-gc DIR --max-bytes N\n\
         \x20      mc serve [--addr HOST:PORT] [--workers N] [--store DIR] ...\n\
         profiles: {}",
        DatasetProfile::ALL.map(|p| p.name()).join(", ")
    );
    std::process::exit(2);
}

struct StagePrinter;

impl RunObserver for StagePrinter {
    fn stage_started(&mut self, stage: Stage) {
        eprintln!("[mc] {} ...", stage.span_name());
    }

    fn stage_finished(&mut self, stage: Stage, metrics: &MetricsSnapshot) {
        let stat = metrics.span(stage.span_name());
        eprintln!("[mc] {} done in {} µs", stage.span_name(), stat.total_us);
    }
}

fn open_or_die(dir: &str) -> Store {
    match Store::open(&StoreConfig::at(dir)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mc: cannot open store at {dir}: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_store_init(args: &[String]) {
    let [dir] = args else { usage() };
    let store = open_or_die(dir);
    println!("initialized mc-store/v1 at {}", store.root().display());
}

fn cmd_store_stats(args: &[String]) {
    let [dir] = args else { usage() };
    let store = open_or_die(dir);
    let stats = store.stats();
    println!("store {}", store.root().display());
    for (kind, ks) in &stats.kinds {
        println!("  {kind:<8} {:>6} files  {:>12} bytes", ks.files, ks.bytes);
    }
    println!(
        "  total    {:>6} files  {:>12} bytes  ({} stray tmp)",
        stats.files, stats.bytes, stats.stray_tmp
    );
}

fn cmd_store_gc(args: &[String]) {
    let (dir, max_bytes) = match args {
        [dir, flag, n] if flag == "--max-bytes" => {
            (dir, n.parse::<u64>().unwrap_or_else(|_| usage()))
        }
        _ => usage(),
    };
    let store = open_or_die(dir);
    let report = store.gc(max_bytes);
    println!(
        "gc: removed {} artifacts ({} bytes) and {} stray tmp files; {} bytes kept",
        report.removed_files, report.removed_bytes, report.removed_tmp, report.kept_bytes
    );
}

/// Flags shared by `obs-report` and `trace`: which synthetic pipeline
/// run to instrument.
struct PipelineOpts {
    profile: DatasetProfile,
    scale: f64,
    seed: u64,
    k: usize,
    store_dir: Option<String>,
    /// Flags the caller handles itself: `--flag value` pairs…
    extra_valued: Vec<(String, String)>,
    /// …and bare switches.
    extra_bare: Vec<String>,
}

impl PipelineOpts {
    /// Parses `args`, routing flags named in `valued`/`bare` into the
    /// `extra_*` buckets and rejecting anything else.
    fn parse(args: &[String], valued: &[&str], bare: &[&str]) -> Self {
        let mut opts = PipelineOpts {
            profile: DatasetProfile::FodorsZagats,
            scale: 1.0,
            seed: 42,
            k: 200,
            store_dir: None,
            extra_valued: Vec::new(),
            extra_bare: Vec::new(),
        };
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            if bare.contains(&a) {
                opts.extra_bare.push(a.to_string());
                i += 1;
                continue;
            }
            if valued.contains(&a) && i + 1 < args.len() {
                opts.extra_valued.push((a.to_string(), args[i + 1].clone()));
                i += 2;
                continue;
            }
            match a {
                "--profile" if i + 1 < args.len() => {
                    let name = &args[i + 1];
                    opts.profile = DatasetProfile::ALL
                        .into_iter()
                        .find(|p| p.name().eq_ignore_ascii_case(name))
                        .unwrap_or_else(|| usage());
                }
                "--scale" if i + 1 < args.len() => {
                    opts.scale = args[i + 1].parse().unwrap_or_else(|_| usage())
                }
                "--seed" if i + 1 < args.len() => {
                    opts.seed = args[i + 1].parse().unwrap_or_else(|_| usage())
                }
                "--k" if i + 1 < args.len() => {
                    opts.k = args[i + 1].parse().unwrap_or_else(|_| usage())
                }
                "--store" if i + 1 < args.len() => opts.store_dir = Some(args[i + 1].clone()),
                _ => usage(),
            }
            i += 2;
        }
        opts
    }

    fn extra(&self, flag: &str) -> Option<&str> {
        self.extra_valued
            .iter()
            .find(|(f, _)| f == flag)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, flag: &str) -> bool {
        self.extra_bare.iter().any(|f| f == flag)
    }

    /// Runs the standard synthetic debugging pipeline: a datagen profile,
    /// a deliberately lossy hash blocker on the first attribute, then the
    /// full prepare → top-k → verify → explain debugger under `obs`.
    fn run(&self, obs: ObsContext, observer: &mut dyn RunObserver) -> DebugReport {
        let ds = self.profile.generate_scaled(self.seed, self.scale);
        eprintln!(
            "[mc] dataset {} ({} × {} tuples, {} matches)",
            ds.name,
            ds.a.len(),
            ds.b.len(),
            ds.gold.len()
        );
        let blocker = Blocker::Hash(KeyFunc::Attr(mc_table::AttrId(0)));
        let c = blocker.apply(&ds.a, &ds.b);

        let mut params = DebuggerParams::default();
        params.joint.k = self.k;
        params.store = self.store_dir.clone().map(StoreConfig::at);
        params.obs = obs;
        if let Err(e) = params.validate() {
            eprintln!("mc: invalid parameters: {e}");
            std::process::exit(2);
        }
        let mc = MatchCatcher::new(params);
        let mut oracle = GoldOracle::exact(&ds.gold);
        let report = mc.run_observed(&ds.a, &ds.b, &c, &mut oracle, observer);
        println!(
            "confirmed {} killed-off matches in {} iterations ({} labels, |E| = {})",
            report.confirmed_matches.len(),
            report.iteration_count(),
            report.labeled,
            report.e_size
        );
        report
    }
}

fn cmd_obs_report(args: &[String]) {
    let opts = PipelineOpts::parse(args, &[], &["--json", "--prom"]);
    let baseline = MetricsSnapshot::capture();
    let _report = opts.run(ObsContext::current(), &mut StagePrinter);
    let delta = MetricsSnapshot::capture().since(&baseline);
    let hits = delta.counter("mc.store.hits");
    let misses = delta.counter("mc.store.misses");
    if hits + misses > 0 {
        println!("store: {hits} hits, {misses} misses");
    }
    println!("\n{}", delta.render());
    if opts.has("--json") {
        println!("{}", delta.to_json());
    }
    if opts.has("--prom") {
        println!("{}", delta.to_prometheus());
    }
}

fn cmd_trace(args: &[String]) {
    let opts = PipelineOpts::parse(args, &["--out", "--snapshot", "--prom"], &[]);
    let Some(out) = opts.extra("--out") else {
        usage()
    };

    // The whole run — dataset generation, blocker, debugger — executes
    // inside a fresh session context, so the trace holds exactly this
    // pipeline's spans and events and nothing else.
    let ctx = ObsContext::session();
    let guard = ctx.attach();
    let _report = opts.run(ctx.clone(), &mut StagePrinter);
    drop(guard);

    let snap = MetricsSnapshot::capture_from(&ctx);
    std::fs::write(out, snap.to_chrome_trace()).unwrap_or_else(|e| {
        eprintln!("mc trace: cannot write {out}: {e}");
        std::process::exit(1);
    });
    let spans = snap.events.iter().filter(|e| e.dur_ns > 0).count();
    println!(
        "wrote {out} ({spans} spans, {} instant events) — load it in about:tracing \
         or ui.perfetto.dev",
        snap.events.len() - spans
    );
    if let Some(path) = opts.extra("--snapshot") {
        std::fs::write(path, snap.to_json()).unwrap_or_else(|e| {
            eprintln!("mc trace: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path} (mc-obs/v2 snapshot)");
    }
    if let Some(path) = opts.extra("--prom") {
        std::fs::write(path, snap.to_prometheus()).unwrap_or_else(|e| {
            eprintln!("mc trace: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path} (OpenMetrics text)");
    }
}

fn cmd_bench_compare(args: &[String]) {
    let mut bench: Option<&str> = None;
    let mut baseline_path: Option<&str> = None;
    let mut fresh_path: Option<&str> = None;
    let mut budgets_path = "ci/bench_budgets.json";
    let mut smoke = std::env::var("MC_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--full" => {
                smoke = false;
                i += 1;
            }
            "--bench" if i + 1 < args.len() => {
                bench = Some(args[i + 1].as_str());
                i += 2;
            }
            "--baseline" if i + 1 < args.len() => {
                baseline_path = Some(args[i + 1].as_str());
                i += 2;
            }
            "--fresh" if i + 1 < args.len() => {
                fresh_path = Some(args[i + 1].as_str());
                i += 2;
            }
            "--budgets" if i + 1 < args.len() => {
                budgets_path = args[i + 1].as_str();
                i += 2;
            }
            _ => usage(),
        }
    }
    let (Some(bench), Some(baseline_path), Some(fresh_path)) = (bench, baseline_path, fresh_path)
    else {
        usage()
    };

    let read_json = |path: &str| -> JsonValue {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("mc bench-compare: cannot read {path}: {e}");
            std::process::exit(1);
        });
        JsonValue::parse(&text).unwrap_or_else(|e| {
            eprintln!("mc bench-compare: {path} is not valid JSON: {e}");
            std::process::exit(1);
        })
    };
    let budgets_text = std::fs::read_to_string(budgets_path).unwrap_or_else(|e| {
        eprintln!("mc bench-compare: cannot read {budgets_path}: {e}");
        std::process::exit(1);
    });
    let rules = compare::parse_budgets(&budgets_text).unwrap_or_else(|e| {
        eprintln!("mc bench-compare: {budgets_path}: {e}");
        std::process::exit(1);
    });
    if !rules.iter().any(|r| r.bench == bench) {
        eprintln!("mc bench-compare: no rules for bench '{bench}' in {budgets_path}");
        std::process::exit(1);
    }

    let report = compare::compare(
        bench,
        &read_json(baseline_path),
        &read_json(fresh_path),
        &rules,
        smoke,
    );
    print!("{}", report.render());
    if report.failed() {
        eprintln!(
            "mc bench-compare: PERF REGRESSION in '{bench}' — inspect the checks above; \
             raising a budget in {budgets_path} or regenerating {baseline_path} requires \
             understanding which change made the pipeline do more work"
        );
        std::process::exit(1);
    }
    println!("bench-compare: '{bench}' within budget");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(cmd) = args.get(1) else { usage() };
    let rest = &args[2..];
    match cmd.as_str() {
        "obs-report" => cmd_obs_report(rest),
        "trace" => cmd_trace(rest),
        "bench-compare" => cmd_bench_compare(rest),
        "store-init" => cmd_store_init(rest),
        "store-stats" => cmd_store_stats(rest),
        "store-gc" => cmd_store_gc(rest),
        "serve" => std::process::exit(mc_serve::cli::run(rest)),
        _ => usage(),
    }
}

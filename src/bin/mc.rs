//! `mc` — the MatchCatcher workspace CLI.
//!
//! Currently one subcommand:
//!
//! ```text
//! mc obs-report [--profile NAME] [--scale X] [--seed N] [--k N] [--json]
//! ```
//!
//! Runs the full debugging pipeline (prepare → top-k → verify → explain)
//! on a synthetic datagen profile with a hash blocker, then prints the
//! observability layer's human-readable stage breakdown; `--json` adds
//! the machine-readable `mc-obs/v1` snapshot (the same schema the bench
//! binaries emit with `--obs`).

use matchcatcher::debugger::{DebuggerParams, MatchCatcher, RunObserver, Stage};
use matchcatcher::oracle::GoldOracle;
use mc_blocking::{Blocker, KeyFunc};
use mc_datagen::profiles::DatasetProfile;
use mc_obs::MetricsSnapshot;

fn usage() -> ! {
    eprintln!(
        "usage: mc obs-report [--profile NAME] [--scale X] [--seed N] [--k N] [--json]\n\
         profiles: {}",
        DatasetProfile::ALL.map(|p| p.name()).join(", ")
    );
    std::process::exit(2);
}

struct StagePrinter;

impl RunObserver for StagePrinter {
    fn stage_started(&mut self, stage: Stage) {
        eprintln!("[mc] {} ...", stage.span_name());
    }

    fn stage_finished(&mut self, stage: Stage, metrics: &MetricsSnapshot) {
        let stat = metrics.span(stage.span_name());
        eprintln!("[mc] {} done in {} µs", stage.span_name(), stat.total_us);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 2 || args[1] != "obs-report" {
        usage();
    }
    let mut profile = DatasetProfile::FodorsZagats;
    let mut scale = 1.0f64;
    let mut seed = 42u64;
    let mut k = 200usize;
    let mut json = false;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                json = true;
                i += 1;
                continue;
            }
            "--profile" if i + 1 < args.len() => {
                let name = &args[i + 1];
                profile = DatasetProfile::ALL
                    .into_iter()
                    .find(|p| p.name().eq_ignore_ascii_case(name))
                    .unwrap_or_else(|| usage());
            }
            "--scale" if i + 1 < args.len() => {
                scale = args[i + 1].parse().unwrap_or_else(|_| usage())
            }
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().unwrap_or_else(|_| usage())
            }
            "--k" if i + 1 < args.len() => k = args[i + 1].parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        i += 2;
    }

    let baseline = MetricsSnapshot::capture();
    let ds = profile.generate_scaled(seed, scale);
    eprintln!(
        "[mc] dataset {} ({} × {} tuples, {} matches)",
        ds.name,
        ds.a.len(),
        ds.b.len(),
        ds.gold.len()
    );
    // A deliberately lossy blocker so the debugger has matches to recover:
    // hash on the first attribute's exact value.
    let blocker = Blocker::Hash(KeyFunc::Attr(mc_table::AttrId(0)));
    let c = blocker.apply(&ds.a, &ds.b);

    let mut params = DebuggerParams::default();
    params.joint.k = k;
    if let Err(e) = params.validate() {
        eprintln!("mc obs-report: invalid parameters: {e}");
        std::process::exit(2);
    }
    let mc = MatchCatcher::new(params);
    let mut oracle = GoldOracle::exact(&ds.gold);
    let report = mc.run_observed(&ds.a, &ds.b, &c, &mut oracle, &mut StagePrinter);

    println!(
        "confirmed {} killed-off matches in {} iterations ({} labels, |E| = {})",
        report.confirmed_matches.len(),
        report.iteration_count(),
        report.labeled,
        report.e_size
    );
    let delta = MetricsSnapshot::capture().since(&baseline);
    println!("\n{}", delta.render());
    if json {
        println!("{}", delta.to_json());
    }
}

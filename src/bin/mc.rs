//! `mc` — the MatchCatcher workspace CLI.
//!
//! Subcommands:
//!
//! ```text
//! mc obs-report [--profile NAME] [--scale X] [--seed N] [--k N]
//!               [--store DIR] [--json]
//! mc store-init DIR
//! mc store-stats DIR
//! mc store-gc DIR --max-bytes N
//! ```
//!
//! `obs-report` runs the full debugging pipeline (prepare → top-k →
//! verify → explain) on a synthetic datagen profile with a hash blocker,
//! then prints the observability layer's human-readable stage breakdown;
//! `--json` adds the machine-readable `mc-obs/v1` snapshot (the same
//! schema the bench binaries emit with `--obs`). With `--store DIR` the
//! run reads and publishes warm-start artifacts — run it twice with the
//! same directory and the second run skips tokenization and every join.
//!
//! The `store-*` subcommands manage an artifact store directory:
//! `store-init` creates (and validates) it, `store-stats` prints its
//! per-kind file/byte counts, and `store-gc` evicts oldest-first down to
//! a byte budget.

use matchcatcher::debugger::{DebuggerParams, MatchCatcher, RunObserver, Stage};
use matchcatcher::oracle::GoldOracle;
use mc_blocking::{Blocker, KeyFunc};
use mc_datagen::profiles::DatasetProfile;
use mc_obs::MetricsSnapshot;
use mc_store::{Store, StoreConfig};

fn usage() -> ! {
    eprintln!(
        "usage: mc obs-report [--profile NAME] [--scale X] [--seed N] [--k N] [--store DIR] [--json]\n\
         \x20      mc store-init DIR\n\
         \x20      mc store-stats DIR\n\
         \x20      mc store-gc DIR --max-bytes N\n\
         profiles: {}",
        DatasetProfile::ALL.map(|p| p.name()).join(", ")
    );
    std::process::exit(2);
}

struct StagePrinter;

impl RunObserver for StagePrinter {
    fn stage_started(&mut self, stage: Stage) {
        eprintln!("[mc] {} ...", stage.span_name());
    }

    fn stage_finished(&mut self, stage: Stage, metrics: &MetricsSnapshot) {
        let stat = metrics.span(stage.span_name());
        eprintln!("[mc] {} done in {} µs", stage.span_name(), stat.total_us);
    }
}

fn open_or_die(dir: &str) -> Store {
    match Store::open(&StoreConfig::at(dir)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mc: cannot open store at {dir}: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_store_init(args: &[String]) {
    let [dir] = args else { usage() };
    let store = open_or_die(dir);
    println!("initialized mc-store/v1 at {}", store.root().display());
}

fn cmd_store_stats(args: &[String]) {
    let [dir] = args else { usage() };
    let store = open_or_die(dir);
    let stats = store.stats();
    println!("store {}", store.root().display());
    for (kind, ks) in &stats.kinds {
        println!("  {kind:<8} {:>6} files  {:>12} bytes", ks.files, ks.bytes);
    }
    println!(
        "  total    {:>6} files  {:>12} bytes  ({} stray tmp)",
        stats.files, stats.bytes, stats.stray_tmp
    );
}

fn cmd_store_gc(args: &[String]) {
    let (dir, max_bytes) = match args {
        [dir, flag, n] if flag == "--max-bytes" => {
            (dir, n.parse::<u64>().unwrap_or_else(|_| usage()))
        }
        _ => usage(),
    };
    let store = open_or_die(dir);
    let report = store.gc(max_bytes);
    println!(
        "gc: removed {} artifacts ({} bytes) and {} stray tmp files; {} bytes kept",
        report.removed_files, report.removed_bytes, report.removed_tmp, report.kept_bytes
    );
}

fn cmd_obs_report(args: &[String]) {
    let mut profile = DatasetProfile::FodorsZagats;
    let mut scale = 1.0f64;
    let mut seed = 42u64;
    let mut k = 200usize;
    let mut store_dir: Option<String> = None;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                json = true;
                i += 1;
                continue;
            }
            "--profile" if i + 1 < args.len() => {
                let name = &args[i + 1];
                profile = DatasetProfile::ALL
                    .into_iter()
                    .find(|p| p.name().eq_ignore_ascii_case(name))
                    .unwrap_or_else(|| usage());
            }
            "--scale" if i + 1 < args.len() => {
                scale = args[i + 1].parse().unwrap_or_else(|_| usage())
            }
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().unwrap_or_else(|_| usage())
            }
            "--k" if i + 1 < args.len() => k = args[i + 1].parse().unwrap_or_else(|_| usage()),
            "--store" if i + 1 < args.len() => store_dir = Some(args[i + 1].clone()),
            _ => usage(),
        }
        i += 2;
    }

    let baseline = MetricsSnapshot::capture();
    let ds = profile.generate_scaled(seed, scale);
    eprintln!(
        "[mc] dataset {} ({} × {} tuples, {} matches)",
        ds.name,
        ds.a.len(),
        ds.b.len(),
        ds.gold.len()
    );
    // A deliberately lossy blocker so the debugger has matches to recover:
    // hash on the first attribute's exact value.
    let blocker = Blocker::Hash(KeyFunc::Attr(mc_table::AttrId(0)));
    let c = blocker.apply(&ds.a, &ds.b);

    let mut params = DebuggerParams::default();
    params.joint.k = k;
    params.store = store_dir.map(StoreConfig::at);
    if let Err(e) = params.validate() {
        eprintln!("mc obs-report: invalid parameters: {e}");
        std::process::exit(2);
    }
    let mc = MatchCatcher::new(params);
    let mut oracle = GoldOracle::exact(&ds.gold);
    let report = mc.run_observed(&ds.a, &ds.b, &c, &mut oracle, &mut StagePrinter);

    println!(
        "confirmed {} killed-off matches in {} iterations ({} labels, |E| = {})",
        report.confirmed_matches.len(),
        report.iteration_count(),
        report.labeled,
        report.e_size
    );
    let delta = MetricsSnapshot::capture().since(&baseline);
    let hits = delta.counter("mc.store.hits");
    let misses = delta.counter("mc.store.misses");
    if hits + misses > 0 {
        println!("store: {hits} hits, {misses} misses");
    }
    println!("\n{}", delta.render());
    if json {
        println!("{}", delta.to_json());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(cmd) = args.get(1) else { usage() };
    let rest = &args[2..];
    match cmd.as_str() {
        "obs-report" => cmd_obs_report(rest),
        "store-init" => cmd_store_init(rest),
        "store-stats" => cmd_store_stats(rest),
        "store-gc" => cmd_store_gc(rest),
        _ => usage(),
    }
}

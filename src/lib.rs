//! Umbrella crate for the MatchCatcher workspace: re-exports every
//! sub-crate so examples and integration tests can use one import root.
//! (The `mc-core` package's library is named `matchcatcher`.)

pub use matchcatcher;
pub use mc_blocking as blocking;
pub use mc_datagen as datagen;
pub use mc_ml as ml;
pub use mc_obs as obs;
pub use mc_strsim as strsim;
pub use mc_table as table;

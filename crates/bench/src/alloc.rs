//! Counting global allocator for the bench binaries.
//!
//! Wall-clock numbers are machine-dependent and noisy in CI; allocation
//! *counts* are not — with pinned threads and a fixed seed they are a
//! deterministic work counter, so the perf-regression gate (see
//! [`crate::compare`]) can budget them without flaking. Linking
//! `mc-bench` installs [`CountingAlloc`] as the process-wide
//! `#[global_allocator]`; the overhead is two relaxed atomic increments
//! per allocation, which is invisible next to the allocation itself.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// A [`System`]-backed allocator that counts every allocation and the
/// bytes it requested. Frees are deliberately not tracked: the gate cares
/// about allocation *pressure*, and a count that only grows composes with
/// baseline/delta arithmetic the same way `mc-obs` counters do.
pub struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size.saturating_sub(layout.size()) as u64, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Cumulative allocation totals since process start. Capture one before
/// and one after a measured region and diff with [`AllocStats::since`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Heap allocations (`alloc` + `alloc_zeroed` + grow-`realloc` calls).
    pub allocations: u64,
    /// Total bytes requested across those allocations (`realloc` counts
    /// only the growth).
    pub bytes: u64,
}

impl AllocStats {
    /// The current process-wide totals.
    pub fn capture() -> Self {
        AllocStats {
            allocations: ALLOCATIONS.load(Relaxed),
            bytes: ALLOCATED_BYTES.load(Relaxed),
        }
    }

    /// The delta between this capture and an earlier `base`.
    pub fn since(&self, base: &Self) -> Self {
        AllocStats {
            allocations: self.allocations.saturating_sub(base.allocations),
            bytes: self.bytes.saturating_sub(base.bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_counted() {
        let base = AllocStats::capture();
        let v: Vec<u64> = Vec::with_capacity(1024);
        let delta = AllocStats::capture().since(&base);
        assert!(delta.allocations >= 1, "Vec allocation must be counted");
        assert!(delta.bytes >= 8 * 1024);
        drop(v);
    }
}

//! Incremental-debugging baseline: cold pipeline refresh vs.
//! delta-patched reruns, writing `BENCH_incr.json`.
//!
//! Three scenarios per dataset, all through [`MatchCatcher::start_session`]:
//!
//! * `cold` — a fresh session on the current tables: full tokenization,
//!   arena build, and one joint top-K execution. Its *refresh* time is
//!   the prepare + topk stage spans — the work a user pays today for
//!   every blocker tweak or data fix.
//! * `delta` — a 1% random [`TableDelta`] against each table (splice
//!   updates, tombstone deletes, appended inserts) plus a small
//!   killed-set diff, replayed through `DebugSession::rerun`. Refresh
//!   time is the rerun span minus the verify/explain stages.
//! * `killed_only` — unchanged tables, killed-set diff only: the fast
//!   path that reuses every join verbatim.
//!
//! Verification and explanation run identically in every scenario, so
//! they are excluded from the refresh times — the comparison isolates
//! exactly the work the incremental path avoids. The identity gate runs
//! on every scenario: each incremental report must match a cold session
//! on the patched state field for field (metrics aside); a mismatch
//! aborts with a panic, so the CI smoke run doubles as an exactness
//! gate.
//!
//! `MC_BENCH_SMOKE=1` shrinks the datasets for CI. `--min-speedup-delta`
//! / `--min-speedup-killed` make the run exit non-zero below the given
//! refresh-speedup floors (used when regenerating the committed
//! full-scale baseline, not in smoke CI).
//!
//! `cargo run --release -p mc-bench --bin incr_baseline [--scale X]
//!  [--k N] [--runs N] [--out PATH] [--min-speedup-delta X]
//!  [--min-speedup-killed X]`

use matchcatcher::debugger::{DebugReport, DebuggerParams, MatchCatcher};
use matchcatcher::joint::QStrategy;
use matchcatcher::oracle::GoldOracle;
use mc_bench::alloc::AllocStats;
use mc_bench::env::BenchEnv;
use mc_blocking::{Blocker, KeyFunc};
use mc_datagen::delta::{perturb_killed, random_delta, DeltaSpec};
use mc_datagen::profiles::DatasetProfile;
use mc_obs::MetricsSnapshot;
use mc_table::{AttrId, GoldMatches, Table, TableDelta};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// Dataset name suffix for a scale factor. Dots would split into extra
/// segments in `bench-compare`'s flattened metric paths, so `0.25`
/// becomes `0_25`.
fn scale_tag(scale: f64) -> String {
    format!("{scale}").replace('.', "_")
}

/// The result-bearing report fields, metrics excluded.
fn summarize(r: &DebugReport) -> impl PartialEq + std::fmt::Debug {
    (
        r.confirmed_matches.clone(),
        r.e_size,
        r.q_used,
        r.labeled,
        r.iterations.clone(),
        r.problems.clone(),
    )
}

struct ScenarioReport {
    name: &'static str,
    refresh_us: u64,
    records_patched: u64,
    pairs_rescored: u64,
    pairs_reused: u64,
    full_rejoins: u64,
    compactions: u64,
    allocs: AllocStats,
}

/// Cold refresh cost: prepare (promising + tokenization) plus topk
/// (arenas + joint K-execution) stage time of a fresh session.
fn cold_refresh_us(delta: &MetricsSnapshot) -> u64 {
    delta.span("mc.core.debug.prepare").total_us + delta.span("mc.core.debug.topk").total_us
}

/// Incremental refresh cost: everything the rerun did except the
/// verify/explain stages, which run identically in every scenario.
fn rerun_refresh_us(delta: &MetricsSnapshot) -> u64 {
    let rerun = delta.span("mc.core.incr.rerun").total_us;
    let excluded =
        delta.span("mc.core.debug.verify").total_us + delta.span("mc.core.debug.explain").total_us;
    rerun - excluded.min(rerun)
}

fn scenario_counters(
    name: &'static str,
    delta: &MetricsSnapshot,
    refresh_us: u64,
    allocs: AllocStats,
) -> ScenarioReport {
    ScenarioReport {
        name,
        refresh_us,
        records_patched: delta.counter("mc.core.incr.records_patched"),
        pairs_rescored: delta.counter("mc.core.incr.pairs_rescored"),
        pairs_reused: delta.counter("mc.core.incr.pairs_reused"),
        full_rejoins: delta.counter("mc.core.incr.full_rejoins"),
        compactions: delta.counter("mc.core.incr.compactions"),
        allocs,
    }
}

struct DatasetRun {
    name: String,
    rows_a: usize,
    rows_b: usize,
    configs: usize,
    scenarios: Vec<ScenarioReport>,
    speedup_delta: f64,
    speedup_killed: f64,
}

#[allow(clippy::too_many_arguments)]
fn bench_dataset(
    name: String,
    a: Table,
    b: Table,
    gold: GoldMatches,
    k: usize,
    runs: usize,
    delta_frac: f64,
    seed: u64,
    threads: usize,
) -> DatasetRun {
    let killed = Blocker::Hash(KeyFunc::Attr(AttrId(0))).apply(&a, &b);
    let mut params = DebuggerParams::default();
    params.joint.k = k;
    params.joint.q = QStrategy::Fixed(1);
    if threads != 0 {
        params.joint.threads = threads;
    }
    let mc = MatchCatcher::new(params);

    // Cold session: refresh cost is best-of-N fresh starts (the first
    // also becomes the live session for the incremental scenarios).
    let mut oracle = GoldOracle::exact(&gold);
    let mut best_cold: Option<u64> = None;
    let mut cold_allocs = AllocStats::capture();
    let mut live = None;
    for rep in 0..runs.max(1) {
        let alloc_base = AllocStats::capture();
        let base = MetricsSnapshot::capture();
        let started = mc.start_session(a.clone(), b.clone(), killed.clone(), &mut oracle);
        let delta = MetricsSnapshot::capture().since(&base);
        if rep == 0 {
            cold_allocs = AllocStats::capture().since(&alloc_base);
            live = Some(started);
        }
        let us = cold_refresh_us(&delta);
        if best_cold.is_none_or(|b| us < b) {
            best_cold = Some(us);
        }
    }
    let (mut session, start_report) = live.expect("at least one run");
    let cold_us = best_cold.expect("at least one run");
    let configs = start_report.configs.len();

    // 1% table delta + small killed diff.
    let mut rng = StdRng::seed_from_u64(seed);
    let da = random_delta(
        session.table_a(),
        DeltaSpec::fraction_of(a.len(), delta_frac),
        &mut rng,
    );
    let db = random_delta(
        session.table_b(),
        DeltaSpec::fraction_of(b.len(), delta_frac),
        &mut rng,
    );
    let nk = perturb_killed(
        session.killed(),
        (session.table_a().len() + da.inserts.len()) as u32,
        (session.table_b().len() + db.inserts.len()) as u32,
        0.01,
        killed.len() / 100 + 1,
        &mut rng,
    );
    let alloc_base = AllocStats::capture();
    let base = MetricsSnapshot::capture();
    let incr_report = session
        .rerun(&da, &db, Some(nk), &mut oracle)
        .expect("generated delta is valid");
    let delta_metrics = MetricsSnapshot::capture().since(&base);
    let delta_allocs = AllocStats::capture().since(&alloc_base);
    let delta_us = rerun_refresh_us(&delta_metrics);
    if std::env::var("MC_BENCH_DUMP").is_ok_and(|v| v == "1") {
        eprintln!(
            "--- {name} delta-rerun metrics ---\n{}",
            delta_metrics.render()
        );
    }

    // Identity gate: the incremental report must match a cold session on
    // the patched state.
    let (_, cold_check) = mc.start_session(
        session.table_a().clone(),
        session.table_b().clone(),
        session.killed().clone(),
        &mut GoldOracle::exact(&gold),
    );
    assert!(
        summarize(&cold_check) == summarize(&incr_report),
        "{name}: delta rerun diverged from the cold run on the patched tables"
    );

    // Killed-set-only diff on the patched state.
    let nk2 = perturb_killed(
        session.killed(),
        session.table_a().len() as u32,
        session.table_b().len() as u32,
        0.02,
        killed.len() / 50 + 1,
        &mut rng,
    );
    let alloc_base = AllocStats::capture();
    let base = MetricsSnapshot::capture();
    let killed_report = session
        .rerun(
            &TableDelta::new(),
            &TableDelta::new(),
            Some(nk2),
            &mut oracle,
        )
        .expect("killed-only rerun");
    let killed_metrics = MetricsSnapshot::capture().since(&base);
    let killed_allocs = AllocStats::capture().since(&alloc_base);
    let killed_us = rerun_refresh_us(&killed_metrics);

    let (_, cold_check2) = mc.start_session(
        session.table_a().clone(),
        session.table_b().clone(),
        session.killed().clone(),
        &mut GoldOracle::exact(&gold),
    );
    assert!(
        summarize(&cold_check2) == summarize(&killed_report),
        "{name}: killed-only rerun diverged from the cold run"
    );

    let rows_a = session.table_a().len();
    let rows_b = session.table_b().len();
    DatasetRun {
        name,
        rows_a,
        rows_b,
        configs,
        speedup_delta: cold_us as f64 / delta_us.max(1) as f64,
        speedup_killed: cold_us as f64 / killed_us.max(1) as f64,
        scenarios: vec![
            ScenarioReport {
                name: "cold",
                refresh_us: cold_us,
                records_patched: 0,
                pairs_rescored: 0,
                pairs_reused: 0,
                full_rejoins: 0,
                compactions: 0,
                allocs: cold_allocs,
            },
            scenario_counters("delta", &delta_metrics, delta_us, delta_allocs),
            scenario_counters("killed_only", &killed_metrics, killed_us, killed_allocs),
        ],
    }
}

fn main() {
    let env = BenchEnv::parse();
    let k: usize = env.value_or("--k", 200);
    let runs = env.runs(3);
    let out_path = env.out("BENCH_incr.json");
    let min_delta: f64 = env.value_or("--min-speedup-delta", 0.0);
    let min_killed: f64 = env.value_or("--min-speedup-killed", 0.0);
    let threads = env.threads();

    // Full mode: 60K×60K zipf + amazon-google ×0.25 (the paper's
    // software-products workload). Smoke shrinks both.
    let zipf_scale = env.scale(1.0, 0.01);
    let ag_scale = if env.smoke { 0.05 } else { 0.25 };

    let mut datasets = Vec::new();
    {
        let ds = DatasetProfile::ZipfScale.generate_scaled(7, zipf_scale);
        datasets.push(bench_dataset(
            format!("{}-{}", ds.name, scale_tag(zipf_scale)),
            ds.a,
            ds.b,
            ds.gold,
            k,
            runs,
            0.01,
            41,
            threads,
        ));
    }
    {
        let ds = DatasetProfile::AmazonGoogle.generate_scaled(7, ag_scale);
        datasets.push(bench_dataset(
            format!("{}-{}", ds.name, scale_tag(ag_scale)),
            ds.a,
            ds.b,
            ds.gold,
            k,
            runs,
            0.01,
            43,
            threads,
        ));
    }

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"mc-bench-incr/v1\",\n  \"datasets\": [");
    for (i, d) in datasets.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "\n    {{\"name\": \"{}\", \"rows_a\": {}, \"rows_b\": {}, \"k\": {k}, \
             \"configs\": {}, \"scenarios\": [",
            d.name, d.rows_a, d.rows_b, d.configs
        );
        for (j, s) in d.scenarios.iter().enumerate() {
            if j > 0 {
                json.push(',');
            }
            let _ = write!(
                json,
                "\n      {{\"name\": \"{}\", \"refresh_us\": {}, \
                 \"counters\": {{\"records_patched\": {}, \"pairs_rescored\": {}, \
                 \"pairs_reused\": {}, \"full_rejoins\": {}, \"compactions\": {}}}, \
                 \"allocs\": {{\"count\": {}, \"bytes\": {}}}}}",
                s.name,
                s.refresh_us,
                s.records_patched,
                s.pairs_rescored,
                s.pairs_reused,
                s.full_rejoins,
                s.compactions,
                s.allocs.allocations,
                s.allocs.bytes
            );
        }
        let _ = write!(
            json,
            "\n    ], \"identity\": true, \"speedup\": {{\"delta\": {:.4}, \
             \"killed_only\": {:.4}}}}}",
            d.speedup_delta, d.speedup_killed
        );
    }
    json.push_str("\n  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_incr.json");

    println!(
        "{:<22} {:<12} {:>12} {:>12} {:>12} {:>10}",
        "dataset", "scenario", "refresh", "rescored", "reused", "allocs"
    );
    for d in &datasets {
        for s in &d.scenarios {
            println!(
                "{:<22} {:<12} {:>10.2}ms {:>12} {:>12} {:>10}",
                d.name,
                s.name,
                s.refresh_us as f64 / 1e3,
                s.pairs_rescored,
                s.pairs_reused,
                s.allocs.allocations
            );
        }
        println!(
            "{:<22} identity ok; speedup {:.1}x (1% delta), {:.1}x (killed-only)",
            d.name, d.speedup_delta, d.speedup_killed
        );
    }
    println!("wrote {out_path}");

    for d in &datasets {
        assert!(
            d.speedup_delta >= min_delta,
            "{}: delta speedup {:.2}x below the {min_delta:.2}x floor",
            d.name,
            d.speedup_delta
        );
        assert!(
            d.speedup_killed >= min_killed,
            "{}: killed-only speedup {:.2}x below the {min_killed:.2}x floor",
            d.name,
            d.speedup_killed
        );
    }
}

//! **§6.5 ablation: multiple configs vs a single config.**
//!
//! The paper reports that using the config tree instead of only the root
//! config (all promising attributes concatenated — the strategy of the
//! related work \[29\]) retrieves 10–74% more killed-off matches.
//! We compare `ME` (gold matches inside the candidate union `E`).
//!
//! `cargo run --release -p mc-bench --bin ablation_configs [--scale X]`

use matchcatcher::config::{ConfigNode, ConfigTree};
use matchcatcher::debugger::MatchCatcher;
use matchcatcher::joint::{run_joint, CandidateUnion};
use mc_bench::blockers::table2_suite;
use mc_bench::harness::CliArgs;
use mc_datagen::profiles::DatasetProfile;
use mc_datagen::EmDataset;
use mc_table::split_pair_key;

fn gold_in(union: &CandidateUnion, ds: &EmDataset) -> usize {
    union
        .pairs
        .iter()
        .filter(|&&k| {
            let (x, y) = split_pair_key(k);
            ds.gold.is_match(x, y)
        })
        .count()
}

fn main() {
    let args = CliArgs::parse(0.0);
    let sets = [
        (DatasetProfile::AmazonGoogle, 1.0),
        (DatasetProfile::WalmartAmazon, 1.0),
        (DatasetProfile::AcmDblp, 1.0),
        (DatasetProfile::FodorsZagats, 1.0),
        (DatasetProfile::Music1, 0.05),
    ];
    println!(
        "{:<16} {:<6} {:>10} {:>12} {:>8}",
        "dataset", "Q", "ME single", "ME multi", "gain"
    );
    for (profile, default_scale) in sets {
        let scale = if args.scale > 0.0 {
            args.scale.min(1.0)
        } else {
            default_scale
        };
        let ds = profile.generate_scaled(args.seed, scale);
        let suite = table2_suite(profile, ds.a.schema());
        let nb = &suite[0];
        let c = nb.blocker.apply(&ds.a, &ds.b);

        let mc = MatchCatcher::new(args.params());
        let prepared = mc.prepare(&ds.a, &ds.b);

        // Multi-config (the full tree).
        let multi = run_joint(
            &prepared.tok_a,
            &prepared.tok_b,
            &c,
            &prepared.tree,
            args.params().joint,
        );
        let me_multi = gold_in(&CandidateUnion::build(&multi.lists), &ds);

        // Single config: just the root (all promising attributes).
        let single_tree = ConfigTree {
            nodes: vec![ConfigNode {
                config: prepared.tree.nodes[0].config,
                parent: None,
                expanded: false,
            }],
        };
        let single = run_joint(
            &prepared.tok_a,
            &prepared.tok_b,
            &c,
            &single_tree,
            args.params().joint,
        );
        let me_single = gold_in(&CandidateUnion::build(&single.lists), &ds);

        let gain = if me_single == 0 {
            f64::INFINITY
        } else {
            100.0 * (me_multi as f64 - me_single as f64) / me_single as f64
        };
        println!(
            "{:<16} {:<6} {:>10} {:>12} {:>7.1}%",
            ds.name, nb.label, me_single, me_multi, gain
        );
    }
    args.obs_report();
}

//! Regenerates the **§6.4 runtime numbers**: wall time of the top-k
//! module per dataset (for one blocker of each suite) and the Match
//! Verifier's per-iteration latency.
//!
//! Paper (Cython, Intel E5-1650): top-k took 6.6–9.4 s (A-G), 97–310
//! (W-A), 2.8–3.2 (A-D), 0.2 (F-Z), 12.1–24.4 (M1), 57–230 (M2), 65–344
//! (Papers); aggregation < 0.1 s; feedback processing 0.14–0.18 s.
//!
//! `cargo run --release -p mc-bench --bin sec64_runtime [--scale X]`

use matchcatcher::debugger::MatchCatcher;
use matchcatcher::joint::CandidateUnion;
use mc_bench::blockers::table2_suite;
use mc_bench::harness::CliArgs;
use mc_datagen::profiles::DatasetProfile;
use std::time::Instant;

fn main() {
    let args = CliArgs::parse(0.0);
    let sets = [
        (DatasetProfile::AmazonGoogle, 1.0),
        (DatasetProfile::WalmartAmazon, 1.0),
        (DatasetProfile::AcmDblp, 1.0),
        (DatasetProfile::FodorsZagats, 1.0),
        (DatasetProfile::Music1, 0.05),
        (DatasetProfile::Music2, 0.02),
        (DatasetProfile::Papers, 0.02),
    ];
    println!(
        "{:<16} {:>8} {:<6} {:>10} {:>10} {:>12}",
        "dataset", "scale", "Q", "topk (s)", "agg (s)", "configs"
    );
    for (profile, default_scale) in sets {
        let scale = if args.scale > 0.0 {
            args.scale.min(1.0)
        } else {
            default_scale
        };
        let ds = profile.generate_scaled(args.seed, scale);
        for nb in table2_suite(profile, ds.a.schema()).iter().take(2) {
            let c = nb.blocker.apply(&ds.a, &ds.b);
            let mc = MatchCatcher::new(args.params());
            let prepared = mc.prepare(&ds.a, &ds.b);
            let t0 = Instant::now();
            let joint = mc.topk(&prepared, &c);
            let topk = t0.elapsed();
            let t1 = Instant::now();
            let union = CandidateUnion::build(&joint.lists);
            let agg = t1.elapsed();
            println!(
                "{:<16} {:>8} {:<6} {:>10.2} {:>10.3} {:>12} (|E|={})",
                ds.name,
                scale,
                nb.label,
                topk.as_secs_f64(),
                agg.as_secs_f64(),
                joint.configs.len(),
                union.len()
            );
        }
    }
    args.obs_report();
}

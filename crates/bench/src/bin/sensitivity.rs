//! **§6.5 sensitivity analysis.**
//!
//! 1. Varying `k` (pairs retrieved per config): more matches retrieved
//!    up to a point, at higher runtime — the paper's observed
//!    diminishing returns.
//! 2. Varying the number of active-learning iterations (the paper uses
//!    3): a balance between classifier accuracy and quickly surfacing
//!    matches.
//!
//! `cargo run --release -p mc-bench --bin sensitivity [--scale X]`

use matchcatcher::debugger::MatchCatcher;
use matchcatcher::joint::CandidateUnion;
use matchcatcher::oracle::GoldOracle;
use mc_bench::blockers::table2_suite;
use mc_bench::harness::CliArgs;
use mc_datagen::profiles::DatasetProfile;
use mc_table::split_pair_key;
use std::time::Instant;

fn main() {
    let args = CliArgs::parse(1.0);
    let ds = DatasetProfile::AmazonGoogle.generate_scaled(args.seed, args.scale.min(1.0));
    let suite = table2_suite(DatasetProfile::AmazonGoogle, ds.a.schema());
    let nb = suite.iter().find(|n| n.label == "HASH").unwrap();
    let c = nb.blocker.apply(&ds.a, &ds.b);
    let md = ds.gold.killed(&c);
    println!("dataset {} blocker {} MD={md}", ds.name, nb.label);

    println!("\n-- sensitivity to k --");
    println!("{:>6} {:>8} {:>8} {:>10}", "k", "|E|", "ME", "topk (s)");
    for k in [100usize, 250, 500, 1000, 2000] {
        let mut params = args.params();
        params.joint.k = k;
        let mc = MatchCatcher::new(params);
        let prepared = mc.prepare(&ds.a, &ds.b);
        let t = Instant::now();
        let joint = mc.topk(&prepared, &c);
        let elapsed = t.elapsed();
        let union = CandidateUnion::build(&joint.lists);
        let me = union
            .pairs
            .iter()
            .filter(|&&key| {
                let (x, y) = split_pair_key(key);
                ds.gold.is_match(x, y)
            })
            .count();
        println!(
            "{:>6} {:>8} {:>8} {:>10.2}",
            k,
            union.len(),
            me,
            elapsed.as_secs_f64()
        );
    }

    println!("\n-- sensitivity to active-learning iterations --");
    println!(
        "{:>9} {:>8} {:>8} {:>8}",
        "al_iters", "F", "iters", "labels"
    );
    for al in [0usize, 1, 2, 3, 4, 6] {
        let mut params = args.params();
        params.verifier.al_iters = al;
        let mc = MatchCatcher::new(params);
        let mut oracle = GoldOracle::exact(&ds.gold);
        let report = mc.run(&ds.a, &ds.b, &c, &mut oracle);
        println!(
            "{:>9} {:>8} {:>8} {:>8}",
            al,
            report.confirmed_matches.len(),
            report.iteration_count(),
            report.labeled
        );
    }
    args.obs_report();
}

//! Warm-start bench: measures the end-to-end debugging pipeline cold
//! (empty artifact store, everything computed and published) versus warm
//! (same store, tokenization and the whole joint top-k stage loaded from
//! disk), and writes `BENCH_store.json` (`mc-bench-store/v1`).
//!
//! Per profile the bin opens a store directory, runs the full pipeline
//! once (the *cold* leg on a fresh directory), then runs it `--runs`
//! more times and keeps the best repetition as the *warm* leg. Both legs
//! must produce identical debug reports — the bin asserts the ranked
//! confirmed-match list and recall numbers match bit for bit.
//!
//! Flags:
//!
//! * `--store DIR` — use (and keep) a shared store directory instead of
//!   a fresh temp dir. Running the bin twice with the same `DIR` makes
//!   the second process's first leg warm too — CI uses this for its
//!   cross-process warm-start smoke;
//! * `--assert-warm` — require that the *first* leg already hits the
//!   store (only meaningful on the second run over a shared `--store`);
//! * `--scale X`, `--seed N`, `--runs N`, `--out PATH` — as in the other
//!   bench bins. Set `MC_BENCH_SMOKE=1` for a shrunk CI smoke run.
//!
//! `cargo run --release -p mc-bench --bin store_warm [--scale X]
//!  [--runs N] [--store DIR] [--assert-warm] [--out PATH]`

use matchcatcher::debugger::{DebugReport, MatchCatcher};
use matchcatcher::oracle::GoldOracle;
use mc_bench::blockers::best_hash_blocker;
use mc_bench::harness::paper_params;
use mc_datagen::profiles::DatasetProfile;
use mc_obs::MetricsSnapshot;
use mc_store::StoreConfig;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

struct ProfileReport {
    name: String,
    scale: f64,
    cold_us: u64,
    warm_us: u64,
    cold_hits: u64,
    cold_publishes: u64,
    warm_hits: u64,
    warm_misses: u64,
}

/// The result-bearing fields both legs must agree on.
fn fingerprint(r: &DebugReport) -> (Vec<(u32, u32)>, usize, usize, usize) {
    (r.confirmed_matches.clone(), r.e_size, r.q_used, r.labeled)
}

fn run_profile(
    profile: DatasetProfile,
    scale: f64,
    seed: u64,
    runs: usize,
    store_dir: &Path,
    assert_warm: bool,
) -> ProfileReport {
    let ds = profile.generate_scaled(seed, scale);
    let blocker = match profile {
        DatasetProfile::FodorsZagats => {
            mc_blocking::Blocker::Hash(mc_blocking::KeyFunc::Attr(ds.a.schema().expect_id("city")))
        }
        _ => best_hash_blocker(profile, ds.a.schema()),
    };
    let c = blocker.apply(&ds.a, &ds.b);

    let mut params = paper_params();
    params.store = Some(StoreConfig::at(store_dir));
    let mc = MatchCatcher::new(params);

    let leg = || {
        let mut oracle = GoldOracle::exact(&ds.gold);
        let base = MetricsSnapshot::capture();
        let start = Instant::now();
        let report = mc.run(&ds.a, &ds.b, &c, &mut oracle);
        let us = start.elapsed().as_micros() as u64;
        let delta = MetricsSnapshot::capture().since(&base);
        (us, report, delta)
    };

    let (cold_us, cold_report, cold_delta) = leg();
    let cold_hits = cold_delta.counter("mc.store.hits");
    if assert_warm {
        assert!(
            cold_hits > 0,
            "{}: --assert-warm but the first leg hit the store 0 times \
             (is --store pointing at the directory of a previous run?)",
            ds.name
        );
    }

    let mut best: Option<(u64, MetricsSnapshot)> = None;
    for _ in 0..runs.max(1) {
        let (us, report, delta) = leg();
        assert_eq!(
            fingerprint(&cold_report),
            fingerprint(&report),
            "{}: warm report diverged from cold",
            ds.name
        );
        assert!(
            delta.counter("mc.store.hits") > 0,
            "{}: warm leg hit the store 0 times",
            ds.name
        );
        if best.as_ref().is_none_or(|(b, _)| us < *b) {
            best = Some((us, delta));
        }
    }
    let (warm_us, warm_delta) = best.expect("at least one warm run");

    ProfileReport {
        name: ds.name.clone(),
        scale,
        cold_us,
        warm_us,
        cold_hits,
        cold_publishes: cold_delta.counter("mc.store.publishes"),
        warm_hits: warm_delta.counter("mc.store.hits"),
        warm_misses: warm_delta.counter("mc.store.misses"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(|s| s.as_str())
    };
    let smoke = std::env::var_os("MC_BENCH_SMOKE").is_some();
    let default_scale = if smoke { 0.2 } else { 1.0 };
    let scale: f64 = get("--scale").map_or(default_scale, |v| v.parse().expect("bad --scale"));
    let seed: u64 = get("--seed").map_or(7, |v| v.parse().expect("bad --seed"));
    let runs: usize = get("--runs").map_or(if smoke { 1 } else { 3 }, |v| {
        v.parse().expect("bad --runs")
    });
    let out_path = get("--out").unwrap_or("BENCH_store.json");
    let assert_warm = args.iter().any(|a| a == "--assert-warm");
    // A shared --store dir persists across invocations; the default is a
    // fresh per-process temp dir, removed on exit.
    let (store_dir, ephemeral) = match get("--store") {
        Some(dir) => (PathBuf::from(dir), false),
        None => (
            std::env::temp_dir().join(format!("mc-store-bench-{}", std::process::id())),
            true,
        ),
    };

    let reports = [
        run_profile(
            DatasetProfile::FodorsZagats,
            scale.min(1.0),
            seed,
            runs,
            &store_dir,
            assert_warm,
        ),
        run_profile(
            DatasetProfile::AmazonGoogle,
            0.25 * scale,
            seed,
            runs,
            &store_dir,
            assert_warm,
        ),
    ];
    if ephemeral {
        let _ = std::fs::remove_dir_all(&store_dir);
    }

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"mc-bench-store/v1\",\n  \"profiles\": [");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "\n    {{\"name\": \"{}\", \"scale\": {}, \"cold_us\": {}, \"warm_us\": {}, \
             \"speedup\": {:.2}, \"store\": {{\"cold_hits\": {}, \"cold_publishes\": {}, \
             \"warm_hits\": {}, \"warm_misses\": {}}}}}",
            r.name,
            r.scale,
            r.cold_us,
            r.warm_us,
            r.cold_us as f64 / r.warm_us.max(1) as f64,
            r.cold_hits,
            r.cold_publishes,
            r.warm_hits,
            r.warm_misses
        );
    }
    json.push_str("\n  ]\n}\n");
    std::fs::write(out_path, &json).expect("write BENCH_store.json");

    println!(
        "{:<16} {:>8} {:>12} {:>12} {:>8} {:>10} {:>10}",
        "dataset", "scale", "cold", "warm", "speedup", "warm-hits", "publishes"
    );
    for r in &reports {
        println!(
            "{:<16} {:>8.2} {:>10.2}ms {:>10.2}ms {:>7.2}x {:>10} {:>10}",
            r.name,
            r.scale,
            r.cold_us as f64 / 1e3,
            r.warm_us as f64 / 1e3,
            r.cold_us as f64 / r.warm_us.max(1) as f64,
            r.warm_hits,
            r.cold_publishes
        );
    }
    println!("wrote {out_path}");
}

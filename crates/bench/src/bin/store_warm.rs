//! Warm-start bench: measures the end-to-end debugging pipeline cold
//! (empty artifact store, everything computed and published) versus warm
//! (same store, tokenization and the whole joint top-k stage loaded from
//! disk), and writes `BENCH_store.json` (`mc-bench-store/v1`).
//!
//! Per profile the bin opens a store directory, runs the full pipeline
//! once (the *cold* leg on a fresh directory), then runs it `--runs`
//! more times and keeps the best repetition as the *warm* leg. Both legs
//! must produce identical debug reports — the bin asserts the ranked
//! confirmed-match list and recall numbers match bit for bit.
//!
//! Flags:
//!
//! * `--store DIR` — use (and keep) a shared store directory instead of
//!   a fresh temp dir. Running the bin twice with the same `DIR` makes
//!   the second process's first leg warm too — CI uses this for its
//!   cross-process warm-start smoke;
//! * `--assert-warm` — require that the *first* leg already hits the
//!   store (only meaningful on the second run over a shared `--store`);
//! * `--scale X`, `--seed N`, `--runs N`, `--threads N`, `--out PATH` —
//!   as in the other bench bins. Set `MC_BENCH_SMOKE=1` for a shrunk CI
//!   smoke run. Cold-leg and first-warm-leg allocation counts ride along
//!   in the JSON for the `mc bench-compare` gate.
//!
//! `cargo run --release -p mc-bench --bin store_warm [--scale X]
//!  [--runs N] [--store DIR] [--assert-warm] [--out PATH]`

use matchcatcher::debugger::{DebugReport, MatchCatcher};
use matchcatcher::oracle::GoldOracle;
use mc_bench::alloc::AllocStats;
use mc_bench::blockers::best_hash_blocker;
use mc_bench::env::BenchEnv;
use mc_bench::harness::paper_params;
use mc_datagen::profiles::DatasetProfile;
use mc_obs::MetricsSnapshot;
use mc_store::StoreConfig;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

struct ProfileReport {
    name: String,
    scale: f64,
    cold_us: u64,
    warm_us: u64,
    cold_hits: u64,
    cold_publishes: u64,
    warm_hits: u64,
    warm_misses: u64,
    cold_allocs: AllocStats,
    warm_allocs: AllocStats,
}

/// The result-bearing fields both legs must agree on.
fn fingerprint(r: &DebugReport) -> (Vec<(u32, u32)>, usize, usize, usize) {
    (r.confirmed_matches.clone(), r.e_size, r.q_used, r.labeled)
}

fn run_profile(
    profile: DatasetProfile,
    scale: f64,
    seed: u64,
    runs: usize,
    threads: usize,
    store_dir: &Path,
    assert_warm: bool,
) -> ProfileReport {
    let ds = profile.generate_scaled(seed, scale);
    let blocker = match profile {
        DatasetProfile::FodorsZagats => {
            mc_blocking::Blocker::Hash(mc_blocking::KeyFunc::Attr(ds.a.schema().expect_id("city")))
        }
        _ => best_hash_blocker(profile, ds.a.schema()),
    };
    let c = blocker.apply(&ds.a, &ds.b);

    let mut params = paper_params();
    params.store = Some(StoreConfig::at(store_dir));
    if threads != 0 {
        params.joint.threads = threads;
        params.verifier.forest.threads = threads;
    }
    let mc = MatchCatcher::new(params);

    let leg = || {
        let mut oracle = GoldOracle::exact(&ds.gold);
        let alloc_base = AllocStats::capture();
        let base = MetricsSnapshot::capture();
        let start = Instant::now();
        let report = mc.run(&ds.a, &ds.b, &c, &mut oracle);
        let us = start.elapsed().as_micros() as u64;
        let delta = MetricsSnapshot::capture().since(&base);
        let allocs = AllocStats::capture().since(&alloc_base);
        (us, report, delta, allocs)
    };

    let (cold_us, cold_report, cold_delta, cold_allocs) = leg();
    let cold_hits = cold_delta.counter("mc.store.hits");
    if assert_warm {
        assert!(
            cold_hits > 0,
            "{}: --assert-warm but the first leg hit the store 0 times \
             (is --store pointing at the directory of a previous run?)",
            ds.name
        );
    }

    // The warm allocation counter comes from the first warm leg: later
    // repetitions see progressively warmer process caches, the first one
    // is deterministic with pinned threads.
    let mut best: Option<(u64, MetricsSnapshot)> = None;
    let mut warm_allocs = AllocStats::capture();
    for rep in 0..runs.max(1) {
        let (us, report, delta, allocs) = leg();
        if rep == 0 {
            warm_allocs = allocs;
        }
        assert_eq!(
            fingerprint(&cold_report),
            fingerprint(&report),
            "{}: warm report diverged from cold",
            ds.name
        );
        assert!(
            delta.counter("mc.store.hits") > 0,
            "{}: warm leg hit the store 0 times",
            ds.name
        );
        if best.as_ref().is_none_or(|(b, _)| us < *b) {
            best = Some((us, delta));
        }
    }
    let (warm_us, warm_delta) = best.expect("at least one warm run");

    ProfileReport {
        name: ds.name.clone(),
        scale,
        cold_us,
        warm_us,
        cold_hits,
        cold_publishes: cold_delta.counter("mc.store.publishes"),
        warm_hits: warm_delta.counter("mc.store.hits"),
        warm_misses: warm_delta.counter("mc.store.misses"),
        cold_allocs,
        warm_allocs,
    }
}

fn main() {
    let env = BenchEnv::parse();
    let scale = env.scale(1.0, 0.2);
    let seed = env.seed(7);
    let runs = env.runs(3);
    let threads = env.threads();
    let out_path = env.out("BENCH_store.json");
    let assert_warm = env.has("--assert-warm");
    // A shared --store dir persists across invocations; the default is a
    // fresh per-process temp dir, removed on exit.
    let (store_dir, ephemeral) = match env.flag("--store") {
        Some(dir) => (PathBuf::from(dir), false),
        None => (
            std::env::temp_dir().join(format!("mc-store-bench-{}", std::process::id())),
            true,
        ),
    };

    let reports = [
        run_profile(
            DatasetProfile::FodorsZagats,
            scale.min(1.0),
            seed,
            runs,
            threads,
            &store_dir,
            assert_warm,
        ),
        run_profile(
            DatasetProfile::AmazonGoogle,
            0.25 * scale,
            seed,
            runs,
            threads,
            &store_dir,
            assert_warm,
        ),
    ];
    if ephemeral {
        let _ = std::fs::remove_dir_all(&store_dir);
    }

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"mc-bench-store/v1\",\n  \"profiles\": [");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "\n    {{\"name\": \"{}\", \"scale\": {}, \"cold_us\": {}, \"warm_us\": {}, \
             \"speedup\": {:.2}, \"store\": {{\"cold_hits\": {}, \"cold_publishes\": {}, \
             \"warm_hits\": {}, \"warm_misses\": {}}}, \
             \"allocs\": {{\"cold_count\": {}, \"cold_bytes\": {}, \
             \"warm_count\": {}, \"warm_bytes\": {}}}}}",
            r.name,
            r.scale,
            r.cold_us,
            r.warm_us,
            r.cold_us as f64 / r.warm_us.max(1) as f64,
            r.cold_hits,
            r.cold_publishes,
            r.warm_hits,
            r.warm_misses,
            r.cold_allocs.allocations,
            r.cold_allocs.bytes,
            r.warm_allocs.allocations,
            r.warm_allocs.bytes
        );
    }
    json.push_str("\n  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_store.json");

    println!(
        "{:<16} {:>8} {:>12} {:>12} {:>8} {:>10} {:>10}",
        "dataset", "scale", "cold", "warm", "speedup", "warm-hits", "publishes"
    );
    for r in &reports {
        println!(
            "{:<16} {:>8.2} {:>10.2}ms {:>10.2}ms {:>7.2}x {:>10} {:>10}",
            r.name,
            r.scale,
            r.cold_us as f64 / 1e3,
            r.warm_us as f64 / 1e3,
            r.cold_us as f64 / r.warm_us.max(1) as f64,
            r.warm_hits,
            r.cold_publishes
        );
    }
    println!("wrote {out_path}");
}

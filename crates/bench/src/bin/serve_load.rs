//! Daemon load benchmark: concurrent scripted sessions against an
//! in-process `mc-serve` daemon, writing `BENCH_serve.json`.
//!
//! Each scripted session is a real client over TCP speaking the frame
//! protocol — the same path `mcd` serves: `open` (profile fixture) →
//! N scripted delta `rerun`s → `page` → `metrics` → `close`. All
//! sessions run concurrently from their own client threads, so the
//! daemon's accept loop, reader threads, worker pool, and LRU budgets
//! are all under load at once. The run records:
//!
//! * per-verb latency (p50 / p99, measured client-side, queue wait
//!   included) and whole-run throughput in sessions per second;
//! * peak resident sessions / estimated resident bytes, sampled from
//!   the daemon handle while the storm runs;
//! * the warm-vs-cold ratio: an *uncontended* session's delta `rerun`
//!   (round-trip, warm resident state) against the best-of-N cold
//!   `MatchCatcher::run` on the same patched tables. The floor for a
//!   committed baseline is `--min-speedup` (the store warm-start gate
//!   ships 3.1×; resident delta reruns clear it with margin).
//!
//! The uncontended session doubles as the identity gate: every warm
//! `rerun` response must serialize byte-identically to the cold run's
//! summary on the locally patched tables, and the whole run must finish
//! with **zero protocol errors** — both abort the binary, so the CI
//! smoke run is also a correctness gate.
//!
//! `MC_BENCH_SMOKE=1` shrinks the fleet for CI.
//!
//! `cargo run --release -p mc-bench --bin serve_load [--sessions N]
//!  [--reruns N] [--scale X] [--runs N] [--out PATH] [--min-speedup X]`

use matchcatcher::debugger::{DebuggerParams, MatchCatcher};
use matchcatcher::joint::QStrategy;
use matchcatcher::oracle::GoldOracle;
use mc_bench::alloc::AllocStats;
use mc_bench::env::BenchEnv;
use mc_blocking::{Blocker, KeyFunc};
use mc_datagen::delta::{random_delta, DeltaSpec};
use mc_datagen::profiles::DatasetProfile;
use mc_obs::JsonValue;
use mc_serve::proto::report_summary;
use mc_serve::{Client, Daemon, ServeParams};
use mc_table::{AttrId, TableDelta, Tuple};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

const SEED: u64 = 11;
const PROFILE: &str = "fodors-zagats";

fn obj(members: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn open_request(scale: f64) -> JsonValue {
    obj(vec![
        ("verb", "open".into()),
        ("profile", PROFILE.into()),
        ("scale", JsonValue::Num(scale)),
        ("seed", SEED.into()),
        ("blocker_attr", 0u64.into()),
        ("q", 1u64.into()),
    ])
}

/// Serializes a concrete [`TableDelta`] as the wire's explicit form.
fn delta_json(d: &TableDelta, width: usize) -> JsonValue {
    let row = |t: &Tuple| {
        JsonValue::Arr(
            (0..width)
                .map(|i| match t.value(AttrId(i as u16)) {
                    Some(s) => JsonValue::Str(s.to_string()),
                    None => JsonValue::Null,
                })
                .collect(),
        )
    };
    obj(vec![
        (
            "updates",
            JsonValue::Arr(
                d.updates
                    .iter()
                    .map(|e| {
                        obj(vec![
                            ("id", (e.id as u64).into()),
                            ("values", row(&e.tuple)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "deletes",
            JsonValue::Arr(d.deletes.iter().map(|&id| (id as u64).into()).collect()),
        ),
        (
            "inserts",
            JsonValue::Arr(d.inserts.iter().map(row).collect()),
        ),
    ])
}

/// What a daemon session's parameters resolve to, minus the serve-side
/// obs/store wiring — the cold reference for identity and speedup.
fn reference_params() -> DebuggerParams {
    let mut p = DebuggerParams::small();
    p.joint.q = QStrategy::Fixed(1);
    p.joint.reuse_overlaps = false;
    p.joint.reuse_topk = false;
    p
}

#[derive(Clone, Copy)]
struct Sample {
    verb: &'static str,
    us: u64,
}

fn timed(
    client: &mut Client,
    verb: &'static str,
    req: &JsonValue,
    out: &mut Vec<Sample>,
) -> JsonValue {
    let t = Instant::now();
    let resp = client
        .call_ok(req)
        .unwrap_or_else(|(code, msg)| panic!("{verb} failed: {code}: {msg}"));
    out.push(Sample {
        verb,
        us: t.elapsed().as_micros() as u64,
    });
    resp
}

/// One scripted session: open → reruns → page → explain → pervade →
/// metrics → close.
fn run_script(
    addr: std::net::SocketAddr,
    scale: f64,
    reruns: u64,
    script_seed: u64,
) -> Vec<Sample> {
    let mut samples = Vec::new();
    let mut client = Client::connect(addr, Duration::from_secs(300)).expect("connect");
    let resp = timed(&mut client, "open", &open_request(scale), &mut samples);
    let session = resp.get("session").unwrap().as_u64().expect("session id");
    for i in 0..reruns {
        let req = obj(vec![
            ("verb", "rerun".into()),
            ("session", session.into()),
            (
                "delta_a",
                obj(vec![(
                    "spec",
                    obj(vec![
                        ("frac", JsonValue::Num(0.03)),
                        ("seed", (script_seed * 1000 + i).into()),
                    ]),
                )]),
            ),
        ]);
        timed(&mut client, "rerun", &req, &mut samples);
    }
    timed(
        &mut client,
        "page",
        &obj(vec![
            ("verb", "page".into()),
            ("session", session.into()),
            ("limit", 5u64.into()),
        ]),
        &mut samples,
    );
    let resp = timed(
        &mut client,
        "explain",
        &obj(vec![
            ("verb", "explain".into()),
            ("session", session.into()),
            ("limit", 5u64.into()),
        ]),
        &mut samples,
    );
    assert_eq!(
        resp.get("schema").and_then(|v| v.as_str()),
        Some("mc-explain/v1"),
        "explain schema tag"
    );
    let resp = timed(
        &mut client,
        "pervade",
        &obj(vec![
            ("verb", "pervade".into()),
            ("session", session.into()),
            ("limit", 10u64.into()),
        ]),
        &mut samples,
    );
    assert!(
        resp.get("union_size").and_then(|v| v.as_u64()).is_some(),
        "pervade reports union size"
    );
    timed(
        &mut client,
        "metrics",
        &obj(vec![
            ("verb", "metrics".into()),
            ("session", session.into()),
        ]),
        &mut samples,
    );
    timed(
        &mut client,
        "close",
        &obj(vec![("verb", "close".into()), ("session", session.into())]),
        &mut samples,
    );
    samples
}

/// Uncontended warm session over the daemon: explicit deltas, each warm
/// rerun response checked byte-for-byte against a cold run on the same
/// patched tables. Returns (best warm rerun us, best cold run us).
fn identity_and_warm(daemon: &Daemon, scale: f64, rounds: usize, cold_runs: usize) -> (u64, u64) {
    let ds = DatasetProfile::FodorsZagats.generate_scaled(SEED, scale);
    let killed = Blocker::Hash(KeyFunc::Attr(AttrId(0))).apply(&ds.a, &ds.b);
    let (mut a, mut b) = (ds.a, ds.b);
    let mc = MatchCatcher::new(reference_params());

    let mut samples = Vec::new();
    let mut client = Client::connect(daemon.addr(), Duration::from_secs(300)).expect("connect");
    let resp = timed(&mut client, "open", &open_request(scale), &mut samples);
    let session = resp.get("session").unwrap().as_u64().unwrap();
    {
        let cold = mc.run(&a, &b, &killed, &mut GoldOracle::exact(&ds.gold));
        assert_eq!(
            resp.get("report").unwrap().to_json_string(),
            report_summary(&cold).to_json_string(),
            "open report diverged from the cold reference run"
        );
    }

    let mut rng = StdRng::seed_from_u64(0xbeef);
    let mut best_warm = u64::MAX;
    let mut best_cold = u64::MAX;
    for round in 0..rounds {
        let da = random_delta(&a, DeltaSpec::fraction_of(a.len(), 0.03), &mut rng);
        let db = random_delta(&b, DeltaSpec::fraction_of(b.len(), 0.03), &mut rng);
        let width = a.schema().len();
        let req = obj(vec![
            ("verb", "rerun".into()),
            ("session", session.into()),
            ("delta_a", delta_json(&da, width)),
            ("delta_b", delta_json(&db, width)),
        ]);
        let t = Instant::now();
        let resp = client
            .call_ok(&req)
            .unwrap_or_else(|e| panic!("identity rerun {round}: {e:?}"));
        best_warm = best_warm.min(t.elapsed().as_micros() as u64);

        da.apply(&mut a).expect("delta A applies");
        db.apply(&mut b).expect("delta B applies");
        for _ in 0..cold_runs.max(1) {
            let t = Instant::now();
            let cold = mc.run(&a, &b, &killed, &mut GoldOracle::exact(&ds.gold));
            best_cold = best_cold.min(t.elapsed().as_micros() as u64);
            assert_eq!(
                resp.get("report").unwrap().to_json_string(),
                report_summary(&cold).to_json_string(),
                "round {round}: warm rerun diverged from the cold run on patched tables"
            );
        }
    }
    let _ = client.call_ok(&obj(vec![
        ("verb", "close".into()),
        ("session", session.into()),
    ]));
    (best_warm, best_cold)
}

struct VerbStats {
    verb: &'static str,
    count: usize,
    p50_us: u64,
    p99_us: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn verb_stats(samples: &[Sample]) -> Vec<VerbStats> {
    [
        "open", "rerun", "page", "explain", "pervade", "metrics", "close",
    ]
    .iter()
    .map(|&verb| {
        let mut us: Vec<u64> = samples
            .iter()
            .filter(|s| s.verb == verb)
            .map(|s| s.us)
            .collect();
        us.sort_unstable();
        VerbStats {
            verb,
            count: us.len(),
            p50_us: percentile(&us, 0.50),
            p99_us: percentile(&us, 0.99),
        }
    })
    .collect()
}

fn main() {
    let env = BenchEnv::parse();
    // Full mode: ≥100 concurrent sessions, the acceptance floor for a
    // single daemon process. Smoke shrinks the fleet, not the protocol.
    let sessions: u64 = env.value_or("--sessions", if env.smoke { 6 } else { 120 });
    let reruns: u64 = env.value_or("--reruns", if env.smoke { 2 } else { 3 });
    let scale = env.scale(0.35, 0.2);
    let cold_runs = env.runs(3);
    let identity_rounds: usize = env.value_or("--identity-rounds", 2);
    // The warm-vs-cold leg runs uncontended at a larger scale than the
    // storm: at storm scale the fixture is so small that the TCP round
    // trip, not the pipeline, dominates the warm number.
    let identity_scale: f64 = env.value_or("--identity-scale", if env.smoke { 0.2 } else { 1.0 });
    let min_speedup: f64 = env.value_or("--min-speedup", 0.0);
    let out_path = env.out("BENCH_serve.json");

    let store_root = std::env::temp_dir().join(format!("mc-serve-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_root);
    let mut params = ServeParams {
        // Every client keeps at most one request in flight, so the fleet
        // size bounds the queue; size it to never answer `busy`.
        queue_depth: ((sessions as usize + 2) * 2).clamp(64, 4096),
        max_sessions: (sessions as usize + 2).max(8),
        max_resident_bytes: 8 << 30,
        request_timeout_ms: 300_000,
        store_root: Some(store_root.clone()),
        ..ServeParams::default()
    };
    if env.threads() != 0 {
        params.workers = env.threads();
    }
    let workers = params.workers;
    let daemon = Daemon::spawn(params).expect("spawn daemon");
    let addr = daemon.addr();
    let handle = daemon.handle();

    // Resident-footprint sampler: polls the handle while the storm runs.
    let stop = AtomicBool::new(false);
    let peak_sessions = AtomicU64::new(0);
    let peak_bytes = AtomicU64::new(0);

    let alloc_base = AllocStats::capture();
    let storm = Instant::now();
    let all_samples: Vec<Sample> = std::thread::scope(|scope| {
        let sampler = scope.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                peak_sessions.fetch_max(handle.resident_sessions() as u64, Ordering::Relaxed);
                peak_bytes.fetch_max(handle.resident_bytes() as u64, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(10));
            }
        });
        let clients: Vec<_> = (0..sessions)
            .map(|t| scope.spawn(move || run_script(addr, scale, reruns, t)))
            .collect();
        let samples: Vec<Sample> = clients
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect();
        stop.store(true, Ordering::Relaxed);
        sampler.join().expect("sampler");
        samples
    });
    let wall_us = storm.elapsed().as_micros() as u64;

    // Warm-vs-cold on a quiet daemon, doubling as the identity gate.
    let (warm_us, cold_us) = identity_and_warm(&daemon, identity_scale, identity_rounds, cold_runs);
    let allocs = AllocStats::capture().since(&alloc_base);

    let (requests, protocol_errors) = daemon.shutdown();
    let _ = std::fs::remove_dir_all(&store_root);
    assert_eq!(
        protocol_errors, 0,
        "scripted sessions must not trip protocol errors"
    );

    let stats = verb_stats(&all_samples);
    let sessions_per_sec = sessions as f64 / (wall_us.max(1) as f64 / 1e6);
    let speedup = cold_us as f64 / warm_us.max(1) as f64;

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"schema\": \"mc-bench-serve/v1\",\n  \
         \"sessions\": {sessions},\n  \"reruns_per_session\": {reruns},\n  \
         \"workers\": {workers},\n  \"requests\": {requests},\n  \
         \"protocol_errors\": {protocol_errors},\n  \"identity\": true,\n  \
         \"throughput\": {{\"wall_us\": {wall_us}, \"sessions_per_sec\": {sessions_per_sec:.2}}},\n  \
         \"resident\": {{\"peak_sessions\": {}, \"peak_bytes\": {}}},\n  \"latency\": {{",
        peak_sessions.load(Ordering::Relaxed),
        peak_bytes.load(Ordering::Relaxed),
    );
    for (i, s) in stats.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "\n    \"{}\": {{\"count\": {}, \"p50_us\": {}, \"p99_us\": {}}}",
            s.verb, s.count, s.p50_us, s.p99_us
        );
    }
    let _ = write!(
        json,
        "\n  }},\n  \"warm\": {{\"cold_run_us\": {cold_us}, \"warm_rerun_us\": {warm_us}, \
         \"speedup\": {speedup:.4}}},\n  \
         \"allocs\": {{\"count\": {}, \"bytes\": {}}}\n}}\n",
        allocs.allocations, allocs.bytes
    );
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");

    println!(
        "{sessions} sessions × ({} reruns + page + metrics) on {workers} workers: \
         {requests} requests in {:.2}s ({sessions_per_sec:.1} sessions/s), 0 protocol errors",
        reruns,
        wall_us as f64 / 1e6
    );
    println!("{:<10} {:>8} {:>12} {:>12}", "verb", "count", "p50", "p99");
    for s in &stats {
        println!(
            "{:<10} {:>8} {:>10.2}ms {:>10.2}ms",
            s.verb,
            s.count,
            s.p50_us as f64 / 1e3,
            s.p99_us as f64 / 1e3
        );
    }
    println!(
        "peak resident: {} sessions, {:.1} MiB (estimated)",
        peak_sessions.load(Ordering::Relaxed),
        peak_bytes.load(Ordering::Relaxed) as f64 / (1 << 20) as f64
    );
    println!(
        "identity ok; warm rerun {:.2}ms vs cold run {:.2}ms = {speedup:.1}x",
        warm_us as f64 / 1e3,
        cold_us as f64 / 1e3
    );
    println!("wrote {out_path}");

    assert!(
        speedup >= min_speedup,
        "warm rerun speedup {speedup:.2}x below the {min_speedup:.2}x floor"
    );
}

//! Regenerates the **§6.2 hash-blocker experiment**: the best manually
//! developed hash blockers, their recall, and the recall after applying
//! the fixes MatchCatcher's debugging session suggests.
//!
//! Paper: best hash blockers reach 75.6 / 95.1 / 100 / 97.3 / 100 %
//! recall on A-G / W-A / A-D / F-Z / Music1; debugging improves the
//! three imperfect ones to 99.7 / 99.6 / 100 %, and terminates early
//! (no killed matches found) on the two perfect ones.
//!
//! `cargo run --release -p mc-bench --bin sec62_hash [--scale X]`

use matchcatcher::debugger::MatchCatcher;
use matchcatcher::oracle::GoldOracle;
use mc_bench::blockers::{best_hash_blocker, repaired_hash_blocker};
use mc_bench::harness::CliArgs;
use mc_datagen::profiles::DatasetProfile;

fn main() {
    let args = CliArgs::parse(0.0);
    let sets = [
        (DatasetProfile::AmazonGoogle, 1.0),
        (DatasetProfile::WalmartAmazon, 1.0),
        (DatasetProfile::AcmDblp, 1.0),
        (DatasetProfile::FodorsZagats, 1.0),
        (DatasetProfile::Music1, 0.05),
    ];
    println!(
        "{:<16} {:>12} {:>10} {:>12} {:>12}",
        "dataset", "best-hash %", "found", "repaired %", "|C| growth"
    );
    for (profile, default_scale) in sets {
        let scale = if args.scale > 0.0 {
            args.scale.min(1.0)
        } else {
            default_scale
        };
        let ds = profile.generate_scaled(args.seed, scale);
        let schema = ds.a.schema();
        let best = best_hash_blocker(profile, schema);
        let c = best.apply(&ds.a, &ds.b);
        let before = ds.gold.recall(&c);

        // Debug the best hash blocker.
        let mc = MatchCatcher::new(args.params());
        let mut oracle = GoldOracle::exact(&ds.gold);
        let report = mc.run(&ds.a, &ds.b, &c, &mut oracle);

        // Apply the repair (the fixes a user derives from the report).
        let repaired = repaired_hash_blocker(profile, schema);
        let c2 = repaired.apply(&ds.a, &ds.b);
        let after = ds.gold.recall(&c2);

        println!(
            "{:<16} {:>11.1}% {:>10} {:>11.1}% {:>11.2}x",
            ds.name,
            before * 100.0,
            report.confirmed_matches.len(),
            after * 100.0,
            c2.len() as f64 / c.len().max(1) as f64
        );
        if report.confirmed_matches.is_empty() {
            println!("                 (debugging terminated early: no killed-off matches)");
        }
    }
    args.obs_report();
}

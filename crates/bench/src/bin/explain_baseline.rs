//! Batch explain engine baseline: per-pair diagnosis vs. the columnar
//! [`DiagnosisKernel`], writing `BENCH_explain.json`.
//!
//! The workload is full-union pervasiveness on the zipf 60K×60K profile
//! — ROADMAP item 3's "fast enough to run on every session" target. The
//! candidate union models the joint top-k output across a config tree:
//! a seeded sample of the cross product at ~8 candidates per A-row,
//! which under the Zipfian value distribution makes repeated value
//! pairs (the kernel cache's bread and butter) the common case, exactly
//! as on real data. A slice of the union plays the confirmed
//! killed-match list.
//!
//! Two scenarios, best-of-N each:
//!
//! * `per_pair` — the seed-era slow path: [`pervasive::pervasiveness`]
//!   re-tokenizes both raw values and recomputes edit distances for
//!   every pair, single-threaded.
//! * `batch` — [`DiagnosisKernel::build`] (value/token interning over
//!   both tables, parallel per attribute) **plus**
//!   [`DiagnosisKernel::pervasiveness`] (sharded diagnosis with the
//!   value-pair cache). Build time is included — the speedup is
//!   end-to-end, not amortized.
//!
//! The identity gate runs on every rep: the batch groups must equal the
//! per-pair groups field for field (signature, member pairs, confirmed
//! counts), so the CI smoke run doubles as an exactness gate.
//!
//! `MC_BENCH_SMOKE=1` shrinks the dataset for CI. `--min-speedup` makes
//! the run exit non-zero below the given floor (used when regenerating
//! the committed full-scale baseline, not in smoke CI).
//!
//! `cargo run --release -p mc-bench --bin explain_baseline [--scale X]
//!  [--pairs-per-row N] [--runs N] [--threads N] [--out PATH]
//!  [--min-speedup X]`

use matchcatcher::joint::CandidateUnion;
use matchcatcher::pervasive::{self, ProblemGroup};
use matchcatcher::DiagnosisKernel;
use mc_bench::alloc::AllocStats;
use mc_bench::env::BenchEnv;
use mc_datagen::profiles::DatasetProfile;
use mc_table::{pair_key, split_pair_key, Table, TupleId};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

fn scale_tag(scale: f64) -> String {
    format!("{scale}").replace('.', "_")
}

/// A seeded stand-in for the joint top-k union: `per_row` candidates
/// per A-row, biased toward low B-ids the way Zipfian joins are, plus
/// the diagonal (the true matches a debugger cares about).
fn sample_union(a: &Table, b: &Table, per_row: usize, seed: u64) -> CandidateUnion {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_b = b.len() as u64;
    let mut pairs: Vec<u64> = Vec::with_capacity(a.len() * (per_row + 1));
    for x in 0..a.len() as TupleId {
        pairs.push(pair_key(x, x % b.len() as TupleId));
        for _ in 0..per_row {
            // Square the unit draw to skew toward popular (low-id) rows.
            let u: f64 = rng.random_range(0.0..1.0);
            let y = ((u * u) * n_b as f64) as u64;
            pairs.push(pair_key(x, y.min(n_b - 1) as TupleId));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    CandidateUnion {
        pairs,
        scores: Vec::new(),
    }
}

fn assert_identical(fast: &[ProblemGroup], slow: &[ProblemGroup]) {
    assert_eq!(fast.len(), slow.len(), "group counts diverge");
    for (f, s) in fast.iter().zip(slow) {
        assert!(
            f.signature == s.signature && f.pairs == s.pairs && f.confirmed == s.confirmed,
            "batch pervasiveness diverged from the per-pair oracle on {:?}",
            s.signature
        );
    }
}

fn main() {
    let env = BenchEnv::parse();
    let runs = env.runs(3);
    let out_path = env.out("BENCH_explain.json");
    let min_speedup: f64 = env.value_or("--min-speedup", 0.0);
    let per_row: usize = env.value_or("--pairs-per-row", 8);
    let threads = env.threads();
    let scale = env.scale(1.0, 0.01);

    let ds = DatasetProfile::ZipfScale.generate_scaled(7, scale);
    let name = format!("{}-{}", ds.name, scale_tag(scale));
    let union = sample_union(&ds.a, &ds.b, per_row, 0xe8);
    let confirmed: Vec<(TupleId, TupleId)> = union
        .pairs
        .iter()
        .step_by(97)
        .map(|&k| split_pair_key(k))
        .collect();
    println!(
        "{name}: {}x{} rows, union {} pairs, {} confirmed",
        ds.a.len(),
        ds.b.len(),
        union.pairs.len(),
        confirmed.len()
    );

    // Per-pair slow path.
    let mut slow_best = u64::MAX;
    let mut slow_allocs = AllocStats::capture();
    let mut slow_groups = Vec::new();
    for rep in 0..runs {
        let alloc_base = AllocStats::capture();
        let t = Instant::now();
        let groups = pervasive::pervasiveness(&ds.a, &ds.b, &union, &confirmed);
        let us = t.elapsed().as_micros() as u64;
        if rep == 0 {
            slow_allocs = AllocStats::capture().since(&alloc_base);
            slow_groups = groups;
        }
        slow_best = slow_best.min(us);
    }

    // Batch kernel, build included.
    let mut batch_best = u64::MAX;
    let mut build_best = u64::MAX;
    let mut batch_allocs = AllocStats::capture();
    let mut stats = None;
    for rep in 0..runs {
        let alloc_base = AllocStats::capture();
        let t = Instant::now();
        let kernel = DiagnosisKernel::build(&ds.a, &ds.b, threads);
        let build_us = t.elapsed().as_micros() as u64;
        let groups = kernel.pervasiveness(&union, &confirmed);
        let us = t.elapsed().as_micros() as u64;
        assert_identical(&groups, &slow_groups);
        if rep == 0 {
            batch_allocs = AllocStats::capture().since(&alloc_base);
            stats = Some(kernel.stats());
        }
        batch_best = batch_best.min(us);
        build_best = build_best.min(build_us);
    }
    let stats = stats.expect("at least one run");
    let speedup = slow_best as f64 / batch_best.max(1) as f64;

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"mc-bench-explain/v1\",\n  \"datasets\": [");
    let _ = write!(
        json,
        "\n    {{\"name\": \"{name}\", \"rows_a\": {}, \"rows_b\": {}, \
         \"union_pairs\": {}, \"confirmed\": {}, \"groups\": {}, \"scenarios\": [\n      \
         {{\"name\": \"per_pair\", \"total_us\": {slow_best}, \
         \"allocs\": {{\"count\": {}, \"bytes\": {}}}}},\n      \
         {{\"name\": \"batch\", \"total_us\": {batch_best}, \"build_us\": {build_best}, \
         \"allocs\": {{\"count\": {}, \"bytes\": {}}}}}\n    ], \
         \"counters\": {{\"lookups\": {}, \"cache_entries\": {}, \"cache_hits\": {}, \
         \"distinct_values\": {}}}, \"identity\": true, \"speedup\": {speedup:.4}}}",
        ds.a.len(),
        ds.b.len(),
        union.pairs.len(),
        confirmed.len(),
        slow_groups.len(),
        slow_allocs.allocations,
        slow_allocs.bytes,
        batch_allocs.allocations,
        batch_allocs.bytes,
        stats.lookups,
        stats.cache_entries,
        stats.cache_hits(),
        stats.distinct_values,
    );
    json.push_str("\n  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_explain.json");

    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "scenario", "total", "allocs", "bytes"
    );
    println!(
        "{:<12} {:>10.2}ms {:>12} {:>12}",
        "per_pair",
        slow_best as f64 / 1e3,
        slow_allocs.allocations,
        slow_allocs.bytes
    );
    println!(
        "{:<12} {:>10.2}ms {:>12} {:>12}  (build {:.2}ms)",
        "batch",
        batch_best as f64 / 1e3,
        batch_allocs.allocations,
        batch_allocs.bytes,
        build_best as f64 / 1e3
    );
    println!(
        "identity ok; {} groups; cache {}/{} hits; speedup {speedup:.1}x",
        slow_groups.len(),
        stats.cache_hits(),
        stats.lookups
    );
    println!("wrote {out_path}");

    assert!(
        speedup >= min_speedup,
        "{name}: batch speedup {speedup:.2}x below the {min_speedup:.2}x floor"
    );
}

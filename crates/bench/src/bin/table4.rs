//! Regenerates **Table 4** — matches found and blocker problems
//! diagnosed within the **first three verifier iterations**, for one
//! representative blocker per dataset (the paper shows OL/A-G,
//! HASH/W-A, SIM/A-D, R/F-Z, R/M1).
//!
//! The paper's volunteers needed 7–10 minutes to label 3 × 20 pairs; our
//! oracle labels instantly, so the time column is replaced by the label
//! count. The "blocker problems" column is the debugger's aggregated
//! per-attribute diagnoses, which the `dataset_tour` example shows can
//! be checked against the generator's injected error log.
//!
//! `cargo run --release -p mc-bench --bin table4 [--scale X]`

use matchcatcher::debugger::MatchCatcher;
use matchcatcher::oracle::GoldOracle;
use mc_bench::blockers::table2_suite;
use mc_bench::harness::CliArgs;
use mc_datagen::profiles::DatasetProfile;

fn main() {
    let args = CliArgs::parse(0.0);
    let picks = [
        (DatasetProfile::AmazonGoogle, "OL", 1.0),
        (DatasetProfile::WalmartAmazon, "HASH", 1.0),
        (DatasetProfile::AcmDblp, "SIM", 1.0),
        (DatasetProfile::FodorsZagats, "R", 1.0),
        (DatasetProfile::Music1, "R", 0.05),
    ];
    for (profile, label, default_scale) in picks {
        let scale = if args.scale > 0.0 {
            args.scale.min(1.0)
        } else {
            default_scale
        };
        let ds = profile.generate_scaled(args.seed, scale);
        let suite = table2_suite(profile, ds.a.schema());
        let nb = suite
            .iter()
            .find(|n| n.label == label)
            .expect("blocker in suite");
        let c = nb.blocker.apply(&ds.a, &ds.b);

        let mut params = args.params();
        params.verifier.max_iters = 3; // the paper's first-3-iterations cut
        let mc = MatchCatcher::new(params);
        let mut oracle = GoldOracle::exact(&ds.gold);
        let report = mc.run(&ds.a, &ds.b, &c, &mut oracle);

        println!(
            "{} ({}): 3 iterations, {} matches, {} labels given",
            label,
            ds.name,
            report.matches_in_first(3),
            report.labeled
        );
        for (p, n) in report.problems.iter().take(4) {
            println!("    {n}x {p}");
        }
        println!();
    }
    args.obs_report();
}

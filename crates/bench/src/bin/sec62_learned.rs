//! Regenerates the **§6.2 learned-blocker experiment**: three blockers
//! learned from independent labeled samples of the Papers dataset, each
//! debugged for 5 verifier iterations.
//!
//! Paper: the user found 76 / 61 / 65 killed-off matches after 5
//! iterations and a set of reasons why. We report matches found plus the
//! aggregated diagnoses.
//!
//! `cargo run --release -p mc-bench --bin sec62_learned [--scale X]`
//! (default scale 0.05 of the 456K × 628K tables).

use matchcatcher::debugger::MatchCatcher;
use matchcatcher::oracle::GoldOracle;
use mc_bench::harness::CliArgs;
use mc_bench::learned::{learn_blocker, sample_pairs};
use mc_datagen::profiles::DatasetProfile;

fn main() {
    let args = CliArgs::parse(0.02);
    let ds = DatasetProfile::Papers.generate_scaled(args.seed, args.scale);
    println!(
        "papers at scale {}: |A|={} |B|={}",
        args.scale,
        ds.a.len(),
        ds.b.len()
    );
    for (i, seed) in [11u64, 22, 33].iter().enumerate() {
        let sample = sample_pairs(&ds.a, &ds.b, &ds.gold, 50, 100, *seed);
        let learned = learn_blocker(&ds.a, &ds.b, &sample, ds.a.len() * 80);
        let c = learned.blocker.apply(&ds.a, &ds.b);
        let mut params = args.params();
        params.verifier.max_iters = 5; // the paper stops after 5 iterations
        let mc = MatchCatcher::new(params);
        let mut oracle = GoldOracle::exact(&ds.gold);
        let report = mc.run(&ds.a, &ds.b, &c, &mut oracle);
        println!(
            "learned blocker #{}: {} predicates, sample recall {:.0}%, |C|={}, \
             matches found in 5 iterations: {}",
            i + 1,
            learned.predicates,
            learned.sample_recall * 100.0,
            c.len(),
            report.confirmed_matches.len()
        );
        println!(
            "  (full recall, known only to the generator: {:.1}%)",
            ds.gold.recall(&c) * 100.0
        );
        for (p, n) in report.problems.iter().take(4) {
            println!("    {n}x {p}");
        }
    }
    args.obs_report();
}

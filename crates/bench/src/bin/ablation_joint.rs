//! **§6.5 ablation: joint vs individual top-k execution.**
//!
//! The paper reports the joint strategy (overlap reuse + top-k seeding +
//! one config per core) outperforms executing each config independently
//! by up to 3.5×. We time three variants:
//!
//! * `individual` — each config alone, serial, exact scorer;
//! * `joint-1t`   — reuse enabled, one worker (isolates reuse);
//! * `joint`      — reuse + all cores (the full §4.2 design).
//!
//! `cargo run --release -p mc-bench --bin ablation_joint [--scale X]`

use matchcatcher::debugger::MatchCatcher;
use matchcatcher::joint::{run_individual, run_joint, JointParams};
use mc_bench::blockers::table2_suite;
use mc_bench::harness::CliArgs;
use mc_datagen::profiles::DatasetProfile;
use mc_strsim::measures::SetMeasure;

fn main() {
    let args = CliArgs::parse(0.0);
    let sets = [
        (DatasetProfile::AmazonGoogle, 1.0),
        (DatasetProfile::WalmartAmazon, 0.5),
        (DatasetProfile::Music1, 0.05),
    ];
    println!(
        "{:<16} {:<6} {:>12} {:>12} {:>12} {:>9} {:>10}",
        "dataset", "Q", "indiv (s)", "joint1t (s)", "joint (s)", "speedup", "reuse hits"
    );
    for (profile, default_scale) in sets {
        let scale = if args.scale > 0.0 {
            args.scale.min(1.0)
        } else {
            default_scale
        };
        let ds = profile.generate_scaled(args.seed, scale);
        let suite = table2_suite(profile, ds.a.schema());
        let nb = &suite[0];
        let c = nb.blocker.apply(&ds.a, &ds.b);
        let mc = MatchCatcher::new(args.params());
        let prepared = mc.prepare(&ds.a, &ds.b);

        let t0 = std::time::Instant::now();
        let _indiv = run_individual(
            &prepared.tok_a,
            &prepared.tok_b,
            &c,
            &prepared.tree,
            args.k,
            SetMeasure::Jaccard,
        );
        let t_indiv = t0.elapsed();
        let t1 = std::time::Instant::now();
        let _joint1 = run_joint(
            &prepared.tok_a,
            &prepared.tok_b,
            &c,
            &prepared.tree,
            JointParams {
                k: args.k,
                threads: 1,
                ..Default::default()
            },
        );
        let t_joint1 = t1.elapsed();
        let t2 = std::time::Instant::now();
        let joint = run_joint(
            &prepared.tok_a,
            &prepared.tok_b,
            &c,
            &prepared.tree,
            JointParams {
                k: args.k,
                threads: args.threads,
                ..Default::default()
            },
        );
        let t_joint = t2.elapsed();
        println!(
            "{:<16} {:<6} {:>12.2} {:>12.2} {:>12.2} {:>8.2}x {:>10}",
            ds.name,
            nb.label,
            t_indiv.as_secs_f64(),
            t_joint1.as_secs_f64(),
            t_joint.as_secs_f64(),
            t_indiv.as_secs_f64() / t_joint.as_secs_f64().max(1e-9),
            joint.reuse_hits
        );
    }
    args.obs_report();
}

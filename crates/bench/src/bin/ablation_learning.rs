//! **§6.5 ablation: active/online learning vs weighted median ranking.**
//!
//! The paper reports the hybrid learning verifier "significantly
//! outperforms weighted median ranking". We run the three strategies
//! with the same iteration budget and compare matches retrieved.
//!
//! `cargo run --release -p mc-bench --bin ablation_learning [--scale X]`

use matchcatcher::debugger::MatchCatcher;
use matchcatcher::oracle::GoldOracle;
use matchcatcher::verify::RankStrategy;
use mc_bench::blockers::table2_suite;
use mc_bench::harness::CliArgs;
use mc_datagen::profiles::DatasetProfile;

fn main() {
    let args = CliArgs::parse(0.0);
    let sets = [
        (DatasetProfile::AmazonGoogle, "HASH", 1.0),
        (DatasetProfile::WalmartAmazon, "R", 1.0),
        (DatasetProfile::FodorsZagats, "HASH", 1.0),
        (DatasetProfile::Music1, "OL", 0.05),
    ];
    const BUDGET: usize = 15; // iterations; 20 pairs each
    println!(
        "{:<16} {:<6} {:>4} | {:>9} {:>9} {:>9}   (matches found in {} iterations)",
        "dataset", "Q", "MD", "learning", "wmr", "medrank", BUDGET
    );
    for (profile, label, default_scale) in sets {
        let scale = if args.scale > 0.0 {
            args.scale.min(1.0)
        } else {
            default_scale
        };
        let ds = profile.generate_scaled(args.seed, scale);
        let suite = table2_suite(profile, ds.a.schema());
        let nb = suite.iter().find(|n| n.label == label).expect("label");
        let c = nb.blocker.apply(&ds.a, &ds.b);
        let md = ds.gold.killed(&c);

        let mut found = Vec::new();
        for strategy in [
            RankStrategy::Learning,
            RankStrategy::Wmr,
            RankStrategy::MedRank,
        ] {
            let mut params = args.params();
            params.verifier.strategy = strategy;
            params.verifier.max_iters = BUDGET;
            params.verifier.stop_after_empty = BUDGET; // fixed budget
            let mc = MatchCatcher::new(params);
            let mut oracle = GoldOracle::exact(&ds.gold);
            let report = mc.run(&ds.a, &ds.b, &c, &mut oracle);
            found.push(report.confirmed_matches.len());
        }
        println!(
            "{:<16} {:<6} {:>4} | {:>9} {:>9} {:>9}",
            ds.name, label, md, found[0], found[1], found[2]
        );
    }
    args.obs_report();
}

//! SSJ perf baseline: runs the **joint top-k execution** on two datagen
//! profiles and writes per-stage wall-clock numbers (derived from the
//! `mc-obs` snapshot delta) to `BENCH_ssj.json`, establishing the perf
//! trajectory future PRs must not regress.
//!
//! Stages per profile:
//!
//! * `tokenize_us` — dictionary build + rank assignment
//!   (`mc.strsim.dict.build` span total);
//! * `joint_us` — the joint execution proper (`mc.core.joint.run` span
//!   total, best of `--runs` repetitions);
//! * `config_us` — sum of per-config join spans in the best run.
//!
//! `cargo run --release -p mc-bench --bin ssj_baseline [--scale X]
//!  [--runs N] [--out PATH]`

use matchcatcher::config::ConfigGenerator;
use matchcatcher::joint::{run_joint, CandidateUnion, JointParams};
use mc_datagen::profiles::DatasetProfile;
use mc_obs::MetricsSnapshot;
use mc_strsim::dict::TokenizedTable;
use mc_strsim::tokenize::Tokenizer;
use mc_table::PairSet;
use std::fmt::Write as _;

struct ProfileReport {
    name: String,
    scale: f64,
    k: usize,
    configs: usize,
    candidates: usize,
    tokenize_us: u64,
    joint_us: u64,
    config_us: u64,
    events: u64,
    scored: u64,
}

fn run_profile(
    profile: DatasetProfile,
    scale: f64,
    k: usize,
    seed: u64,
    runs: usize,
) -> ProfileReport {
    let ds = profile.generate_scaled(seed, scale);
    let generator = ConfigGenerator::default();
    let promising = generator.promising(&ds.a, &ds.b);
    let tree = generator.build_tree(&promising);

    let tok_base = MetricsSnapshot::capture();
    let (ta, tb, _) = TokenizedTable::build_pair(&ds.a, &ds.b, &promising.attrs, Tokenizer::Word);
    let tokenize_us = MetricsSnapshot::capture()
        .since(&tok_base)
        .span("mc.strsim.dict.build")
        .total_us;

    let killed = PairSet::new();
    let params = JointParams {
        k,
        ..Default::default()
    };

    // Best-of-N joint executions (first run also warms allocators/caches).
    let mut best: Option<(u64, MetricsSnapshot, usize)> = None;
    for _ in 0..runs.max(1) {
        let base = MetricsSnapshot::capture();
        let out = run_joint(&ta, &tb, &killed, &tree, params);
        let delta = MetricsSnapshot::capture().since(&base);
        let joint_us = delta.span("mc.core.joint.run").total_us;
        let candidates = CandidateUnion::build(&out.lists).len();
        if best.as_ref().is_none_or(|(b, _, _)| joint_us < *b) {
            best = Some((joint_us, delta, candidates));
        }
    }
    let (joint_us, delta, candidates) = best.expect("at least one run");

    ProfileReport {
        name: ds.name.clone(),
        scale,
        k,
        configs: tree.len(),
        candidates,
        tokenize_us,
        joint_us,
        config_us: delta.span("mc.core.joint.config").total_us,
        events: delta.counter("mc.core.ssj.events"),
        scored: delta.counter("mc.core.ssj.scored"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(|s| s.as_str())
    };
    let scale: f64 = get("--scale").map_or(1.0, |v| v.parse().expect("bad --scale"));
    let k: usize = get("--k").map_or(200, |v| v.parse().expect("bad --k"));
    let seed: u64 = get("--seed").map_or(3, |v| v.parse().expect("bad --seed"));
    let runs: usize = get("--runs").map_or(3, |v| v.parse().expect("bad --runs"));
    let out_path = get("--out").unwrap_or("BENCH_ssj.json");

    // Two contrasting profiles: long product records (reuse-friendly) and
    // short restaurant records (index-overhead-bound).
    let reports = [
        run_profile(DatasetProfile::AmazonGoogle, 0.25 * scale, k, seed, runs),
        run_profile(DatasetProfile::FodorsZagats, scale.min(1.0), k, seed, runs),
    ];

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"mc-bench-ssj/v1\",\n  \"profiles\": [");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "\n    {{\"name\": \"{}\", \"scale\": {}, \"k\": {}, \"configs\": {}, \
             \"candidates\": {}, \"stages\": {{\"tokenize_us\": {}, \"joint_us\": {}, \
             \"config_us\": {}}}, \"counters\": {{\"events\": {}, \"scored\": {}}}}}",
            r.name,
            r.scale,
            r.k,
            r.configs,
            r.candidates,
            r.tokenize_us,
            r.joint_us,
            r.config_us,
            r.events,
            r.scored
        );
    }
    json.push_str("\n  ]\n}\n");
    std::fs::write(out_path, &json).expect("write BENCH_ssj.json");

    println!(
        "{:<16} {:>8} {:>6} {:>12} {:>12} {:>12} {:>12}",
        "dataset", "scale", "cfgs", "tokenize", "joint", "events", "|E|"
    );
    for r in &reports {
        println!(
            "{:<16} {:>8.2} {:>6} {:>10.2}ms {:>10.2}ms {:>12} {:>12}",
            r.name,
            r.scale,
            r.configs,
            r.tokenize_us as f64 / 1e3,
            r.joint_us as f64 / 1e3,
            r.events,
            r.candidates
        );
    }
    println!("wrote {out_path}");
}

//! SSJ perf baseline: runs the **joint top-k execution** on two datagen
//! profiles and writes per-stage wall-clock numbers (derived from the
//! `mc-obs` snapshot delta) to `BENCH_ssj.json`, establishing the perf
//! trajectory future PRs must not regress.
//!
//! Stages per profile:
//!
//! * `tokenize_us` — dictionary build + rank assignment
//!   (`mc.strsim.dict.build` span total);
//! * `joint_us` — the joint execution proper (`mc.core.joint.run` span
//!   total, best of `--runs` repetitions);
//! * `config_us` — sum of per-config join spans in the best run.
//!
//! The main numbers run with a fixed `q = 1` so the candidate sets stay
//! comparable across versions; a separate `auto_q` section per profile
//! demonstrates empirical q selection with the prelude score cache.
//!
//! With `--budget PATH`, the run additionally gates on the checked-in
//! per-profile `scored` budgets (see `ci/ssj_scored_budgets.json`): the
//! work counters are deterministic and machine-independent, so a budget
//! overrun is a real algorithmic regression, not timing noise. Exits
//! non-zero on overrun.
//!
//! `MC_BENCH_SMOKE=1` switches the defaults to a quick configuration
//! (`--scale 0.1 --runs 1`) for CI; explicit flags still override. The
//! JSON also carries the first (cold) repetition's allocation count from
//! the counting global allocator — with `--threads` pinned it is a
//! deterministic work counter `mc bench-compare` can budget.
//!
//! `cargo run --release -p mc-bench --bin ssj_baseline [--scale X]
//!  [--runs N] [--threads N] [--out PATH] [--budget PATH]`

use matchcatcher::config::ConfigGenerator;
use matchcatcher::joint::{run_joint, CandidateUnion, JointParams, QStrategy};
use mc_bench::alloc::AllocStats;
use mc_bench::env::BenchEnv;
use mc_datagen::profiles::DatasetProfile;
use mc_obs::MetricsSnapshot;
use mc_strsim::dict::TokenizedTable;
use mc_strsim::tokenize::Tokenizer;
use mc_table::PairSet;
use std::fmt::Write as _;

struct ProfileReport {
    name: String,
    scale: f64,
    k: usize,
    configs: usize,
    candidates: usize,
    tokenize_us: u64,
    joint_us: u64,
    config_us: u64,
    events: u64,
    scored: u64,
    merge_aborts: u64,
    cache_hits: u64,
    scored_saved: u64,
    allocs: AllocStats,
    auto_q: AutoQReport,
}

/// One demonstration run with `QStrategy::Auto`: all preludes execute to
/// completion (deterministic q selection) while populating the pair →
/// score cache the winning q's main run then consumes.
struct AutoQReport {
    q_used: usize,
    select_q_us: u64,
    joint_us: u64,
    cache_hits: u64,
}

fn run_profile(
    profile: DatasetProfile,
    scale: f64,
    k: usize,
    seed: u64,
    runs: usize,
    threads: usize,
) -> ProfileReport {
    let ds = profile.generate_scaled(seed, scale);
    let generator = ConfigGenerator::default();
    let promising = generator.promising(&ds.a, &ds.b);
    let tree = generator.build_tree(&promising);

    let tok_base = MetricsSnapshot::capture();
    let (ta, tb, _) = TokenizedTable::build_pair(&ds.a, &ds.b, &promising.attrs, Tokenizer::Word);
    let tokenize_us = MetricsSnapshot::capture()
        .since(&tok_base)
        .span("mc.strsim.dict.build")
        .total_us;

    let killed = PairSet::new();
    let mut params = JointParams {
        k,
        ..Default::default()
    };
    if threads != 0 {
        params.threads = threads;
    }

    // Best-of-N joint executions (first run also warms allocators/caches).
    // The allocation counter comes from the first (cold) repetition: with
    // pinned threads it is deterministic, while warm repetitions depend
    // on what the previous ones left cached.
    let mut best: Option<(u64, MetricsSnapshot, usize)> = None;
    let mut allocs = AllocStats::capture();
    for rep in 0..runs.max(1) {
        let alloc_base = AllocStats::capture();
        let base = MetricsSnapshot::capture();
        let out = run_joint(&ta, &tb, &killed, &tree, params);
        let delta = MetricsSnapshot::capture().since(&base);
        if rep == 0 {
            allocs = AllocStats::capture().since(&alloc_base);
        }
        let joint_us = delta.span("mc.core.joint.run").total_us;
        let candidates = CandidateUnion::build(&out.lists).len();
        if best.as_ref().is_none_or(|(b, _, _)| joint_us < *b) {
            best = Some((joint_us, delta, candidates));
        }
    }
    let (joint_us, delta, candidates) = best.expect("at least one run");
    if std::env::var("MC_BENCH_DUMP").is_ok_and(|v| v == "1") {
        eprintln!("--- {} best-run metrics ---\n{}", ds.name, delta.render());
    }

    // Auto-q demonstration (measured separately so the main numbers stay
    // on the fixed-q configuration with version-comparable candidates).
    let auto_base = MetricsSnapshot::capture();
    let auto_out = run_joint(
        &ta,
        &tb,
        &killed,
        &tree,
        JointParams {
            k,
            q: QStrategy::Auto {
                max_q: 4,
                prelude_k: 50,
            },
            ..Default::default()
        },
    );
    let auto_delta = MetricsSnapshot::capture().since(&auto_base);
    let auto_q = AutoQReport {
        q_used: auto_out.q_used,
        select_q_us: auto_delta.span("mc.core.ssj.select_q").total_us,
        joint_us: auto_delta.span("mc.core.joint.run").total_us,
        cache_hits: auto_delta.counter("mc.core.ssj.cache_hits"),
    };

    ProfileReport {
        name: ds.name.clone(),
        scale,
        k,
        configs: tree.len(),
        candidates,
        tokenize_us,
        joint_us,
        config_us: delta.span("mc.core.joint.config").total_us,
        events: delta.counter("mc.core.ssj.events"),
        scored: delta.counter("mc.core.ssj.scored"),
        merge_aborts: delta.counter("mc.core.ssj.merge_aborts"),
        cache_hits: delta.counter("mc.core.ssj.cache_hits"),
        scored_saved: delta.counter("mc.core.ssj.scored_saved"),
        allocs,
        auto_q,
    }
}

/// Extracts `"name": <integer>` budget entries from the (tiny,
/// hand-written) budget JSON without a JSON dependency. String-valued
/// keys such as `"schema"` never parse as integers and are skipped.
fn parse_budgets(text: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(open) = rest.find('"') {
        rest = &rest[open + 1..];
        let Some(close) = rest.find('"') else { break };
        let key = &rest[..close];
        rest = &rest[close + 1..];
        let after = rest.trim_start();
        if let Some(value) = after.strip_prefix(':') {
            let value = value.trim_start();
            let digits: String = value.chars().take_while(|c| c.is_ascii_digit()).collect();
            if !digits.is_empty() {
                out.push((key.to_string(), digits.parse().expect("integer budget")));
            }
        }
    }
    out
}

fn main() {
    let env = BenchEnv::parse();
    let scale = env.scale(1.0, 0.1);
    let k: usize = env.value_or("--k", 200);
    let seed = env.seed(3);
    let runs = env.runs(3);
    let threads = env.threads();
    let out_path = env.out("BENCH_ssj.json");
    let budget_path = env.flag("--budget");

    // Two contrasting profiles: long product records (reuse-friendly) and
    // short restaurant records (index-overhead-bound).
    let reports = [
        run_profile(
            DatasetProfile::AmazonGoogle,
            0.25 * scale,
            k,
            seed,
            runs,
            threads,
        ),
        run_profile(
            DatasetProfile::FodorsZagats,
            scale.min(1.0),
            k,
            seed,
            runs,
            threads,
        ),
    ];

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"mc-bench-ssj/v2\",\n  \"profiles\": [");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "\n    {{\"name\": \"{}\", \"scale\": {}, \"k\": {}, \"configs\": {}, \
             \"candidates\": {}, \"stages\": {{\"tokenize_us\": {}, \"joint_us\": {}, \
             \"config_us\": {}}}, \"counters\": {{\"events\": {}, \"scored\": {}, \
             \"merge_aborts\": {}, \"cache_hits\": {}, \"scored_saved\": {}}}, \
             \"allocs\": {{\"count\": {}, \"bytes\": {}}}, \
             \"auto_q\": {{\"q_used\": {}, \"select_q_us\": {}, \"joint_us\": {}, \
             \"cache_hits\": {}}}}}",
            r.name,
            r.scale,
            r.k,
            r.configs,
            r.candidates,
            r.tokenize_us,
            r.joint_us,
            r.config_us,
            r.events,
            r.scored,
            r.merge_aborts,
            r.cache_hits,
            r.scored_saved,
            r.allocs.allocations,
            r.allocs.bytes,
            r.auto_q.q_used,
            r.auto_q.select_q_us,
            r.auto_q.joint_us,
            r.auto_q.cache_hits
        );
    }
    json.push_str("\n  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_ssj.json");

    println!(
        "{:<16} {:>8} {:>6} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "dataset", "scale", "cfgs", "joint", "scored", "aborts", "saved", "|E|"
    );
    for r in &reports {
        println!(
            "{:<16} {:>8.2} {:>6} {:>10.2}ms {:>12} {:>10} {:>10} {:>8}",
            r.name,
            r.scale,
            r.configs,
            r.joint_us as f64 / 1e3,
            r.scored,
            r.merge_aborts,
            r.scored_saved,
            r.candidates
        );
        println!(
            "  auto-q: q={} select_q {:.2}ms, joint {:.2}ms, cache hits {}",
            r.auto_q.q_used,
            r.auto_q.select_q_us as f64 / 1e3,
            r.auto_q.joint_us as f64 / 1e3,
            r.auto_q.cache_hits
        );
    }
    println!("wrote {out_path}");

    if let Some(path) = budget_path {
        let text = std::fs::read_to_string(path).expect("read budget file");
        let budgets = parse_budgets(&text);
        let mut failed = false;
        for r in &reports {
            match budgets.iter().find(|(n, _)| *n == r.name) {
                Some(&(_, budget)) if r.scored > budget => {
                    eprintln!(
                        "BUDGET EXCEEDED: {} scored {} > budget {} (deterministic work-counter \
                         regression — inspect the scoring-kernel / pruning changes before \
                         raising the budget in {path})",
                        r.name, r.scored, budget
                    );
                    failed = true;
                }
                Some(&(_, budget)) => {
                    println!("budget ok: {} scored {} <= {}", r.name, r.scored, budget);
                }
                None => {
                    eprintln!(
                        "BUDGET MISSING: no entry for profile '{}' in {path}",
                        r.name
                    );
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}

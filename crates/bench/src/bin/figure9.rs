//! Regenerates **Figure 9** — runtime of the top-k module as table size
//! grows (10% / 40% / 70% / 100% of the dataset) for `k ∈ {100, 1000}`,
//! on the two largest datasets: Music2 (blockers HASH1, HASH2, SIM1) and
//! Papers (its three rule blockers).
//!
//! The paper's claim is *shape*, not absolute numbers: runtime grows
//! linearly or sublinearly in table size.
//!
//! `cargo run --release -p mc-bench --bin figure9 [--scale X]`
//! `--scale` sets the 100% size as a fraction of the paper's 500–628K
//! rows per table (default 0.04 ⇒ 20–25K rows at 100%).

use mc_bench::blockers::table2_suite;
use mc_bench::harness::{topk_time, CliArgs};
use mc_datagen::profiles::DatasetProfile;
use mc_datagen::EmDataset;
use mc_table::{GoldMatches, PairSet};

/// Restricts a dataset to its first `pct` percent of rows (gold and
/// candidate pairs are filtered to the surviving tuples).
fn shrink(ds: &EmDataset, pct: f64) -> EmDataset {
    let na = (ds.a.len() as f64 * pct) as usize;
    let nb = (ds.b.len() as f64 * pct) as usize;
    let a = ds.a.head(na);
    let b = ds.b.head(nb);
    let gold = GoldMatches::from_pairs(
        ds.gold
            .iter()
            .filter(|&(x, y)| (x as usize) < na && (y as usize) < nb),
    );
    EmDataset {
        a,
        b,
        gold,
        errors: Vec::new(),
        name: ds.name.clone(),
    }
}

fn main() {
    let args = CliArgs::parse(0.04);
    let sets = [
        (DatasetProfile::Music2, vec!["HASH1", "HASH2", "SIM1"]),
        (DatasetProfile::Papers, vec!["R1", "R2", "R3"]),
    ];
    for (profile, labels) in sets {
        let ds = profile.generate_scaled(args.seed, args.scale);
        println!(
            "== {} (100% = |A|={} |B|={})",
            ds.name,
            ds.a.len(),
            ds.b.len()
        );
        for k in [100usize, 1000] {
            println!("-- k = {k}");
            println!(
                "{:<8} {:>6} {:>12} {:>10}",
                "blocker", "size%", "topk (s)", "|E|"
            );
            for label in &labels {
                for pct in [0.1, 0.4, 0.7, 1.0] {
                    let small = shrink(&ds, pct);
                    let suite = table2_suite(profile, small.a.schema());
                    let nb = suite
                        .iter()
                        .find(|n| n.label == *label)
                        .expect("blocker label");
                    let c: PairSet = nb.blocker.apply(&small.a, &small.b);
                    let mut params = args.params();
                    params.joint.k = k;
                    let (elapsed, e) = topk_time(&small, &c, params);
                    println!(
                        "{:<8} {:>5.0}% {:>12.3} {:>10}",
                        label,
                        pct * 100.0,
                        elapsed.as_secs_f64(),
                        e
                    );
                }
            }
        }
    }
    args.obs_report();
}

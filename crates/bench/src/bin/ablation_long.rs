//! **§6.5 ablation: long-attribute handling (`FindLongAttr`).**
//!
//! The paper reports that removing a "too long" attribute early in
//! config generation improves the recall of `E` by up to 11% versus the
//! default e-score-only expansion. Amazon-Google is the natural stage:
//! its description column is ~10× longer than every other attribute.
//!
//! `cargo run --release -p mc-bench --bin ablation_long [--scale X]`

use matchcatcher::config::ConfigGeneratorParams;
use matchcatcher::debugger::MatchCatcher;
use matchcatcher::joint::CandidateUnion;
use mc_bench::blockers::table2_suite;
use mc_bench::harness::CliArgs;
use mc_datagen::profiles::DatasetProfile;
use mc_table::split_pair_key;

fn main() {
    let args = CliArgs::parse(1.0);
    for profile in [DatasetProfile::AmazonGoogle, DatasetProfile::WalmartAmazon] {
        let ds = profile.generate_scaled(args.seed, args.scale.min(1.0));
        let suite = table2_suite(profile, ds.a.schema());
        println!("== {}", ds.name);
        for nb in suite.iter().take(2) {
            let c = nb.blocker.apply(&ds.a, &ds.b);
            let md = ds.gold.killed(&c);
            let mut results = Vec::new();
            for handle_long in [false, true] {
                let mut params = args.params();
                params.config = ConfigGeneratorParams {
                    handle_long_attrs: handle_long,
                    ..params.config
                };
                let mc = MatchCatcher::new(params);
                let prepared = mc.prepare(&ds.a, &ds.b);
                let joint = mc.topk(&prepared, &c);
                let union = CandidateUnion::build(&joint.lists);
                let me = union
                    .pairs
                    .iter()
                    .filter(|&&k| {
                        let (x, y) = split_pair_key(k);
                        ds.gold.is_match(x, y)
                    })
                    .count();
                results.push((handle_long, me));
            }
            let (off, on) = (results[0].1, results[1].1);
            let recall_off = if md == 0 {
                0.0
            } else {
                100.0 * off as f64 / md as f64
            };
            let recall_on = if md == 0 {
                0.0
            } else {
                100.0 * on as f64 / md as f64
            };
            println!(
                "  {:<6} MD={:<5} recall(E) without FindLongAttr {:.1}%  with {:.1}%  (Δ {:+.1}pp)",
                nb.label,
                md,
                recall_off,
                recall_on,
                recall_on - recall_off
            );
        }
    }
    args.obs_report();
}

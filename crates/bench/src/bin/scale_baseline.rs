//! Scale-out SSJ baseline: runs the joint top-k execution on the
//! synthetic `zipf-scale` profile (60K × 60K records at scale 1.0,
//! heavy-tailed token distribution) in two configurations and writes
//! `BENCH_scale.json`:
//!
//! * `single_scalar` — `shards = 1`, scalar merge+gallop kernel: the
//!   paper's one-config-per-core schedule, where the root config's join
//!   runs on a single thread;
//! * `sharded_simd` — `--shards` record-range shards (default 8) with
//!   the bitmap popcount kernel: configs run sequentially, each join
//!   split across workers.
//!
//! Both variants run with the overlap database off (sharding forces it
//! off, so the single-shard variant disables it too — the comparison is
//! kernel + schedule, not reuse) and the same `--threads` budget.
//!
//! Two speedups are reported, both from measured times only:
//!
//! * `speedup.joint_wall` — single-shard joint time over sharded joint
//!   time as wall-clocked on this machine. On a box with fewer cores
//!   than shards the workers serialize, so this can be < 1.
//! * `speedup.joint_critical_path` — single-shard joint time over the
//!   sharded variant's `stages.critical_us`, where every sharded stage
//!   is collapsed to its slowest shard's measured busy time. This is
//!   the sharded wall clock once `threads >= shards`; it is
//!   conservative, because each shard's busy time is measured while the
//!   shards run back-to-back and therefore sees no cross-shard pruning
//!   help from concurrently running peers.
//!
//! The binary also verifies the sharding determinism contract on every
//! run: the bitmap-kernel execution at shard counts {1, 4, `--shards`}
//! must produce `sorted_entries()` bit-identical to the single-shard
//! scalar reference for every config. A mismatch aborts with exit code 1
//! — in CI the smoke run doubles as the identity gate.
//!
//! `MC_BENCH_SMOKE=1` shrinks the defaults to `--scale 0.02 --runs 1`
//! for CI; explicit flags still override. With `--min-speedup X` the run
//! exits non-zero unless `speedup.joint_critical_path >= X` (used when
//! regenerating the committed full-scale baseline, not in smoke CI).
//!
//! `cargo run --release -p mc-bench --bin scale_baseline [--scale X]
//!  [--runs N] [--threads N] [--shards N] [--k N] [--out PATH]
//!  [--min-speedup X]`

use matchcatcher::config::{ConfigGenerator, ConfigTree};
use matchcatcher::joint::{run_joint, CandidateUnion, JointParams, SsjKernel};
use mc_bench::alloc::AllocStats;
use mc_bench::env::BenchEnv;
use mc_datagen::profiles::DatasetProfile;
use mc_obs::MetricsSnapshot;
use mc_strsim::dict::TokenizedTable;
use mc_strsim::tokenize::Tokenizer;
use mc_table::PairSet;
use std::fmt::Write as _;

/// Per-config canonical results: one `sorted_entries()` vector per
/// config, in tree order. `f64` compares exactly here — bit-identity is
/// the contract under test, not approximate agreement.
type Entries = Vec<Vec<(f64, u64)>>;

struct VariantReport {
    name: &'static str,
    shards: usize,
    kernel: &'static str,
    candidates: usize,
    joint_us: u64,
    config_us: u64,
    /// Joint time with each sharded stage collapsed to its slowest
    /// shard's busy time — the wall clock once `threads >= shards`.
    /// Equals `joint_us` for unsharded variants.
    critical_us: u64,
    events: u64,
    scored: u64,
    dense_fallbacks: u64,
    allocs: AllocStats,
}

fn params_for(k: usize, threads: usize, shards: usize, kernel: SsjKernel) -> JointParams {
    let mut params = JointParams {
        k,
        shards,
        kernel,
        // Equal footing: sharding forces the overlap database off, so the
        // single-shard reference runs without it too.
        reuse_overlaps: false,
        // The committed baseline's work counters and the shard-identity
        // sweep must see the *requested* shard counts on every machine,
        // including boxes with fewer cores than shards.
        clamp_shards: false,
        ..Default::default()
    };
    if threads != 0 {
        params.threads = threads;
    }
    params
}

/// Best-of-`runs` execution of one variant. The allocation counter comes
/// from the first (cold) repetition: with pinned threads it is
/// deterministic, while warm repetitions depend on allocator reuse.
/// Returns the report plus the first run's canonical entries.
fn run_variant(
    name: &'static str,
    ta: &TokenizedTable,
    tb: &TokenizedTable,
    tree: &ConfigTree,
    params: JointParams,
    runs: usize,
) -> (VariantReport, Entries) {
    let killed = PairSet::new();
    let mut best: Option<(u64, MetricsSnapshot, usize)> = None;
    let mut allocs = AllocStats::capture();
    let mut entries: Entries = Vec::new();
    for rep in 0..runs.max(1) {
        let alloc_base = AllocStats::capture();
        let base = MetricsSnapshot::capture();
        let out = run_joint(ta, tb, &killed, tree, params);
        let delta = MetricsSnapshot::capture().since(&base);
        if rep == 0 {
            allocs = AllocStats::capture().since(&alloc_base);
            entries = out.lists.iter().map(|l| l.sorted_entries()).collect();
        }
        let joint_us = delta.span("mc.core.joint.run").total_us;
        let candidates = CandidateUnion::build(&out.lists).len();
        if best.as_ref().is_none_or(|(b, _, _)| joint_us < *b) {
            best = Some((joint_us, delta, candidates));
        }
    }
    let (joint_us, delta, candidates) = best.expect("at least one run");
    if std::env::var("MC_BENCH_DUMP").is_ok_and(|v| v == "1") {
        eprintln!("--- {name} best-run metrics ---\n{}", delta.render());
    }
    // Parallel critical path: replace every sharded stage's sequential
    // time with its slowest shard's busy time (both measured — see
    // `mc.core.ssj.shard_critical_us`). On a machine with fewer cores
    // than shards the workers serialize, so `joint_us` carries the full
    // per-shard sum while this is the wall clock at `threads >= shards`.
    let sharded_us = delta.span("mc.core.ssj.sharded").total_us;
    let shard_critical_us = delta.span("mc.core.ssj.shard_critical_us").total_us;
    let critical_us = joint_us - sharded_us.min(joint_us) + shard_critical_us;
    let report = VariantReport {
        name,
        shards: params.shards,
        kernel: match params.kernel {
            SsjKernel::Scalar => "scalar",
            SsjKernel::Bitmap { .. } => "bitmap",
        },
        candidates,
        joint_us,
        config_us: delta.span("mc.core.joint.config").total_us,
        critical_us,
        events: delta.counter("mc.core.ssj.events"),
        scored: delta.counter("mc.core.ssj.scored"),
        dense_fallbacks: delta.counter("mc.core.ssj.dense_fallback"),
        allocs,
    };
    (report, entries)
}

/// One single-repetition execution used only for the shard-identity
/// sweep; returns the canonical entries.
fn entries_at(
    ta: &TokenizedTable,
    tb: &TokenizedTable,
    tree: &ConfigTree,
    params: JointParams,
) -> Entries {
    let killed = PairSet::new();
    let out = run_joint(ta, tb, &killed, tree, params);
    out.lists.iter().map(|l| l.sorted_entries()).collect()
}

/// Panics (→ exit 101) with a per-config diagnosis when two executions'
/// canonical entries differ anywhere.
fn assert_identical(reference: &Entries, got: &Entries, label: &str) {
    assert_eq!(
        reference.len(),
        got.len(),
        "{label}: config count diverged from the scalar reference"
    );
    for (cfg, (r, g)) in reference.iter().zip(got.iter()).enumerate() {
        assert!(
            r == g,
            "{label}: sorted_entries mismatch at config {cfg} \
             (reference {} entries, got {}) — the sharded/bitmap execution \
             must be bit-identical to the single-shard scalar one",
            r.len(),
            g.len()
        );
    }
}

fn main() {
    let env = BenchEnv::parse();
    let scale = env.scale(1.0, 0.02);
    let k: usize = env.value_or("--k", 200);
    let seed = env.seed(7);
    let runs = env.runs(3);
    let threads = env.threads();
    let shards: usize = env.value_or("--shards", 8);
    let out_path = env.out("BENCH_scale.json");
    let min_speedup: f64 = env.value_or("--min-speedup", 0.0);

    let ds = DatasetProfile::ZipfScale.generate_scaled(seed, scale);
    let generator = ConfigGenerator::default();
    let promising = generator.promising(&ds.a, &ds.b);
    let tree = generator.build_tree(&promising);

    let tok_base = MetricsSnapshot::capture();
    let (ta, tb, _) = TokenizedTable::build_pair(&ds.a, &ds.b, &promising.attrs, Tokenizer::Word);
    let tokenize_us = MetricsSnapshot::capture()
        .since(&tok_base)
        .span("mc.strsim.dict.build")
        .total_us;

    let (single, reference) = run_variant(
        "single_scalar",
        &ta,
        &tb,
        &tree,
        params_for(k, threads, 1, SsjKernel::Scalar),
        runs,
    );
    let (sharded, sharded_entries) = run_variant(
        "sharded_simd",
        &ta,
        &tb,
        &tree,
        params_for(k, threads, shards, SsjKernel::bitmap()),
        runs,
    );

    // Determinism contract: the bitmap kernel at every swept shard count
    // reproduces the scalar single-shard entries bit for bit.
    assert_identical(&reference, &sharded_entries, "sharded_simd");
    let mut shard_counts_checked = vec![1usize, 4, shards];
    shard_counts_checked.sort_unstable();
    shard_counts_checked.dedup();
    for &s in &shard_counts_checked {
        if s == shards {
            continue; // already checked via the sharded_simd run above
        }
        let got = entries_at(
            &ta,
            &tb,
            &tree,
            params_for(k, threads, s, SsjKernel::bitmap()),
        );
        assert_identical(&reference, &got, &format!("bitmap shards={s}"));
    }

    // Wall-clock speedup on THIS machine (sequential when cores <
    // shards) and the parallel speedup at `threads >= shards`, from the
    // measured per-shard critical paths.
    let speedup_wall = single.joint_us as f64 / sharded.joint_us.max(1) as f64;
    let speedup = single.joint_us as f64 / sharded.critical_us.max(1) as f64;

    let variants = [&single, &sharded];
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"schema\": \"mc-bench-scale/v1\",\n  \"dataset\": {{\"name\": \"{}\", \
         \"scale\": {}, \"records_a\": {}, \"records_b\": {}, \"k\": {}, \
         \"configs\": {}, \"tokenize_us\": {}}},\n  \"variants\": [",
        ds.name,
        scale,
        ds.a.len(),
        ds.b.len(),
        k,
        tree.len(),
        tokenize_us
    );
    for (i, v) in variants.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "\n    {{\"name\": \"{}\", \"shards\": {}, \"kernel\": \"{}\", \
             \"candidates\": {}, \"stages\": {{\"joint_us\": {}, \"config_us\": {}, \
             \"critical_us\": {}}}, \
             \"counters\": {{\"events\": {}, \"scored\": {}, \"dense_fallbacks\": {}}}, \
             \"allocs\": {{\"count\": {}, \"bytes\": {}}}}}",
            v.name,
            v.shards,
            v.kernel,
            v.candidates,
            v.joint_us,
            v.config_us,
            v.critical_us,
            v.events,
            v.scored,
            v.dense_fallbacks,
            v.allocs.allocations,
            v.allocs.bytes
        );
    }
    let _ = write!(
        json,
        "\n  ],\n  \"identity\": {{\"shard_counts_checked\": {}}},\n  \
         \"speedup\": {{\"joint_wall\": {speedup_wall:.4}, \
         \"joint_critical_path\": {speedup:.4}}}\n}}\n",
        shard_counts_checked.len()
    );
    std::fs::write(&out_path, &json).expect("write BENCH_scale.json");

    println!(
        "{:<14} {:>6} {:>8} {:>12} {:>12} {:>14} {:>12} {:>8}",
        "variant", "shards", "kernel", "joint", "critical", "scored", "allocs", "|E|"
    );
    for v in &variants {
        println!(
            "{:<14} {:>6} {:>8} {:>10.2}ms {:>10.2}ms {:>14} {:>12} {:>8}",
            v.name,
            v.shards,
            v.kernel,
            v.joint_us as f64 / 1e3,
            v.critical_us as f64 / 1e3,
            v.scored,
            v.allocs.allocations,
            v.candidates
        );
    }
    println!(
        "identity ok across shard counts {shard_counts_checked:?}; \
         joint speedup {speedup_wall:.2}x wall, {speedup:.2}x critical-path \
         (threads >= shards)"
    );
    println!("wrote {out_path}");

    if env.has("--sweep") {
        // Diagnostic matrix: single-repetition joint time for every
        // (shards, kernel) combination. Not part of the JSON report.
        println!("{:<8} {:>12} {:>12}", "shards", "scalar", "bitmap");
        for s in [1usize, 2, 4, 8] {
            let mut row = format!("{s:<8}");
            for kernel in [SsjKernel::Scalar, SsjKernel::bitmap()] {
                let killed = PairSet::new();
                let base = MetricsSnapshot::capture();
                let _ = run_joint(&ta, &tb, &killed, &tree, params_for(k, threads, s, kernel));
                let us = MetricsSnapshot::capture()
                    .since(&base)
                    .span("mc.core.joint.run")
                    .total_us;
                let _ = write!(row, " {:>10.2}ms", us as f64 / 1e3);
            }
            println!("{row}");
        }
    }

    if min_speedup > 0.0 && speedup < min_speedup {
        eprintln!(
            "SPEEDUP BELOW FLOOR: sharded_simd critical path is only {speedup:.2}x \
             faster than single_scalar (floor {min_speedup})"
        );
        std::process::exit(1);
    }
}

//! Regenerates **Table 1** — dataset statistics for the seven synthetic
//! profiles.
//!
//! `cargo run --release -p mc-bench --bin table1 [--scale X] [--seed N]`
//!
//! With `--scale 1` (default 0.1 for the two 500K-row profiles) the sizes
//! match the paper's exactly; the other columns (matches, attrs, average
//! lengths) are properties of the generators.

use mc_bench::harness::CliArgs;
use mc_datagen::profiles::DatasetProfile;

fn main() {
    let args = CliArgs::parse(0.1);
    println!(
        "{:<16} {:>8} {:>8} {:>9} {:>6} {:>14}",
        "dataset", "|A|", "|B|", "matches", "attrs", "avg len (A,B)"
    );
    for p in DatasetProfile::ALL {
        let scale = match p {
            DatasetProfile::Music2 | DatasetProfile::Papers | DatasetProfile::Music1 => args.scale,
            _ => 1.0,
        };
        let ds = p.generate_scaled(args.seed, scale);
        let (a, b, m, attrs, la, lb) = ds.table1_row();
        println!(
            "{:<16} {:>8} {:>8} {:>9} {:>6} {:>7.0},{:>5.0}   (scale {scale})",
            ds.name, a, b, m, attrs, la, lb
        );
    }
    println!("\npaper (Table 1):");
    for p in DatasetProfile::ALL {
        let (a, b, m) = p.paper_sizes();
        println!("{:<16} {:>8} {:>8} {:>9}", p.name(), a, b, m);
    }
    args.obs_report();
}

//! Verifier perf baseline: runs the **§5 Match Verifier** end-to-end on a
//! datagen profile (hash-city blocker, exact gold oracle as the synthetic
//! user) and writes per-stage wall-clock numbers — derived from the
//! `mc-obs` snapshot delta — to `BENCH_verifier.json`, establishing the
//! perf trajectory future PRs must not regress.
//!
//! Stages per profile (best of `--runs` repetitions of the verify stage):
//!
//! * `feature_build_us` — flat feature-matrix materialization
//!   (`mc.core.verify.feature_matrix.build` span total);
//! * `fit_us` — forest (re)fits across all iterations
//!   (`mc.core.verify.forest_fit` span total);
//! * `predict_us` — candidate scoring across all iterations
//!   (`mc.core.verify.forest_predict` span total);
//! * `verify_us` — the whole verifier (`mc.core.verify.run` span total);
//! * `per_iter_us` — `verify_us / iterations`, the interactive latency the
//!   user sees between labeling rounds.
//!
//! Set `MC_BENCH_SMOKE=1` for a shrunk CI smoke run. The JSON also
//! carries the first (cold) run's allocation count — deterministic with
//! `--threads` pinned, budgeted by `mc bench-compare`.
//!
//! `cargo run --release -p mc-bench --bin verifier_baseline [--scale X]
//!  [--runs N] [--threads N] [--out PATH]`

use matchcatcher::debugger::MatchCatcher;
use matchcatcher::features::FeatureExtractor;
use matchcatcher::joint::CandidateUnion;
use matchcatcher::oracle::GoldOracle;
use matchcatcher::verify::run_verifier;
use mc_bench::alloc::AllocStats;
use mc_bench::blockers::best_hash_blocker;
use mc_bench::env::BenchEnv;
use mc_bench::harness::paper_params;
use mc_datagen::profiles::DatasetProfile;
use mc_obs::MetricsSnapshot;
use std::fmt::Write as _;

struct ProfileReport {
    name: String,
    scale: f64,
    candidates: usize,
    iterations: usize,
    labeled: usize,
    matches: usize,
    threads: usize,
    feature_build_us: u64,
    fit_us: u64,
    predict_us: u64,
    verify_us: u64,
    per_iter_us: u64,
    allocs: AllocStats,
}

fn run_profile(
    profile: DatasetProfile,
    scale: f64,
    seed: u64,
    runs: usize,
    threads: usize,
) -> ProfileReport {
    let ds = profile.generate_scaled(seed, scale);
    // Fodors-Zagats uses the paper's running-example blocker (hash on
    // city), which kills many matches and drives a long learning run; the
    // other profiles use their §6.2 best-hash blocker.
    let blocker = match profile {
        DatasetProfile::FodorsZagats => {
            mc_blocking::Blocker::Hash(mc_blocking::KeyFunc::Attr(ds.a.schema().expect_id("city")))
        }
        _ => best_hash_blocker(profile, ds.a.schema()),
    };
    let c = blocker.apply(&ds.a, &ds.b);

    let mut params = paper_params();
    if threads != 0 {
        params.joint.threads = threads;
        params.verifier.forest.threads = threads;
    }
    let mc = MatchCatcher::new(params.clone());
    let prepared = mc.prepare(&ds.a, &ds.b);
    let joint = mc.topk(&prepared, &c);
    let union = CandidateUnion::build(&joint.lists);
    let fx = FeatureExtractor::new(
        &ds.a,
        &ds.b,
        &prepared.promising.attrs,
        &prepared.tok_a,
        &prepared.tok_b,
    );

    // Best-of-N verifier runs (first run also warms allocators/caches);
    // the oracle is rebuilt per run so every repetition labels the same
    // pairs and the measured work is identical. The allocation counter
    // comes from the first (cold) repetition, which is deterministic
    // with pinned threads.
    let mut best: Option<(u64, MetricsSnapshot, usize, usize, usize)> = None;
    let mut allocs = AllocStats::capture();
    for rep in 0..runs.max(1) {
        let mut oracle = GoldOracle::exact(&ds.gold);
        let alloc_base = AllocStats::capture();
        let base = MetricsSnapshot::capture();
        let out = run_verifier(&union, &fx, &mut oracle, &params.verifier);
        let delta = MetricsSnapshot::capture().since(&base);
        if rep == 0 {
            allocs = AllocStats::capture().since(&alloc_base);
        }
        let verify_us = delta.span("mc.core.verify.run").total_us;
        if best.as_ref().is_none_or(|(b, ..)| verify_us < *b) {
            best = Some((
                verify_us,
                delta,
                out.iterations.len(),
                out.labeled,
                out.matches.len(),
            ));
        }
    }
    let (verify_us, delta, iterations, labeled, matches) = best.expect("at least one run");

    ProfileReport {
        name: ds.name.clone(),
        scale,
        candidates: union.len(),
        iterations,
        labeled,
        matches,
        threads: mc_ml_threads(params.verifier.forest.threads),
        feature_build_us: delta.span("mc.core.verify.feature_matrix.build").total_us,
        fit_us: delta.span("mc.core.verify.forest_fit").total_us,
        predict_us: delta.span("mc.core.verify.forest_predict").total_us,
        verify_us,
        per_iter_us: verify_us / iterations.max(1) as u64,
        allocs,
    }
}

/// The worker count `mc-ml` resolves `forest.threads` to (`0` = all
/// cores), reported in the JSON so runs on different machines compare
/// honestly.
fn mc_ml_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        requested
    }
}

fn main() {
    let env = BenchEnv::parse();
    let scale = env.scale(1.0, 0.2);
    let seed = env.seed(7);
    let runs = env.runs(3);
    let threads = env.threads();
    let out_path = env.out("BENCH_verifier.json");

    // Two contrasting verification workloads: short restaurant records
    // (many near-ties, long verification) and long product records.
    let reports = [
        run_profile(
            DatasetProfile::FodorsZagats,
            scale.min(1.0),
            seed,
            runs,
            threads,
        ),
        run_profile(
            DatasetProfile::AmazonGoogle,
            0.25 * scale,
            seed,
            runs,
            threads,
        ),
    ];

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"mc-bench-verifier/v1\",\n  \"profiles\": [");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "\n    {{\"name\": \"{}\", \"scale\": {}, \"candidates\": {}, \
             \"iterations\": {}, \"labeled\": {}, \"matches\": {}, \"threads\": {}, \
             \"stages\": {{\"feature_build_us\": {}, \"fit_us\": {}, \"predict_us\": {}, \
             \"verify_us\": {}, \"per_iter_us\": {}}}, \
             \"allocs\": {{\"count\": {}, \"bytes\": {}}}}}",
            r.name,
            r.scale,
            r.candidates,
            r.iterations,
            r.labeled,
            r.matches,
            r.threads,
            r.feature_build_us,
            r.fit_us,
            r.predict_us,
            r.verify_us,
            r.per_iter_us,
            r.allocs.allocations,
            r.allocs.bytes
        );
    }
    json.push_str("\n  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_verifier.json");

    println!(
        "{:<16} {:>8} {:>8} {:>6} {:>12} {:>12} {:>12} {:>12}",
        "dataset", "scale", "|E|", "iters", "feat-build", "fit", "predict", "verify"
    );
    for r in &reports {
        println!(
            "{:<16} {:>8.2} {:>8} {:>6} {:>10.2}ms {:>10.2}ms {:>10.2}ms {:>10.2}ms",
            r.name,
            r.scale,
            r.candidates,
            r.iterations,
            r.feature_build_us as f64 / 1e3,
            r.fit_us as f64 / 1e3,
            r.predict_us as f64 / 1e3,
            r.verify_us as f64 / 1e3,
        );
    }
    println!("wrote {out_path}");
}

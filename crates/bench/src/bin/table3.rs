//! Regenerates **Table 3** — accuracy of MatchCatcher in retrieving
//! killed-off matches, for every Table 2 blocker on the first six
//! datasets (as in the paper; Papers has no gold and appears in §6.2).
//!
//! Columns: `|C|` (blocker output), `MD` (matches killed), `|E|` (union
//! of top-k lists, k = 1000), `ME` (matches in E, % of MD), `F` (matches
//! the verifier retrieves by its natural stop, % of ME), `I` (verifier
//! iterations).
//!
//! `cargo run --release -p mc-bench --bin table3 [--scale X] [--k N] [--only prefix]`
//! Default scale 0.05 for Music1, 0.02 for Music2 (full-size runs take
//! tens of minutes on a single core; pass `--scale 1` to match the
//! paper's sizes). `--only music` restricts to matching dataset names.

use mc_bench::blockers::table2_suite;
use mc_bench::harness::{table3_cell, CliArgs, Table3Row};
use mc_datagen::profiles::DatasetProfile;

fn main() {
    let args = CliArgs::parse(0.0);
    let only: Option<String> = {
        let argv: Vec<String> = std::env::args().collect();
        argv.iter()
            .position(|a| a == "--only")
            .and_then(|i| argv.get(i + 1).cloned())
    };
    println!("{}", Table3Row::header());
    let sets = [
        (DatasetProfile::AmazonGoogle, 1.0),
        (DatasetProfile::WalmartAmazon, 1.0),
        (DatasetProfile::AcmDblp, 1.0),
        (DatasetProfile::FodorsZagats, 1.0),
        (DatasetProfile::Music1, 0.05),
        (DatasetProfile::Music2, 0.02),
    ];
    for (profile, default_scale) in sets {
        if let Some(prefix) = &only {
            if !profile.name().starts_with(prefix.as_str()) {
                continue;
            }
        }
        let scale = if args.scale > 0.0 {
            args.scale.min(1.0)
        } else {
            default_scale
        };
        let ds = profile.generate_scaled(args.seed, scale);
        // Print the blocker definitions once per dataset (Table 2).
        eprintln!("# {} (scale {scale}):", ds.name);
        for nb in table2_suite(profile, ds.a.schema()) {
            eprintln!("#   ({}) {}", nb.label, nb.blocker.describe(ds.a.schema()));
            let row = table3_cell(&ds, nb.label, &nb.blocker, args.params());
            println!("{row}");
        }
    }
    args.obs_report();
}

//! The blocker suites of Table 2, plus the §6.2 "best hash blockers".
//!
//! Table 2 states blockers as *drop rules* (`title_overlap_word<3` drops
//! pairs sharing fewer than 3 title words); here they appear in keep
//! form. Labels follow the paper ("OL", "HASH", "SIM", "R").

use mc_blocking::{Blocker, KeyFunc};
use mc_datagen::profiles::DatasetProfile;
use mc_strsim::measures::SetMeasure;
use mc_strsim::tokenize::Tokenizer;
use mc_table::Schema;

/// A labeled blocker for the experiments.
pub struct NamedBlocker {
    /// Short label ("OL", "HASH", "SIM1", …).
    pub label: &'static str,
    /// The blocker.
    pub blocker: Blocker,
}

fn sim(schema: &Schema, attr: &str, tok: Tokenizer, m: SetMeasure, t: f64) -> Blocker {
    Blocker::Sim {
        attr: schema.expect_id(attr),
        tokenizer: tok,
        measure: m,
        threshold: t,
    }
}

fn overlap(schema: &Schema, attr: &str, c: usize) -> Blocker {
    Blocker::Overlap {
        attr: schema.expect_id(attr),
        tokenizer: Tokenizer::Word,
        min_common: c,
    }
}

fn hash(schema: &Schema, attr: &str) -> Blocker {
    Blocker::Hash(KeyFunc::Attr(schema.expect_id(attr)))
}

fn band(schema: &Schema, attr: &str, w: f64) -> Blocker {
    Blocker::NumBand {
        attr: schema.expect_id(attr),
        width: w,
    }
}

/// The Table 2 blocker suite for a dataset profile.
pub fn table2_suite(profile: DatasetProfile, schema: &Schema) -> Vec<NamedBlocker> {
    use SetMeasure::{Cosine, Jaccard};
    use Tokenizer::{QGram, Word};
    match profile {
        DatasetProfile::AmazonGoogle => vec![
            NamedBlocker {
                label: "OL",
                blocker: overlap(schema, "title", 3),
            },
            NamedBlocker {
                label: "HASH",
                blocker: hash(schema, "manufacturer"),
            },
            NamedBlocker {
                label: "SIM",
                blocker: sim(schema, "title", Word, Cosine, 0.4),
            },
            NamedBlocker {
                label: "R",
                blocker: Blocker::Union(vec![
                    sim(schema, "title", Word, Jaccard, 0.2),
                    sim(schema, "manufacturer", QGram(3), Jaccard, 0.4),
                ]),
            },
        ],
        DatasetProfile::WalmartAmazon => vec![
            NamedBlocker {
                label: "OL",
                blocker: overlap(schema, "title", 3),
            },
            NamedBlocker {
                label: "HASH",
                blocker: hash(schema, "brand"),
            },
            NamedBlocker {
                label: "SIM",
                blocker: sim(schema, "title", Word, Cosine, 0.4),
            },
            NamedBlocker {
                label: "R",
                blocker: Blocker::Intersect(vec![
                    sim(schema, "title", Word, Jaccard, 0.5),
                    band(schema, "price", 20.0),
                ]),
            },
        ],
        DatasetProfile::AcmDblp => vec![
            NamedBlocker {
                label: "OL",
                blocker: overlap(schema, "authors", 2),
            },
            NamedBlocker {
                label: "SIM",
                blocker: sim(schema, "title", QGram(3), Jaccard, 0.7),
            },
            NamedBlocker {
                label: "R1",
                blocker: Blocker::Union(vec![
                    sim(schema, "title", Word, Cosine, 0.8),
                    sim(schema, "authors", QGram(3), Jaccard, 0.8),
                ]),
            },
            NamedBlocker {
                label: "R2",
                blocker: Blocker::Intersect(vec![
                    sim(schema, "title", Word, Jaccard, 0.7),
                    band(schema, "year", 0.5),
                ]),
            },
        ],
        DatasetProfile::FodorsZagats => vec![
            NamedBlocker {
                label: "OL",
                blocker: overlap(schema, "name", 2),
            },
            NamedBlocker {
                label: "HASH",
                blocker: hash(schema, "city"),
            },
            NamedBlocker {
                label: "SIM",
                blocker: sim(schema, "addr", QGram(3), Jaccard, 0.3),
            },
            NamedBlocker {
                label: "R",
                blocker: Blocker::Intersect(vec![
                    sim(schema, "addr", QGram(3), Jaccard, 0.3),
                    Blocker::Union(vec![
                        sim(schema, "name", Word, Cosine, 0.5),
                        sim(schema, "type", QGram(3), Jaccard, 0.7),
                    ]),
                ]),
            },
        ],
        DatasetProfile::Music1 => vec![
            NamedBlocker {
                label: "OL",
                blocker: overlap(schema, "artist", 2),
            },
            NamedBlocker {
                label: "HASH",
                blocker: hash(schema, "artist"),
            },
            NamedBlocker {
                label: "SIM",
                blocker: sim(schema, "title", Word, Cosine, 0.5),
            },
            NamedBlocker {
                label: "R",
                blocker: Blocker::Intersect(vec![
                    sim(schema, "title", Word, Cosine, 0.7),
                    band(schema, "year", 0.5),
                ]),
            },
        ],
        DatasetProfile::Music2 => vec![
            NamedBlocker {
                label: "HASH1",
                blocker: hash(schema, "artist"),
            },
            NamedBlocker {
                label: "HASH2",
                blocker: Blocker::Union(vec![hash(schema, "album"), hash(schema, "artist")]),
            },
            NamedBlocker {
                label: "SIM1",
                blocker: sim(schema, "title", Word, Cosine, 0.6),
            },
            NamedBlocker {
                label: "SIM2",
                blocker: sim(schema, "title", Word, Cosine, 0.7),
            },
            NamedBlocker {
                label: "SIM3",
                blocker: sim(schema, "title", Word, Cosine, 0.8),
            },
        ],
        DatasetProfile::Papers => vec![
            NamedBlocker {
                label: "R1",
                blocker: overlap(schema, "title", 3),
            },
            NamedBlocker {
                label: "R2",
                blocker: Blocker::Union(vec![
                    sim(schema, "title", Word, Jaccard, 0.5),
                    Blocker::Hash(KeyFunc::LastWord(schema.expect_id("authors"))),
                ]),
            },
            NamedBlocker {
                label: "R3",
                blocker: sim(schema, "title", Word, Cosine, 0.6),
            },
        ],
        // Synthetic scale profile (not part of the paper's Table 2); a
        // small suite so profile-generic harnesses keep working.
        DatasetProfile::ZipfScale => vec![
            NamedBlocker {
                label: "HASH1",
                blocker: hash(schema, "name"),
            },
            NamedBlocker {
                label: "SIM1",
                blocker: sim(schema, "name", Word, Jaccard, 0.5),
            },
        ],
    }
}

/// The §6.2 "best possible hash blockers": unions of hash blockers tuned
/// per dataset (the paper's EM-expert baseline, e.g. for Amazon-Google:
/// equal manufacturer OR hashed price OR hashed title).
pub fn best_hash_blocker(profile: DatasetProfile, schema: &Schema) -> Blocker {
    match profile {
        DatasetProfile::AmazonGoogle => Blocker::Union(vec![
            hash(schema, "manufacturer"),
            Blocker::Hash(KeyFunc::NumBucket(schema.expect_id("price"), 10.0)),
            hash(schema, "title"),
            Blocker::Hash(KeyFunc::FirstWord(schema.expect_id("title"))),
        ]),
        DatasetProfile::WalmartAmazon => Blocker::Union(vec![
            hash(schema, "brand"),
            hash(schema, "modelno"),
            hash(schema, "title"),
        ]),
        DatasetProfile::AcmDblp => Blocker::Union(vec![
            hash(schema, "title"),
            Blocker::Hash(KeyFunc::LastWord(schema.expect_id("authors"))),
            Blocker::Hash(KeyFunc::FirstWord(schema.expect_id("title"))),
        ]),
        DatasetProfile::FodorsZagats => Blocker::Union(vec![
            hash(schema, "name"),
            hash(schema, "city"),
            hash(schema, "phone"),
            Blocker::Hash(KeyFunc::FirstWord(schema.expect_id("name"))),
        ]),
        DatasetProfile::Music1 | DatasetProfile::Music2 => Blocker::Union(vec![
            hash(schema, "artist"),
            hash(schema, "title"),
            hash(schema, "album"),
        ]),
        DatasetProfile::Papers => Blocker::Union(vec![
            hash(schema, "title"),
            Blocker::Hash(KeyFunc::LastWord(schema.expect_id("authors"))),
        ]),
        DatasetProfile::ZipfScale => Blocker::Union(vec![
            hash(schema, "name"),
            Blocker::Hash(KeyFunc::FirstWord(schema.expect_id("name"))),
        ]),
    }
}

/// The §6.2 *repaired* blockers: the best-hash blocker plus the fixes a
/// user derives from MatchCatcher's explanations (similarity predicates
/// tolerating the misspelling/abbreviation/variant channels the debugger
/// surfaces).
pub fn repaired_hash_blocker(profile: DatasetProfile, schema: &Schema) -> Blocker {
    use SetMeasure::{Cosine, Jaccard};
    use Tokenizer::{QGram, Word};
    let base = best_hash_blocker(profile, schema);
    let fixes: Vec<Blocker> = match profile {
        DatasetProfile::AmazonGoogle => vec![
            sim(schema, "title", Word, Cosine, 0.45),
            sim(schema, "manufacturer", QGram(3), Jaccard, 0.4),
        ],
        DatasetProfile::WalmartAmazon => vec![
            sim(schema, "title", Word, Cosine, 0.5),
            Blocker::EditSim {
                key: KeyFunc::Attr(schema.expect_id("modelno")),
                max_ed: 2,
            },
        ],
        DatasetProfile::AcmDblp => vec![sim(schema, "title", QGram(3), Jaccard, 0.6)],
        DatasetProfile::FodorsZagats => vec![
            sim(schema, "name", Word, Cosine, 0.5),
            sim(schema, "addr", QGram(3), Jaccard, 0.4),
        ],
        DatasetProfile::Music1 | DatasetProfile::Music2 => vec![
            sim(schema, "title", Word, Cosine, 0.6),
            Blocker::EditSim {
                key: KeyFunc::Attr(schema.expect_id("artist")),
                max_ed: 2,
            },
        ],
        DatasetProfile::Papers => vec![sim(schema, "title", Word, Cosine, 0.55)],
        DatasetProfile::ZipfScale => vec![sim(schema, "name", Word, Cosine, 0.5)],
    };
    let mut parts = vec![base];
    parts.extend(fixes);
    Blocker::Union(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_resolve_against_profile_schemas() {
        for p in DatasetProfile::ALL {
            let ds = p.generate_scaled(1, 0.005);
            let suite = table2_suite(p, ds.a.schema());
            assert!(!suite.is_empty(), "{}", p.name());
            for nb in &suite {
                // Applying on the tiny dataset must not panic.
                let c = nb.blocker.apply(&ds.a, &ds.b);
                let _ = c.len();
                assert!(!nb.blocker.describe(ds.a.schema()).is_empty());
            }
            let best = best_hash_blocker(p, ds.a.schema());
            let repaired = repaired_hash_blocker(p, ds.a.schema());
            let cb = best.apply(&ds.a, &ds.b);
            let cr = repaired.apply(&ds.a, &ds.b);
            // The repaired blocker is a superset by construction.
            assert!(cr.len() >= cb.len());
            assert!(ds.gold.recall(&cr) >= ds.gold.recall(&cb) - 1e-12);
        }
    }

    #[test]
    fn best_hash_beats_single_hash_on_fz() {
        let ds = DatasetProfile::FodorsZagats.generate(3);
        let schema = ds.a.schema();
        let single = hash(schema, "city").apply(&ds.a, &ds.b);
        let best = best_hash_blocker(DatasetProfile::FodorsZagats, schema).apply(&ds.a, &ds.b);
        assert!(ds.gold.recall(&best) > ds.gold.recall(&single));
    }
}

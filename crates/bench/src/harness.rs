//! Experiment drivers shared by the table/figure binaries.

use matchcatcher::debugger::{DebuggerParams, MatchCatcher};
use matchcatcher::joint::CandidateUnion;
use matchcatcher::oracle::GoldOracle;
use mc_blocking::Blocker;
use mc_datagen::EmDataset;
use mc_obs::MetricsSnapshot;
use mc_table::{split_pair_key, PairSet};
use std::time::{Duration, Instant};

/// One row of Table 3.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Dataset name.
    pub dataset: String,
    /// Blocker label.
    pub blocker: String,
    /// `|C|` — blocker output size.
    pub c: usize,
    /// `MD` — true matches killed by the blocker.
    pub md: usize,
    /// `|E|` — union of the top-k lists.
    pub e: usize,
    /// `ME` — true matches inside `E`.
    pub me: usize,
    /// `F` — matches the verifier retrieved by its natural stop.
    pub f: usize,
    /// `I` — verifier iterations.
    pub i: usize,
    /// Top-k module wall time.
    pub topk: Duration,
    /// Verifier wall time.
    pub verify: Duration,
}

impl Table3Row {
    /// `ME / MD` as a percentage (the parenthesized number in Table 3).
    pub fn me_pct(&self) -> f64 {
        if self.md == 0 {
            0.0
        } else {
            100.0 * self.me as f64 / self.md as f64
        }
    }

    /// `F / ME` as a percentage.
    pub fn f_pct(&self) -> f64 {
        if self.me == 0 {
            0.0
        } else {
            100.0 * self.f as f64 / self.me as f64
        }
    }

    /// Table header for aligned printing.
    pub fn header() -> String {
        format!(
            "{:<14} {:<6} {:>9} {:>6} {:>6} {:>12} {:>12} {:>4} {:>8}",
            "dataset", "Q", "|C|", "MD", "|E|", "ME(%MD)", "F(%ME)", "I", "topk(s)"
        )
    }
}

impl std::fmt::Display for Table3Row {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<14} {:<6} {:>9} {:>6} {:>6} {:>6} ({:>4.1}) {:>6} ({:>4.1}) {:>4} {:>8.2}",
            self.dataset,
            self.blocker,
            self.c,
            self.md,
            self.e,
            self.me,
            self.me_pct(),
            self.f,
            self.f_pct(),
            self.i,
            self.topk.as_secs_f64()
        )
    }
}

/// Runs the full debugger for one `(dataset, blocker)` cell of Table 3.
pub fn table3_cell(
    ds: &EmDataset,
    label: &str,
    blocker: &Blocker,
    params: DebuggerParams,
) -> Table3Row {
    let c = blocker.apply(&ds.a, &ds.b);
    table3_cell_from_candidates(ds, label, &c, params)
}

/// Like [`table3_cell`] but with a precomputed candidate set.
pub fn table3_cell_from_candidates(
    ds: &EmDataset,
    label: &str,
    c: &PairSet,
    params: DebuggerParams,
) -> Table3Row {
    let md = ds.gold.killed(c);
    let mc = MatchCatcher::new(params);
    let prepared = mc.prepare(&ds.a, &ds.b);
    let t0 = Instant::now();
    let joint = mc.topk(&prepared, c);
    let topk = t0.elapsed();
    let union = CandidateUnion::build(&joint.lists);
    let me = union
        .pairs
        .iter()
        .filter(|&&k| {
            let (x, y) = split_pair_key(k);
            ds.gold.is_match(x, y)
        })
        .count();
    let mut oracle = GoldOracle::exact(&ds.gold);
    let t1 = Instant::now();
    let (_, outcome) = mc.verify(&ds.a, &ds.b, &prepared, &joint.lists, &mut oracle);
    let verify = t1.elapsed();
    Table3Row {
        dataset: ds.name.clone(),
        blocker: label.to_string(),
        c: c.len(),
        md,
        e: union.len(),
        me,
        f: outcome.matches.len(),
        i: outcome.iteration_count(),
        topk,
        verify,
    }
}

/// Measures just the top-k module's wall time for one candidate set
/// (Figure 9 / §6.4).
pub fn topk_time(ds: &EmDataset, c: &PairSet, params: DebuggerParams) -> (Duration, usize) {
    let mc = MatchCatcher::new(params);
    let prepared = mc.prepare(&ds.a, &ds.b);
    let t0 = Instant::now();
    let joint = mc.topk(&prepared, c);
    let elapsed = t0.elapsed();
    let union = CandidateUnion::build(&joint.lists);
    (elapsed, union.len())
}

/// Standard bench parameters: the paper's `k = 1000`, `n = 20`.
pub fn paper_params() -> DebuggerParams {
    DebuggerParams::default()
}

/// Parse `--scale X`, `--seed N`, `--k N` style CLI overrides.
///
/// Parsing captures a metrics baseline, so [`CliArgs::obs_report`] at the
/// end of `main` emits exactly the run's delta — every bench binary shares
/// the `mc-obs/v1` snapshot schema this way.
pub struct CliArgs {
    /// Dataset scale factor.
    pub scale: f64,
    /// Generation seed.
    pub seed: u64,
    /// Top-k list size.
    pub k: usize,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Emit the mc-obs stage breakdown + JSON snapshot on exit (`--obs`).
    pub obs: bool,
    baseline: MetricsSnapshot,
}

impl CliArgs {
    /// Parses from `std::env::args`, with the given default scale.
    pub fn parse(default_scale: f64) -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut out = CliArgs {
            scale: default_scale,
            seed: 42,
            k: 1000,
            threads: 0,
            obs: args.iter().any(|a| a == "--obs"),
            baseline: MetricsSnapshot::capture(),
        };
        let mut i = 1;
        while i + 1 < args.len() {
            match args[i].as_str() {
                "--scale" => out.scale = args[i + 1].parse().expect("bad --scale"),
                "--seed" => out.seed = args[i + 1].parse().expect("bad --seed"),
                "--k" => out.k = args[i + 1].parse().expect("bad --k"),
                "--threads" => out.threads = args[i + 1].parse().expect("bad --threads"),
                _ => {
                    i += 1;
                    continue;
                }
            }
            i += 2;
        }
        out
    }

    /// Debugger params with these overrides applied.
    pub fn params(&self) -> DebuggerParams {
        let mut p = paper_params();
        p.joint.k = self.k;
        p.joint.threads = if self.threads == 0 {
            std::thread::available_parallelism().map_or(4, |c| c.get())
        } else {
            self.threads
        };
        p
    }

    /// If `--obs` was passed, prints the run's metric delta: the
    /// human-readable stage breakdown followed by the machine-readable
    /// `mc-obs/v1` JSON snapshot. Call at the end of `main`.
    pub fn obs_report(&self) {
        if !self.obs {
            return;
        }
        let delta = MetricsSnapshot::capture().since(&self.baseline);
        println!("\n{}", delta.render());
        println!("{}", delta.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_blocking::KeyFunc;
    use mc_datagen::profiles::DatasetProfile;

    #[test]
    fn table3_cell_counts_are_consistent() {
        let ds = DatasetProfile::FodorsZagats.generate(11);
        let blocker = Blocker::Hash(KeyFunc::Attr(ds.a.schema().expect_id("city")));
        let mut params = DebuggerParams::default();
        params.joint.k = 200;
        let row = table3_cell(&ds, "HASH", &blocker, params);
        assert!(row.me <= row.md, "ME ≤ MD");
        assert!(row.f <= row.me, "F ≤ ME");
        assert!(row.e >= row.me);
        assert!(row.i >= 1);
        let s = row.to_string();
        assert!(s.contains("HASH"));
        assert!(!Table3Row::header().is_empty());
    }

    #[test]
    fn percentages_handle_zero_denominators() {
        let row = Table3Row {
            dataset: "x".into(),
            blocker: "y".into(),
            c: 0,
            md: 0,
            e: 0,
            me: 0,
            f: 0,
            i: 0,
            topk: Duration::ZERO,
            verify: Duration::ZERO,
        };
        assert_eq!(row.me_pct(), 0.0);
        assert_eq!(row.f_pct(), 0.0);
    }
}

//! Shared CLI/environment plumbing for the bench binaries.
//!
//! Every `mc-bench` binary accepts the same flag family (`--scale`,
//! `--seed`, `--runs`, `--threads`, `--out`, …) and honors the
//! `MC_BENCH_SMOKE` environment switch that shrinks a run down to CI
//! size. [`BenchEnv`] parses both once, so the binaries stop copying the
//! same ad-hoc getter closure and smoke-detection line — and so the
//! smoke semantics are uniform: the switch is *on* whenever
//! `MC_BENCH_SMOKE` is set to anything other than the empty string or
//! `"0"` (previously one binary required exactly `"1"` while the others
//! accepted any set value, `0` included).

use std::fmt::Display;
use std::str::FromStr;

/// Parsed bench-binary environment: the raw CLI arguments plus the
/// `MC_BENCH_SMOKE` switch.
///
/// Flag lookups are positional (`--flag value`), matching the historical
/// behavior of the bench binaries: unknown flags are ignored, the first
/// occurrence wins, and a malformed value aborts with the flag name.
pub struct BenchEnv {
    args: Vec<String>,
    /// True when `MC_BENCH_SMOKE` selects the shrunk CI configuration.
    pub smoke: bool,
}

impl BenchEnv {
    /// Reads `std::env::args` and `MC_BENCH_SMOKE`.
    pub fn parse() -> Self {
        Self::from_parts(
            std::env::args().collect(),
            std::env::var("MC_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0"),
        )
    }

    /// Builds from explicit parts — lets tests drive the parser without
    /// touching the process environment.
    pub fn from_parts(args: Vec<String>, smoke: bool) -> Self {
        BenchEnv { args, smoke }
    }

    /// The value following `flag`, if present.
    pub fn flag(&self, flag: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.args.get(i + 1))
            .map(|s| s.as_str())
    }

    /// True when the bare `flag` appears anywhere on the command line.
    pub fn has(&self, flag: &str) -> bool {
        self.args.iter().any(|a| a == flag)
    }

    /// Parses the value following `flag`, falling back to `default` when
    /// the flag is absent. A malformed value aborts with the flag name.
    pub fn value_or<T>(&self, flag: &str, default: T) -> T
    where
        T: FromStr,
        T::Err: Display,
    {
        match self.flag(flag) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|e| panic!("bad {flag} {v:?}: {e}")),
        }
    }

    /// `--scale`: dataset scale factor, defaulting to `full` (or
    /// `smoke_scale` under `MC_BENCH_SMOKE`).
    pub fn scale(&self, full: f64, smoke_scale: f64) -> f64 {
        self.value_or("--scale", if self.smoke { smoke_scale } else { full })
    }

    /// `--seed`: generation seed, with the binary's default.
    pub fn seed(&self, default: u64) -> u64 {
        self.value_or("--seed", default)
    }

    /// `--runs`: best-of-N repetitions — `full` normally, a single run
    /// under smoke. Clamped to at least 1.
    pub fn runs(&self, full: usize) -> usize {
        self.value_or("--runs", if self.smoke { 1 } else { full })
            .max(1)
    }

    /// `--threads`: worker threads, `0` meaning "the binary's default"
    /// (usually all cores).
    pub fn threads(&self) -> usize {
        self.value_or("--threads", 0)
    }

    /// `--out`: output path, with the binary's default.
    pub fn out(&self, default: &str) -> String {
        self.flag("--out").unwrap_or(default).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(args: &[&str], smoke: bool) -> BenchEnv {
        let mut v = vec!["bin".to_string()];
        v.extend(args.iter().map(|s| s.to_string()));
        BenchEnv::from_parts(v, smoke)
    }

    #[test]
    fn flags_parse_with_defaults() {
        let e = env(&["--scale", "0.5", "--seed", "9", "--assert-warm"], false);
        assert_eq!(e.scale(1.0, 0.1), 0.5);
        assert_eq!(e.seed(3), 9);
        assert_eq!(e.runs(3), 3);
        assert_eq!(e.threads(), 0);
        assert!(e.has("--assert-warm"));
        assert!(!e.has("--budget"));
        assert_eq!(e.out("BENCH.json"), "BENCH.json");
    }

    #[test]
    fn smoke_shrinks_the_defaults_but_flags_still_override() {
        let e = env(&[], true);
        assert_eq!(e.scale(1.0, 0.1), 0.1);
        assert_eq!(e.runs(3), 1);
        let e = env(&["--scale", "0.7", "--runs", "2"], true);
        assert_eq!(e.scale(1.0, 0.1), 0.7);
        assert_eq!(e.runs(3), 2);
    }

    #[test]
    fn runs_clamps_to_one() {
        assert_eq!(env(&["--runs", "0"], false).runs(3), 1);
    }
}

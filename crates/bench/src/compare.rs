//! Perf-regression gate: diffs a fresh bench JSON against a committed
//! baseline under per-metric tolerance budgets.
//!
//! The three bench binaries (`ssj_baseline`, `verifier_baseline`,
//! `store_warm`) each write a JSON report mixing three kinds of numbers:
//!
//! * **work counters** (pairs scored, candidates, labels, store misses) —
//!   deterministic given a fixed seed and pinned threads;
//! * **allocation counts** (from [`crate::alloc`]) — deterministic under
//!   the same conditions, catching "same answer, double the allocations"
//!   regressions;
//! * **wall-clock stage times** — machine-dependent and noisy.
//!
//! [`compare`] checks every budget rule in `ci/bench_budgets.json`
//! against a `(baseline, fresh)` document pair. In smoke mode (CI) the
//! wall-clock rules are skipped entirely — shared runners are far too
//! noisy for them — so the gate only ever fails on the deterministic
//! kinds, which makes it non-flaky by construction. A full local run
//! (`mc bench-compare --full`) gates the time rules too.
//!
//! Documents are flattened to `dot.path → number` maps; array elements
//! are keyed by their `"name"` member when present (so
//! `profiles.fodors-zagats.counters.scored` is stable under profile
//! reordering) and by index otherwise.

use mc_obs::JsonValue;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// What a budgeted metric measures — controls when the rule is gated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Deterministic work counter (pairs scored, labels, store misses).
    Work,
    /// Allocation count/bytes from the counting allocator.
    Alloc,
    /// Wall-clock duration — skipped in smoke mode.
    Time,
}

impl MetricKind {
    /// Parses the `"kind"` field of a budget rule.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "work" => Some(MetricKind::Work),
            "alloc" => Some(MetricKind::Alloc),
            "time" => Some(MetricKind::Time),
            _ => None,
        }
    }

    /// Whether rules of this kind still gate in smoke mode. Wall-clock
    /// does not: CI runners are too noisy for it.
    pub fn gated_in_smoke(self) -> bool {
        !matches!(self, MetricKind::Time)
    }

    fn label(self) -> &'static str {
        match self {
            MetricKind::Work => "work",
            MetricKind::Alloc => "alloc",
            MetricKind::Time => "time",
        }
    }
}

/// One tolerance budget from `ci/bench_budgets.json`: fresh values at
/// paths matching `path` must satisfy
/// `fresh <= baseline * max_ratio + abs_slack`.
///
/// The additive `abs_slack` keeps ratio budgets meaningful for tiny
/// baselines (a baseline of 3 with `max_ratio` 1.05 would otherwise
/// forbid *any* increase).
#[derive(Debug, Clone)]
pub struct Rule {
    /// Which bench report the rule applies to (`ssj`, `verifier`, `store`).
    pub bench: String,
    /// Dot-path glob into the flattened report; `*` matches exactly one
    /// segment (typically the profile name).
    pub path: String,
    /// Metric kind (gating behavior).
    pub kind: MetricKind,
    /// Multiplicative budget on the baseline value.
    pub max_ratio: f64,
    /// Additive slack on top of the ratio budget.
    pub abs_slack: f64,
}

impl Rule {
    /// True when `path` (a concrete flattened key) matches this rule's
    /// glob: same number of `.`-separated segments, each equal or `*`.
    pub fn matches(&self, path: &str) -> bool {
        let mut pat = self.path.split('.');
        let mut got = path.split('.');
        loop {
            match (pat.next(), got.next()) {
                (None, None) => return true,
                (Some(p), Some(g)) if p == "*" || p == g => {}
                _ => return false,
            }
        }
    }
}

/// Parses `ci/bench_budgets.json` (schema `mc-bench-budgets/v1`).
pub fn parse_budgets(text: &str) -> Result<Vec<Rule>, String> {
    let doc = JsonValue::parse(text)?;
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some("mc-bench-budgets/v1") => {}
        other => return Err(format!("unsupported budgets schema {other:?}")),
    }
    let rules = doc
        .get("rules")
        .and_then(JsonValue::as_array)
        .ok_or("budgets: missing \"rules\" array")?;
    let mut out = Vec::with_capacity(rules.len());
    for (i, r) in rules.iter().enumerate() {
        let field = |k: &str| {
            r.get(k)
                .ok_or_else(|| format!("budgets: rule {i} missing \"{k}\""))
        };
        let kind_str = field("kind")?
            .as_str()
            .ok_or_else(|| format!("budgets: rule {i} \"kind\" not a string"))?;
        out.push(Rule {
            bench: field("bench")?
                .as_str()
                .ok_or_else(|| format!("budgets: rule {i} \"bench\" not a string"))?
                .to_string(),
            path: field("path")?
                .as_str()
                .ok_or_else(|| format!("budgets: rule {i} \"path\" not a string"))?
                .to_string(),
            kind: MetricKind::parse(kind_str)
                .ok_or_else(|| format!("budgets: rule {i} unknown kind {kind_str:?}"))?,
            max_ratio: field("max_ratio")?
                .as_f64()
                .ok_or_else(|| format!("budgets: rule {i} \"max_ratio\" not a number"))?,
            abs_slack: r
                .get("abs_slack")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0),
        });
    }
    Ok(out)
}

/// Flattens a bench report into `dot.path → number`. Strings, booleans
/// and nulls are dropped (the `schema` marker is not a metric); array
/// elements are keyed by their `"name"` member when they have one.
pub fn flatten(doc: &JsonValue) -> BTreeMap<String, f64> {
    fn join(prefix: &str, seg: &str) -> String {
        if prefix.is_empty() {
            seg.to_string()
        } else {
            format!("{prefix}.{seg}")
        }
    }
    fn walk(v: &JsonValue, prefix: String, out: &mut BTreeMap<String, f64>) {
        match v {
            JsonValue::Num(n) => {
                out.insert(prefix, *n);
            }
            JsonValue::Obj(members) => {
                for (k, v) in members {
                    walk(v, join(&prefix, k), out);
                }
            }
            JsonValue::Arr(items) => {
                for (i, item) in items.iter().enumerate() {
                    let seg = item
                        .get("name")
                        .and_then(JsonValue::as_str)
                        .map_or_else(|| i.to_string(), str::to_string);
                    walk(item, join(&prefix, &seg), out);
                }
            }
            JsonValue::Null | JsonValue::Bool(_) | JsonValue::Str(_) => {}
        }
    }
    let mut out = BTreeMap::new();
    walk(doc, String::new(), &mut out);
    out
}

/// Outcome of one `(rule, metric)` check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckStatus {
    /// Fresh value within budget.
    Pass,
    /// Fresh value exceeded `baseline * max_ratio + abs_slack`.
    Regressed,
    /// The metric exists in the baseline but not in the fresh report —
    /// schema drift; regenerate the baseline deliberately, not silently.
    MissingInFresh,
    /// The rule matched nothing in the baseline — a stale budget that
    /// would otherwise gate nothing.
    RuleUnmatched,
    /// Time rule skipped because the comparison ran in smoke mode.
    SkippedSmoke,
}

/// One evaluated check, for rendering and for tests.
#[derive(Debug, Clone)]
pub struct Check {
    /// Concrete flattened metric path (or the rule's glob for
    /// [`CheckStatus::RuleUnmatched`]).
    pub path: String,
    /// Kind of the governing rule.
    pub kind: MetricKind,
    /// Baseline value (0 when unmatched).
    pub baseline: f64,
    /// Fresh value (0 when missing).
    pub fresh: f64,
    /// The computed budget limit.
    pub limit: f64,
    /// Outcome.
    pub status: CheckStatus,
}

/// The full result of comparing one bench report against its baseline.
#[derive(Debug)]
pub struct CompareReport {
    /// Bench name the comparison ran for.
    pub bench: String,
    /// Whether time rules were skipped.
    pub smoke: bool,
    /// Every evaluated check, in budget-file order.
    pub checks: Vec<Check>,
}

impl CompareReport {
    /// True when any check regressed, lost a metric, or matched nothing.
    pub fn failed(&self) -> bool {
        self.checks.iter().any(|c| {
            matches!(
                c.status,
                CheckStatus::Regressed | CheckStatus::MissingInFresh | CheckStatus::RuleUnmatched
            )
        })
    }

    /// Human-readable table of every check.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bench-compare [{}]{}",
            self.bench,
            if self.smoke {
                " (smoke: wall-clock rules skipped)"
            } else {
                ""
            }
        );
        for c in &self.checks {
            let verdict = match c.status {
                CheckStatus::Pass => "ok",
                CheckStatus::Regressed => "REGRESSED",
                CheckStatus::MissingInFresh => "MISSING IN FRESH",
                CheckStatus::RuleUnmatched => "RULE MATCHED NOTHING",
                CheckStatus::SkippedSmoke => "skipped (smoke)",
            };
            let _ = writeln!(
                out,
                "  {:<9} {:<52} base {:>12} fresh {:>12} limit {:>12}  {}",
                format!("[{}]", c.kind.label()),
                c.path,
                trim_num(c.baseline),
                trim_num(c.fresh),
                trim_num(c.limit),
                verdict
            );
        }
        out
    }
}

/// Renders a number without a trailing `.0` for integral values.
fn trim_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

/// Evaluates every rule for `bench` against the flattened `baseline` and
/// `fresh` documents. `smoke` downgrades time rules to
/// [`CheckStatus::SkippedSmoke`]. Metrics present only in the fresh
/// report are ignored — additive schema growth is not a regression.
pub fn compare(
    bench: &str,
    baseline: &JsonValue,
    fresh: &JsonValue,
    rules: &[Rule],
    smoke: bool,
) -> CompareReport {
    let base_flat = flatten(baseline);
    let fresh_flat = flatten(fresh);
    let mut checks = Vec::new();
    for rule in rules.iter().filter(|r| r.bench == bench) {
        let matched: Vec<_> = base_flat
            .iter()
            .filter(|(path, _)| rule.matches(path))
            .collect();
        if matched.is_empty() {
            checks.push(Check {
                path: rule.path.clone(),
                kind: rule.kind,
                baseline: 0.0,
                fresh: 0.0,
                limit: 0.0,
                status: CheckStatus::RuleUnmatched,
            });
            continue;
        }
        for (path, &base) in matched {
            let limit = base * rule.max_ratio + rule.abs_slack;
            let (fresh_v, status) = match fresh_flat.get(path) {
                None => (0.0, CheckStatus::MissingInFresh),
                Some(&f) if smoke && !rule.kind.gated_in_smoke() => (f, CheckStatus::SkippedSmoke),
                Some(&f) if f > limit => (f, CheckStatus::Regressed),
                Some(&f) => (f, CheckStatus::Pass),
            };
            checks.push(Check {
                path: path.clone(),
                kind: rule.kind,
                baseline: base,
                fresh: fresh_v,
                limit,
                status,
            });
        }
    }
    CompareReport {
        bench: bench.to_string(),
        smoke,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BUDGETS: &str = r#"{
      "schema": "mc-bench-budgets/v1",
      "rules": [
        {"bench": "ssj", "path": "profiles.*.counters.scored",
         "kind": "work", "max_ratio": 1.05, "abs_slack": 8},
        {"bench": "ssj", "path": "profiles.*.allocs.count",
         "kind": "alloc", "max_ratio": 1.2},
        {"bench": "ssj", "path": "profiles.*.stages.joint_us",
         "kind": "time", "max_ratio": 1.5, "abs_slack": 1000}
      ]
    }"#;

    fn doc(scored: u64, allocs: u64, joint_us: u64) -> JsonValue {
        JsonValue::parse(&format!(
            r#"{{"schema": "mc-bench-ssj/v2", "profiles": [
                 {{"name": "fodors-zagats",
                   "counters": {{"scored": {scored}}},
                   "allocs": {{"count": {allocs}}},
                   "stages": {{"joint_us": {joint_us}}}}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn budgets_parse() {
        let rules = parse_budgets(BUDGETS).unwrap();
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[0].kind, MetricKind::Work);
        assert_eq!(rules[1].abs_slack, 0.0);
        assert!(rules[0].matches("profiles.fodors-zagats.counters.scored"));
        assert!(!rules[0].matches("profiles.x.y.counters.scored"));
        assert!(!rules[0].matches("profiles.fodors-zagats.counters"));
    }

    #[test]
    fn within_budget_passes() {
        let rules = parse_budgets(BUDGETS).unwrap();
        let report = compare(
            "ssj",
            &doc(1000, 5000, 80_000),
            &doc(1040, 5500, 90_000),
            &rules,
            false,
        );
        assert!(!report.failed(), "{}", report.render());
        assert!(report.checks.iter().all(|c| c.status == CheckStatus::Pass));
    }

    #[test]
    fn injected_work_regression_fails() {
        let rules = parse_budgets(BUDGETS).unwrap();
        // 2× the scored work: the exact regression the gate exists for.
        let report = compare(
            "ssj",
            &doc(1000, 5000, 80_000),
            &doc(2000, 5000, 80_000),
            &rules,
            true,
        );
        assert!(report.failed());
        let bad: Vec<_> = report
            .checks
            .iter()
            .filter(|c| c.status == CheckStatus::Regressed)
            .collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].path, "profiles.fodors-zagats.counters.scored");
        assert!(report.render().contains("REGRESSED"));
    }

    #[test]
    fn smoke_skips_time_rules_but_full_gates_them() {
        let rules = parse_budgets(BUDGETS).unwrap();
        // Wall clock blows way past its budget; counters are unchanged.
        let base = doc(1000, 5000, 1_000);
        let fresh = doc(1000, 5000, 100_000);
        let smoke = compare("ssj", &base, &fresh, &rules, true);
        assert!(!smoke.failed(), "time noise must not fail a smoke gate");
        assert!(smoke
            .checks
            .iter()
            .any(|c| c.status == CheckStatus::SkippedSmoke));
        let full = compare("ssj", &base, &fresh, &rules, false);
        assert!(full.failed(), "a full run gates wall clock");
    }

    #[test]
    fn missing_metric_and_stale_rule_fail() {
        let rules = parse_budgets(BUDGETS).unwrap();
        // Fresh report lost the allocs object entirely.
        let fresh = JsonValue::parse(
            r#"{"profiles": [{"name": "fodors-zagats",
                 "counters": {"scored": 10},
                 "stages": {"joint_us": 1}}]}"#,
        )
        .unwrap();
        let report = compare("ssj", &doc(10, 100, 1), &fresh, &rules, true);
        assert!(report.failed());
        assert!(report
            .checks
            .iter()
            .any(|c| c.status == CheckStatus::MissingInFresh));

        // A rule over a bench whose baseline has none of its paths.
        let stale = compare("ssj", &fresh, &fresh, &rules, true);
        assert!(stale
            .checks
            .iter()
            .any(|c| c.status == CheckStatus::RuleUnmatched));
        assert!(stale.failed());
    }

    #[test]
    fn abs_slack_protects_tiny_baselines() {
        let rules = parse_budgets(BUDGETS).unwrap();
        // scored 3 → 10: ratio alone (1.05) forbids it, slack of 8 allows.
        let report = compare("ssj", &doc(3, 100, 1), &doc(10, 100, 1), &rules, true);
        assert!(!report.failed(), "{}", report.render());
        // …but 12 exceeds 3*1.05 + 8.
        let report = compare("ssj", &doc(3, 100, 1), &doc(12, 100, 1), &rules, true);
        assert!(report.failed());
    }

    #[test]
    fn flatten_keys_arrays_by_name() {
        let doc =
            JsonValue::parse(r#"{"xs": [{"name": "a", "v": 1}, {"v": 2}], "top": 3.5}"#).unwrap();
        let flat = flatten(&doc);
        assert_eq!(flat.get("xs.a.v"), Some(&1.0));
        assert_eq!(flat.get("xs.1.v"), Some(&2.0));
        assert_eq!(flat.get("top"), Some(&3.5));
        assert_eq!(flat.len(), 3);
    }
}

//! A greedy union-of-predicates blocker learner (§6.2's "learned
//! blockers" stand-in).
//!
//! The paper debugged blockers learned by Falcon \[8\] from crowdsourced
//! labels. We reproduce the *failure mode* — a blocker that looks perfect
//! on its labeled sample yet kills matches in the full tables — with a
//! greedy set-cover learner: from a candidate pool of hash / similarity
//! predicates, repeatedly add the predicate covering the most uncovered
//! positive sample pairs, subject to a candidate-set budget, until the
//! sample is fully covered or nothing helps.

use mc_blocking::{Blocker, KeyFunc};
use mc_strsim::measures::SetMeasure;
use mc_strsim::tokenize::Tokenizer;
use mc_table::stats::TableStats;
use mc_table::{AttrType, GoldMatches, PairSet, Table, TupleId};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

/// A labeled training sample of tuple pairs.
#[derive(Debug, Clone)]
pub struct LabeledSample {
    /// Pairs labeled as matches.
    pub positives: Vec<(TupleId, TupleId)>,
    /// Pairs labeled as non-matches.
    pub negatives: Vec<(TupleId, TupleId)>,
}

/// Draws a sample: `n_pos` gold matches and `n_neg` random non-matches.
pub fn sample_pairs(
    a: &Table,
    b: &Table,
    gold: &GoldMatches,
    n_pos: usize,
    n_neg: usize,
    seed: u64,
) -> LabeledSample {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut all_gold: Vec<(TupleId, TupleId)> = gold.iter().collect();
    all_gold.sort_unstable();
    // Deterministic subsample of positives.
    let step = (all_gold.len() / n_pos.max(1)).max(1);
    let positives: Vec<(TupleId, TupleId)> =
        all_gold.iter().copied().step_by(step).take(n_pos).collect();
    let mut negatives = Vec::with_capacity(n_neg);
    while negatives.len() < n_neg {
        let x = rng.random_range(0..a.len()) as TupleId;
        let y = rng.random_range(0..b.len()) as TupleId;
        if !gold.is_match(x, y) {
            negatives.push((x, y));
        }
    }
    LabeledSample {
        positives,
        negatives,
    }
}

/// Builds the candidate predicate pool from the schema: hash blockers on
/// every non-numeric attribute (plus first/last-word variants for text),
/// SIM blockers at a few thresholds, and numeric bands.
pub fn candidate_pool(a: &Table, b: &Table) -> Vec<Blocker> {
    let stats_a = TableStats::compute(a);
    let stats_b = TableStats::compute(b);
    let mut pool = Vec::new();
    for (attr, _) in a.schema().iter() {
        let ty = stats_a.attr(attr).attr_type;
        let ty_b = stats_b.attr(attr).attr_type;
        if ty == AttrType::Numeric || ty_b == AttrType::Numeric {
            // Numeric bands alone keep enormous candidate sets (a ±1-year
            // band pairs ~10% of the cross product); real learners only
            // use them as conjuncts, so they are excluded from the pool.
            continue;
        }
        // Low-cardinality hashes (genre, venue) also blow the budget.
        if stats_a.attr(attr).distinct * 50 >= a.len() {
            pool.push(Blocker::Hash(KeyFunc::Attr(attr)));
        }
        if ty == AttrType::Text {
            pool.push(Blocker::Hash(KeyFunc::LastWord(attr)));
            pool.push(Blocker::Hash(KeyFunc::FirstWord(attr)));
            for t in [0.6, 0.8] {
                pool.push(Blocker::Sim {
                    attr,
                    tokenizer: Tokenizer::Word,
                    measure: SetMeasure::Jaccard,
                    threshold: t,
                });
            }
        }
    }
    pool
}

/// Result of learning.
pub struct LearnedBlocker {
    /// The learned union blocker.
    pub blocker: Blocker,
    /// Recall on the training sample (usually 1.0 — that is the trap).
    pub sample_recall: f64,
    /// Number of predicates selected.
    pub predicates: usize,
}

/// Greedily learns a union blocker from the sample.
///
/// `budget` caps the candidate-set size `|C|` on the full tables (the
/// selectivity constraint every practical learner has); predicates whose
/// marginal candidates would blow the budget are skipped.
pub fn learn_blocker(
    a: &Table,
    b: &Table,
    sample: &LabeledSample,
    budget: usize,
) -> LearnedBlocker {
    let pool = candidate_pool(a, b);
    // Precompute coverage of each candidate over the sample and its |C|.
    struct Cand {
        blocker: Blocker,
        covers: Vec<bool>,
        c: PairSet,
    }
    let cands: Vec<Cand> = pool
        .into_iter()
        .filter_map(|blocker| {
            let covers: Vec<bool> = sample
                .positives
                .iter()
                .map(|&(x, y)| pairwise_keeps(&blocker, a, b, x, y))
                .collect();
            if !covers.iter().any(|&c| c) {
                return None;
            }
            let c = blocker.apply(a, b);
            Some(Cand { blocker, covers, c })
        })
        .collect();

    let mut covered = vec![false; sample.positives.len()];
    let mut chosen: Vec<Blocker> = Vec::new();
    let mut union = PairSet::new();
    loop {
        let mut best: Option<(usize, usize)> = None; // (candidate, gain)
        for (ci, cand) in cands.iter().enumerate() {
            let gain = cand
                .covers
                .iter()
                .zip(&covered)
                .filter(|(c, done)| **c && !**done)
                .count();
            if gain == 0 {
                continue;
            }
            // Budget check: |union ∪ cand.c| ≤ budget.
            let added = cand.c.len() - cand.c.intersection_len(&union);
            if union.len() + added > budget {
                continue;
            }
            if best.is_none_or(|(_, g)| gain > g) {
                best = Some((ci, gain));
            }
        }
        let Some((ci, _)) = best else { break };
        union.union_with(&cands[ci].c);
        for (done, c) in covered.iter_mut().zip(&cands[ci].covers) {
            *done = *done || *c;
        }
        chosen.push(cands[ci].blocker.clone());
        if covered.iter().all(|&c| c) {
            break;
        }
    }
    let sample_recall = if sample.positives.is_empty() {
        1.0
    } else {
        covered.iter().filter(|&&c| c).count() as f64 / covered.len() as f64
    };
    let predicates = chosen.len();
    let blocker = if chosen.is_empty() {
        Blocker::Union(vec![])
    } else {
        Blocker::Union(chosen)
    };
    LearnedBlocker {
        blocker,
        sample_recall,
        predicates,
    }
}

/// `Blocker::keeps` that tolerates sorted-neighborhood members (absent
/// from the learner's pool anyway).
fn pairwise_keeps(b: &Blocker, ta: &Table, tb: &Table, x: TupleId, y: TupleId) -> bool {
    b.keeps(ta, tb, x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_datagen::profiles::DatasetProfile;

    #[test]
    fn learner_covers_its_sample() {
        let ds = DatasetProfile::FodorsZagats.generate(5);
        let sample = sample_pairs(&ds.a, &ds.b, &ds.gold, 30, 60, 7);
        assert_eq!(sample.positives.len(), 30);
        assert_eq!(sample.negatives.len(), 60);
        let learned = learn_blocker(&ds.a, &ds.b, &sample, 100_000);
        assert!(
            learned.sample_recall >= 0.95,
            "sample recall {}",
            learned.sample_recall
        );
        assert!(learned.predicates >= 1);
    }

    #[test]
    fn learned_blocker_can_still_lose_full_recall() {
        // The §6.2 premise: perfect on the sample ≠ perfect on the data.
        let ds = DatasetProfile::AmazonGoogle.generate_scaled(5, 0.15);
        let sample = sample_pairs(&ds.a, &ds.b, &ds.gold, 20, 40, 7);
        let learned = learn_blocker(&ds.a, &ds.b, &sample, 200_000);
        let c = learned.blocker.apply(&ds.a, &ds.b);
        let recall = ds.gold.recall(&c);
        assert!(recall > 0.3, "learned blocker useless: recall {recall}");
        // Not asserting recall < 1.0 (it could get lucky), but report it.
        println!(
            "sample recall {} full recall {recall}",
            learned.sample_recall
        );
    }

    #[test]
    fn pool_is_schema_driven() {
        let ds = DatasetProfile::AcmDblp.generate_scaled(1, 0.05);
        let pool = candidate_pool(&ds.a, &ds.b);
        assert!(pool.len() >= 5);
    }
}

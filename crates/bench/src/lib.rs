#![warn(missing_docs)]

//! # mc-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! MatchCatcher paper's evaluation (§6):
//!
//! * [`blockers`] — the per-dataset blocker suites of Table 2 (overlap,
//!   hash, SIM, rule blockers) and the "best hash blockers" of §6.2;
//! * [`learned`] — a greedy union-of-predicates blocker learner standing
//!   in for the crowdsourced Falcon-learned blockers of §6.2;
//! * [`harness`] — per-experiment drivers producing the rows of Tables
//!   1/3/4, the §6.2 debugging loops, §6.4 runtimes, Figure 9's scaling
//!   sweeps and the §6.5 ablations.
//!
//! Each table/figure has a binary (`table1`, `table3`, `figure9`, …); see
//! `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for
//! paper-vs-measured results.
//!
//! The perf-regression side of the harness lives in three support
//! modules: [`env`] (the shared `--flag`/`MC_BENCH_SMOKE` parsing every
//! bench binary uses), [`alloc`] (a counting global allocator that turns
//! allocation pressure into a deterministic work counter), and
//! [`compare`] (the tolerance-budget gate behind `mc bench-compare`).

pub mod alloc;
pub mod blockers;
pub mod compare;
pub mod env;
pub mod harness;
pub mod learned;

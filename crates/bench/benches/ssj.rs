//! Criterion micro-benchmarks for the top-k SSJ engine: QJoin vs the
//! TopKJoin baseline (the §4.1 improvement) and joint vs individual
//! multi-config execution (the §4.2 improvement).
//!
//! Set `MC_BENCH_SMOKE=1` to shrink the dataset and sample counts to a
//! CI-friendly smoke run that only checks the benches still execute.

use criterion::{criterion_group, criterion_main, Criterion};
use matchcatcher::config::ConfigGenerator;
use matchcatcher::joint::{run_individual, run_joint, JointParams};
use matchcatcher::ssj::{topk_join, ExactScorer, SsjInstance, SsjParams};
use mc_datagen::profiles::DatasetProfile;
use mc_strsim::arena::RecordArena;
use mc_strsim::dict::TokenizedTable;
use mc_strsim::measures::SetMeasure;
use mc_strsim::tokenize::Tokenizer;
use mc_table::PairSet;
use std::hint::black_box;

fn smoke() -> bool {
    std::env::var_os("MC_BENCH_SMOKE").is_some()
}

fn scale() -> f64 {
    if smoke() {
        0.05
    } else {
        0.25
    }
}

fn ssj_records() -> (RecordArena, RecordArena) {
    // Long-ish records (the regime where QJoin's deferred scoring pays).
    let ds = DatasetProfile::AmazonGoogle.generate_scaled(3, scale());
    let gen = ConfigGenerator::default();
    let promising = gen.promising(&ds.a, &ds.b);
    let (ta, tb, _) = TokenizedTable::build_pair(&ds.a, &ds.b, &promising.attrs, Tokenizer::Word);
    let all: Vec<usize> = (0..promising.attrs.len()).collect();
    let ra = RecordArena::from_tokenized(&ta, &all);
    let rb = RecordArena::from_tokenized(&tb, &all);
    (ra, rb)
}

fn bench_qjoin_vs_topkjoin(c: &mut Criterion) {
    let (ra, rb) = ssj_records();
    let killed = PairSet::new();
    let inst = SsjInstance {
        records_a: &ra,
        records_b: &rb,
        killed: &killed,
    };
    let scorer = ExactScorer(SetMeasure::Jaccard);
    let mut group = c.benchmark_group("topk_ssj");
    group.sample_size(10);
    for q in [1usize, 2, 3] {
        group.bench_function(format!("k200_q{q}"), |b| {
            b.iter(|| {
                let list = topk_join(
                    inst,
                    SsjParams {
                        k: 200,
                        q,
                        measure: SetMeasure::Jaccard,
                    },
                    &scorer,
                    &[],
                    None,
                );
                black_box(list.len())
            })
        });
    }
    group.finish();
}

fn bench_joint_vs_individual(c: &mut Criterion) {
    let ds = DatasetProfile::AmazonGoogle.generate_scaled(3, scale());
    let gen = ConfigGenerator::default();
    let promising = gen.promising(&ds.a, &ds.b);
    let tree = gen.build_tree(&promising);
    let (ta, tb, _) = TokenizedTable::build_pair(&ds.a, &ds.b, &promising.attrs, Tokenizer::Word);
    let killed = PairSet::new();
    let mut group = c.benchmark_group("multi_config");
    group.sample_size(10);
    group.bench_function("individual_serial", |b| {
        b.iter(|| {
            let out = run_individual(&ta, &tb, &killed, &tree, 100, SetMeasure::Jaccard);
            black_box(out.lists.len())
        })
    });
    group.bench_function("joint_reuse_parallel", |b| {
        b.iter(|| {
            let out = run_joint(
                &ta,
                &tb,
                &killed,
                &tree,
                JointParams {
                    k: 100,
                    reuse_min_avg_tokens: 0.0,
                    ..Default::default()
                },
            );
            black_box(out.lists.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_qjoin_vs_topkjoin, bench_joint_vs_individual);
criterion_main!(benches);

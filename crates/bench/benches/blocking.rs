//! Criterion micro-benchmarks for the blocker executors (§2's "efficient
//! execution of blockers"): hash partitioning, prefix-filter SIM joins,
//! q-gram edit joins, sorted neighborhood and overlap joins.
//!
//! Set `MC_BENCH_SMOKE=1` for a shrunk CI smoke run.

use criterion::{criterion_group, criterion_main, Criterion};
use mc_blocking::{Blocker, KeyFunc};
use mc_datagen::profiles::DatasetProfile;
use mc_strsim::measures::SetMeasure;
use mc_strsim::tokenize::Tokenizer;
use std::hint::black_box;

fn bench_executors(c: &mut Criterion) {
    let scale = if std::env::var_os("MC_BENCH_SMOKE").is_some() {
        0.2
    } else {
        1.0
    };
    let ds = DatasetProfile::FodorsZagats.generate_scaled(7, scale);
    let schema = ds.a.schema().clone();
    let name = schema.expect_id("name");
    let city = schema.expect_id("city");
    let addr = schema.expect_id("addr");
    let cases: Vec<(&str, Blocker)> = vec![
        ("hash_city", Blocker::Hash(KeyFunc::Attr(city))),
        ("hash_lastword_name", Blocker::Hash(KeyFunc::LastWord(name))),
        ("soundex_name", Blocker::Hash(KeyFunc::Soundex(name))),
        (
            "sn_name_w5",
            Blocker::SortedNeighborhood {
                key: KeyFunc::Attr(name),
                window: 5,
            },
        ),
        (
            "overlap_name_2",
            Blocker::Overlap {
                attr: name,
                tokenizer: Tokenizer::Word,
                min_common: 2,
            },
        ),
        (
            "jac3gram_addr_0.3",
            Blocker::Sim {
                attr: addr,
                tokenizer: Tokenizer::QGram(3),
                measure: SetMeasure::Jaccard,
                threshold: 0.3,
            },
        ),
        (
            "ed2_name",
            Blocker::EditSim {
                key: KeyFunc::Attr(name),
                max_ed: 2,
            },
        ),
    ];
    let mut group = c.benchmark_group("blocking_fz");
    group.sample_size(10);
    for (label, blocker) in cases {
        group.bench_function(label, |b| {
            b.iter(|| black_box(blocker.apply(&ds.a, &ds.b).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_executors);
criterion_main!(benches);

//! Criterion micro-benchmarks for the Match Verifier's per-iteration
//! costs: rank aggregation (< 0.1 s in the paper) and feedback
//! processing / forest retraining (0.14–0.18 s in the paper).
//!
//! Set `MC_BENCH_SMOKE=1` for a shrunk CI smoke run.

use criterion::{criterion_group, criterion_main, Criterion};
use matchcatcher::debugger::MatchCatcher;
use matchcatcher::joint::CandidateUnion;
use matchcatcher::rank::{medrank_order, RankedLists};
use mc_bench::harness::paper_params;
use mc_blocking::{Blocker, KeyFunc};
use mc_datagen::profiles::DatasetProfile;
use mc_ml::{ForestParams, RandomForest};
use std::hint::black_box;

fn smoke() -> bool {
    std::env::var_os("MC_BENCH_SMOKE").is_some()
}

fn setup_union() -> CandidateUnion {
    let scale = if smoke() { 0.2 } else { 1.0 };
    let ds = DatasetProfile::FodorsZagats.generate_scaled(7, scale);
    let blocker = Blocker::Hash(KeyFunc::Attr(ds.a.schema().expect_id("city")));
    let c = blocker.apply(&ds.a, &ds.b);
    let mc = MatchCatcher::new(paper_params());
    let prepared = mc.prepare(&ds.a, &ds.b);
    let joint = mc.topk(&prepared, &c);
    CandidateUnion::build(&joint.lists)
}

fn bench_rank_aggregation(c: &mut Criterion) {
    let union = setup_union();
    let mut group = c.benchmark_group("verifier");
    group.sample_size(20);
    group.bench_function(format!("medrank_{}_pairs", union.len()), |b| {
        b.iter(|| {
            let ranked = RankedLists::from_union(&union);
            black_box(medrank_order(&ranked).len())
        })
    });
    group.finish();
}

fn bench_forest_retrain(c: &mut Criterion) {
    // 200 labeled pairs with 20 features — a late verifier iteration.
    let rows = if smoke() { 50 } else { 200 };
    let x: Vec<Vec<f64>> = (0..rows)
        .map(|i| {
            (0..20)
                .map(|j| ((i * 31 + j * 17) % 100) as f64 / 100.0)
                .collect()
        })
        .collect();
    let y: Vec<bool> = (0..rows).map(|i| i % 3 == 0).collect();
    let mut group = c.benchmark_group("verifier");
    group.sample_size(20);
    group.bench_function("forest_retrain_200x20", |b| {
        b.iter(|| {
            let f = RandomForest::fit(&x, &y, &ForestParams::default());
            black_box(f.len())
        })
    });
    group.bench_function("forest_score_1000", |b| {
        let f = RandomForest::fit(&x, &y, &ForestParams::default());
        b.iter(|| {
            let s: f64 = x.iter().cycle().take(1000).map(|s| f.confidence(s)).sum();
            black_box(s)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rank_aggregation, bench_forest_retrain);
criterion_main!(benches);

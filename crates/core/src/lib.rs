#![warn(missing_docs)]

//! # matchcatcher
//!
//! A debugger for **blocking accuracy** in entity matching — a from-scratch
//! reproduction of *"MatchCatcher: A Debugger for Blocking in Entity
//! Matching"* (Li et al., EDBT 2018).
//!
//! Given two tables `A`, `B` and the output `C` of an arbitrary blocker,
//! MatchCatcher surfaces plausible **killed-off matches** — true matches in
//! `D = A × B − C` — so the user can judge whether the blocker loses too
//! much recall and why. The pipeline (Figure 2 of the paper):
//!
//! 1. **Config Generator** ([`config`]) — picks promising attributes and
//!    builds a *config tree* of attribute subsets, balancing missing
//!    values, uniqueness (the e-score of Definition 3.1) and long string
//!    attributes (Theorem 3.5).
//! 2. **Top-k SSJs** ([`ssj`], [`joint`]) — for each config, a top-k string
//!    similarity join over the concatenated attribute strings, excluding
//!    pairs in `C`. [`ssj`] implements the TopKJoin baseline \[34\] and the
//!    paper's faster **QJoin**; [`joint`] executes all configs jointly,
//!    reusing overlap computations (the concurrent database `H`) and top-k
//!    lists across configs, one config per core.
//! 3. **Match Verifier** ([`verify`]) — aggregates the per-config top-k
//!    lists with MedRank ([`rank`]), then iteratively shows `n = 20` pairs
//!    to the user, using hybrid active/online learning on a random forest
//!    ([`features`], `mc-ml`) to bubble the remaining matches up.
//! 4. **Explanations** ([`explain`]) — per-attribute diagnoses of *why*
//!    each found match was killed off (Table 4's "blocker problems"), and
//!    [`pervasive`] — grouping candidates by problem signature to judge
//!    how widespread each problem is (the paper's §8 future work).
//!
//! The one-call entry point is [`debugger::MatchCatcher`]:
//!
//! ```
//! use matchcatcher::debugger::{DebuggerParams, MatchCatcher};
//! use matchcatcher::oracle::GoldOracle;
//! use mc_blocking::{Blocker, KeyFunc};
//! use mc_table::{GoldMatches, Schema, Table, Tuple};
//! use std::sync::Arc;
//!
//! // Figure 1 of the paper: blocker Q1 keeps pairs with equal City.
//! let schema = Arc::new(Schema::from_names(["name", "city", "age"]));
//! let mut a = Table::new("A", Arc::clone(&schema));
//! a.push(Tuple::from_present(["Dave Smith", "Altanta", "18"]));
//! a.push(Tuple::from_present(["Daniel Smith", "LA", "18"]));
//! a.push(Tuple::from_present(["Joe Welson", "New York", "25"]));
//! a.push(Tuple::from_present(["Charles Williams", "Chicago", "45"]));
//! a.push(Tuple::from_present(["Charlie William", "Atlanta", "28"]));
//! let mut b = Table::new("B", Arc::clone(&schema));
//! b.push(Tuple::from_present(["David Smith", "Atlanta", "18"]));
//! b.push(Tuple::from_present(["Joe Wilson", "NY", "25"]));
//! b.push(Tuple::from_present(["Daniel W. Smith", "LA", "30"]));
//! b.push(Tuple::from_present(["Charles Williams", "Chicago", "45"]));
//!
//! let q1 = Blocker::Hash(KeyFunc::Attr(schema.expect_id("city")));
//! let c = q1.apply(&a, &b);
//! let gold = GoldMatches::from_pairs([(0, 0), (1, 2), (2, 1), (3, 3)]);
//!
//! let mc = MatchCatcher::new(DebuggerParams::small());
//! let mut oracle = GoldOracle::exact(&gold);
//! let report = mc.run(&a, &b, &c, &mut oracle);
//! // Q1 killed (a1,b1) and (a3,b2); the debugger recovers both.
//! assert_eq!(report.confirmed_matches.len(), 2);
//! ```

pub mod config;
pub mod debugger;
pub mod explain;
pub mod explain_batch;
pub mod features;
pub mod incr;
pub mod joint;
pub mod oracle;
pub mod pervasive;
pub mod rank;
pub mod ssj;
pub mod store_io;
pub mod verify;

pub use config::{Config, ConfigGenerator, ConfigTree};
pub use debugger::{DebugReport, DebuggerParams, MatchCatcher};
pub use explain_batch::{DiagnosisKernel, ExplainOutput};
pub use incr::{DebugSession, IncrParams};
pub use oracle::{GoldOracle, Oracle};
pub use ssj::{SsjParams, TopKList};

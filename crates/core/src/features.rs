//! Feature extraction for candidate pairs.
//!
//! The verifier's random forest needs a feature vector per tuple pair.
//! Per promising attribute we emit word-level Jaccard, normalized edit
//! similarity, and a both-present indicator; globally we add the
//! concatenated Jaccard and a length-ratio feature. These mirror the
//! similarity features Magellan-style EM systems generate.

use mc_ml::RowsView;
use mc_strsim::dict::TokenizedTable;
use mc_strsim::measures::{edit_similarity, SetMeasure};
use mc_table::{split_pair_key, AttrId, Table, TupleId};

/// Truncation bound for edit-distance features (edit distance is
/// quadratic; long descriptions would dominate verification time).
const EDIT_FEATURE_MAX_CHARS: usize = 48;

/// Rows materialized per unit of parallel feature-build work (and per
/// `built` bookkeeping bit in [`FeatureMatrix`]).
const MATRIX_CHUNK_ROWS: usize = 128;

/// Extracts feature vectors for `(a, b)` tuple pairs.
pub struct FeatureExtractor<'t> {
    a: &'t Table,
    b: &'t Table,
    attrs: &'t [AttrId],
    tok_a: &'t TokenizedTable,
    tok_b: &'t TokenizedTable,
    /// All attribute indices (`0..attrs.len()`), precomputed once for the
    /// concatenated-Jaccard merge instead of per feature row.
    all_idx: Vec<usize>,
}

impl<'t> FeatureExtractor<'t> {
    /// A new extractor over the promising attributes and their word
    /// tokenizations (shared rank space).
    pub fn new(
        a: &'t Table,
        b: &'t Table,
        attrs: &'t [AttrId],
        tok_a: &'t TokenizedTable,
        tok_b: &'t TokenizedTable,
    ) -> Self {
        FeatureExtractor {
            a,
            b,
            attrs,
            tok_a,
            tok_b,
            all_idx: (0..attrs.len()).collect(),
        }
    }

    /// Length of the produced feature vectors.
    pub fn n_features(&self) -> usize {
        self.attrs.len() * 3 + 2
    }

    /// The feature vector for pair `(aid, bid)`.
    pub fn features(&self, aid: TupleId, bid: TupleId) -> Vec<f64> {
        let mut out = vec![0.0; self.n_features()];
        self.features_into(aid, bid, &mut out);
        out
    }

    /// Writes the feature vector for `(aid, bid)` into `out`, which must
    /// be exactly [`FeatureExtractor::n_features`] long. This is the
    /// matrix-fill path: one row slot of a shared flat buffer.
    pub fn features_into(&self, aid: TupleId, bid: TupleId, out: &mut [f64]) {
        assert_eq!(out.len(), self.n_features(), "feature slot width mismatch");
        let mut total_a = 0usize;
        let mut total_b = 0usize;
        for (i, &attr) in self.attrs.iter().enumerate() {
            let ra = self.tok_a.ranks(i, aid);
            let rb = self.tok_b.ranks(i, bid);
            total_a += ra.len();
            total_b += rb.len();
            out[i * 3] = SetMeasure::Jaccard.score(ra, rb);
            let va = self.a.value(aid, attr).unwrap_or("");
            let vb = self.b.value(bid, attr).unwrap_or("");
            out[i * 3 + 1] = edit_similarity(&truncate(va), &truncate(vb));
            out[i * 3 + 2] = f64::from(!va.is_empty() && !vb.is_empty());
        }
        // Concatenated Jaccard over all promising attributes.
        let merged_a = self.tok_a.merged(&self.all_idx, aid);
        let merged_b = self.tok_b.merged(&self.all_idx, bid);
        out[self.attrs.len() * 3] = SetMeasure::Jaccard.score(&merged_a, &merged_b);
        // Token-length ratio (1 = same length).
        let m = total_a.max(total_b);
        out[self.attrs.len() * 3 + 1] = if m == 0 {
            1.0
        } else {
            total_a.min(total_b) as f64 / m as f64
        };
    }
}

/// A row-major flat feature matrix over a fixed list of candidate pairs:
/// one contiguous `f64` buffer, row `i` holding the features of packed
/// pair key `pairs[i]`. Rows are materialized chunk-at-a-time across
/// scoped worker threads — eagerly for the head the verifier is sure to
/// score, lazily for the tail — and each chunk is built exactly once.
///
/// This replaces the verifier's former `Vec<Option<Vec<f64>>>` cache:
/// same lazy semantics, but no per-row allocation, no per-access clone,
/// and the buffer doubles as zero-copy training/scoring input for
/// `mc-ml` via [`FeatureMatrix::view`].
pub struct FeatureMatrix {
    buf: Vec<f64>,
    stride: usize,
    /// One flag per [`MATRIX_CHUNK_ROWS`]-row chunk.
    built: Vec<bool>,
}

impl FeatureMatrix {
    /// An empty (nothing built) matrix with `n_rows` row slots of width
    /// `stride`.
    pub fn new(n_rows: usize, stride: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        FeatureMatrix {
            buf: vec![0.0; n_rows * stride],
            stride,
            built: vec![false; n_rows.div_ceil(MATRIX_CHUNK_ROWS)],
        }
    }

    /// Number of row slots.
    pub fn len(&self) -> usize {
        self.buf.len() / self.stride
    }

    /// True if the matrix has no row slots.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Row `i` as a feature slice. The covering chunk must have been
    /// materialized by a prior `ensure_*` call.
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(
            self.built[i / MATRIX_CHUNK_ROWS],
            "row {i} read before its chunk was built"
        );
        &self.buf[i * self.stride..(i + 1) * self.stride]
    }

    /// The whole buffer as an `mc-ml` scoring/training view. Callers must
    /// only index rows they have ensured.
    pub fn view(&self) -> RowsView<'_> {
        RowsView::new(&self.buf, self.stride)
    }

    /// Materializes every not-yet-built chunk overlapping rows
    /// `0..rows`, splitting the missing chunks across `threads` scoped
    /// workers (`0` = all cores). `pairs` must be the matrix's full pair
    /// list; already-built chunks are skipped, so repeated calls only pay
    /// for new rows.
    pub fn ensure_upto(
        &mut self,
        rows: usize,
        pairs: &[u64],
        fx: &FeatureExtractor<'_>,
        threads: usize,
    ) {
        assert_eq!(pairs.len(), self.len(), "pair list / matrix size mismatch");
        let chunk_len = MATRIX_CHUNK_ROWS * self.stride;
        let n_chunks = rows.min(self.len()).div_ceil(MATRIX_CHUNK_ROWS);
        let built = &mut self.built;
        let stride = self.stride;
        let mut jobs: Vec<(usize, &mut [f64])> = self
            .buf
            .chunks_mut(chunk_len)
            .take(n_chunks)
            .enumerate()
            .filter(|(c, _)| !built[*c])
            .collect();
        if jobs.is_empty() {
            return;
        }
        let _span = mc_obs::span!("mc.core.verify.feature_matrix.build");
        let fill = |c: usize, out: &mut [f64]| {
            let start_row = c * MATRIX_CHUNK_ROWS;
            for (r, slot) in out.chunks_mut(stride).enumerate() {
                let (a, b) = split_pair_key(pairs[start_row + r]);
                fx.features_into(a, b, slot);
            }
        };
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            threads
        }
        .min(jobs.len());
        if threads <= 1 {
            for (c, chunk) in jobs.iter_mut() {
                fill(*c, chunk);
            }
        } else {
            let per_worker = jobs.len().div_ceil(threads);
            let obs = mc_obs::ObsContext::current();
            std::thread::scope(|s| {
                for group in jobs.chunks_mut(per_worker) {
                    let obs = &obs;
                    s.spawn(move || {
                        let _obs = obs.attach();
                        for (c, chunk) in group.iter_mut() {
                            fill(*c, chunk);
                        }
                    });
                }
            });
        }
        let mut rows_built = 0usize;
        for (c, chunk) in &jobs {
            built[*c] = true;
            rows_built += chunk.len() / stride;
        }
        mc_obs::counter!("mc.core.verify.feature_matrix.rows_built").add(rows_built as u64);
    }

    /// Materializes every remaining chunk; see
    /// [`FeatureMatrix::ensure_upto`].
    pub fn ensure_all(&mut self, pairs: &[u64], fx: &FeatureExtractor<'_>, threads: usize) {
        self.ensure_upto(self.len(), pairs, fx, threads);
    }
}

fn truncate(s: &str) -> String {
    s.chars()
        .take(EDIT_FEATURE_MAX_CHARS)
        .collect::<String>()
        .to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_strsim::tokenize::Tokenizer;
    use mc_table::{Schema, Tuple};
    use std::sync::Arc;

    fn setup() -> (Table, Table, Vec<AttrId>) {
        let schema = Arc::new(Schema::from_names(["name", "city"]));
        let mut a = Table::new("A", Arc::clone(&schema));
        a.push(Tuple::from_present(["dave smith", "atlanta"]));
        a.push(Tuple::new(vec![Some("joe welson".into()), None]));
        let mut b = Table::new("B", schema);
        b.push(Tuple::from_present(["david smith", "atlanta"]));
        b.push(Tuple::from_present(["joe wilson", "new york"]));
        (a, b, vec![AttrId(0), AttrId(1)])
    }

    #[test]
    fn feature_vector_shape_and_ranges() {
        let (a, b, attrs) = setup();
        let (ta, tb, _) = TokenizedTable::build_pair(&a, &b, &attrs, Tokenizer::Word);
        let fx = FeatureExtractor::new(&a, &b, &attrs, &ta, &tb);
        assert_eq!(fx.n_features(), 2 * 3 + 2);
        for aid in 0..2 {
            for bid in 0..2 {
                let f = fx.features(aid, bid);
                assert_eq!(f.len(), fx.n_features());
                for (i, v) in f.iter().enumerate() {
                    assert!((0.0..=1.0).contains(v), "feature {i} = {v}");
                }
            }
        }
    }

    #[test]
    fn matching_pair_scores_higher_than_random() {
        let (a, b, attrs) = setup();
        let (ta, tb, _) = TokenizedTable::build_pair(&a, &b, &attrs, Tokenizer::Word);
        let fx = FeatureExtractor::new(&a, &b, &attrs, &ta, &tb);
        let same = fx.features(0, 0); // dave smith/atlanta vs david smith/atlanta
        let diff = fx.features(0, 1); // vs joe wilson/new york
                                      // Concatenated jaccard (second-to-last feature) should separate.
        let cj = fx.n_features() - 2;
        assert!(same[cj] > diff[cj]);
        // City jaccard (attr 1, feature 3) is 1.0 vs 0.0.
        assert_eq!(same[3], 1.0);
        assert_eq!(diff[3], 0.0);
    }

    #[test]
    fn missing_values_zero_presence_flag() {
        let (a, b, attrs) = setup();
        let (ta, tb, _) = TokenizedTable::build_pair(&a, &b, &attrs, Tokenizer::Word);
        let fx = FeatureExtractor::new(&a, &b, &attrs, &ta, &tb);
        let f = fx.features(1, 0); // a1 has no city
                                   // presence flag for city = features[5]
        assert_eq!(f[5], 0.0);
        assert_eq!(f[2], 1.0); // name present on both sides
    }

    #[test]
    fn matrix_rows_equal_extractor_features() {
        use mc_table::pair_key;
        let (a, b, attrs) = setup();
        let (ta, tb, _) = TokenizedTable::build_pair(&a, &b, &attrs, Tokenizer::Word);
        let fx = FeatureExtractor::new(&a, &b, &attrs, &ta, &tb);
        let pairs: Vec<u64> = (0..2)
            .flat_map(|x| (0..2).map(move |y| pair_key(x, y)))
            .collect();
        for threads in [1, 3] {
            let mut m = FeatureMatrix::new(pairs.len(), fx.n_features());
            assert_eq!(m.len(), pairs.len());
            m.ensure_upto(1, &pairs, &fx, threads);
            m.ensure_all(&pairs, &fx, threads);
            for (i, &key) in pairs.iter().enumerate() {
                let (x, y) = mc_table::split_pair_key(key);
                assert_eq!(m.row(i), fx.features(x, y).as_slice(), "row {i}");
                assert_eq!(m.view().row(i), m.row(i));
            }
        }
    }

    #[test]
    fn empty_matrix_is_fine() {
        let (a, b, attrs) = setup();
        let (ta, tb, _) = TokenizedTable::build_pair(&a, &b, &attrs, Tokenizer::Word);
        let fx = FeatureExtractor::new(&a, &b, &attrs, &ta, &tb);
        let mut m = FeatureMatrix::new(0, fx.n_features());
        m.ensure_all(&[], &fx, 2);
        assert!(m.is_empty());
    }

    #[test]
    fn edit_feature_handles_misspelling() {
        let (a, b, attrs) = setup();
        let (ta, tb, _) = TokenizedTable::build_pair(&a, &b, &attrs, Tokenizer::Word);
        let fx = FeatureExtractor::new(&a, &b, &attrs, &ta, &tb);
        let f = fx.features(1, 1); // joe welson vs joe wilson
                                   // name edit similarity = features[1]; 1 char differs out of 10.
        assert!(f[1] > 0.85);
    }
}

//! Feature extraction for candidate pairs.
//!
//! The verifier's random forest needs a feature vector per tuple pair.
//! Per promising attribute we emit word-level Jaccard, normalized edit
//! similarity, and a both-present indicator; globally we add the
//! concatenated Jaccard and a length-ratio feature. These mirror the
//! similarity features Magellan-style EM systems generate.

use mc_strsim::dict::TokenizedTable;
use mc_strsim::measures::{edit_similarity, SetMeasure};
use mc_table::{AttrId, Table, TupleId};

/// Truncation bound for edit-distance features (edit distance is
/// quadratic; long descriptions would dominate verification time).
const EDIT_FEATURE_MAX_CHARS: usize = 48;

/// Extracts feature vectors for `(a, b)` tuple pairs.
pub struct FeatureExtractor<'t> {
    a: &'t Table,
    b: &'t Table,
    attrs: &'t [AttrId],
    tok_a: &'t TokenizedTable,
    tok_b: &'t TokenizedTable,
}

impl<'t> FeatureExtractor<'t> {
    /// A new extractor over the promising attributes and their word
    /// tokenizations (shared rank space).
    pub fn new(
        a: &'t Table,
        b: &'t Table,
        attrs: &'t [AttrId],
        tok_a: &'t TokenizedTable,
        tok_b: &'t TokenizedTable,
    ) -> Self {
        FeatureExtractor {
            a,
            b,
            attrs,
            tok_a,
            tok_b,
        }
    }

    /// Length of the produced feature vectors.
    pub fn n_features(&self) -> usize {
        self.attrs.len() * 3 + 2
    }

    /// The feature vector for pair `(aid, bid)`.
    pub fn features(&self, aid: TupleId, bid: TupleId) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_features());
        let mut total_a = 0usize;
        let mut total_b = 0usize;
        for (i, &attr) in self.attrs.iter().enumerate() {
            let ra = self.tok_a.ranks(i, aid);
            let rb = self.tok_b.ranks(i, bid);
            total_a += ra.len();
            total_b += rb.len();
            out.push(SetMeasure::Jaccard.score(ra, rb));
            let va = self.a.value(aid, attr).unwrap_or("");
            let vb = self.b.value(bid, attr).unwrap_or("");
            out.push(edit_similarity(&truncate(va), &truncate(vb)));
            out.push(f64::from(!va.is_empty() && !vb.is_empty()));
        }
        // Concatenated Jaccard over all promising attributes.
        let all: Vec<usize> = (0..self.attrs.len()).collect();
        let merged_a = self.tok_a.merged(&all, aid);
        let merged_b = self.tok_b.merged(&all, bid);
        out.push(SetMeasure::Jaccard.score(&merged_a, &merged_b));
        // Token-length ratio (1 = same length).
        let m = total_a.max(total_b);
        out.push(if m == 0 {
            1.0
        } else {
            total_a.min(total_b) as f64 / m as f64
        });
        out
    }
}

fn truncate(s: &str) -> String {
    s.chars()
        .take(EDIT_FEATURE_MAX_CHARS)
        .collect::<String>()
        .to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_strsim::tokenize::Tokenizer;
    use mc_table::{Schema, Tuple};
    use std::sync::Arc;

    fn setup() -> (Table, Table, Vec<AttrId>) {
        let schema = Arc::new(Schema::from_names(["name", "city"]));
        let mut a = Table::new("A", Arc::clone(&schema));
        a.push(Tuple::from_present(["dave smith", "atlanta"]));
        a.push(Tuple::new(vec![Some("joe welson".into()), None]));
        let mut b = Table::new("B", schema);
        b.push(Tuple::from_present(["david smith", "atlanta"]));
        b.push(Tuple::from_present(["joe wilson", "new york"]));
        (a, b, vec![AttrId(0), AttrId(1)])
    }

    #[test]
    fn feature_vector_shape_and_ranges() {
        let (a, b, attrs) = setup();
        let (ta, tb, _) = TokenizedTable::build_pair(&a, &b, &attrs, Tokenizer::Word);
        let fx = FeatureExtractor::new(&a, &b, &attrs, &ta, &tb);
        assert_eq!(fx.n_features(), 2 * 3 + 2);
        for aid in 0..2 {
            for bid in 0..2 {
                let f = fx.features(aid, bid);
                assert_eq!(f.len(), fx.n_features());
                for (i, v) in f.iter().enumerate() {
                    assert!((0.0..=1.0).contains(v), "feature {i} = {v}");
                }
            }
        }
    }

    #[test]
    fn matching_pair_scores_higher_than_random() {
        let (a, b, attrs) = setup();
        let (ta, tb, _) = TokenizedTable::build_pair(&a, &b, &attrs, Tokenizer::Word);
        let fx = FeatureExtractor::new(&a, &b, &attrs, &ta, &tb);
        let same = fx.features(0, 0); // dave smith/atlanta vs david smith/atlanta
        let diff = fx.features(0, 1); // vs joe wilson/new york
                                      // Concatenated jaccard (second-to-last feature) should separate.
        let cj = fx.n_features() - 2;
        assert!(same[cj] > diff[cj]);
        // City jaccard (attr 1, feature 3) is 1.0 vs 0.0.
        assert_eq!(same[3], 1.0);
        assert_eq!(diff[3], 0.0);
    }

    #[test]
    fn missing_values_zero_presence_flag() {
        let (a, b, attrs) = setup();
        let (ta, tb, _) = TokenizedTable::build_pair(&a, &b, &attrs, Tokenizer::Word);
        let fx = FeatureExtractor::new(&a, &b, &attrs, &ta, &tb);
        let f = fx.features(1, 0); // a1 has no city
                                   // presence flag for city = features[5]
        assert_eq!(f[5], 0.0);
        assert_eq!(f[2], 1.0); // name present on both sides
    }

    #[test]
    fn edit_feature_handles_misspelling() {
        let (a, b, attrs) = setup();
        let (ta, tb, _) = TokenizedTable::build_pair(&a, &b, &attrs, Tokenizer::Word);
        let fx = FeatureExtractor::new(&a, &b, &attrs, &ta, &tb);
        let f = fx.features(1, 1); // joe welson vs joe wilson
                                   // name edit similarity = features[1]; 1 char differs out of 10.
        assert!(f[1] > 0.85);
    }
}

//! Cache-key derivation and artifact codecs for the persistent store.
//!
//! This module is the bridge between the pipeline's in-memory state and
//! `mc-store`'s content-addressed blobs. Four artifact kinds are
//! persisted (see [`mc_store::ArtifactKind`]):
//!
//! * **Tokenization** — the shared token order (`id → rank` table) plus
//!   both tables' per-attribute sorted rank columns, keyed by the two
//!   input tables' content digests, the promising attribute list and the
//!   tokenizer. Loading it skips the `mc.strsim.dict.build` pass
//!   entirely.
//! * **Arena** — one side's flat CSR record arena for one config, keyed
//!   by the tokenization key plus side and config positions.
//! * **Postings** — the same arena/postings data in the alignment-padded
//!   zero-copy layout ([`encode_arena_zc`]), under the same key: warm
//!   starts memory-map the file and point the join at its pages in place
//!   ([`map_arena`]) instead of decoding. New runs publish this kind;
//!   the byte-codec **Arena** kind stays readable for stores written by
//!   older builds and as the fallback when a mapped payload fails
//!   validation.
//! * **CandidateUnion** — the joint stage's entire output (config masks,
//!   `q_used`, the deduplicated pair list and per-config score matrix),
//!   keyed by the tokenization key, the config-tree shape, every
//!   result-affecting [`JointParams`] field and an order-independent
//!   digest of the killed set `C`. The worker-thread count is
//!   deliberately **excluded**: the joint stage is bit-deterministic
//!   across thread counts (see [`crate::joint`]'s module docs), so a
//!   union computed with 8 threads is byte-valid for a 1-thread rerun.
//!
//! Every decoder returns `Option` and validates structural invariants
//! (shapes, sortedness, offset monotonicity), so a corrupt artifact that
//! somehow passed the store's checksum still degrades to a cache miss
//! rather than a panic.

use crate::config::{Config, ConfigTree};
use crate::joint::{CandidateUnion, JointParams, QStrategy};
use mc_store::{ByteReader, ByteWriter, Digest, DigestWriter, MappedPayload};
use mc_strsim::arena::{RecordArena, StableBytes};
use mc_strsim::dict::{TokenOrder, TokenizedTable};
use mc_strsim::measures::SetMeasure;
use mc_strsim::tokenize::Tokenizer;
use mc_table::digest::digest_u64_set;
use mc_table::{pair_key, AttrId, PairSet, TupleId};

/// Stable tag per measure (keys must not depend on enum declaration
/// order surviving refactors).
fn measure_tag(m: SetMeasure) -> u8 {
    match m {
        SetMeasure::Jaccard => 0,
        SetMeasure::Cosine => 1,
        SetMeasure::Dice => 2,
        SetMeasure::Overlap => 3,
    }
}

/// Stable `(kind, q)` tag per tokenizer.
fn tokenizer_tag(t: Tokenizer) -> (u8, u8) {
    match t {
        Tokenizer::Word => (0, 0),
        Tokenizer::QGram(q) => (1, q),
    }
}

/// Key of the tokenization artifact: input bytes (via the tables'
/// content digests), the promising attribute list, and the tokenizer.
pub fn tok_key(
    digest_a: Digest,
    digest_b: Digest,
    attrs: &[AttrId],
    tokenizer: Tokenizer,
) -> Digest {
    let mut w = DigestWriter::new();
    w.write_str("mc-store/tok/v1");
    w.write_digest(digest_a);
    w.write_digest(digest_b);
    w.write_u64(attrs.len() as u64);
    for a in attrs {
        w.write_u32(a.0 as u32);
    }
    let (kind, q) = tokenizer_tag(tokenizer);
    w.write_u8(kind);
    w.write_u8(q);
    w.finish()
}

/// Key of one side's record arena for one config. `side` is 0 for table
/// A, 1 for table B; `positions` are the config's positions into the
/// promising set.
pub fn arena_key(tok: Digest, side: u8, positions: &[usize]) -> Digest {
    let mut w = DigestWriter::new();
    w.write_str("mc-store/arena/v1");
    w.write_digest(tok);
    w.write_u8(side);
    w.write_u64(positions.len() as u64);
    for &p in positions {
        w.write_u32(p as u32);
    }
    w.finish()
}

/// Key of the joint stage's candidate union. Covers everything that can
/// change the union — tree shape, `k`, measure, `q` strategy, the reuse
/// knobs, and the killed set — but **not** the thread count (the joint
/// stage is bit-deterministic across thread counts).
pub fn union_key(tok: Digest, tree: &ConfigTree, params: &JointParams, killed: &PairSet) -> Digest {
    let mut w = DigestWriter::new();
    w.write_str("mc-store/union/v1");
    w.write_digest(tok);
    let configs = tree.configs();
    w.write_u64(configs.len() as u64);
    for (i, c) in configs.iter().enumerate() {
        w.write_u32(c.mask());
        // Parent links matter: they decide seeding and overlap reuse.
        w.write_u32(tree.parent(i).map_or(u32::MAX, |p| p as u32));
    }
    w.write_u64(params.k as u64);
    w.write_u8(measure_tag(params.measure));
    match params.q {
        QStrategy::Fixed(q) => {
            w.write_u8(0);
            w.write_u64(q as u64);
            w.write_u64(0);
        }
        QStrategy::Auto { max_q, prelude_k } => {
            w.write_u8(1);
            w.write_u64(max_q as u64);
            w.write_u64(prelude_k as u64);
        }
    }
    // Shard count and kernel are result-neutral (the sharded join is
    // bit-identical at every shard count, and both kernels compute the
    // same exact overlaps) — except that sharding forces the overlap
    // database off. Key on the *effective* reuse flag so a sharded run
    // shares its slot with an unsharded reuse-off run (their unions are
    // bit-identical) and never aliases a reuse-on one.
    w.write_u8((params.reuse_overlaps && params.shards <= 1) as u8);
    w.write_u8(params.reuse_topk as u8);
    w.write_f64(params.reuse_min_avg_tokens);
    // `PairSet` iterates in hash order; fold through the
    // order-independent set digest so every iteration order keys alike.
    w.write_digest(digest_u64_set(killed.iter().map(|(a, b)| pair_key(a, b))));
    w.finish()
}

/// Writes one CSR column: `offsets` (length `rows + 1`) then the
/// flattened tokens.
fn put_csr(w: &mut ByteWriter, records: impl Iterator<Item = impl AsRef<[u32]>>, rows: usize) {
    let mut offsets = Vec::with_capacity(rows + 1);
    let mut tokens = Vec::new();
    offsets.push(0u32);
    for r in records {
        tokens.extend_from_slice(r.as_ref());
        offsets.push(tokens.len() as u32);
    }
    w.put_u32_slice(&offsets);
    w.put_u32_slice(&tokens);
}

/// Reads one CSR column back into per-record vectors, validating the
/// offsets invariant and per-record sortedness.
fn get_csr(r: &mut ByteReader<'_>, rows: usize) -> Option<Vec<Vec<u32>>> {
    let offsets = r.get_u32_vec()?;
    let tokens = r.get_u32_vec()?;
    if offsets.len() != rows + 1 || offsets.first() != Some(&0) {
        return None;
    }
    if *offsets.last()? as usize != tokens.len() {
        return None;
    }
    let mut out = Vec::with_capacity(rows);
    for w in offsets.windows(2) {
        let (lo, hi) = (w[0] as usize, w[1] as usize);
        if lo > hi {
            return None;
        }
        let rec = &tokens[lo..hi];
        if rec.windows(2).any(|t| t[0] > t[1]) {
            return None; // rank vectors must be sorted
        }
        out.push(rec.to_vec());
    }
    Some(out)
}

/// Encodes the tokenization artifact: rank table, then each side's
/// `(rows, attr_count, per-attribute CSR columns)`.
pub fn encode_tokenization(
    order: &TokenOrder,
    tok_a: &TokenizedTable,
    tok_b: &TokenizedTable,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32_slice(order.rank_table());
    for tok in [tok_a, tok_b] {
        w.put_u64(tok.rows() as u64);
        w.put_u64(tok.attr_count() as u64);
        for attr in 0..tok.attr_count() {
            put_csr(
                &mut w,
                (0..tok.rows() as TupleId).map(|t| tok.ranks(attr, t)),
                tok.rows(),
            );
        }
    }
    w.into_bytes()
}

/// Decodes a tokenization artifact. `None` on any structural violation.
pub fn decode_tokenization(bytes: &[u8]) -> Option<(TokenOrder, TokenizedTable, TokenizedTable)> {
    let mut r = ByteReader::new(bytes);
    let rank_table = r.get_u32_vec()?;
    let mut sides = Vec::with_capacity(2);
    for _ in 0..2 {
        let rows = usize::try_from(r.get_u64()?).ok()?;
        let attr_count = usize::try_from(r.get_u64()?).ok()?;
        if attr_count > 32 {
            return None; // configs are 32-bit masks; more attrs is garbage
        }
        let mut cols = Vec::with_capacity(attr_count);
        for _ in 0..attr_count {
            cols.push(get_csr(&mut r, rows)?);
        }
        sides.push(TokenizedTable::from_columns(cols, rows)?);
    }
    if !r.is_exhausted() {
        return None;
    }
    let tok_b = sides.pop()?;
    let tok_a = sides.pop()?;
    Some((TokenOrder::from_rank_table(rank_table), tok_a, tok_b))
}

/// Encodes one record arena (tokens + offsets, both raw CSR parts).
pub fn encode_arena(arena: &RecordArena) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32_slice(arena.tokens());
    w.put_u32_slice(arena.offsets());
    w.into_bytes()
}

/// Decodes a record arena; validation happens in
/// [`RecordArena::from_parts`].
pub fn decode_arena(bytes: &[u8]) -> Option<RecordArena> {
    let mut r = ByteReader::new(bytes);
    let tokens = r.get_u32_vec()?;
    let offsets = r.get_u32_vec()?;
    if !r.is_exhausted() {
        return None;
    }
    RecordArena::from_parts(tokens, offsets)
}

/// Sub-magic of the zero-copy CSR payload ([`ArtifactKind::Postings`]
/// files). Distinct from the store's file magic: the store header says
/// "a valid artifact of kind Postings", this says "the payload is the
/// alignment-padded CSR layout below".
const ZC_MAGIC: &[u8; 8] = b"MCZCSR01";

/// Zero-copy header length; also the offset of the first section, so
/// sections are 64-byte aligned relative to the payload (and the payload
/// itself starts 8-aligned — page-aligned under a real mmap).
const ZC_HEADER: usize = 64;

/// Encodes a record arena in the alignment-padded zero-copy layout
/// ([`ArtifactKind::Postings`]): a 64-byte sub-header, the token section,
/// padding to the next 64-byte boundary, then the offsets section. A
/// warm start can hand the mapped payload to [`map_arena`] and use the
/// sections in place — no decode, no copy. Values are little-endian; a
/// big-endian reader refuses the payload and falls back to the byte
/// codec.
///
/// ```text
/// offset  size  field
///      0     8  sub-magic "MCZCSR01"
///      8     8  record count (LE u64)
///     16     8  token count (LE u64)
///     24     4  rank bound (LE u32)
///     28     4  flags (0)
///     32     8  token-section byte offset (LE u64, 64-aligned)
///     40     8  offsets-section byte offset (LE u64, 64-aligned)
///     48     8  total payload length (LE u64)
///     56     8  reserved (0)
/// ```
pub fn encode_arena_zc(arena: &RecordArena) -> Vec<u8> {
    let tokens = arena.tokens();
    let offsets = arena.offsets();
    let tokens_off = ZC_HEADER;
    let offsets_off = (tokens_off + tokens.len() * 4).next_multiple_of(64);
    let total = offsets_off + offsets.len() * 4;
    let mut out = vec![0u8; total];
    out[0..8].copy_from_slice(ZC_MAGIC);
    out[8..16].copy_from_slice(&(arena.len() as u64).to_le_bytes());
    out[16..24].copy_from_slice(&(tokens.len() as u64).to_le_bytes());
    out[24..28].copy_from_slice(&arena.rank_bound().to_le_bytes());
    out[32..40].copy_from_slice(&(tokens_off as u64).to_le_bytes());
    out[40..48].copy_from_slice(&(offsets_off as u64).to_le_bytes());
    out[48..56].copy_from_slice(&(total as u64).to_le_bytes());
    put_u32_section(&mut out[tokens_off..], tokens);
    put_u32_section(&mut out[offsets_off..], offsets);
    out
}

/// Writes `vals` as little-endian `u32`s at the start of `dst`.
fn put_u32_section(dst: &mut [u8], vals: &[u32]) {
    for (chunk, v) in dst.chunks_exact_mut(4).zip(vals) {
        chunk.copy_from_slice(&v.to_le_bytes());
    }
}

/// The bridge between [`MappedPayload`] and [`StableBytes`]: the payload
/// view is stable because the mapping (kernel pages or the pinned heap
/// fallback buffer) never moves while the value is alive.
struct MappedBacking(MappedPayload);

// SAFETY: `MappedPayload::payload` derives from a pointer fixed at map
// time (an mmap region or a heap buffer that is never reallocated), so
// it returns the same pointer and length on every call, and the mapping
// is read-only for its whole lifetime.
unsafe impl StableBytes for MappedBacking {
    fn bytes(&self) -> &[u8] {
        self.0.payload()
    }
}

/// Validates a zero-copy arena payload ([`encode_arena_zc`]'s layout)
/// and borrows the record arena straight out of the mapping. `None` on
/// any structural, alignment, length, or endianness violation — the
/// caller falls back to the byte codec and counts a miss.
pub fn map_arena(payload: MappedPayload) -> Option<RecordArena> {
    let ranges = {
        let b = payload.payload();
        if b.len() < ZC_HEADER || &b[0..8] != ZC_MAGIC {
            return None;
        }
        let le64 = |at: usize| u64::from_le_bytes(b[at..at + 8].try_into().unwrap());
        let n_records = usize::try_from(le64(8)).ok()?;
        let n_tokens = usize::try_from(le64(16)).ok()?;
        let rank_bound = u32::from_le_bytes(b[24..28].try_into().unwrap());
        let tokens_off = usize::try_from(le64(32)).ok()?;
        let offsets_off = usize::try_from(le64(40)).ok()?;
        if le64(48) != b.len() as u64 {
            return None;
        }
        let tokens_end = tokens_off.checked_add(n_tokens.checked_mul(4)?)?;
        let offsets_end = offsets_off.checked_add(n_records.checked_add(1)?.checked_mul(4)?)?;
        (
            tokens_off..tokens_end,
            offsets_off..offsets_end,
            n_records,
            rank_bound,
        )
    };
    let (tokens_range, offsets_range, n_records, rank_bound) = ranges;
    let backing: std::sync::Arc<dyn StableBytes> = std::sync::Arc::new(MappedBacking(payload));
    let arena = RecordArena::from_stable_parts(backing, tokens_range, offsets_range)?;
    // Cross-check the header against what validation recomputed: a
    // payload that disagrees with itself is corrupt, not just stale.
    (arena.len() == n_records && arena.rank_bound() == rank_bound).then_some(arena)
}

/// Encodes the joint stage's output: `q_used`, config masks, the pair
/// list, and per-config scores as a presence bitmap plus the present
/// `f64` bit patterns (scores round-trip bit-exactly).
pub fn encode_union(configs: &[Config], q_used: usize, union: &CandidateUnion) -> Vec<u8> {
    encode_union_with_base(configs, q_used, union, None)
}

/// [`encode_union`] with optional provenance: `base` records the union
/// key of the artifact this one was *derived from* by an incremental
/// rerun (delta-patched tables or a killed-set diff), so store tooling
/// can trace a chain of incremental results back to its cold-start
/// ancestor. `None` encodes exactly like [`encode_union`] (the trailing
/// presence byte makes old payloads, which lack it, decodable too).
pub fn encode_union_with_base(
    configs: &[Config],
    q_used: usize,
    union: &CandidateUnion,
    base: Option<Digest>,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(q_used as u64);
    let masks: Vec<u32> = configs.iter().map(|c| c.mask()).collect();
    w.put_u32_slice(&masks);
    w.put_u64(union.pairs.len() as u64);
    for &p in &union.pairs {
        w.put_u64(p);
    }
    for row in &union.scores {
        let mut bitmap = vec![0u8; union.pairs.len().div_ceil(8)];
        for (i, s) in row.iter().enumerate() {
            if s.is_some() {
                bitmap[i / 8] |= 1 << (i % 8);
            }
        }
        w.put_bytes(&bitmap);
        for s in row.iter().flatten() {
            w.put_f64(*s);
        }
    }
    if let Some(d) = base {
        w.put_u8(1);
        w.put_u64(d.hi);
        w.put_u64(d.lo);
    }
    w.into_bytes()
}

/// Decodes a candidate-union artifact into `(configs, q_used, union)`,
/// discarding any provenance digest. See [`decode_union_full`].
pub fn decode_union(bytes: &[u8]) -> Option<(Vec<Config>, usize, CandidateUnion)> {
    decode_union_full(bytes).map(|(c, q, u, _)| (c, q, u))
}

/// Decodes a candidate-union artifact including the optional
/// derived-from provenance digest written by
/// [`encode_union_with_base`]. Artifacts written before provenance
/// existed (no trailing bytes) decode with `None`.
pub fn decode_union_full(
    bytes: &[u8],
) -> Option<(Vec<Config>, usize, CandidateUnion, Option<Digest>)> {
    let mut r = ByteReader::new(bytes);
    let q_used = usize::try_from(r.get_u64()?).ok()?;
    if q_used == 0 {
        return None;
    }
    let configs: Vec<Config> = r
        .get_u32_vec()?
        .into_iter()
        .map(Config::from_mask)
        .collect();
    let n_pairs = usize::try_from(r.get_u64()?).ok()?;
    // A pair is ≥ 17 encoded bytes (8 + bitmap + score shares), so this
    // cap only rejects payloads that lie about their own length.
    if n_pairs > bytes.len() {
        return None;
    }
    let mut pairs = Vec::with_capacity(n_pairs);
    for _ in 0..n_pairs {
        pairs.push(r.get_u64()?);
    }
    let mut scores = Vec::with_capacity(configs.len());
    for _ in 0..configs.len() {
        let bitmap = r.get_bytes()?;
        if bitmap.len() != n_pairs.div_ceil(8) {
            return None;
        }
        let mut row = Vec::with_capacity(n_pairs);
        for i in 0..n_pairs {
            if bitmap[i / 8] & (1 << (i % 8)) != 0 {
                row.push(Some(r.get_f64()?));
            } else {
                row.push(None);
            }
        }
        scores.push(row);
    }
    let base = if r.is_exhausted() {
        None
    } else {
        if r.get_u8()? != 1 {
            return None;
        }
        let hi = r.get_u64()?;
        let lo = r.get_u64()?;
        Some(Digest { hi, lo })
    };
    if !r.is_exhausted() {
        return None;
    }
    Some((configs, q_used, CandidateUnion { pairs, scores }, base))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_strsim::dict::TokenizedTable;
    use mc_table::{Schema, Table, Tuple};
    use std::sync::Arc;

    fn tok_pair() -> (TokenOrder, TokenizedTable, TokenizedTable) {
        let schema = Arc::new(Schema::from_names(["name", "city"]));
        let mut a = Table::new("A", Arc::clone(&schema));
        a.push(Tuple::from_present(["dave smith", "atlanta"]));
        a.push(Tuple::new(vec![None, Some("ny ny".into())]));
        let mut b = Table::new("B", schema);
        b.push(Tuple::from_present(["david smith", "atlanta"]));
        let attrs = [AttrId(0), AttrId(1)];
        let (ta, tb, order) = TokenizedTable::build_pair(&a, &b, &attrs, Tokenizer::Word);
        (order, ta, tb)
    }

    #[test]
    fn tokenization_roundtrip_preserves_every_rank_vector() {
        let (order, ta, tb) = tok_pair();
        let bytes = encode_tokenization(&order, &ta, &tb);
        let (order2, ta2, tb2) = decode_tokenization(&bytes).expect("roundtrip");
        assert_eq!(order.rank_table(), order2.rank_table());
        for (orig, redone) in [(&ta, &ta2), (&tb, &tb2)] {
            assert_eq!(orig.rows(), redone.rows());
            assert_eq!(orig.attr_count(), redone.attr_count());
            for attr in 0..orig.attr_count() {
                for t in 0..orig.rows() as TupleId {
                    assert_eq!(orig.ranks(attr, t), redone.ranks(attr, t));
                }
            }
        }
    }

    #[test]
    fn tokenization_decode_rejects_trailing_garbage_and_unsorted_ranks() {
        let (order, ta, tb) = tok_pair();
        let mut bytes = encode_tokenization(&order, &ta, &tb);
        bytes.push(0);
        assert!(decode_tokenization(&bytes).is_none(), "trailing byte");
        assert!(decode_tokenization(&[]).is_none(), "empty payload");
        // Hand-build a payload with an unsorted rank vector.
        let mut w = ByteWriter::new();
        w.put_u32_slice(&[0, 1]); // rank table
        for _ in 0..2 {
            w.put_u64(1); // rows
            w.put_u64(1); // attrs
            w.put_u32_slice(&[0, 2]); // offsets
            w.put_u32_slice(&[5, 3]); // tokens, descending
        }
        assert!(decode_tokenization(&w.into_bytes()).is_none());
    }

    #[test]
    fn arena_roundtrip_preserves_records_and_bound() {
        let arena = RecordArena::from_records(&[vec![1u32, 4, 9], vec![], vec![2, 2, 7]]);
        let back = decode_arena(&encode_arena(&arena)).expect("roundtrip");
        assert_eq!(back.len(), arena.len());
        assert_eq!(back.rank_bound(), arena.rank_bound());
        for t in 0..arena.len() as TupleId {
            assert_eq!(back.record(t), arena.record(t));
        }
        assert!(decode_arena(&[1, 2, 3]).is_none(), "garbage payload");
    }

    #[test]
    fn zero_copy_arena_maps_in_place_and_rejects_corruption() {
        use mc_store::{ArtifactKind, Store, StoreConfig};
        use mc_table::digest::digest_bytes;
        let root = std::env::temp_dir().join(format!(
            "mc_store_io_zc_{}_{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::SystemTime::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        let store = Store::open(&StoreConfig::at(&root)).unwrap();
        let arena = RecordArena::from_records(&[vec![1u32, 4, 9], vec![], vec![2, 2, 7, 1000]]);
        let key = digest_bytes(b"zc-arena");
        let payload = encode_arena_zc(&arena);
        assert_eq!(payload.len() % 4, 0);
        assert!(store.publish(ArtifactKind::Postings, key, &payload));

        let mapped = store.load_mapped(ArtifactKind::Postings, key).expect("hit");
        let back = map_arena(mapped).expect("valid zero-copy payload");
        assert!(back.is_mapped(), "must borrow the mapping, not copy");
        assert_eq!(back.len(), arena.len());
        assert_eq!(back.rank_bound(), arena.rank_bound());
        for t in 0..arena.len() as TupleId {
            assert_eq!(back.record(t), arena.record(t));
        }

        // An old-codec payload under the Postings kind fails the
        // sub-magic check and degrades to None (codec fallback path).
        let legacy_key = digest_bytes(b"legacy");
        store.publish(ArtifactKind::Postings, legacy_key, &encode_arena(&arena));
        let legacy = store
            .load_mapped(ArtifactKind::Postings, legacy_key)
            .expect("store-level hit");
        assert!(map_arena(legacy).is_none());

        // Flipping a section-offset byte breaks alignment/bounds checks
        // (the store checksum is recomputed so the file still "verifies").
        let mut broken = payload.clone();
        broken[32] ^= 0x01; // tokens_off 64 -> 65: misaligned
        let broken_key = digest_bytes(b"broken");
        store.publish(ArtifactKind::Postings, broken_key, &broken);
        let broken = store
            .load_mapped(ArtifactKind::Postings, broken_key)
            .expect("store-level hit");
        assert!(map_arena(broken).is_none());
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn union_roundtrip_is_bit_exact() {
        let configs = vec![Config::from_positions([0, 1]), Config::from_positions([0])];
        let union = CandidateUnion {
            pairs: vec![pair_key(0, 0), pair_key(2, 1), pair_key(1, 3)],
            scores: vec![
                vec![Some(0.75), None, Some(f64::MIN_POSITIVE)],
                vec![None, Some(1.0), None],
            ],
        };
        let bytes = encode_union(&configs, 2, &union);
        let (c2, q2, u2) = decode_union(&bytes).expect("roundtrip");
        assert_eq!(c2, configs);
        assert_eq!(q2, 2);
        assert_eq!(u2.pairs, union.pairs);
        let bits = |rows: &Vec<Vec<Option<f64>>>| -> Vec<Vec<Option<u64>>> {
            rows.iter()
                .map(|r| r.iter().map(|s| s.map(f64::to_bits)).collect())
                .collect()
        };
        assert_eq!(bits(&u2.scores), bits(&union.scores));
    }

    #[test]
    fn union_decode_rejects_truncation_anywhere() {
        let configs = vec![Config::from_positions([0])];
        let union = CandidateUnion {
            pairs: vec![pair_key(0, 1), pair_key(1, 0)],
            scores: vec![vec![Some(0.5), Some(0.25)]],
        };
        let bytes = encode_union(&configs, 1, &union);
        assert!(decode_union(&bytes).is_some());
        for cut in 0..bytes.len() {
            assert!(
                decode_union(&bytes[..cut]).is_none(),
                "truncation at {cut} must miss"
            );
        }
    }

    #[test]
    fn keys_separate_every_input_dimension() {
        let d = |n: u64| {
            let mut w = DigestWriter::new();
            w.write_u64(n);
            w.finish()
        };
        let attrs = [AttrId(0), AttrId(1)];
        let base = tok_key(d(1), d(2), &attrs, Tokenizer::Word);
        assert_ne!(base, tok_key(d(9), d(2), &attrs, Tokenizer::Word));
        assert_ne!(base, tok_key(d(1), d(9), &attrs, Tokenizer::Word));
        assert_ne!(base, tok_key(d(2), d(1), &attrs, Tokenizer::Word), "sides");
        assert_ne!(base, tok_key(d(1), d(2), &attrs[..1], Tokenizer::Word));
        assert_ne!(base, tok_key(d(1), d(2), &attrs, Tokenizer::QGram(3)));
        assert_ne!(
            tok_key(d(1), d(2), &attrs, Tokenizer::QGram(2)),
            tok_key(d(1), d(2), &attrs, Tokenizer::QGram(3))
        );

        let ak = arena_key(base, 0, &[0, 2]);
        assert_ne!(ak, arena_key(base, 1, &[0, 2]), "side");
        assert_ne!(ak, arena_key(base, 0, &[0, 1]), "positions");
        assert_ne!(ak, arena_key(d(3), 0, &[0, 2]), "tok key");
    }

    #[test]
    fn union_key_ignores_threads_and_killed_order() {
        use crate::config::{ConfigGenerator, ConfigGeneratorParams, PromisingAttrs};
        let promising = PromisingAttrs {
            attrs: vec![AttrId(0), AttrId(1)],
            e_scores: vec![0.9, 0.8],
            avg_tokens_a: vec![3.0, 2.0],
            avg_tokens_b: vec![3.0, 2.0],
        };
        let tree = ConfigGenerator::new(ConfigGeneratorParams::default()).build_tree(&promising);
        let tok = tok_key(
            {
                let mut w = DigestWriter::new();
                w.write_u64(1);
                w.finish()
            },
            {
                let mut w = DigestWriter::new();
                w.write_u64(2);
                w.finish()
            },
            &promising.attrs,
            Tokenizer::Word,
        );
        let mut killed = PairSet::new();
        for i in 0..50u32 {
            killed.insert(i, (i * 7) % 50);
        }
        let mut p = JointParams {
            threads: 1,
            ..Default::default()
        };
        let k1 = union_key(tok, &tree, &p, &killed);
        p.threads = 8;
        assert_eq!(k1, union_key(tok, &tree, &p, &killed), "threads excluded");
        p.k += 1;
        assert_ne!(k1, union_key(tok, &tree, &p, &killed), "k separates");
        p.k -= 1;
        p.reuse_topk = !p.reuse_topk;
        assert_ne!(k1, union_key(tok, &tree, &p, &killed));
        p.reuse_topk = !p.reuse_topk;
        let mut more = PairSet::new();
        for (a, b) in killed.iter() {
            more.insert(a, b);
        }
        assert_eq!(k1, union_key(tok, &tree, &p, &more), "set content keys");
        more.insert(60, 60);
        assert_ne!(k1, union_key(tok, &tree, &p, &more));
    }
}

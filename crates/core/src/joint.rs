//! Joint execution of top-k joins across all configs (§4.2).
//!
//! Three cooperating mechanisms, all per the paper:
//!
//! * **Overlap reuse** — while processing a config with a non-empty
//!   subtree (a *writer*), the per-attribute-pair token overlaps
//!   `o(f_i, f_j)` of every freshly scored pair are stored in an
//!   insert-only concurrent database `H`; configs in the subtree then
//!   compute scores by summing the relevant cells instead of re-merging
//!   long token vectors. (The paper uses Folly's atomic hash map; we use
//!   a sharded `RwLock` map with identical insert-only semantics.)
//!   Reuse is only engaged when the average record length is at least
//!   [`JointParams::reuse_min_avg_tokens`] tokens — below that, the
//!   bookkeeping outweighs the savings.
//! * **Top-k list reuse** — a child config re-scores its parent's
//!   finished top-k list under its own config and starts from it,
//!   raising the pruning threshold immediately.
//! * **One config per core** — configs are processed breadth-first by a
//!   pool of workers; splitting a single config across cores suffers from
//!   skew (§4.2), so parallelism is across configs.
//!
//! # Determinism
//!
//! Whenever either reuse mechanism involves a parent, the worker that
//! claims a config first **waits for the parent config to finish**
//! ([`std::sync::OnceLock::wait`]) instead of opportunistically peeking
//! at whatever partial state happens to exist. The parent's overlap
//! database is therefore always complete before any child reads it, so
//! each pair's hit/miss outcome — and with it the exact floating-point
//! score path — no longer depends on thread scheduling. Combined with
//! the deterministic `q` selection in [`select_q`], `run_joint` produces
//! a **bit-identical** [`JointOutput`] at every thread count.
//!
//! The wait cannot deadlock: configs are claimed in increasing index
//! order from one atomic counter and a parent's index is always smaller
//! than its child's, so the smallest unfinished config's parent is
//! already finished and its worker can always make progress.
//!
//! The decomposed score `Σ o(f_i, f_j)` equals the exact merged-multiset
//! overlap whenever no token appears in two different attributes of one
//! tuple; with cross-attribute repeats it can overestimate slightly (it
//! is clamped to `min(|x|, |y|)`), which is the paper's own approximation.

use crate::config::{Config, ConfigTree};
use crate::ssj::{
    select_q_cached, topk_join_sharded, topk_join_with_scratch, ExactScorer, JoinScratch,
    JoinScratchPool, PairScorer, ScoreCache, ScoreOutcome, SsjInstance, SsjParams, TopKList,
};
use mc_strsim::arena::RecordArena;
use mc_strsim::bitmap::{overlap_with_bound_bitmap, BitmapIndex};
use mc_strsim::dict::TokenizedTable;
use mc_strsim::measures::{
    multiset_overlap, overlap_bound_key, overlap_with_bound, required_overlap_keyed, SetMeasure,
};
use mc_table::hash::{hash_u64, FxHashMap};
use mc_table::{split_pair_key, PairSet, TupleId};
use parking_lot::{Mutex, RwLock};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

const DB_SHARDS: usize = 64;

/// The concurrent overlap database `H_γ` of one writer config.
///
/// Maps a pair key to the `m × m` matrix of per-attribute-pair multiset
/// overlaps, where `m` is the writer's attribute count. Insert-only:
/// entries are never mutated or removed, so concurrent readers can never
/// observe a torn value.
///
/// Every lookup and insert is counted both per instance (see
/// [`OverlapDb::stats`], exact and race-free for tests) and in the global
/// registry (`mc.core.joint.overlap_db.{hits,misses,inserts}`).
pub struct OverlapDb {
    /// The writer config's positions (indexes into the promising set),
    /// ascending; cell `(i, j)` refers to `attrs[i]` of A and `attrs[j]`
    /// of B.
    attrs: Vec<usize>,
    shards: Vec<RwLock<FxHashMap<u64, Arc<[u32]>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

impl OverlapDb {
    /// An empty database for a writer config.
    pub fn new(config: Config) -> Self {
        OverlapDb {
            attrs: config.positions(),
            shards: (0..DB_SHARDS)
                .map(|_| RwLock::new(FxHashMap::default()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    /// The writer's attribute positions.
    pub fn attrs(&self) -> &[usize] {
        &self.attrs
    }

    #[inline]
    fn shard(&self, key: u64) -> &RwLock<FxHashMap<u64, Arc<[u32]>>> {
        &self.shards[(hash_u64(key) >> 58) as usize % DB_SHARDS]
    }

    /// Runs `f` on the pair's cell matrix without cloning the `Arc`
    /// (the shard read lock is held only for the duration of `f`). The
    /// hit/miss accounting is identical to [`OverlapDb::get`].
    pub fn with<R>(&self, key: u64, f: impl FnOnce(&[u32]) -> R) -> Option<R> {
        let out = {
            let shard = self.shard(key).read();
            shard.get(&key).map(|cells| f(cells))
        };
        if out.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            mc_obs::counter!("mc.core.joint.overlap_db.hits").inc();
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            mc_obs::counter!("mc.core.joint.overlap_db.misses").inc();
        }
        out
    }

    /// Fetches the cell matrix for a pair, if present.
    pub fn get(&self, key: u64) -> Option<Arc<[u32]>> {
        let out = self.shard(key).read().get(&key).cloned();
        if out.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            mc_obs::counter!("mc.core.joint.overlap_db.hits").inc();
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            mc_obs::counter!("mc.core.joint.overlap_db.misses").inc();
        }
        out
    }

    /// Inserts a cell matrix (first writer wins; idempotent).
    pub fn insert(&self, key: u64, cells: Arc<[u32]>) {
        debug_assert_eq!(cells.len(), self.attrs.len() * self.attrs.len());
        if let std::collections::hash_map::Entry::Vacant(v) = self.shard(key).write().entry(key) {
            v.insert(cells);
            self.inserts.fetch_add(1, Ordering::Relaxed);
            mc_obs::counter!("mc.core.joint.overlap_db.inserts").inc();
        }
    }

    /// Per-instance `(hits, misses, inserts)` — exact counts of
    /// [`OverlapDb::get`] outcomes and fresh [`OverlapDb::insert`]s on
    /// this database.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.inserts.load(Ordering::Relaxed),
        )
    }

    /// Total entries across shards (diagnostics).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True if no overlaps were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Computes the full cell matrix of a pair over `attrs`, reading the
/// per-attribute rank vectors from the tokenized tables.
///
/// Reference implementation (`m × m` independent merges); the hot path
/// uses the fused [`compute_cells_merged`], which this one cross-checks
/// in tests.
#[cfg(test)]
fn compute_cells(
    attrs: &[usize],
    tok_a: &TokenizedTable,
    tok_b: &TokenizedTable,
    a: TupleId,
    b: TupleId,
) -> Arc<[u32]> {
    let m = attrs.len();
    let mut cells = vec![0u32; m * m];
    for (i, &fi) in attrs.iter().enumerate() {
        let ra = tok_a.ranks(fi, a);
        if ra.is_empty() {
            continue;
        }
        for (j, &fj) in attrs.iter().enumerate() {
            let rb = tok_b.ranks(fj, b);
            if !rb.is_empty() {
                cells[i * m + j] = multiset_overlap(ra, rb) as u32;
            }
        }
    }
    cells.into()
}

/// Fused cell matrix **and** exact merged overlap from one merge.
///
/// `ra`/`rb` are the pair's config-merged records (the ones the scorer
/// is handed anyway). A single merge over them finds every shared token
/// value; at each one the run lengths give the merged multiset overlap
/// contribution `min(n_a, n_b)` directly, and the per-attribute copy
/// counts (binary searches in the short per-attribute vectors) give
/// every cell's contribution `min(c_aᵢ, c_bⱼ)`. Correct because a token
/// shared by attribute pair `(i, j)` is necessarily shared by the merged
/// records, so iterating merged shared tokens covers all cells.
///
/// Replaces the old miss path's *separate* full-score merge plus `m × m`
/// per-cell merges with one `O(|ra| + |rb|)` pass; the returned overlap
/// is the same integer `multiset_overlap(ra, rb)` computes, so
/// `from_overlap(o, …)` yields a bit-identical score.
/// Reusable buffers of the fused cell merge: one allocation set per
/// config worker instead of five heap allocations per scored pair.
#[derive(Default)]
struct CellsScratch<'a> {
    /// Per-attribute rank slices of the current pair's records.
    ras: Vec<&'a [u32]>,
    rbs: Vec<&'a [u32]>,
    /// Monotonic per-attribute cursors: the merged records visit ranks in
    /// ascending order, so each cursor only ever moves forward and the
    /// per-attribute multiplicity splits cost `O(|ra| + |rb|)` amortized
    /// over the whole pair (no per-rank binary searches).
    cur_a: Vec<u32>,
    cur_b: Vec<u32>,
    /// Nonzero `(attribute, copies)` splits of the current shared rank —
    /// usually a single entry, which keeps the cell accumulation sparse.
    nz_a: Vec<(u32, u32)>,
    nz_b: Vec<(u32, u32)>,
    /// The `m × m` cell accumulator; read by the caller after the merge.
    cells: Vec<u32>,
}

/// Fused single-pass computation of the pair's cell matrix (into
/// `scratch.cells`) and exact merged multiset overlap (returned): the
/// score comes out of the same merge that the writer's database entry
/// needs, so writers pay one pass instead of `m² + 1` independent ones.
#[allow(clippy::too_many_arguments)]
fn compute_cells_merged<'a>(
    scratch: &mut CellsScratch<'a>,
    attrs: &[usize],
    tok_a: &'a TokenizedTable,
    tok_b: &'a TokenizedTable,
    a: TupleId,
    b: TupleId,
    ra: &[u32],
    rb: &[u32],
) -> usize {
    let m = attrs.len();
    scratch.cells.clear();
    scratch.cells.resize(m * m, 0);
    if m == 1 {
        // One attribute: the merged record *is* the attribute's vector.
        let o = multiset_overlap(ra, rb);
        scratch.cells[0] = o as u32;
        return o;
    }
    scratch.ras.clear();
    scratch.ras.extend(attrs.iter().map(|&f| tok_a.ranks(f, a)));
    scratch.rbs.clear();
    scratch.rbs.extend(attrs.iter().map(|&f| tok_b.ranks(f, b)));
    scratch.cur_a.clear();
    scratch.cur_a.resize(m, 0);
    scratch.cur_b.clear();
    scratch.cur_b.resize(m, 0);
    let mut o = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < ra.len() && j < rb.len() {
        let (ta, tb) = (ra[i], rb[j]);
        if ta < tb {
            i += 1;
        } else if ta > tb {
            j += 1;
        } else {
            let i0 = i;
            while i < ra.len() && ra[i] == ta {
                i += 1;
            }
            let j0 = j;
            while j < rb.len() && rb[j] == ta {
                j += 1;
            }
            o += (i - i0).min(j - j0);
            scratch.nz_a.clear();
            for (ii, r) in scratch.ras.iter().enumerate() {
                let mut c = scratch.cur_a[ii] as usize;
                while c < r.len() && r[c] < ta {
                    c += 1;
                }
                let start = c;
                while c < r.len() && r[c] == ta {
                    c += 1;
                }
                scratch.cur_a[ii] = c as u32;
                if c > start {
                    scratch.nz_a.push((ii as u32, (c - start) as u32));
                }
            }
            scratch.nz_b.clear();
            for (jj, r) in scratch.rbs.iter().enumerate() {
                let mut c = scratch.cur_b[jj] as usize;
                while c < r.len() && r[c] < ta {
                    c += 1;
                }
                let start = c;
                while c < r.len() && r[c] == ta {
                    c += 1;
                }
                scratch.cur_b[jj] = c as u32;
                if c > start {
                    scratch.nz_b.push((jj as u32, (c - start) as u32));
                }
            }
            for &(ii, cai) in &scratch.nz_a {
                for &(jj, cbj) in &scratch.nz_b {
                    scratch.cells[ii as usize * m + jj as usize] += cai.min(cbj);
                }
            }
        }
    }
    o
}

/// Per-gate memo of [`required_overlap_keyed`]: the bound collapses to a
/// function of one small scalar per measure (see [`overlap_bound_key`]),
/// and the gate — the config's top-k threshold — changes only when the
/// list improves, orders of magnitude more rarely than pairs are scored.
struct BoundMemo {
    gate: f64,
    by_key: Vec<u32>,
}

/// Keys above this fall back to the direct computation (the table would
/// stop being "tiny"); record-length sums and products in practice sit
/// far below it.
const BOUND_MEMO_MAX: usize = 1 << 12;

impl Default for BoundMemo {
    fn default() -> Self {
        BoundMemo {
            gate: f64::NEG_INFINITY,
            by_key: Vec::new(),
        }
    }
}

impl BoundMemo {
    #[inline]
    fn required(&mut self, measure: SetMeasure, gate: f64, la: usize, lb: usize) -> usize {
        let key = overlap_bound_key(measure, la, lb);
        if key >= BOUND_MEMO_MAX {
            return required_overlap_keyed(measure, gate, key);
        }
        if self.gate != gate {
            self.gate = gate;
            self.by_key.clear();
        }
        if self.by_key.len() <= key {
            self.by_key.resize(key + 1, u32::MAX);
        }
        let slot = &mut self.by_key[key];
        if *slot == u32::MAX {
            *slot = required_overlap_keyed(measure, gate, key) as u32;
        }
        *slot as usize
    }
}

/// A scorer that reuses a parent writer's overlap database when possible
/// and records overlaps into its own database when it is itself a writer.
struct ReuseScorer<'a> {
    measure: SetMeasure,
    /// Parent writer's DB (readable while still being written).
    parent_db: Option<&'a OverlapDb>,
    /// Index of each of this config's attrs within `parent_db.attrs`.
    parent_slots: Vec<usize>,
    /// This config's own DB, when it is a writer.
    own_db: Option<&'a OverlapDb>,
    /// The prelude-populated score cache (root config only; see
    /// [`run_joint_with_arenas`]).
    score_cache: Option<&'a ScoreCache>,
    /// This config's positions.
    my_attrs: Vec<usize>,
    tok_a: &'a TokenizedTable,
    tok_b: &'a TokenizedTable,
    /// Reuse statistics: (hits, misses). A scorer lives on one worker
    /// thread, so plain cells suffice — no atomic traffic per attempt.
    hits: Cell<usize>,
    misses: Cell<usize>,
    /// Reusable buffers of the fused cell merge.
    cells_scratch: RefCell<CellsScratch<'a>>,
    /// Per-gate required-overlap memo for the direct (non-writer)
    /// scoring path.
    bound_memo: RefCell<BoundMemo>,
    /// Bitmap indexes of this config's arenas (A side, B side) when the
    /// bitmap kernel is selected. Only the direct scoring path consults
    /// them; the kernel is exactly equivalent to the scalar merge, so
    /// results stay bit-identical either way.
    bitmaps: Option<(&'a BitmapIndex, &'a BitmapIndex)>,
}

impl PairScorer for ReuseScorer<'_> {
    fn score(&self, a: TupleId, b: TupleId, ra: &[u32], rb: &[u32]) -> f64 {
        // A gate of −1 can never refute, so the gated path degenerates to
        // exact scoring (one implementation, one score path).
        match self.score_above(a, b, ra, rb, -1.0) {
            ScoreOutcome::Scored(s) | ScoreOutcome::Cached(s) => s,
            ScoreOutcome::Refuted => unreachable!("a −1 gate never refutes"),
        }
    }

    fn score_above(
        &self,
        a: TupleId,
        b: TupleId,
        ra: &[u32],
        rb: &[u32],
        gate: f64,
    ) -> ScoreOutcome {
        let key = mc_table::pair_key(a, b);
        if let Some(db) = self.parent_db {
            let hit = db.with(key, |cells| {
                let pm = db.attrs().len();
                let mut overlap = 0u64;
                for &si in &self.parent_slots {
                    for &sj in &self.parent_slots {
                        overlap += cells[si * pm + sj] as u64;
                    }
                }
                let sub: Option<Arc<[u32]>> = self.own_db.map(|_| {
                    // Project the parent's sub-matrix so our own subtree
                    // can reuse it too.
                    let m = self.my_attrs.len();
                    let mut sub = vec![0u32; m * m];
                    for (i, &si) in self.parent_slots.iter().enumerate() {
                        for (j, &sj) in self.parent_slots.iter().enumerate() {
                            sub[i * m + j] = cells[si * pm + sj];
                        }
                    }
                    sub.into()
                });
                (overlap, sub)
            });
            if let Some((overlap, sub)) = hit {
                self.hits.set(self.hits.get() + 1);
                // Clamp: the decomposed sum may exceed the merged multiset
                // intersection when a token repeats across attributes.
                let overlap = (overlap as usize).min(ra.len()).min(rb.len());
                if let (Some(own), Some(sub)) = (self.own_db, sub) {
                    own.insert(key, sub);
                }
                return ScoreOutcome::Cached(self.measure.from_overlap(
                    overlap,
                    ra.len(),
                    rb.len(),
                ));
            }
        }
        self.misses.set(self.misses.get() + 1);
        // The prelude score cache is consulted before the writer branch:
        // writer roots (the common case when reuse is engaged) would
        // otherwise never reach it and re-merge every prelude-scored
        // pair. A cached pair skips the cell computation too — its cells
        // are simply absent from the writer's DB, which is safe (children
        // miss and recompute exactly) and deterministic (the cache's
        // contents are fixed by the prelude join before this run starts,
        // so the subtree's hit/miss pattern still does not depend on any
        // transient top-k threshold).
        if let Some(cache) = self.score_cache {
            if let Some(s) = cache.get(key) {
                return ScoreOutcome::Cached(s);
            }
        }
        if let Some(own) = self.own_db {
            // A writer computes the full cell matrix for every fresh pair
            // regardless of the gate — its subtree's hit/miss pattern
            // (and with it each child's exact score path) must not depend
            // on this config's transient top-k threshold. The fused merge
            // hands back the exact merged overlap for free, so the score
            // costs nothing extra on top of the cells.
            let mut scratch = self.cells_scratch.borrow_mut();
            let overlap = compute_cells_merged(
                &mut scratch,
                &self.my_attrs,
                self.tok_a,
                self.tok_b,
                a,
                b,
                ra,
                rb,
            );
            own.insert(key, scratch.cells.as_slice().into());
            return ScoreOutcome::Scored(self.measure.from_overlap(overlap, ra.len(), rb.len()));
        }
        // Same kernel as `SetMeasure::score_above`, with the required
        // overlap served from the per-gate memo (bit-identical boundary;
        // see `required_overlap_keyed`).
        let o_min = self
            .bound_memo
            .borrow_mut()
            .required(self.measure, gate, ra.len(), rb.len());
        let o = match self.bitmaps {
            Some((ba, bb)) => overlap_with_bound_bitmap(ba, bb, ra, rb, a, b, o_min),
            None => overlap_with_bound(ra, rb, o_min),
        };
        match o {
            Some(o) => ScoreOutcome::Scored(self.measure.from_overlap(o, ra.len(), rb.len())),
            None => ScoreOutcome::Refuted,
        }
    }
}

/// Per-shard scorer of the sharded execution path: a fresh
/// [`ReuseScorer`] whose hit/miss tallies flush into the run-wide
/// atomics when the shard worker drops it (scorers are deliberately not
/// `Sync`, so each shard owns one).
struct ShardScorer<'a> {
    inner: ReuseScorer<'a>,
    hits: &'a AtomicUsize,
    misses: &'a AtomicUsize,
}

impl PairScorer for ShardScorer<'_> {
    fn score(&self, a: TupleId, b: TupleId, ra: &[u32], rb: &[u32]) -> f64 {
        self.inner.score(a, b, ra, rb)
    }

    fn score_above(
        &self,
        a: TupleId,
        b: TupleId,
        ra: &[u32],
        rb: &[u32],
        gate: f64,
    ) -> ScoreOutcome {
        self.inner.score_above(a, b, ra, rb, gate)
    }
}

impl Drop for ShardScorer<'_> {
    fn drop(&mut self) {
        self.hits
            .fetch_add(self.inner.hits.get(), Ordering::Relaxed);
        self.misses
            .fetch_add(self.inner.misses.get(), Ordering::Relaxed);
    }
}

/// How QJoin's `q` is chosen.
#[derive(Debug, Clone, Copy)]
pub enum QStrategy {
    /// Use a fixed `q` (1 = TopKJoin behaviour).
    Fixed(usize),
    /// Race `q ∈ {1, …, max_q}` with a `prelude_k` join on the root
    /// config and use the winner everywhere (§4.1's empirical selection).
    Auto {
        /// Largest q to try.
        max_q: usize,
        /// Prelude list size (the paper uses 50).
        prelude_k: usize,
    },
}

/// Which intersection kernel the direct (non-writer) scoring path uses.
///
/// Both kernels return the same overlap integer with the same
/// `Some`/`None` outcome, so the choice never changes results — only
/// where the merge cycles go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SsjKernel {
    /// The scalar merge+gallop kernel (`overlap_with_bound`).
    Scalar,
    /// Bitset popcount over the top `bits` token ranks, scalar merge on
    /// the rare prefix (see `mc_strsim::bitmap`).
    Bitmap {
        /// Width of the frequent suffix each bitset covers, in ranks.
        bits: u32,
    },
}

impl SsjKernel {
    /// The bitmap kernel at its default width
    /// ([`mc_strsim::bitmap::DEFAULT_FREQ_BITS`]).
    pub fn bitmap() -> SsjKernel {
        SsjKernel::Bitmap {
            bits: mc_strsim::bitmap::DEFAULT_FREQ_BITS,
        }
    }
}

/// Parameters of the joint execution.
#[derive(Debug, Clone, Copy)]
pub struct JointParams {
    /// Top-k list size per config.
    pub k: usize,
    /// Similarity measure.
    pub measure: SetMeasure,
    /// QJoin q selection.
    pub q: QStrategy,
    /// Worker threads. `Default` resolves to the machine's available
    /// parallelism; [`run_joint`] still tolerates an explicit 0 as "all
    /// cores", but `DebuggerParams::validate` rejects it.
    pub threads: usize,
    /// Record-range shards per config join. 1 (the default) keeps the
    /// paper's one-config-per-core schedule; above 1, configs run
    /// **sequentially** in tree order and each join is split into this
    /// many A-record ranges executed by up to [`JointParams::threads`]
    /// workers (`crate::ssj::topk_join_sharded`) — the right trade on
    /// huge inputs whose root join dwarfs the rest of the tree.
    /// Sharding forces the overlap database off (see
    /// [`run_joint_with_arenas`]); results are bit-identical at every
    /// shard count.
    pub shards: usize,
    /// Intersection kernel of the direct scoring path.
    pub kernel: SsjKernel,
    /// Enable the overlap database `H`.
    pub reuse_overlaps: bool,
    /// Enable parent→child top-k list seeding.
    pub reuse_topk: bool,
    /// Minimum average merged record length (tokens) for overlap reuse to
    /// engage (the paper's `t = 20`).
    pub reuse_min_avg_tokens: f64,
    /// Clamp the effective shard count to the machine's available
    /// parallelism (default `true`). Requesting more shards than cores
    /// only adds scratch/merge overhead — the scale bench measured a
    /// 0.66× *slowdown* at 8 shards on a 1-core host — so the executor
    /// runs `min(shards, max(cores, 2))` instead; the floor of 2 keeps a
    /// sharded request sharded (same reuse-off semantics, so results
    /// stay machine-independent). Results are bit-identical at every
    /// shard count, so the clamp never changes output — benches that
    /// record shard-dependent work counters opt out for reproducibility.
    pub clamp_shards: bool,
}

impl Default for JointParams {
    fn default() -> Self {
        JointParams {
            k: 1000,
            measure: SetMeasure::Jaccard,
            q: QStrategy::Fixed(1),
            threads: std::thread::available_parallelism().map_or(4, |p| p.get()),
            shards: 1,
            kernel: SsjKernel::Scalar,
            reuse_overlaps: true,
            reuse_topk: true,
            reuse_min_avg_tokens: 20.0,
            clamp_shards: true,
        }
    }
}

/// Result of the joint execution.
///
/// Wall-clock timing lives in the observability layer: the execution is
/// wrapped in an `mc.core.joint.run` span (and each config in a labeled
/// `mc.core.joint.config` span), so read durations from a
/// [`mc_obs::MetricsSnapshot`] delta instead of an ad-hoc field.
pub struct JointOutput {
    /// Configs in tree order.
    pub configs: Vec<Config>,
    /// One top-k list per config (same order).
    pub lists: Vec<TopKList>,
    /// Overlap-database reuse hits (scores computed from `H`).
    pub reuse_hits: usize,
    /// Fresh score computations.
    pub reuse_misses: usize,
    /// The q actually used.
    pub q_used: usize,
}

/// Resolves the requested worker-thread count against the machine and
/// the number of configs.
fn resolve_threads(requested: usize, n_configs: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(4, |p| p.get())
    } else {
        requested
    }
    .min(n_configs)
    .max(1)
}

/// Materializes both sides' flat record arenas for every config, in
/// parallel, so workers share them by reference (no per-worker clones).
///
/// Public so warm-start callers (`mc-store`) can build — or restore —
/// arenas themselves and hand them to [`run_joint_with_arenas`].
pub fn build_arenas(
    tok_a: &TokenizedTable,
    tok_b: &TokenizedTable,
    configs: &[Config],
    threads: usize,
) -> Vec<(RecordArena, RecordArena)> {
    let _span = mc_obs::span!("mc.core.joint.build_arenas");
    let slots: Vec<OnceLock<(RecordArena, RecordArena)>> =
        (0..configs.len()).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let obs = mc_obs::ObsContext::current();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(configs.len()).max(1) {
            scope.spawn(|| {
                let _obs = obs.attach();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= configs.len() {
                        break;
                    }
                    let idx = configs[i].positions();
                    let pair = (
                        RecordArena::from_tokenized(tok_a, &idx),
                        RecordArena::from_tokenized(tok_b, &idx),
                    );
                    slots[i].set(pair).expect("each slot filled once");
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("all arenas built"))
        .collect()
}

/// Runs one top-k join per config of the tree, jointly.
///
/// `tok_a`/`tok_b` are the promising-attribute tokenizations (shared rank
/// space); `killed` is the blocker output `C`. Builds the per-config
/// record arenas itself; warm-start callers that restored arenas from an
/// artifact store should use [`run_joint_with_arenas`] instead.
pub fn run_joint(
    tok_a: &TokenizedTable,
    tok_b: &TokenizedTable,
    killed: &PairSet,
    tree: &ConfigTree,
    params: JointParams,
) -> JointOutput {
    let configs = tree.configs();
    let threads = resolve_threads(params.threads, configs.len());
    let arenas = build_arenas(tok_a, tok_b, &configs, threads);
    run_joint_with_arenas(tok_a, tok_b, killed, tree, params, &arenas)
}

/// Runs the joint execution over pre-built per-config record arenas
/// (`arenas[i]` = `(side A, side B)` for config `i` in tree order, as
/// [`build_arenas`] produces them).
///
/// The output is bit-identical at every thread count (see the module
/// docs on determinism).
pub fn run_joint_with_arenas(
    tok_a: &TokenizedTable,
    tok_b: &TokenizedTable,
    killed: &PairSet,
    tree: &ConfigTree,
    params: JointParams,
    arenas: &[(RecordArena, RecordArena)],
) -> JointOutput {
    let _run_span = mc_obs::span!("mc.core.joint.run");
    let configs = tree.configs();
    let n = configs.len();
    assert_eq!(arenas.len(), n, "one arena pair per config, in tree order");

    // Decide reuse from data shape: average merged length of the root
    // config across both tables.
    let root = configs[0];
    let avg_len = {
        let idx = root.positions();
        let total_a: usize = (0..tok_a.rows() as TupleId)
            .map(|t| tok_a.merged_len(&idx, t))
            .sum();
        let total_b: usize = (0..tok_b.rows() as TupleId)
            .map(|t| tok_b.merged_len(&idx, t))
            .sum();
        (total_a + total_b) as f64 / (tok_a.rows() + tok_b.rows()).max(1) as f64
    };
    // Sharding disables the overlap database: which pairs a writer
    // scores — and therefore which keys its DB holds — depends on
    // per-shard threshold evolution, so DB membership (and with it a
    // child's hit/miss pattern and the decomposed-score approximation)
    // would vary with the shard count. With the DB off, every score
    // comes from the same exact kernel and the output is bit-identical
    // at every shard count (`topk_join_sharded`'s guarantee).
    let shards_requested = params.shards.max(1);
    // Shard clamp (`JointParams::clamp_shards`): more shards than cores
    // is pure overhead. The floor of 2 matters for semantics, not speed:
    // `shards == 1` re-enables the overlap DB, so clamping a sharded
    // request all the way to 1 on a small machine would change which
    // score path runs — and with it the output — by host. Keeping a
    // sharded request at ≥ 2 shards preserves the reuse-off contract,
    // and sharded results are bit-identical at every shard count.
    let shards = if params.clamp_shards && shards_requested > 1 {
        let cores = std::thread::available_parallelism().map_or(shards_requested, |p| p.get());
        shards_requested.min(cores.max(2))
    } else {
        shards_requested
    };
    mc_obs::gauge!("mc.core.joint.shards_effective").set(shards as i64);
    if shards < shards_requested {
        mc_obs::counter!("mc.core.joint.shards_clamped").inc();
    }
    let reuse = params.reuse_overlaps && shards == 1 && avg_len >= params.reuse_min_avg_tokens;

    // One overlap DB per writer (expanded) config.
    let mut dbs: Vec<Option<OverlapDb>> = (0..n).map(|_| None).collect();
    if reuse {
        for &w in &tree.writers() {
            dbs[w] = Some(OverlapDb::new(configs[w]));
        }
    }

    let threads = resolve_threads(params.threads, n);

    // q selection on the root config. With `Auto`, every prelude join
    // populates a pair → score cache over the root arenas; the root
    // config's main run consumes it (the preludes already paid for those
    // merges, and their scores are q-independent).
    let (root_a, root_b) = &arenas[0];
    let (q_used, score_cache) = match params.q {
        QStrategy::Fixed(q) => (q.max(1), None),
        QStrategy::Auto { max_q, prelude_k } => {
            let cache = ScoreCache::new();
            let q = select_q_cached(
                SsjInstance {
                    records_a: root_a,
                    records_b: root_b,
                    killed,
                },
                params.measure,
                max_q,
                prelude_k,
                Some(&cache),
            );
            (q, Some(cache))
        }
    };

    // A config's final sorted entries, set exactly once when its join
    // completes. Children *wait* on their parent's slot (when any reuse
    // is engaged) rather than peeking, which is what makes the output
    // schedule-independent — see the module docs.
    let finished: Vec<OnceLock<Vec<(f64, u64)>>> = (0..n).map(|_| OnceLock::new()).collect();
    let lists: Vec<Mutex<Option<TopKList>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let hits = AtomicUsize::new(0);
    let misses = AtomicUsize::new(0);

    // Under sharding, parallelism moves inside each join: one config at
    // a time, `threads` workers over its record-range shards. The
    // scratch pool is shared by every config's sharded join — building
    // a fresh `JoinScratch` per shard per config was the scale bench's
    // dominant allocation source (each scratch's dense postings index
    // is one `Vec` per token rank).
    let workers = if shards > 1 { 1 } else { threads };
    let scratch_pool = (shards > 1).then(|| JoinScratchPool::new(threads.clamp(1, shards)));

    mc_obs::gauge!("mc.core.joint.workers").set(threads as i64);
    mc_obs::gauge!("mc.core.joint.q_used").set(q_used as i64);
    let obs = mc_obs::ObsContext::current();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let _obs = obs.attach();
                // Per-thread work statistics, flushed when the worker
                // retires. The join scratch is reused across every config
                // this worker processes, so steady state allocates
                // nothing.
                let mut my_configs = 0u64;
                let mut my_seeded = 0u64;
                let mut scratch = JoinScratch::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let _config_span = mc_obs::span!("mc.core.joint.config", i as u64);
                    my_configs += 1;
                    let config = configs[i];
                    let (records_a, records_b) = &arenas[i];
                    let parent = tree.parent(i);
                    let parent_db = parent.and_then(|p| dbs[p].as_ref());
                    // Determinism gate: before consulting any parent
                    // state (overlap DB or top-k seed), block until the
                    // parent config has fully finished. Its DB is
                    // populated strictly before its `finished` slot is
                    // set, so after the wait every read is against
                    // complete, frozen state.
                    let parent_final: Option<&Vec<(f64, u64)>> = match parent {
                        Some(p) if params.reuse_topk || parent_db.is_some() => {
                            Some(finished[p].wait())
                        }
                        _ => None,
                    };
                    let parent_slots = parent_db.map_or_else(Vec::new, |db| {
                        config
                            .positions()
                            .iter()
                            .map(|f| {
                                db.attrs()
                                    .iter()
                                    .position(|a| a == f)
                                    .expect("child ⊆ parent")
                            })
                            .collect()
                    });
                    let bitmaps = match params.kernel {
                        SsjKernel::Scalar => None,
                        SsjKernel::Bitmap { bits } => {
                            let bound = records_a.rank_bound().max(records_b.rank_bound());
                            Some((
                                BitmapIndex::build(records_a, bound, bits),
                                BitmapIndex::build(records_b, bound, bits),
                            ))
                        }
                    };
                    let bitmap_refs = bitmaps.as_ref().map(|(x, y)| (x, y));
                    let scorer = ReuseScorer {
                        measure: params.measure,
                        parent_db,
                        parent_slots: parent_slots.clone(),
                        own_db: dbs[i].as_ref(),
                        // The prelude cache is keyed on the *root* arenas,
                        // so only the root config may consume it.
                        score_cache: if i == 0 { score_cache.as_ref() } else { None },
                        my_attrs: config.positions(),
                        tok_a,
                        tok_b,
                        hits: Cell::new(0),
                        misses: Cell::new(0),
                        cells_scratch: RefCell::new(CellsScratch::default()),
                        bound_memo: RefCell::new(BoundMemo::default()),
                        bitmaps: bitmap_refs,
                    };
                    // Top-k seeding: adopt the parent's finished list,
                    // re-scored under this config.
                    let seed: Vec<(f64, u64)> = if params.reuse_topk {
                        parent_final
                            .map(|entries| {
                                entries
                                    .iter()
                                    .map(|&(_, key)| {
                                        let (a, b) = split_pair_key(key);
                                        let s = scorer.score(
                                            a,
                                            b,
                                            records_a.record(a),
                                            records_b.record(b),
                                        );
                                        (s, key)
                                    })
                                    .collect()
                            })
                            .unwrap_or_default()
                    } else {
                        Vec::new()
                    };
                    my_seeded += seed.len() as u64;
                    let inst = SsjInstance {
                        records_a,
                        records_b,
                        killed,
                    };
                    let ssj_params = SsjParams {
                        k: params.k,
                        q: q_used,
                        measure: params.measure,
                    };
                    let list = if shards > 1 {
                        topk_join_sharded(
                            inst,
                            ssj_params,
                            |_| ShardScorer {
                                inner: ReuseScorer {
                                    measure: params.measure,
                                    parent_db,
                                    parent_slots: parent_slots.clone(),
                                    own_db: dbs[i].as_ref(),
                                    score_cache: if i == 0 { score_cache.as_ref() } else { None },
                                    my_attrs: config.positions(),
                                    tok_a,
                                    tok_b,
                                    hits: Cell::new(0),
                                    misses: Cell::new(0),
                                    cells_scratch: RefCell::new(CellsScratch::default()),
                                    bound_memo: RefCell::new(BoundMemo::default()),
                                    bitmaps: bitmap_refs,
                                },
                                hits: &hits,
                                misses: &misses,
                            },
                            &seed,
                            None,
                            shards,
                            threads,
                            scratch_pool.as_ref(),
                        )
                    } else {
                        topk_join_with_scratch(inst, ssj_params, &scorer, &seed, None, &mut scratch)
                    };
                    hits.fetch_add(scorer.hits.get(), Ordering::Relaxed);
                    misses.fetch_add(scorer.misses.get(), Ordering::Relaxed);
                    finished[i]
                        .set(list.sorted_entries())
                        .expect("each config finishes exactly once");
                    *lists[i].lock() = Some(list);
                }
                mc_obs::counter!("mc.core.joint.configs_executed").add(my_configs);
                mc_obs::counter!("mc.core.joint.seeded_pairs").add(my_seeded);
                mc_obs::histogram!("mc.core.joint.configs_per_thread").record(my_configs);
            });
        }
    });
    mc_obs::counter!("mc.core.joint.reuse_hits").add(hits.load(Ordering::Relaxed) as u64);
    mc_obs::counter!("mc.core.joint.reuse_misses").add(misses.load(Ordering::Relaxed) as u64);

    JointOutput {
        configs,
        lists: lists
            .into_iter()
            .map(|m| m.into_inner().expect("all configs ran"))
            .collect(),
        reuse_hits: hits.into_inner(),
        reuse_misses: misses.into_inner(),
        q_used,
    }
}

/// Baseline for the §6.5 ablation: each config executed independently
/// (no overlap DB, no list seeding) on a single thread with the exact
/// scorer.
pub fn run_individual(
    tok_a: &TokenizedTable,
    tok_b: &TokenizedTable,
    killed: &PairSet,
    tree: &ConfigTree,
    k: usize,
    measure: SetMeasure,
) -> JointOutput {
    let _span = mc_obs::span!("mc.core.joint.run_individual");
    let configs = tree.configs();
    let scorer = ExactScorer(measure);
    let mut scratch = JoinScratch::new();
    let lists: Vec<TopKList> = configs
        .iter()
        .map(|&config| {
            let idx = config.positions();
            let records_a = RecordArena::from_tokenized(tok_a, &idx);
            let records_b = RecordArena::from_tokenized(tok_b, &idx);
            topk_join_with_scratch(
                SsjInstance {
                    records_a: &records_a,
                    records_b: &records_b,
                    killed,
                },
                SsjParams { k, q: 1, measure },
                &scorer,
                &[],
                None,
                &mut scratch,
            )
        })
        .collect();
    JointOutput {
        configs,
        lists,
        reuse_hits: 0,
        reuse_misses: 0,
        q_used: 1,
    }
}

/// The union `E` of all top-k lists: `(pair key, per-config scores)` with
/// `None` where a pair is absent from a config's list. Order of pairs is
/// deterministic (descending best score, then key).
pub struct CandidateUnion {
    /// Pair keys.
    pub pairs: Vec<u64>,
    /// `scores[c][i]` = score of `pairs[i]` in config `c`'s list.
    pub scores: Vec<Vec<Option<f64>>>,
}

impl CandidateUnion {
    /// Builds the union from per-config lists.
    pub fn build(lists: &[TopKList]) -> Self {
        // `sorted_entries` re-sorts the list's heap on every call — do it
        // exactly once per list and reuse for both passes.
        let entries: Vec<Vec<(f64, u64)>> = lists.iter().map(|l| l.sorted_entries()).collect();
        let mut best: FxHashMap<u64, f64> = FxHashMap::default();
        for l in &entries {
            for &(s, p) in l {
                let e = best.entry(p).or_insert(f64::MIN);
                if s > *e {
                    *e = s;
                }
            }
        }
        let mut pairs: Vec<(f64, u64)> = best.into_iter().map(|(p, s)| (s, p)).collect();
        pairs.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let pairs: Vec<u64> = pairs.into_iter().map(|(_, p)| p).collect();
        let index: FxHashMap<u64, usize> = pairs.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        let mut scores = vec![vec![None; pairs.len()]; lists.len()];
        for (c, l) in entries.iter().enumerate() {
            for &(s, p) in l {
                scores[c][index[&p]] = Some(s);
            }
        }
        CandidateUnion { pairs, scores }
    }

    /// Number of candidate pairs `|E|`.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if no candidates were retrieved.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ConfigGenerator, ConfigGeneratorParams, PromisingAttrs};
    use mc_strsim::tokenize::Tokenizer;
    use mc_table::{AttrId, Schema, Table, Tuple};
    use std::sync::Arc as StdArc;

    /// Builds a small synthetic pair of tables with 3 promising attrs and
    /// *disjoint per-attribute vocabularies* (so decomposed == exact).
    fn fixture() -> (Table, Table) {
        let schema = StdArc::new(Schema::from_names(["x", "y", "z"]));
        let mut a = Table::new("A", StdArc::clone(&schema));
        let mut b = Table::new("B", schema);
        for i in 0..60u32 {
            a.push(Tuple::from_present([
                format!("xa{} xb{} xc{}", i, i % 7, i % 3),
                format!("ya{} yb{}", i % 5, i),
                format!("za{} zb{} zc{} zd{}", i, i % 2, i % 11, i % 4),
            ]));
            b.push(Tuple::from_present([
                format!("xa{} xb{} xq{}", i, i % 7, i % 4),
                format!("ya{} yb{}", i % 5, i),
                format!("za{} zb{} zq{} zd{}", i, i % 2, i % 5, i % 4),
            ]));
        }
        (a, b)
    }

    fn tree_for(a: &Table, b: &Table) -> (TokenizedTable, TokenizedTable, ConfigTree) {
        let generator = ConfigGenerator::new(ConfigGeneratorParams::default());
        let promising = generator.promising(a, b);
        let tree = generator.build_tree(&promising);
        let (ta, tb, _) = TokenizedTable::build_pair(a, b, &promising.attrs, Tokenizer::Word);
        (ta, tb, tree)
    }

    #[test]
    fn joint_equals_individual_lists() {
        let (a, b) = fixture();
        let (ta, tb, tree) = tree_for(&a, &b);
        let killed = PairSet::new();
        let joint = run_joint(
            &ta,
            &tb,
            &killed,
            &tree,
            JointParams {
                k: 20,
                threads: 1,
                reuse_min_avg_tokens: 0.0, // force reuse on
                ..Default::default()
            },
        );
        let indiv = run_individual(&ta, &tb, &killed, &tree, 20, SetMeasure::Jaccard);
        assert_eq!(joint.lists.len(), indiv.lists.len());
        for (c, (jl, il)) in joint.lists.iter().zip(&indiv.lists).enumerate() {
            let js = jl.sorted_scores();
            let is = il.sorted_scores();
            assert_eq!(js.len(), is.len(), "config {c}");
            for (x, y) in js.iter().zip(&is) {
                assert!((x - y).abs() < 1e-9, "config {c}: {x} vs {y}");
            }
        }
        assert!(joint.reuse_hits > 0, "reuse should fire on the subtree");
    }

    #[test]
    fn joint_without_reuse_matches_too() {
        let (a, b) = fixture();
        let (ta, tb, tree) = tree_for(&a, &b);
        let killed = PairSet::new();
        let joint = run_joint(
            &ta,
            &tb,
            &killed,
            &tree,
            JointParams {
                k: 15,
                threads: 2,
                reuse_overlaps: false,
                reuse_topk: false,
                ..Default::default()
            },
        );
        let indiv = run_individual(&ta, &tb, &killed, &tree, 15, SetMeasure::Jaccard);
        for (jl, il) in joint.lists.iter().zip(&indiv.lists) {
            assert_eq!(jl.sorted_scores(), il.sorted_scores());
        }
        assert_eq!(joint.reuse_hits, 0);
    }

    #[test]
    fn killed_pairs_never_appear() {
        let (a, b) = fixture();
        let (ta, tb, tree) = tree_for(&a, &b);
        // Kill the identity pairs.
        let mut killed = PairSet::new();
        for i in 0..60u32 {
            killed.insert(i, i);
        }
        let joint = run_joint(
            &ta,
            &tb,
            &killed,
            &tree,
            JointParams {
                k: 50,
                ..Default::default()
            },
        );
        for l in &joint.lists {
            for (_, key) in l.sorted_entries() {
                let (x, y) = split_pair_key(key);
                assert_ne!(x, y, "killed pair leaked into a top-k list");
            }
        }
    }

    #[test]
    fn results_are_thread_count_invariant() {
        // Parent-gated reuse plus deterministic q selection make the
        // output *bit-identical* across worker counts: same q, same
        // pairs, same f64 score bits — with every reuse mechanism on
        // and q chosen empirically.
        let (a, b) = fixture();
        let (ta, tb, tree) = tree_for(&a, &b);
        let killed = PairSet::new();
        type RunBits = (usize, Vec<Vec<(u64, u64)>>);
        let runs: Vec<RunBits> = [1usize, 2, 4]
            .iter()
            .map(|&threads| {
                let out = run_joint(
                    &ta,
                    &tb,
                    &killed,
                    &tree,
                    JointParams {
                        k: 12,
                        threads,
                        q: QStrategy::Auto {
                            max_q: 3,
                            prelude_k: 5,
                        },
                        reuse_min_avg_tokens: 0.0,
                        ..Default::default()
                    },
                );
                let lists: Vec<Vec<(u64, u64)>> = out
                    .lists
                    .iter()
                    .map(|l| {
                        l.sorted_entries()
                            .into_iter()
                            .map(|(s, key)| (s.to_bits(), key))
                            .collect()
                    })
                    .collect();
                (out.q_used, lists)
            })
            .collect();
        for (threads, other) in [2usize, 4].iter().zip(&runs[1..]) {
            assert_eq!(runs[0].0, other.0, "q_used differs at {threads} threads");
            assert_eq!(
                runs[0].1, other.1,
                "lists not bit-identical at {threads} threads"
            );
        }
    }

    /// Bit patterns of every list of a run (q_used + score bits + keys).
    fn run_bits(out: &JointOutput) -> (usize, Vec<Vec<(u64, u64)>>) {
        (
            out.q_used,
            out.lists
                .iter()
                .map(|l| {
                    l.sorted_entries()
                        .into_iter()
                        .map(|(s, key)| (s.to_bits(), key))
                        .collect()
                })
                .collect(),
        )
    }

    #[test]
    fn sharded_runs_are_bit_identical_across_shards_and_kernels() {
        let (a, b) = fixture();
        let (ta, tb, tree) = tree_for(&a, &b);
        let killed = PairSet::new();
        // Sharding forces the overlap DB off, so the reference is the
        // reuse-off unsharded run.
        let base = run_joint(
            &ta,
            &tb,
            &killed,
            &tree,
            JointParams {
                k: 15,
                threads: 2,
                reuse_overlaps: false,
                ..Default::default()
            },
        );
        let base_bits = run_bits(&base);
        for shards in [2usize, 4, 16] {
            for kernel in [
                SsjKernel::Scalar,
                SsjKernel::bitmap(),
                SsjKernel::Bitmap { bits: 7 },
            ] {
                for threads in [1usize, 3] {
                    let out = run_joint(
                        &ta,
                        &tb,
                        &killed,
                        &tree,
                        JointParams {
                            k: 15,
                            threads,
                            shards,
                            kernel,
                            reuse_overlaps: false,
                            ..Default::default()
                        },
                    );
                    assert_eq!(
                        base_bits,
                        run_bits(&out),
                        "shards={shards} kernel={kernel:?} threads={threads}"
                    );
                }
            }
        }
        // A sharded run with reuse_overlaps=true behaves identically:
        // the flag is forced off under sharding.
        let forced = run_joint(
            &ta,
            &tb,
            &killed,
            &tree,
            JointParams {
                k: 15,
                shards: 4,
                reuse_overlaps: true,
                reuse_min_avg_tokens: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(base_bits, run_bits(&forced));
        assert_eq!(forced.reuse_hits, 0, "overlap DB must stay off");
    }

    #[test]
    fn bitmap_kernel_is_bit_identical_with_reuse_on() {
        let (a, b) = fixture();
        let (ta, tb, tree) = tree_for(&a, &b);
        let killed = PairSet::new();
        let mk = |kernel| {
            run_joint(
                &ta,
                &tb,
                &killed,
                &tree,
                JointParams {
                    k: 20,
                    threads: 2,
                    kernel,
                    reuse_min_avg_tokens: 0.0, // force reuse on
                    q: QStrategy::Auto {
                        max_q: 3,
                        prelude_k: 5,
                    },
                    ..Default::default()
                },
            )
        };
        let scalar = mk(SsjKernel::Scalar);
        let bitmap = mk(SsjKernel::bitmap());
        assert_eq!(run_bits(&scalar), run_bits(&bitmap));
    }

    #[test]
    fn overlap_db_roundtrip() {
        let db = OverlapDb::new(Config::from_positions([0, 2]));
        assert_eq!(db.attrs(), &[0, 2]);
        assert!(db.is_empty());
        let cells: Arc<[u32]> = vec![1, 2, 3, 4].into();
        db.insert(42, Arc::clone(&cells));
        assert_eq!(db.get(42).as_deref(), Some(&[1u32, 2, 3, 4][..]));
        // Insert-only: second write is ignored.
        db.insert(42, vec![9, 9, 9, 9].into());
        assert_eq!(db.get(42).as_deref(), Some(&[1u32, 2, 3, 4][..]));
        assert_eq!(db.len(), 1);
        assert_eq!(db.get(7), None);
    }

    #[test]
    fn overlap_db_concurrent_insert_get() {
        // 8 threads hammer the same key range; insert-only semantics mean
        // whoever wins a key, every reader sees the same (key-derived)
        // value, and the map never tears or loses entries.
        let db = OverlapDb::new(Config::from_positions([0]));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let db = &db;
                s.spawn(move || {
                    for i in 0..500u64 {
                        db.insert(i, vec![i as u32].into());
                        let got = db.get(i).expect("key just inserted");
                        assert_eq!(got.as_ref(), &[i as u32]);
                    }
                });
            }
        });
        assert_eq!(db.len(), 500);
        let (hits, misses, inserts) = db.stats();
        assert_eq!(hits, 8 * 500, "every get after insert must hit");
        assert_eq!(misses, 0);
        assert_eq!(inserts, 500, "first writer wins exactly once per key");
    }

    #[test]
    fn overlap_db_counters_match_independent_count() {
        // Replay a deterministic workload against a plain HashSet model
        // and check the db's hit/miss/insert counters agree exactly.
        let db = OverlapDb::new(Config::from_positions([0]));
        let mut model = std::collections::HashSet::new();
        let (mut hits, mut misses, mut inserts) = (0u64, 0u64, 0u64);
        for i in 0..200u64 {
            let key = (i * 7) % 40;
            if model.contains(&key) {
                hits += 1;
            } else {
                misses += 1;
            }
            let _ = db.get(key);
            if model.insert(key) {
                inserts += 1;
            }
            db.insert(key, vec![key as u32].into());
        }
        assert_eq!(db.stats(), (hits, misses, inserts));
        assert_eq!(db.len(), model.len());
    }

    #[test]
    fn pair_keys_never_alias_distinct_pairs() {
        // `pair_key` packs (a, b) losslessly into 32+32 bits, so
        // `split_pair_key` inverts it exactly and two distinct pairs can
        // never collide on the same OverlapDb key — only on the same
        // *shard*, which must still keep them separate.
        use mc_table::pair_key;
        for a in [0u32, 1, 7, 12345, u32::MAX] {
            for b in [0u32, 2, 9, 54321, u32::MAX] {
                assert_eq!(split_pair_key(pair_key(a, b)), (a, b));
            }
        }
        assert_ne!(pair_key(1, 2), pair_key(2, 1), "order matters");
        let db = OverlapDb::new(Config::from_positions([0]));
        // DB_SHARDS = 64, so keys 0 and 64·n land wherever the hash sends
        // them; insert far more keys than shards to force co-residency.
        for k in 0..256u64 {
            db.insert(k, vec![k as u32].into());
        }
        for k in 0..256u64 {
            assert_eq!(db.get(k).unwrap().as_ref(), &[k as u32]);
        }
        assert_eq!(db.len(), 256);
    }

    #[test]
    fn candidate_union_collects_all_lists() {
        let mut l1 = TopKList::new(3);
        l1.insert(0.9, 10);
        l1.insert(0.5, 20);
        let mut l2 = TopKList::new(3);
        l2.insert(0.7, 20);
        l2.insert(0.6, 30);
        let e = CandidateUnion::build(&[l1, l2]);
        assert_eq!(e.len(), 3);
        // Ordered by best score: 10 (0.9), 20 (0.7), 30 (0.6).
        assert_eq!(e.pairs, vec![10, 20, 30]);
        assert_eq!(e.scores[0][0], Some(0.9));
        assert_eq!(e.scores[0][1], Some(0.5));
        assert_eq!(e.scores[0][2], None);
        assert_eq!(e.scores[1][1], Some(0.7));
    }

    #[test]
    fn auto_q_runs() {
        let (a, b) = fixture();
        let (ta, tb, tree) = tree_for(&a, &b);
        let killed = PairSet::new();
        let out = run_joint(
            &ta,
            &tb,
            &killed,
            &tree,
            JointParams {
                k: 10,
                q: QStrategy::Auto {
                    max_q: 3,
                    prelude_k: 5,
                },
                ..Default::default()
            },
        );
        assert!((1..=3).contains(&out.q_used));
        assert_eq!(out.lists.len(), tree.len());
    }

    #[test]
    fn fused_cells_match_reference_and_exact_overlap() {
        // Cross-attribute token repeats included ("p" and "t" appear in
        // both attributes of one tuple) — the fused pass must agree with
        // the reference m×m merges cell-for-cell, and its overlap must
        // equal the merged records' exact multiset overlap.
        let schema = StdArc::new(Schema::from_names(["u", "v"]));
        let mut a = Table::new("A", StdArc::clone(&schema));
        a.push(Tuple::from_present(["p q r p", "s t p"]));
        a.push(Tuple::from_present(["q", "q q t"]));
        let mut b = Table::new("B", schema);
        b.push(Tuple::from_present(["p q t", "t u v p"]));
        b.push(Tuple::from_present(["", "q t"]));
        let attrs = [AttrId(0), AttrId(1)];
        let (ta, tb, _) = TokenizedTable::build_pair(&a, &b, &attrs, Tokenizer::Word);
        let all = [0usize, 1];
        for x in 0..2u32 {
            for y in 0..2u32 {
                let ra = ta.merged(&all, x);
                let rb = tb.merged(&all, y);
                let mut scratch = CellsScratch::default();
                let reference = compute_cells(&all, &ta, &tb, x, y);
                let o = compute_cells_merged(&mut scratch, &all, &ta, &tb, x, y, &ra, &rb);
                assert_eq!(&scratch.cells[..], &reference[..], "pair ({x},{y})");
                assert_eq!(o, multiset_overlap(&ra, &rb), "pair ({x},{y})");
                // Single-attribute fast path against its own reference
                // (same scratch, exercising buffer reuse across pairs).
                for sub in [[0usize], [1usize]] {
                    let ra1 = ta.merged(&sub, x);
                    let rb1 = tb.merged(&sub, y);
                    let r1 = compute_cells(&sub, &ta, &tb, x, y);
                    let o1 = compute_cells_merged(&mut scratch, &sub, &ta, &tb, x, y, &ra1, &rb1);
                    assert_eq!(&scratch.cells[..], &r1[..]);
                    assert_eq!(o1, multiset_overlap(&ra1, &rb1));
                }
            }
        }
    }

    #[test]
    fn compute_cells_matches_direct_overlap() {
        let schema = StdArc::new(Schema::from_names(["u", "v"]));
        let mut a = Table::new("A", StdArc::clone(&schema));
        a.push(Tuple::from_present(["p q r", "s t"]));
        let mut b = Table::new("B", schema);
        b.push(Tuple::from_present(["p q", "t u v"]));
        let attrs = [AttrId(0), AttrId(1)];
        let (ta, tb, _) = TokenizedTable::build_pair(&a, &b, &attrs, Tokenizer::Word);
        let cells = compute_cells(&[0, 1], &ta, &tb, 0, 0);
        // o(u,u)=2 (p,q), o(u,v)=0, o(v,u)=0, o(v,v)=1 (t)
        assert_eq!(&cells[..], &[2, 0, 0, 1]);
        let _ = PromisingAttrs {
            attrs: attrs.to_vec(),
            e_scores: vec![1.0, 1.0],
            avg_tokens_a: vec![3.0, 2.0],
            avg_tokens_b: vec![2.0, 3.0],
        };
    }
}

//! Pervasiveness analysis — the paper's §8 future work, implemented.
//!
//! "When fixing a problem affecting a killed-off match, the user may want
//! to know how pervasive this problem is (and focus on fixing the most
//! pervasive ones first). For this purpose, given a killed-off match, we
//! plan to develop a method to find all tuple pairs that are similar to
//! that match (from a blocking point of view)."
//!
//! Two pairs are *blocking-similar* when the same attributes disagree in
//! the same way: we reduce each pair to its **problem signature** — the
//! set of `(attribute, diagnosis class)` disagreements — and group the
//! candidate union `E` by signature. The report then says, e.g., "the
//! city-abbreviation problem that killed (a1, b1) affects 17 more
//! candidate pairs, 9 of them confirmed matches".

use crate::explain::{diagnose_values, Diagnosis};
use crate::joint::CandidateUnion;
use mc_table::hash::FxHashMap;
use mc_table::{split_pair_key, AttrId, Schema, Table, TupleId};

/// A coarse diagnosis class for signatures (the exact edit distance of a
/// misspelling is irrelevant to pervasiveness grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProblemClass {
    /// Missing value(s).
    Missing,
    /// Abbreviated value.
    Abbreviation,
    /// Misspelled value (small edit distance).
    Misspelling,
    /// Extra or dropped tokens / word reorder.
    TokenNoise,
    /// Numeric drift.
    Numeric,
    /// Substantially different values.
    Different,
}

impl ProblemClass {
    /// Collapses a [`Diagnosis`] into a problem class; agreements map to
    /// `None`.
    pub fn from_diagnosis(d: Diagnosis) -> Option<ProblemClass> {
        match d {
            Diagnosis::Exact | Diagnosis::CaseOrPunct => None,
            Diagnosis::MissingOneSide | Diagnosis::MissingBoth => Some(ProblemClass::Missing),
            Diagnosis::Abbreviation => Some(ProblemClass::Abbreviation),
            Diagnosis::SmallEdit(_) => Some(ProblemClass::Misspelling),
            Diagnosis::TokenSubset | Diagnosis::WordReorder => Some(ProblemClass::TokenNoise),
            Diagnosis::NumericClose => Some(ProblemClass::Numeric),
            Diagnosis::Different => Some(ProblemClass::Different),
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            ProblemClass::Missing => "missing value",
            ProblemClass::Abbreviation => "abbreviation",
            ProblemClass::Misspelling => "misspelling",
            ProblemClass::TokenNoise => "extra/missing/reordered tokens",
            ProblemClass::Numeric => "numeric drift",
            ProblemClass::Different => "different values",
        }
    }
}

/// The problem signature of a pair: its attribute-level disagreements,
/// sorted for canonical comparison.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Signature(Vec<(AttrId, ProblemClass)>);

impl Signature {
    /// Computes the signature of `(aid, bid)`.
    pub fn of(a: &Table, b: &Table, aid: TupleId, bid: TupleId) -> Signature {
        let mut v: Vec<(AttrId, ProblemClass)> = a
            .schema()
            .attr_ids()
            .filter_map(|attr| {
                ProblemClass::from_diagnosis(diagnose_values(
                    a.value(aid, attr),
                    b.value(bid, attr),
                ))
                .map(|c| (attr, c))
            })
            .collect();
        v.sort_unstable();
        Signature(v)
    }

    /// Builds a signature from already-collected disagreements, sorting
    /// into the same canonical form as [`Signature::of`]. This is the
    /// batch-kernel entry point: `DiagnosisKernel` collects per-attribute
    /// problem classes columnwise and canonicalizes here.
    pub fn from_problems(mut v: Vec<(AttrId, ProblemClass)>) -> Signature {
        v.sort_unstable();
        Signature(v)
    }

    /// The disagreements in this signature.
    pub fn problems(&self) -> &[(AttrId, ProblemClass)] {
        &self.0
    }

    /// True if this signature has no disagreements (a clean pair).
    pub fn is_clean(&self) -> bool {
        self.0.is_empty()
    }

    /// True if `other` exhibits every problem in `self` (so fixing
    /// `self`'s problems is *necessary* to keep `other`, too).
    pub fn is_subsignature_of(&self, other: &Signature) -> bool {
        self.0.iter().all(|p| other.0.contains(p))
    }

    /// Renders the signature ("abbreviation in city + missing value in
    /// phone").
    pub fn describe(&self, schema: &Schema) -> String {
        if self.0.is_empty() {
            return "no attribute-level problems".to_string();
        }
        self.0
            .iter()
            .map(|(attr, c)| format!("{} in \"{}\"", c.label(), schema.name(*attr)))
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

/// One group of blocking-similar candidate pairs.
#[derive(Debug, Clone)]
pub struct ProblemGroup {
    /// The shared signature.
    pub signature: Signature,
    /// Candidate pairs exhibiting it (from `E`).
    pub pairs: Vec<(TupleId, TupleId)>,
    /// Of those, how many are confirmed matches (when a confirmed set is
    /// supplied).
    pub confirmed: usize,
}

/// Groups the candidate union by problem signature, most pervasive first.
///
/// `confirmed` is the set of pairs the user has already confirmed as
/// matches (may be empty); it refines the per-group counts.
pub fn pervasiveness(
    a: &Table,
    b: &Table,
    union: &CandidateUnion,
    confirmed: &[(TupleId, TupleId)],
) -> Vec<ProblemGroup> {
    let confirmed_set: std::collections::HashSet<(TupleId, TupleId)> =
        confirmed.iter().copied().collect();
    let mut groups: FxHashMap<Signature, ProblemGroup> = FxHashMap::default();
    for &key in &union.pairs {
        let (x, y) = split_pair_key(key);
        let sig = Signature::of(a, b, x, y);
        if sig.is_clean() {
            continue;
        }
        let g = groups.entry(sig.clone()).or_insert_with(|| ProblemGroup {
            signature: sig,
            pairs: Vec::new(),
            confirmed: 0,
        });
        if confirmed_set.contains(&(x, y)) {
            g.confirmed += 1;
        }
        g.pairs.push((x, y));
    }
    let mut out: Vec<ProblemGroup> = groups.into_values().collect();
    out.sort_by(|x, y| {
        y.confirmed
            .cmp(&x.confirmed)
            .then(y.pairs.len().cmp(&x.pairs.len()))
            .then(x.signature.cmp(&y.signature))
    });
    out
}

/// For a single killed-off match, the candidate pairs sharing (at least)
/// its problems — "find all tuple pairs that are similar to that match".
pub fn similar_pairs(
    a: &Table,
    b: &Table,
    union: &CandidateUnion,
    killed_match: (TupleId, TupleId),
) -> Vec<(TupleId, TupleId)> {
    let target = Signature::of(a, b, killed_match.0, killed_match.1);
    union
        .pairs
        .iter()
        .map(|&key| split_pair_key(key))
        .filter(|&(x, y)| {
            (x, y) != killed_match && target.is_subsignature_of(&Signature::of(a, b, x, y))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssj::TopKList;
    use mc_table::{pair_key, Schema, Tuple};
    use std::sync::Arc;

    fn tables() -> (Table, Table) {
        let schema = Arc::new(Schema::from_names(["name", "city"]));
        let mut a = Table::new("A", Arc::clone(&schema));
        a.push(Tuple::from_present(["dave smith", "new york"])); // 0
        a.push(Tuple::from_present(["joe welson", "new york"])); // 1
        a.push(Tuple::from_present(["ann cole", "chicago"])); // 2
        let mut b = Table::new("B", schema);
        b.push(Tuple::from_present(["dave smith", "ny"])); // 0: city abbrev
        b.push(Tuple::from_present(["joe welson", "ny"])); // 1: city abbrev
        b.push(Tuple::from_present(["ann colle", "chicago"])); // 2: misspelled name
        (a, b)
    }

    fn union_of(pairs: &[(u32, u32)]) -> CandidateUnion {
        let mut l = TopKList::new(16);
        for (i, &(x, y)) in pairs.iter().enumerate() {
            l.insert(0.9 - i as f64 * 0.01, pair_key(x, y));
        }
        CandidateUnion::build(&[l])
    }

    #[test]
    fn signatures_capture_problem_classes() {
        let (a, b) = tables();
        let s = Signature::of(&a, &b, 0, 0);
        assert_eq!(s.problems().len(), 1);
        assert_eq!(s.problems()[0].1, ProblemClass::Abbreviation);
        let s2 = Signature::of(&a, &b, 2, 2);
        assert_eq!(s2.problems()[0].1, ProblemClass::Misspelling);
        // Identical tuples → clean signature.
        let clean = Signature::of(&a, &a_clone(&a), 0, 0);
        assert!(clean.is_clean());
    }

    fn a_clone(a: &Table) -> Table {
        a.clone()
    }

    #[test]
    fn pervasiveness_groups_by_signature() {
        let (a, b) = tables();
        let union = union_of(&[(0, 0), (1, 1), (2, 2)]);
        let groups = pervasiveness(&a, &b, &union, &[(0, 0)]);
        // Two groups: city-abbreviation (2 pairs, 1 confirmed) and
        // name-misspelling (1 pair).
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].pairs.len(), 2);
        assert_eq!(groups[0].confirmed, 1);
        assert!(groups[0]
            .signature
            .describe(a.schema())
            .contains("abbreviation"));
    }

    #[test]
    fn similar_pairs_shares_problems() {
        let (a, b) = tables();
        let union = union_of(&[(0, 0), (1, 1), (2, 2)]);
        let sim = similar_pairs(&a, &b, &union, (0, 0));
        assert_eq!(sim, vec![(1, 1)]); // same city-abbreviation problem
    }

    #[test]
    fn subsignature_logic() {
        let (a, b) = tables();
        let s1 = Signature::of(&a, &b, 0, 0); // city abbreviation
        let s2 = Signature::of(&a, &b, 0, 2); // name+city both differ
        assert!(!s2.is_subsignature_of(&s1));
        assert!(Signature::default().is_subsignature_of(&s1));
    }

    #[test]
    fn problem_class_mapping() {
        assert_eq!(ProblemClass::from_diagnosis(Diagnosis::Exact), None);
        assert_eq!(ProblemClass::from_diagnosis(Diagnosis::CaseOrPunct), None);
        assert_eq!(
            ProblemClass::from_diagnosis(Diagnosis::SmallEdit(2)),
            Some(ProblemClass::Misspelling)
        );
        assert_eq!(
            ProblemClass::from_diagnosis(Diagnosis::MissingOneSide),
            Some(ProblemClass::Missing)
        );
        for c in [
            ProblemClass::Missing,
            ProblemClass::Abbreviation,
            ProblemClass::Misspelling,
            ProblemClass::TokenNoise,
            ProblemClass::Numeric,
            ProblemClass::Different,
        ] {
            assert!(!c.label().is_empty());
        }
    }
}

//! Top-k string similarity joins (§4.1 of the paper).
//!
//! Given two collections of token-rank records, find the `k` cross-table
//! pairs with the highest set-similarity score **that are not in the
//! blocker output `C`** — without a threshold, in a branch-and-bound
//! fashion:
//!
//! * every record exposes a *prefix* that is extended one token at a time;
//! * extending record `w` to 1-indexed position `p` caps any newly
//!   discovered pair at `ubound(|w|, p)` (see
//!   [`mc_strsim::measures::SetMeasure::prefix_ubound`]);
//! * a max-heap of per-record caps drives extension order ("extend the
//!   prefix whose next token has the highest cap");
//! * the join stops when the best remaining cap cannot beat the current
//!   k-th score.
//!
//! **TopKJoin** \[34\] scores a pair the moment its prefixes first
//! intersect. The paper's **QJoin** defers scoring until a pair has
//! accumulated `q` common prefix tokens — score computation is the
//! dominant cost for long strings, and pairs sharing few tokens rarely
//! reach the top-k. `q = 1` reproduces TopKJoin exactly; `q > 1`
//! intentionally never scores pairs with fewer than `q` common tokens (a
//! documented approximation). To keep early termination admissible for
//! scored pairs, bounds carry a `q − 1` token *credit* for
//! discovered-but-unscored pairs.
//!
//! ## Data layout
//!
//! Records live in a flat [`RecordArena`] (one contiguous token buffer +
//! offsets) and tokens are dense dictionary ranks, so the inverted index
//! is a **`Vec`-indexed postings array** rather than a hash map, and
//! each posting carries the number of copies of its token the posting
//! record's prefix holds. Together with a per-record *current-token run
//! counter* this removes the two per-event `partition_point` binary
//! searches the occurrence check used to need: a record's own occurrence
//! count is maintained incrementally as its prefix extends, and a
//! partner's count is read straight off its posting. All per-join state
//! (positions, run counters, postings, pair states, the event heap)
//! lives in a reusable [`JoinScratch`] so that consecutive joins on one
//! worker allocate nothing in steady state.

use mc_strsim::arena::RecordArena;
use mc_strsim::measures::SetMeasure;
use mc_table::hash::{fx_map, hash_u64, FxHashMap};
use mc_table::{pair_key, split_pair_key, PairSet, TupleId};
use parking_lot::RwLock;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A totally ordered f64 wrapper (scores are never NaN).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Score(pub f64);

impl Eq for Score {}

impl PartialOrd for Score {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Score {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A bounded top-k list of `(score, pair)` entries.
///
/// Maintains the k highest-scoring pairs seen so far; the *threshold* is
/// the k-th best score once full (0 before), the join's pruning bar.
///
/// The kept set is **canonical**: entries are totally ordered by
/// `(score descending, pair key ascending)` — the same tie-break
/// [`select_q`] uses — and the list always holds the top k of everything
/// ever offered under that order, regardless of offer order. This is
/// what makes sharded joins mergeable bit-identically: each shard's list
/// and the merged list are pure functions of the offered pair sets, not
/// of event interleaving (see [`topk_join_sharded`]).
#[derive(Debug, Clone)]
pub struct TopKList {
    k: usize,
    /// Min-heap whose root is the *worst* entry under the canonical
    /// order: lowest score, and among equal scores the largest pair key
    /// (hence the inner `Reverse`). Eviction therefore removes the
    /// canonical minimum, independent of arrival order.
    heap: BinaryHeap<Reverse<(Score, Reverse<u64>)>>,
}

impl TopKList {
    /// An empty list with capacity `k`.
    pub fn new(k: usize) -> Self {
        TopKList::with_capacity_hint(k, 0)
    }

    /// An empty list with capacity `k`, pre-sized to hold at least
    /// `hint` entries up front (e.g. a seed list) so early inserts never
    /// reallocate.
    pub fn with_capacity_hint(k: usize, hint: usize) -> Self {
        assert!(k > 0, "k must be positive");
        // Pre-allocation is capped: callers may pass an effectively
        // unbounded k (e.g. brute-force references), and the heap grows
        // on demand anyway. The list never holds more than k entries, so
        // a hint beyond k is clamped.
        TopKList {
            k,
            heap: BinaryHeap::with_capacity(k.min(1 << 16).max(hint.min(k)) + 1),
        }
    }

    /// The capacity `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of entries currently held (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no entries are held.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The current pruning threshold: the k-th best score when full,
    /// otherwise 0.
    pub fn threshold(&self) -> f64 {
        if self.heap.len() == self.k {
            self.heap.peek().map_or(0.0, |Reverse((s, _))| s.0)
        } else {
            0.0
        }
    }

    /// The scorer gate: an offer can enter the list **iff** its score is
    /// strictly above this value. One ulp below [`TopKList::threshold`]
    /// once full, because a score exactly equal to the k-th best can
    /// still displace a larger pair key under the canonical tie-break —
    /// so `score > gate() ⟺ score ≥ threshold()`, and refuting at the
    /// gate never drops a tie the canonical order would have kept.
    pub fn gate(&self) -> f64 {
        if self.heap.len() == self.k {
            f64::next_down(self.threshold())
        } else {
            0.0
        }
    }

    /// Offers an entry; keeps it only if it canonically beats the worst
    /// held entry (or the list is not yet full). Scores ≤ 0 are never
    /// kept. At equal scores the smaller pair key wins, so the kept set
    /// never depends on offer order.
    pub fn insert(&mut self, score: f64, pair: u64) {
        if score <= 0.0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(Reverse((Score(score), Reverse(pair))));
        } else if let Some(&Reverse((worst, Reverse(worst_pair)))) = self.heap.peek() {
            if score > worst.0 || (score == worst.0 && pair < worst_pair) {
                self.heap.pop();
                self.heap.push(Reverse((Score(score), Reverse(pair))));
            }
        }
    }

    /// Merges another list into this one (used when a child config adopts
    /// its parent's re-scored list, §4.2).
    pub fn merge(&mut self, other: &TopKList) {
        for &Reverse((s, Reverse(p))) in other.heap.iter() {
            self.insert(s.0, p);
        }
    }

    /// Entries sorted by descending score (ties by ascending pair key, so
    /// output order is deterministic).
    pub fn sorted_entries(&self) -> Vec<(f64, u64)> {
        let mut v: Vec<(f64, u64)> = self
            .heap
            .iter()
            .map(|Reverse((s, Reverse(p)))| (s.0, *p))
            .collect();
        v.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        v
    }

    /// The scores only, descending.
    pub fn sorted_scores(&self) -> Vec<f64> {
        self.sorted_entries().into_iter().map(|(s, _)| s).collect()
    }
}

/// Parameters of a single top-k join.
#[derive(Debug, Clone, Copy)]
pub struct SsjParams {
    /// Number of pairs to retrieve.
    pub k: usize,
    /// Minimum common prefix tokens before a pair is scored. `1` =
    /// TopKJoin; the paper's QJoin selects `q` empirically (see
    /// [`select_q`]).
    pub q: usize,
    /// Similarity measure (Theorem 4.2: Jaccard, cosine, Dice, overlap).
    pub measure: SetMeasure,
}

impl Default for SsjParams {
    fn default() -> Self {
        SsjParams {
            k: 1000,
            q: 1,
            measure: SetMeasure::Jaccard,
        }
    }
}

/// The input of a join: both tables' records in flat arenas (sorted rank
/// slices) and the blocker output to exclude.
#[derive(Clone, Copy)]
pub struct SsjInstance<'a> {
    /// Records of table A (sorted rank slices in a flat arena).
    pub records_a: &'a RecordArena,
    /// Records of table B.
    pub records_b: &'a RecordArena,
    /// The blocker output `C`: pairs to exclude from the top-k list.
    pub killed: &'a PairSet,
}

/// How a threshold-gated scoring attempt resolved (see
/// [`PairScorer::score_above`]).
///
/// The split matters for the work counters: `Scored` is a completed full
/// merge (`mc.core.ssj.scored`), `Cached` reused a previously computed
/// value without a fresh merge, `Refuted` aborted the merge once the
/// score provably could not beat the gate (`mc.core.ssj.merge_aborts`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScoreOutcome {
    /// A full merge completed; the score is exact.
    Scored(f64),
    /// The exact score was obtained without a fresh merge (score cache or
    /// overlap-database hit).
    Cached(f64),
    /// The merge aborted: the score is provably `≤` the gate. A refuted
    /// pair can never enter the top-k list, so no score is produced.
    Refuted,
}

impl ScoreOutcome {
    /// The score, if one was produced.
    #[inline]
    pub fn value(self) -> Option<f64> {
        match self {
            ScoreOutcome::Scored(s) | ScoreOutcome::Cached(s) => Some(s),
            ScoreOutcome::Refuted => None,
        }
    }
}

/// Scores a pair given both records; the joint executor substitutes a
/// reuse-aware scorer here (§4.2).
///
/// Deliberately **not** `Sync`: every scorer is created and consumed on
/// a single worker thread, which lets implementations keep cheap
/// `Cell`-based statistics and `RefCell` scratch buffers instead of
/// atomics.
pub trait PairScorer {
    /// Similarity score of `(a, b)`.
    fn score(&self, a: TupleId, b: TupleId, ra: &[u32], rb: &[u32]) -> f64;

    /// Threshold-gated scoring: produces the exact score only when it is
    /// strictly above `gate` (the caller's top-k threshold), and may
    /// abort early — returning [`ScoreOutcome::Refuted`] — as soon as the
    /// score provably cannot beat it. Any score returned must be
    /// **bit-identical** to what [`PairScorer::score`] would produce, so
    /// gating never changes the resulting top-k list.
    ///
    /// The default falls back to ungated scoring.
    #[inline]
    fn score_above(
        &self,
        a: TupleId,
        b: TupleId,
        ra: &[u32],
        rb: &[u32],
        gate: f64,
    ) -> ScoreOutcome {
        let _ = gate;
        ScoreOutcome::Scored(self.score(a, b, ra, rb))
    }
}

/// The default scorer: exact multiset similarity of the merged records.
pub struct ExactScorer(pub SetMeasure);

impl PairScorer for ExactScorer {
    #[inline]
    fn score(&self, _a: TupleId, _b: TupleId, ra: &[u32], rb: &[u32]) -> f64 {
        self.0.score(ra, rb)
    }

    #[inline]
    fn score_above(
        &self,
        _a: TupleId,
        _b: TupleId,
        ra: &[u32],
        rb: &[u32],
        gate: f64,
    ) -> ScoreOutcome {
        match self.0.score_above(ra, rb, gate) {
            Some(s) => ScoreOutcome::Scored(s),
            None => ScoreOutcome::Refuted,
        }
    }
}

const CACHE_SHARDS: usize = 16;

/// A concurrent, insert-only pair → score cache shared by the `q`
/// preludes of [`select_q_cached`] and the winning `q`'s main run.
///
/// Set-measure scores are q-independent, so every pair a prelude scores
/// is a pair the main run would otherwise score again from scratch. The
/// preludes **insert only** — they never read the cache — so each
/// prelude's own work counters stay deterministic regardless of how the
/// prelude threads interleave; because scores are pure functions of the
/// pair, the cache's final contents after all preludes join are the
/// deterministic union of every prelude's scored pairs.
pub struct ScoreCache {
    shards: Vec<RwLock<FxHashMap<u64, f64>>>,
    hits: AtomicU64,
}

impl Default for ScoreCache {
    fn default() -> Self {
        ScoreCache::new()
    }
}

impl ScoreCache {
    /// An empty cache.
    pub fn new() -> Self {
        ScoreCache {
            shards: (0..CACHE_SHARDS).map(|_| RwLock::new(fx_map())).collect(),
            hits: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard(&self, key: u64) -> &RwLock<FxHashMap<u64, f64>> {
        &self.shards[(hash_u64(key) >> 60) as usize % CACHE_SHARDS]
    }

    /// The cached score of a pair, if present. Hits are counted here
    /// (per instance and as `mc.core.ssj.cache_hits`).
    pub fn get(&self, key: u64) -> Option<f64> {
        let out = self.shard(key).read().get(&key).copied();
        if out.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            mc_obs::counter!("mc.core.ssj.cache_hits").inc();
        }
        out
    }

    /// Records a pair's score (first writer wins; idempotent — scores
    /// are pure, so every writer holds the same value).
    pub fn insert(&self, key: u64, score: f64) {
        self.shard(key).write().entry(key).or_insert(score);
    }

    /// Cache hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total cached pairs.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True if nothing was cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The prelude scorer of [`select_q_cached`]: exact scoring that
/// **populates** a [`ScoreCache`] as a side effect.
///
/// Deliberately write-only (see [`ScoreCache`]): consulting the cache
/// from racing preludes would make each prelude's `scored` counter
/// depend on thread interleaving, and the q-selection cost model must
/// stay machine-independent.
pub struct CachedExactScorer<'a> {
    /// The similarity measure.
    pub measure: SetMeasure,
    /// The cache to populate.
    pub cache: &'a ScoreCache,
}

impl PairScorer for CachedExactScorer<'_> {
    #[inline]
    fn score(&self, a: TupleId, b: TupleId, ra: &[u32], rb: &[u32]) -> f64 {
        let s = self.measure.score(ra, rb);
        self.cache.insert(pair_key(a, b), s);
        s
    }

    #[inline]
    fn score_above(
        &self,
        a: TupleId,
        b: TupleId,
        ra: &[u32],
        rb: &[u32],
        gate: f64,
    ) -> ScoreOutcome {
        match self.measure.score_above(ra, rb, gate) {
            Some(s) => {
                self.cache.insert(pair_key(a, b), s);
                ScoreOutcome::Scored(s)
            }
            None => ScoreOutcome::Refuted,
        }
    }
}

/// Prefix bound with a token *credit* for QJoin's deferred pairs: an
/// unscored pair may already hold up to `credit = q − 1` common tokens,
/// so its achievable overlap is `min(la, rem + credit)`.
#[inline]
fn bound_with_credit(measure: SetMeasure, la: usize, p: usize, credit: usize) -> f64 {
    if credit == 0 {
        return measure.prefix_ubound(la, p, 1);
    }
    let rem = (la - p + 1 + credit).min(la) as f64;
    let la_f = la as f64;
    match measure {
        SetMeasure::Jaccard => rem / la_f,
        SetMeasure::Cosine => (rem / la_f).sqrt(),
        SetMeasure::Dice => 2.0 * rem / (la_f + rem),
        SetMeasure::Overlap => 1.0,
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
struct Event {
    bound: Score,
    side: u8,
    rec: TupleId,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.bound
            .cmp(&other.bound)
            .then_with(|| other.side.cmp(&self.side))
            .then_with(|| other.rec.cmp(&self.rec))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Default, Clone, Copy)]
struct PairState {
    common: u32,
    scored: bool,
}

/// Largest `|A| × |B|` for which the pair-state table is stored densely
/// (one generation-stamped slot per pair, ~64 MiB of `u64`s at the cap)
/// instead of as a hash map. The dense table turns the per-incidence
/// state probe — the hottest operation of the event loop — into a single
/// indexed load with no hashing.
const DENSE_STATES_MAX: usize = 1 << 23;

/// Dense-slot layout: bits 63–32 hold the scratch generation (0 = never
/// touched), bit 31 the scored flag, bits 30–0 the common-token count.
const SCORED_BIT: u64 = 1 << 31;
const COMMON_MASK: u64 = SCORED_BIT - 1;

/// Scored flag of [`topk_semi_join`]'s per-probe-record pair states
/// (low bits hold the pair's common-token count).
const SEMI_SCORED: u32 = 1 << 31;

/// What a per-incidence state advance tells the event loop to do.
enum Step {
    /// The pair has fewer than `q` common tokens so far.
    Pending,
    /// This incidence is the pair's `q`-th common token: score it now.
    ReachedQ,
    /// The pair was already scored (or seeded); nothing to do.
    AlreadyScored,
}

/// The pair-state table behind the event loop: dense when the join's
/// `rows × |B|` fits the scratch's dense budget (default
/// [`DENSE_STATES_MAX`]), a hash map otherwise. `rows` is the A-side
/// *range* the join covers — a shard of a partitioned join sizes its
/// dense table by its own row range, so sharding retires the global
/// `|A| × |B|` cap: each shard only needs `(|A| / shards) × |B|` slots.
/// Generation stamps make dense reuse across joins O(1) — `prepare`
/// bumps the generation instead of clearing millions of slots.
enum StateTable<'s> {
    Dense {
        slots: &'s mut [u64],
        gen: u64,
        nb: usize,
        /// First A-record id of the covered range; dense rows are
        /// indexed relative to it.
        a_lo: TupleId,
        /// First B-record id of the covered range (`nb` counts records
        /// from here); dense columns are indexed relative to it.
        b_lo: TupleId,
    },
    Sparse {
        map: &'s mut FxHashMap<u64, PairState>,
    },
}

impl StateTable<'_> {
    /// Records one more common token for `(a, b)`; `discovered` is
    /// bumped on the pair's first incidence.
    #[inline]
    fn advance(&mut self, a: TupleId, b: TupleId, q: usize, discovered: &mut u64) -> Step {
        match self {
            StateTable::Dense {
                slots,
                gen,
                nb,
                a_lo,
                b_lo,
            } => {
                let slot = &mut slots[(a - *a_lo) as usize * *nb + (b - *b_lo) as usize];
                if (*slot >> 32) != *gen {
                    *discovered += 1;
                    *slot = *gen << 32;
                }
                if *slot & SCORED_BIT != 0 {
                    return Step::AlreadyScored;
                }
                let common = (*slot & COMMON_MASK) + 1;
                if common as usize >= q {
                    *slot = (*gen << 32) | SCORED_BIT | common;
                    Step::ReachedQ
                } else {
                    *slot = (*gen << 32) | common;
                    Step::Pending
                }
            }
            StateTable::Sparse { map } => {
                let st = match map.entry(pair_key(a, b)) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(v) => {
                        *discovered += 1;
                        v.insert(PairState::default())
                    }
                };
                if st.scored {
                    return Step::AlreadyScored;
                }
                st.common += 1;
                if st.common as usize >= q {
                    st.scored = true;
                    Step::ReachedQ
                } else {
                    Step::Pending
                }
            }
        }
    }

    /// Marks a seeded pair as already scored so the loop never rescores
    /// it.
    #[inline]
    fn seed(&mut self, key: u64) {
        match self {
            StateTable::Dense {
                slots,
                gen,
                nb,
                a_lo,
                b_lo,
            } => {
                let (a, b) = split_pair_key(key);
                slots[(a - *a_lo) as usize * *nb + (b - *b_lo) as usize] =
                    (*gen << 32) | SCORED_BIT;
            }
            StateTable::Sparse { map } => {
                map.insert(
                    key,
                    PairState {
                        common: 0,
                        scored: true,
                    },
                );
            }
        }
    }
}

/// A dense (rank-indexed) inverted index over the records' prefixes.
///
/// `lists[rank]` holds `(record, copies)` postings: every record whose
/// prefix contains `rank`, with the number of copies the prefix holds.
/// Reset clears only the lists touched by the previous join.
#[derive(Default)]
struct DensePostings {
    lists: Vec<Vec<(TupleId, u32)>>,
    touched: Vec<u32>,
}

impl DensePostings {
    fn reset(&mut self, rank_bound: usize) {
        for &t in &self.touched {
            self.lists[t as usize].clear();
        }
        self.touched.clear();
        if self.lists.len() < rank_bound {
            self.lists.resize_with(rank_bound, Vec::new);
        }
    }
}

/// Reusable per-worker state of [`topk_join_with_scratch`]: prefix
/// positions, run counters, postings, the pair-state table, and the
/// event heap. A worker that keeps one scratch across consecutive joins
/// (as the joint executor does per thread) allocates nothing in steady
/// state.
#[derive(Default)]
pub struct JoinScratch {
    /// Per-side prefix positions (next 0-indexed token to process).
    pos: [Vec<u32>; 2],
    /// Per-side current-token run counters: copies of the record's most
    /// recently processed token within its own prefix.
    run: [Vec<u32>; 2],
    /// Last token each record posted (sentinel `u32::MAX` = none), so a
    /// record's duplicated tokens share a single posting.
    last_posted: [Vec<u32>; 2],
    /// Index of each record's live posting within its last token's list.
    slot: [Vec<u32>; 2],
    /// Per-side dense inverted indexes.
    postings: [DensePostings; 2],
    /// Discovered pair states (hash fallback for huge `|A| × |B|`).
    states: FxHashMap<u64, PairState>,
    /// Dense pair-state slots (see [`StateTable`]), generation-stamped
    /// so reuse across joins never clears them.
    dense_states: Vec<u64>,
    /// Current dense generation; bumped by every `prepare`.
    dense_gen: u32,
    /// Whether the most recent `prepare` chose the dense table.
    dense: bool,
    /// The event max-heap.
    heap: BinaryHeap<Event>,
    /// Heap events processed by the most recent join on this scratch.
    events: u64,
    /// Total tokens fed to the scorer by the most recent join (the sum
    /// of `|ra| + |rb|` over scoring *attempts*, whether or not the
    /// merge completed — a machine-independent proxy for scoring cost
    /// that is unaffected by threshold gating, so [`select_q`]'s cost
    /// model is stable across kernel changes).
    scored_tokens: u64,
    /// Scoring attempts the most recent join refuted via merge abort.
    merge_aborts: u64,
    /// Pairs the most recent join actually scored (completed merges that
    /// produced a fresh score, cache hits and aborts excluded).
    scored: u64,
    /// Scoring attempts the most recent join served from a cache
    /// (score cache or overlap database) without a fresh merge.
    cache_served: u64,
    /// [`topk_semi_join`] pair state, indexed by post-side record id:
    /// the probe generation that last touched the pair and its
    /// common-token count (high bit = scored). Valid only while one
    /// probe record's scan is live — one-directional processing means a
    /// pair's incidences never span two probe records — so two flat
    /// arrays replace the event loop's whole state table.
    semi_stamp: Vec<u32>,
    semi_common: Vec<u32>,
    /// Current probe generation (bumped per probe record; wrapping
    /// clears the stamps).
    semi_gen: u32,
    /// Dense pair-state slot budget override; `0` means
    /// [`DENSE_STATES_MAX`]. Exposed via [`JoinScratch::set_dense_cap`]
    /// so tests can force the sparse fallback on small inputs.
    dense_cap: usize,
}

impl JoinScratch {
    /// An empty scratch; buffers grow to fit the first join and are
    /// reused afterwards.
    pub fn new() -> Self {
        JoinScratch {
            states: fx_map(),
            ..Default::default()
        }
    }

    /// Clears all state and sizes the buffers for one join.
    fn prepare(&mut self, na: usize, nb: usize, rank_bound: usize) {
        for (side, n) in [(0, na), (1, nb)] {
            self.pos[side].clear();
            self.pos[side].resize(n, 0);
            self.run[side].clear();
            self.run[side].resize(n, 0);
            self.last_posted[side].clear();
            self.last_posted[side].resize(n, u32::MAX);
            self.slot[side].clear();
            self.slot[side].resize(n, 0);
            self.postings[side].reset(rank_bound);
        }
        let cap = if self.dense_cap == 0 {
            DENSE_STATES_MAX
        } else {
            self.dense_cap
        };
        let cells = na.checked_mul(nb);
        self.dense = cells.is_some_and(|c| c > 0 && c <= cap);
        if !self.dense && cells != Some(0) {
            // The pair-state table exceeds its slot budget: this join
            // takes the hash-map path (correct but slower per probe).
            // Persistently high values at scale suggest sharding the join
            // so each shard's row range fits the dense budget again.
            mc_obs::counter!("mc.core.ssj.dense_fallback").inc();
        }
        if self.dense {
            if self.dense_gen == u32::MAX {
                // Generation wrap (once per 2³² joins): restart cleanly.
                self.dense_states.clear();
                self.dense_gen = 0;
            }
            self.dense_gen += 1;
            if self.dense_states.len() < na * nb {
                self.dense_states.resize(na * nb, 0);
            }
        } else {
            self.states.clear();
        }
        self.heap.clear();
        // At most one outstanding event per record.
        self.heap.reserve(na + nb);
        self.events = 0;
        self.scored_tokens = 0;
        self.merge_aborts = 0;
        self.scored = 0;
        self.cache_served = 0;
    }

    /// Clears the subset of the scratch [`topk_semi_join`] uses: the
    /// post side's postings, the semi pair-state arrays (generation
    /// bump), and the work counters. The event loop's per-record arrays,
    /// state table and heap stay untouched — the semi-join never reads
    /// them, so delta joins skip megabytes of memsets per call.
    fn prepare_semi(&mut self, post: usize, n_post: usize, rank_bound: usize) {
        self.postings[post].reset(rank_bound);
        if self.semi_stamp.len() < n_post {
            self.semi_stamp.resize(n_post, 0);
            self.semi_common.resize(n_post, 0);
        }
        self.events = 0;
        self.scored_tokens = 0;
        self.merge_aborts = 0;
        self.scored = 0;
        self.cache_served = 0;
    }

    /// Heap events the most recent join on this scratch processed — a
    /// deterministic, machine-independent cost measure (used by
    /// [`select_q`]).
    pub fn last_events(&self) -> u64 {
        self.events
    }

    /// Tokens fed to the scorer by the most recent join (`Σ |ra| + |rb|`
    /// over scoring attempts, aborted merges included).
    pub fn last_scored_tokens(&self) -> u64 {
        self.scored_tokens
    }

    /// Scoring attempts the most recent join refuted via merge abort.
    pub fn last_merge_aborts(&self) -> u64 {
        self.merge_aborts
    }

    /// Pairs the most recent join scored with a completed merge (fresh
    /// scores only — cache hits and refuted merges excluded). The
    /// incremental debugger reads this to account re-scoring work.
    pub fn last_scored(&self) -> u64 {
        self.scored
    }

    /// Scoring attempts the most recent join answered from a cache.
    pub fn last_cache_served(&self) -> u64 {
        self.cache_served
    }

    /// Whether the most recent join on this scratch used the dense
    /// pair-state table (false = hash-map fallback).
    pub fn last_used_dense(&self) -> bool {
        self.dense
    }

    /// Overrides the dense pair-state slot budget (`0` restores the
    /// default [`DENSE_STATES_MAX`]). Primarily a test hook for driving
    /// the sparse fallback path on small inputs.
    pub fn set_dense_cap(&mut self, cap: usize) {
        self.dense_cap = cap;
    }
}

/// A pool of [`JoinScratch`] buffers shared across consecutive
/// [`topk_join_sharded`] calls.
///
/// Without a pool every sharded join allocates one fresh scratch per
/// worker, and a scratch is *expensive* to warm up: its dense postings
/// index holds one `Vec` per token rank (hundreds of thousands on real
/// vocabularies). A joint run executes one sharded join per config, so
/// `shards × configs` scratches were built and thrown away. The joint
/// executor instead builds one pool sized to its worker count and passes
/// it to every config's join; worker `w` of each join locks slot `w`, so
/// locks are uncontended and each slot's buffers stay warm across
/// configs (the same steady-state-allocation-free contract
/// [`topk_join_with_scratch`] gives single-threaded callers).
pub struct JoinScratchPool {
    slots: Vec<parking_lot::Mutex<JoinScratch>>,
}

impl JoinScratchPool {
    /// A pool with `workers` slots (at least one).
    pub fn new(workers: usize) -> Self {
        JoinScratchPool {
            slots: (0..workers.max(1))
                .map(|_| parking_lot::Mutex::new(JoinScratch::new()))
                .collect(),
        }
    }

    /// Locks the slot for worker `w` (wrapping if the pool is smaller
    /// than the caller's worker count).
    pub(crate) fn lock_slot(&self, w: usize) -> parking_lot::MutexGuard<'_, JoinScratch> {
        self.slots[w % self.slots.len()].lock()
    }

    /// Overrides every slot's dense pair-state budget (see
    /// [`JoinScratch::set_dense_cap`]). The incremental debugger caps
    /// its session pool: delta joins pair a handful of changed records
    /// with a full table, so their candidate sets are sparse and a
    /// full-range dense table would be tens of megabytes per slot for
    /// no probe-speed win.
    pub fn set_dense_cap(&self, cap: usize) {
        for slot in &self.slots {
            slot.lock().set_dense_cap(cap);
        }
    }
}

/// Runs the top-k join with a fresh scratch. Prefer
/// [`topk_join_with_scratch`] when executing many joins on one thread.
///
/// * `seed` — optional initial entries (a parent config's re-scored top-k
///   list, §4.2); seeded pairs are marked scored and never recomputed.
/// * `cancel` — optional cooperative cancellation flag; a cancelled
///   join returns its partial list.
pub fn topk_join(
    inst: SsjInstance<'_>,
    params: SsjParams,
    scorer: &dyn PairScorer,
    seed: &[(f64, u64)],
    cancel: Option<&AtomicBool>,
) -> TopKList {
    let mut scratch = JoinScratch::new();
    topk_join_with_scratch(inst, params, scorer, seed, cancel, &mut scratch)
}

/// Runs the top-k join, reusing `scratch` buffers from previous joins.
/// See [`topk_join`] for the parameter contract.
pub fn topk_join_with_scratch(
    inst: SsjInstance<'_>,
    params: SsjParams,
    scorer: &dyn PairScorer,
    seed: &[(f64, u64)],
    cancel: Option<&AtomicBool>,
    scratch: &mut JoinScratch,
) -> TopKList {
    topk_join_in_range(
        inst,
        params,
        scorer,
        seed,
        cancel,
        scratch,
        0,
        inst.records_a.len() as TupleId,
        0,
        inst.records_b.len() as TupleId,
        None,
    )
}

/// Which side's record range [`topk_join_sharded_on`] partitions.
///
/// Per-pair work splits across shards either way (a pair lands in
/// exactly one shard); what repeats per shard is the *other* side's
/// per-event bookkeeping. Shard the side whose records dominate the
/// event count: the incremental debugger joins a handful of changed
/// records against a full table, and picks the axis that puts the full
/// table's events into the partitioned side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardAxis {
    /// Partition `[0, |A|)` into contiguous A-record ranges.
    A,
    /// Partition `[0, |B|)` into contiguous B-record ranges.
    B,
}

/// Slack for comparisons between a *prefix bound* and the list
/// threshold. Bounds and scores are computed by different floating-point
/// expression trees, so a bound that equals a later score in exact
/// arithmetic can land one ulp below it after rounding (cosine's
/// `o / sqrt(la·lb)` vs `sqrt(rem / la)`). Distinct rational
/// score/bound values on integer token counts differ by far more than
/// 1e-12 while rounding error stays below 1e-15, so the slack separates
/// "really below" from "equal up to rounding" exactly. Score-vs-gate
/// comparisons need no slack: both sides are the same expression.
const BOUND_SLACK: f64 = 1e-12;

/// The cross-shard pruning state of [`topk_join_sharded`]: one shared
/// canonical [`TopKList`] holding the union of every shard's accepted
/// entries, plus its current threshold cached as the bit pattern of a
/// non-negative `f64` (for which integer `fetch_max` ordering coincides
/// with numeric ordering) so the hot loop reads it with one relaxed
/// load.
///
/// A shard's *local* threshold is the k-th best of its own range's pairs
/// — far below the global k-th when the data is split many ways, so a
/// shard pruning only with its local list overexplores superlinearly in
/// the shard count. The shared list restores single-shard pruning
/// quality: its threshold is the k-th best of *everything any shard has
/// accepted so far*, which evolves like the unsharded run's threshold.
///
/// Soundness: every entry offered is a genuine pair score (seeds are
/// pre-offered once, scored pairs are scored by exactly one shard), so
/// the shared list is a canonical top-k of a subset of the final pair
/// set and its threshold never exceeds the final global k-th score.
/// Pruning events and gating scorers against it therefore only drops
/// pairs that cannot appear in the merged top-k — the merged
/// `sorted_entries()` stays bit-identical at every shard and thread
/// count. Offers happen only for entries that pass the gate (a few per
/// shard beyond k), so the mutex is effectively uncontended.
struct SharedBound {
    /// Bit pattern of the shared list's current threshold (0 until the
    /// list fills). Monotone non-decreasing.
    bits: AtomicU64,
    /// Union of all shards' accepted entries, canonical order.
    list: parking_lot::Mutex<TopKList>,
}

impl SharedBound {
    fn new(k: usize) -> Self {
        SharedBound {
            bits: AtomicU64::new(0),
            list: parking_lot::Mutex::new(TopKList::new(k)),
        }
    }

    /// The current bound (0.0 until the shared list fills).
    #[inline]
    fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Offers an accepted entry to the shared list and publishes the
    /// possibly-raised threshold.
    fn offer(&self, score: f64, pair: u64) {
        let mut list = self.list.lock();
        list.insert(score, pair);
        let thr = list.threshold();
        drop(list);
        if thr > 0.0 {
            self.bits.fetch_max(thr.to_bits(), Ordering::Relaxed);
        }
    }
}

/// The event loop of [`topk_join_with_scratch`], restricted to A-records
/// in `[a_lo, a_hi)` and B-records in `[b_lo, b_hi)` — the unit of work
/// of one shard of [`topk_join_sharded_on`] (which restricts exactly one
/// of the two ranges per shard). A pair `(a, b)` is discovered by
/// whichever side's prefix event hits the other's posting list, and with
/// each side's postings holding only its range's records, exactly the
/// pairs with `a ∈ [a_lo, a_hi) ∧ b ∈ [b_lo, b_hi)` are discovered.
/// Per-pair work (state advance, scoring) is therefore perfectly
/// partitioned across disjoint ranges; only the unrestricted side's
/// per-event bookkeeping is repeated per shard. The full join is the
/// `[0, |A|) × [0, |B|)` range.
///
/// `shared` is the cross-shard bound: folded into every prune and gate
/// decision (max with the local threshold) and raised whenever this
/// shard's own list fills. `None` for unsharded joins.
#[allow(clippy::too_many_arguments)]
fn topk_join_in_range(
    inst: SsjInstance<'_>,
    params: SsjParams,
    scorer: &dyn PairScorer,
    seed: &[(f64, u64)],
    cancel: Option<&AtomicBool>,
    scratch: &mut JoinScratch,
    a_lo: TupleId,
    a_hi: TupleId,
    b_lo: TupleId,
    b_hi: TupleId,
    shared: Option<&SharedBound>,
) -> TopKList {
    assert!(params.q >= 1, "q must be at least 1");
    assert!(a_lo <= a_hi && a_hi as usize <= inst.records_a.len());
    assert!(b_lo <= b_hi && b_hi as usize <= inst.records_b.len());
    let credit = params.q - 1;
    let rank_bound = inst.records_a.rank_bound().max(inst.records_b.rank_bound()) as usize;
    let rows = (a_hi - a_lo) as usize;
    let a_off = a_lo as usize;
    let cols = (b_hi - b_lo) as usize;
    let b_off = b_lo as usize;
    scratch.prepare(rows, cols, rank_bound);
    let JoinScratch {
        pos,
        run,
        last_posted,
        slot,
        postings,
        states,
        dense_states,
        dense_gen,
        dense,
        heap,
        events: scratch_events,
        scored_tokens: scratch_scored_tokens,
        merge_aborts: scratch_merge_aborts,
        scored: scratch_scored,
        cache_served: scratch_cache_served,
        ..
    } = scratch;

    let mut table = if *dense {
        StateTable::Dense {
            slots: &mut dense_states[..],
            gen: *dense_gen as u64,
            nb: cols,
            a_lo,
            b_lo,
        }
    } else {
        StateTable::Sparse { map: states }
    };

    // Every seed raises the threshold (shards receive the full seed list
    // for maximal pruning), but only in-range pairs exist in this range's
    // state table — out-of-range pairs can never be rediscovered here.
    let mut k_list = TopKList::with_capacity_hint(params.k, seed.len());
    for &(score, pair) in seed {
        if !inst.killed.contains_key(pair) {
            k_list.insert(score, pair);
            let (a, b) = split_pair_key(pair);
            if a >= a_lo && a < a_hi && b >= b_lo && b < b_hi {
                table.seed(pair);
            }
        }
    }

    for r in a_lo..a_hi {
        let rec = inst.records_a.record(r);
        if !rec.is_empty() {
            heap.push(Event {
                bound: Score(bound_with_credit(params.measure, rec.len(), 1, credit)),
                side: 0,
                rec: r,
            });
        }
    }
    for r in b_lo..b_hi {
        let rec = inst.records_b.record(r);
        if !rec.is_empty() {
            heap.push(Event {
                bound: Score(bound_with_credit(params.measure, rec.len(), 1, credit)),
                side: 1,
                rec: r,
            });
        }
    }

    // Hot-loop statistics accumulate in locals and flush to the global
    // registry once per join, so the event loop pays no atomic ops.
    let mut n_events = 0u64;
    let mut n_discovered = 0u64;
    let mut n_scored = 0u64;
    let mut n_cached = 0u64;
    let mut n_aborted = 0u64;
    let mut n_scored_tokens = 0u64;
    let mut n_killed_skipped = 0u64;
    let mut n_bound_pruned = 0u64;
    // Hoisted: the blocker output is checked once per pair (at scoring
    // time), and not at all when it is empty.
    let no_killed = inst.killed.is_empty();

    let mut since_cancel_check = 0u32;
    while let Some(ev) = heap.pop() {
        // The pruning threshold: the local list's (0 until it fills),
        // raised to the cross-shard bound when sharded. The shared bound
        // never exceeds the final global k-th score, so folding it in
        // keeps the merged result exact (see [`SharedBound`]).
        let threshold = match shared {
            Some(s) => k_list.threshold().max(s.get()),
            None => k_list.threshold(),
        };
        if threshold > 0.0 && ev.bound.0 < threshold - BOUND_SLACK {
            // Everything still on the heap is pruned by the prefix
            // bound. Strictly below the threshold only: an event whose
            // bound *equals* the threshold can still yield a tie that
            // displaces a larger pair key under the canonical order, so
            // it must be processed for shard-count invariance.
            n_bound_pruned += heap.len() as u64 + 1;
            break;
        }
        n_events += 1;
        if let Some(flag) = cancel {
            since_cancel_check += 1;
            if since_cancel_check >= 256 {
                since_cancel_check = 0;
                if flag.load(Ordering::Relaxed) {
                    break;
                }
            }
        }
        let side = ev.side as usize;
        let other = 1 - side;
        let arena = if side == 0 {
            inst.records_a
        } else {
            inst.records_b
        };
        let rec = arena.record(ev.rec);
        // Scratch arrays cover only each side's covered range.
        let idx = if side == 0 {
            ev.rec as usize - a_off
        } else {
            ev.rec as usize - b_off
        };
        let p = pos[side][idx] as usize; // 0-indexed token to process
        let tok = rec[p];

        // This is the `occ`-th occurrence of `tok` within our own prefix:
        // records are sorted, so occurrences are contiguous and the run
        // counter extends by one whenever the previous token repeats.
        let occ = if p > 0 && rec[p - 1] == tok {
            run[side][idx] + 1
        } else {
            1
        };
        run[side][idx] = occ;

        let partners = &postings[other].lists[tok as usize];
        if !partners.is_empty() {
            for &(o, o_count) in partners {
                // The pair's prefix multiset overlap grows by one exactly
                // when the partner's prefix already holds ≥ occ copies of
                // this token (its posting counts them); this keeps
                // `common` equal to the true multiset overlap of the two
                // prefixes.
                if o_count < occ {
                    continue;
                }
                let (a, b) = if side == 0 { (ev.rec, o) } else { (o, ev.rec) };
                if let Step::ReachedQ = table.advance(a, b, params.q, &mut n_discovered) {
                    // Membership in the blocker output `C` is checked
                    // once per pair, here — not per incidence. A killed
                    // pair costs one pair-state slot but saves a hash
                    // probe on `C` for every later shared token.
                    let key = pair_key(a, b);
                    if !no_killed && inst.killed.contains_key(key) {
                        n_killed_skipped += 1;
                        continue;
                    }
                    let ra = inst.records_a.record(a);
                    let rb = inst.records_b.record(b);
                    n_scored_tokens += (ra.len() + rb.len()) as u64;
                    // Gate one ulp below the current k-th score (see
                    // `TopKList::gate`): a refuted attempt has
                    // `score < threshold` and could never enter the
                    // list, while exact threshold ties come through for
                    // the canonical key tie-break — the outcome split
                    // never changes the resulting list. When sharded,
                    // the cross-shard bound raises the gate the same
                    // way (one ulp below, ties still come through).
                    let mut gate = k_list.gate();
                    if let Some(s) = shared {
                        let thr = s.get();
                        if thr > 0.0 {
                            gate = gate.max(f64::next_down(thr));
                        }
                    }
                    let accepted = match scorer.score_above(a, b, ra, rb, gate) {
                        ScoreOutcome::Scored(s) => {
                            n_scored += 1;
                            k_list.insert(s, key);
                            Some(s)
                        }
                        ScoreOutcome::Cached(s) => {
                            n_cached += 1;
                            k_list.insert(s, key);
                            Some(s)
                        }
                        ScoreOutcome::Refuted => {
                            n_aborted += 1;
                            None
                        }
                    };
                    if let (Some(score), Some(s)) = (accepted, shared) {
                        s.offer(score, key);
                    }
                }
            }
        }
        // Register this token in our own prefix index: a record posts
        // each distinct token once and bumps its posting's copy count for
        // duplicates (the slot stays valid because lists only grow).
        if last_posted[side][idx] != tok {
            last_posted[side][idx] = tok;
            let list = &mut postings[side].lists[tok as usize];
            if list.is_empty() {
                postings[side].touched.push(tok);
            }
            slot[side][idx] = list.len() as u32;
            list.push((ev.rec, 1));
        } else {
            let s = slot[side][idx] as usize;
            postings[side].lists[tok as usize][s].1 += 1;
        }

        pos[side][idx] += 1;
        let next_p = p + 1;
        if next_p < rec.len() {
            let b = bound_with_credit(params.measure, rec.len(), next_p + 1, credit);
            // Mirror the pop-side prune: re-enqueue while the bound can
            // still reach the threshold (local or cross-shard), ties
            // included.
            let threshold = match shared {
                Some(s) => k_list.threshold().max(s.get()),
                None => k_list.threshold(),
            };
            if threshold == 0.0 || b >= threshold - BOUND_SLACK {
                heap.push(Event {
                    bound: Score(b),
                    side: ev.side,
                    rec: ev.rec,
                });
            } else {
                n_bound_pruned += 1;
            }
        }
    }
    *scratch_events = n_events;
    *scratch_scored_tokens = n_scored_tokens;
    *scratch_merge_aborts = n_aborted;
    *scratch_scored = n_scored;
    *scratch_cache_served = n_cached;
    mc_obs::counter!("mc.core.ssj.events").add(n_events);
    mc_obs::counter!("mc.core.ssj.candidates").add(n_discovered);
    mc_obs::counter!("mc.core.ssj.scored").add(n_scored);
    mc_obs::counter!("mc.core.ssj.merge_aborts").add(n_aborted);
    mc_obs::counter!("mc.core.ssj.scored_saved").add(n_aborted + n_cached);
    mc_obs::counter!("mc.core.ssj.killed_skipped").add(n_killed_skipped);
    mc_obs::counter!("mc.core.ssj.bound_pruned").add(n_bound_pruned);
    k_list
}

/// Runs the top-k join partitioned into `shards` contiguous A-record
/// ranges executed by up to `threads` workers, then merges the per-shard
/// lists canonically. The result's `sorted_entries()` is **bit-identical
/// to the unsharded join at any shard/thread count**:
///
/// * pairs are partitioned by their A-record's range, so each shard's
///   canonical list is a pure function of its own pair set;
/// * every shard receives the full seed list (raising its threshold as
///   early as possible); broadcast seeds are deduplicated by pair key at
///   merge time, where duplicates carry identical scores;
/// * the merge re-offers every shard entry to one canonical
///   [`TopKList`], whose kept set is offer-order-independent.
///
/// `make_scorer` builds one scorer per shard on the worker thread that
/// runs it (scorers are deliberately not `Sync`); it must be cheap and
/// produce scorers that agree bit-for-bit on every pair.
///
/// `pool` optionally supplies per-worker [`JoinScratch`] buffers reused
/// across calls (see [`JoinScratchPool`]); `None` allocates fresh
/// scratches as before. The pool never affects results — scratches are
/// fully re-prepared per join.
#[allow(clippy::too_many_arguments)]
pub fn topk_join_sharded<S, F>(
    inst: SsjInstance<'_>,
    params: SsjParams,
    make_scorer: F,
    seed: &[(f64, u64)],
    cancel: Option<&AtomicBool>,
    shards: usize,
    threads: usize,
    pool: Option<&JoinScratchPool>,
) -> TopKList
where
    S: PairScorer,
    F: Fn(usize) -> S + Sync,
{
    topk_join_sharded_on(
        inst,
        params,
        make_scorer,
        seed,
        cancel,
        shards,
        threads,
        pool,
        ShardAxis::A,
    )
}

/// [`topk_join_sharded`] with an explicit shard [`ShardAxis`]: `A`
/// partitions A-record ranges (the default), `B` partitions B-record
/// ranges. The bit-identity contract is symmetric — every pair lands in
/// exactly one shard either way, and the canonical merge is
/// offer-order-independent — so the axis never changes the result, only
/// which side's per-event bookkeeping is repeated per shard.
#[allow(clippy::too_many_arguments)]
pub fn topk_join_sharded_on<S, F>(
    inst: SsjInstance<'_>,
    params: SsjParams,
    make_scorer: F,
    seed: &[(f64, u64)],
    cancel: Option<&AtomicBool>,
    shards: usize,
    threads: usize,
    pool: Option<&JoinScratchPool>,
    axis: ShardAxis,
) -> TopKList
where
    S: PairScorer,
    F: Fn(usize) -> S + Sync,
{
    let na = inst.records_a.len();
    let nb = inst.records_b.len();
    let sharded_n = match axis {
        ShardAxis::A => na,
        ShardAxis::B => nb,
    };
    let shards = shards.clamp(1, sharded_n.max(1));
    if shards == 1 {
        let scorer = make_scorer(0);
        return match pool {
            Some(p) => {
                topk_join_with_scratch(inst, params, &scorer, seed, cancel, &mut p.lock_slot(0))
            }
            None => topk_join(inst, params, &scorer, seed, cancel),
        };
    }
    let _span = mc_obs::span!("mc.core.ssj.sharded");
    // Each shard covers the full range of one side and a contiguous
    // slice of the other.
    let bounds: Vec<(TupleId, TupleId, TupleId, TupleId)> = (0..shards)
        .map(|i| {
            let lo = (sharded_n * i / shards) as TupleId;
            let hi = (sharded_n * (i + 1) / shards) as TupleId;
            match axis {
                ShardAxis::A => (lo, hi, 0, nb as TupleId),
                ShardAxis::B => (0, na as TupleId, lo, hi),
            }
        })
        .collect();
    let workers = threads.clamp(1, shards);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::OnceLock<(TopKList, u64)>> =
        (0..shards).map(|_| std::sync::OnceLock::new()).collect();
    // Cross-shard pruning state: one shared canonical top-k whose
    // threshold every shard folds into its prune/gate decisions. Seeds
    // are pre-offered exactly once here (shards would otherwise offer
    // duplicates, and duplicate keys in the shared list would inflate
    // its threshold past the true global k-th — an unsound prune).
    let shared = SharedBound::new(params.k);
    for &(score, pair) in seed {
        if !inst.killed.contains_key(pair) {
            shared.offer(score, pair);
        }
    }
    let obs = mc_obs::ObsContext::current();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (next, results, bounds) = (&next, &results, &bounds);
            let (make_scorer, obs, shared) = (&make_scorer, &obs, &shared);
            scope.spawn(move || {
                let _obs = obs.attach();
                // Worker `w` owns pool slot `w`: uncontended, and the
                // slot's buffers stay warm across consecutive sharded
                // joins that share the pool.
                let mut local = None;
                let mut leased = None;
                let scratch: &mut JoinScratch = match pool {
                    Some(p) => &mut *leased.insert(p.lock_slot(w)),
                    None => local.insert(JoinScratch::new()),
                };
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= shards {
                        break;
                    }
                    let scorer = make_scorer(i);
                    let (a_lo, a_hi, b_lo, b_hi) = bounds[i];
                    // Per-thread CPU time, not wall time: on a host with
                    // fewer cores than workers the scheduler interleaves
                    // shards, and a wall clock would charge each shard
                    // for time its siblings ran.
                    let started = mc_obs::thread_cpu_us();
                    let list = topk_join_in_range(
                        inst,
                        params,
                        &scorer,
                        seed,
                        cancel,
                        scratch,
                        a_lo,
                        a_hi,
                        b_lo,
                        b_hi,
                        Some(shared),
                    );
                    let busy = mc_obs::thread_cpu_us().saturating_sub(started);
                    let _ = results[i].set((list, busy));
                }
            });
        }
    });
    // The slowest shard's busy time is this join's parallel critical
    // path — the wall clock the sharded stage takes once `threads >=
    // shards`. Recorded so scale benches can report parallel scaling
    // even when the bench machine has fewer cores than shards.
    let critical_us = results
        .iter()
        .map(|slot| slot.get().expect("every shard produced a list").1)
        .max()
        .unwrap_or(0);
    mc_obs::histogram!("mc.core.ssj.shard_critical_us").record(critical_us);
    if std::env::var("MC_SSJ_SHARD_DEBUG").is_ok_and(|v| v == "1") {
        let times: Vec<u64> = results
            .iter()
            .map(|slot| slot.get().expect("every shard produced a list").1)
            .collect();
        eprintln!("shard busy us: {times:?}");
    }
    // Canonical merge: offer every shard entry once (seeds were
    // broadcast, so the same pair key may surface from several shards
    // with an identical score — first offer wins, the rest are skipped).
    let mut seen: FxHashMap<u64, ()> = fx_map();
    let mut merged = TopKList::new(params.k);
    for slot in &results {
        let (list, _) = slot.get().expect("every shard produced a list");
        for (score, pair) in list.sorted_entries() {
            if seen.insert(pair, ()).is_none() {
                merged.insert(score, pair);
            }
        }
    }
    merged
}

/// Heap-free one-directional variant of the top-k join for asymmetric
/// instances: one side is tiny (the incremental debugger's changed set),
/// the other is a full table.
///
/// The event heap exists to interleave both sides' prefix tokens in
/// global bound order so the list threshold rises as early as possible.
/// A delta join starts with a threshold that is already near-final — its
/// seed list is the surviving top-K of the previous run — so the global
/// ordering buys almost nothing while charging a `log(|A| + |B|)` heap
/// operation per token. This variant drops the heap entirely and runs
/// two flat passes:
///
/// 1. the **post** side (the small changed set) streams each record's
///    prefix into the postings index, probing nothing;
/// 2. the **probe** side (the full table) streams each record's prefix
///    against the completed postings, advancing pair states and scoring
///    at the `q`-th common token exactly like the event loop.
///
/// Every common-prefix incidence is counted exactly once — by the probe
/// side against the post side's *final* copy counts, which equals the
/// event loop's "whichever side posts the occurrence level second"
/// accounting because `min(copies, copies)` is order-free. Both passes
/// stop each record once its credit-adjusted prefix bound falls below
/// `threshold − BOUND_SLACK`; the threshold only rises, so any pair
/// skipped by a stopped prefix provably cannot beat the final threshold
/// (the same soundness argument as the heap loop's prune, applied
/// per-record instead of globally). Seeds, killed-pair handling and
/// threshold gating are identical to [`topk_join_with_scratch`], so the
/// returned `sorted_entries()` is **bit-identical** to it: both produce
/// the canonical top-k of the same pair universe.
///
/// `post_side` picks which side's prefixes are indexed: `0` posts A and
/// probes with B, `1` posts B and probes with A. Always post the small
/// side — partner lists stay short and the probe pass degenerates to a
/// streaming scan with almost-always-empty postings lookups. The scratch
/// counters record probed + posted prefix tokens as this join's events.
#[allow(clippy::too_many_arguments)]
pub fn topk_semi_join(
    inst: SsjInstance<'_>,
    params: SsjParams,
    scorer: &dyn PairScorer,
    seed: &[(f64, u64)],
    cancel: Option<&AtomicBool>,
    scratch: &mut JoinScratch,
    post_side: u8,
) -> TopKList {
    assert!(params.q >= 1, "q must be at least 1");
    assert!(post_side <= 1, "post_side is 0 (A) or 1 (B)");
    let credit = params.q - 1;
    let measure = params.measure;
    let rank_bound = inst.records_a.rank_bound().max(inst.records_b.rank_bound()) as usize;
    let post = post_side as usize;
    let post_arena = if post == 0 {
        inst.records_a
    } else {
        inst.records_b
    };
    scratch.prepare_semi(post, post_arena.len(), rank_bound);
    let JoinScratch {
        postings,
        semi_stamp,
        semi_common,
        semi_gen,
        events: scratch_events,
        scored_tokens: scratch_scored_tokens,
        merge_aborts: scratch_merge_aborts,
        scored: scratch_scored,
        cache_served: scratch_cache_served,
        ..
    } = scratch;

    // Seeds are never rescored. The event loop marks them in its state
    // table; here the per-record pair state is rebuilt per probe record,
    // so the live seeds are indexed by their probe-side endpoint and
    // pre-stamped as scored when that record's scan opens.
    let mut k_list = TopKList::with_capacity_hint(params.k, seed.len());
    let mut seed_pairs: Vec<(TupleId, TupleId)> = Vec::with_capacity(seed.len());
    for &(score, pair) in seed {
        if !inst.killed.contains_key(pair) {
            k_list.insert(score, pair);
            let (a, b) = split_pair_key(pair);
            let (probe_rec, post_rec) = if post == 0 { (b, a) } else { (a, b) };
            if (post_rec as usize) < post_arena.len() {
                seed_pairs.push((probe_rec, post_rec));
            }
        }
    }
    seed_pairs.sort_unstable();

    let mut n_tokens = 0u64;
    let mut n_discovered = 0u64;
    let mut n_scored = 0u64;
    let mut n_cached = 0u64;
    let mut n_aborted = 0u64;
    let mut n_scored_tokens = 0u64;
    let mut n_killed_skipped = 0u64;
    let mut n_bound_pruned = 0u64;
    let no_killed = inst.killed.is_empty();

    // Pass 1: index the post side's prefixes. No insert happens here, so
    // the threshold is fixed for the whole pass; each record posts until
    // its bound falls below it. Records are processed contiguously, so
    // the kernel's per-record posting arrays collapse to two locals.
    let threshold = k_list.threshold();
    for r in 0..post_arena.len() as TupleId {
        let rec = post_arena.record(r);
        let len = rec.len();
        let mut last_tok = u32::MAX;
        let mut slot_idx = 0usize;
        for (p, &tok) in rec.iter().enumerate() {
            if threshold > 0.0
                && bound_with_credit(measure, len, p + 1, credit) < threshold - BOUND_SLACK
            {
                n_bound_pruned += (len - p) as u64;
                break;
            }
            n_tokens += 1;
            if last_tok != tok {
                last_tok = tok;
                let list = &mut postings[post].lists[tok as usize];
                if list.is_empty() {
                    postings[post].touched.push(tok);
                }
                slot_idx = list.len();
                list.push((r, 1));
            } else {
                postings[post].lists[tok as usize][slot_idx].1 += 1;
            }
        }
    }

    // Pass 2: stream the probe side against the completed index. The
    // threshold can rise mid-pass as contributions land, so it is
    // re-read per token like the event loop does per event.
    let probe_arena = if post == 0 {
        inst.records_b
    } else {
        inst.records_a
    };
    let mut seed_cursor = 0usize;
    let mut since_cancel_check = 0u32;
    'probe: for r in 0..probe_arena.len() as TupleId {
        // Open this record's pair-state generation and pre-stamp its
        // seeds as scored.
        *semi_gen = semi_gen.wrapping_add(1);
        if *semi_gen == 0 {
            semi_stamp.fill(0);
            *semi_gen = 1;
        }
        let gen = *semi_gen;
        while seed_cursor < seed_pairs.len() && seed_pairs[seed_cursor].0 == r {
            let o = seed_pairs[seed_cursor].1 as usize;
            semi_stamp[o] = gen;
            semi_common[o] = SEMI_SCORED;
            seed_cursor += 1;
        }
        let rec = probe_arena.record(r);
        let len = rec.len();
        let mut occ = 0u32;
        for (p, &tok) in rec.iter().enumerate() {
            let threshold = k_list.threshold();
            if threshold > 0.0
                && bound_with_credit(measure, len, p + 1, credit) < threshold - BOUND_SLACK
            {
                n_bound_pruned += (len - p) as u64;
                break;
            }
            n_tokens += 1;
            if let Some(flag) = cancel {
                since_cancel_check += 1;
                if since_cancel_check >= 1024 {
                    since_cancel_check = 0;
                    if flag.load(Ordering::Relaxed) {
                        break 'probe;
                    }
                }
            }
            // `occ`-th copy of `tok` within our own prefix (records are
            // sorted, so copies are contiguous).
            occ = if p > 0 && rec[p - 1] == tok {
                occ + 1
            } else {
                1
            };
            let partners = &postings[post].lists[tok as usize];
            if partners.is_empty() {
                continue;
            }
            // Stale-but-sound gate for the length pre-gate below: read
            // once per token, so inserts inside the partner loop make it
            // conservative (too low), never unsound.
            let len_gate = k_list.gate();
            for &(o, o_count) in partners {
                // Same multiset accounting as the event loop: this
                // incidence advances the pair iff the partner's prefix
                // holds at least `occ` copies.
                if o_count < occ {
                    continue;
                }
                let oi = o as usize;
                if semi_stamp[oi] != gen {
                    semi_stamp[oi] = gen;
                    n_discovered += 1;
                    // Length pre-gate, applied once at the pair's first
                    // incidence: `from_overlap` is monotone in `o`
                    // (also under f64 rounding), so the score at full
                    // containment caps the pair's achievable score. At
                    // or below the gate the scorer would refute the
                    // attempt anyway — mark the pair scored so every
                    // later incidence skips on the stamp alone.
                    // (Vacuous for the overlap measure, whose
                    // containment score is always 1.)
                    let plen = post_arena.record(o).len();
                    if measure.from_overlap(len.min(plen), len, plen) <= len_gate {
                        semi_common[oi] = SEMI_SCORED;
                        continue;
                    }
                    semi_common[oi] = 0;
                }
                let c = semi_common[oi];
                if c & SEMI_SCORED != 0 {
                    continue;
                }
                let c = c + 1;
                if (c as usize) < params.q {
                    semi_common[oi] = c;
                    continue;
                }
                semi_common[oi] = c | SEMI_SCORED;
                let (a, b) = if post == 0 { (o, r) } else { (r, o) };
                let key = pair_key(a, b);
                if !no_killed && inst.killed.contains_key(key) {
                    n_killed_skipped += 1;
                    continue;
                }
                let ra = inst.records_a.record(a);
                let rb = inst.records_b.record(b);
                n_scored_tokens += (ra.len() + rb.len()) as u64;
                match scorer.score_above(a, b, ra, rb, k_list.gate()) {
                    ScoreOutcome::Scored(s) => {
                        n_scored += 1;
                        k_list.insert(s, key);
                    }
                    ScoreOutcome::Cached(s) => {
                        n_cached += 1;
                        k_list.insert(s, key);
                    }
                    ScoreOutcome::Refuted => {
                        n_aborted += 1;
                    }
                }
            }
        }
    }
    *scratch_events = n_tokens;
    *scratch_scored_tokens = n_scored_tokens;
    *scratch_merge_aborts = n_aborted;
    *scratch_scored = n_scored;
    *scratch_cache_served = n_cached;
    mc_obs::counter!("mc.core.ssj.events").add(n_tokens);
    mc_obs::counter!("mc.core.ssj.candidates").add(n_discovered);
    mc_obs::counter!("mc.core.ssj.scored").add(n_scored);
    mc_obs::counter!("mc.core.ssj.merge_aborts").add(n_aborted);
    mc_obs::counter!("mc.core.ssj.scored_saved").add(n_aborted + n_cached);
    mc_obs::counter!("mc.core.ssj.killed_skipped").add(n_killed_skipped);
    mc_obs::counter!("mc.core.ssj.bound_pruned").add(n_bound_pruned);
    k_list
}

/// Brute-force reference: scores **every** cross pair with non-zero
/// overlap that is not in `C`. Used by tests and tiny inputs.
pub fn brute_force_topk(inst: SsjInstance<'_>, k: usize, measure: SetMeasure) -> TopKList {
    let mut list = TopKList::new(k);
    for (a, ra) in inst.records_a.iter().enumerate() {
        if ra.is_empty() {
            continue;
        }
        for (b, rb) in inst.records_b.iter().enumerate() {
            if rb.is_empty() {
                continue;
            }
            let key = pair_key(a as TupleId, b as TupleId);
            if inst.killed.contains_key(key) {
                continue;
            }
            list.insert(measure.score(ra, rb), key);
        }
    }
    list
}

/// Empirical `q` selection (§4.1), made deterministic. The paper races
/// `q ∈ {1, …, max_q}` on threads and keeps the first finisher; that
/// wall-clock race made the chosen `q` — and everything downstream —
/// depend on OS scheduling. Here every candidate `q` instead runs a
/// small prelude join (`prelude_k`, the paper uses 50) **to
/// completion**, still one thread each, and the winner is the `q` whose
/// prelude was cheapest under a machine-independent cost model:
/// heap events processed plus tokens fed to the scorer (ties go to the
/// smaller `q`). Repeated runs at any thread count therefore pick the
/// same `q`. Deterministic inputs can also fix `q` via [`SsjParams`].
pub fn select_q(
    inst: SsjInstance<'_>,
    measure: SetMeasure,
    max_q: usize,
    prelude_k: usize,
) -> usize {
    select_q_cached(inst, measure, max_q, prelude_k, None)
}

/// [`select_q`] with an optional [`ScoreCache`] that the preludes
/// populate as they score (write-only; see [`CachedExactScorer`]). The
/// winning `q`'s main run can then consume the cache and skip re-scoring
/// every pair a prelude already scored — the cost of determinism
/// (running all preludes to completion) is recycled instead of wasted.
///
/// The chosen `q` is identical to [`select_q`]'s: the cost model reads
/// events and *attempt-time* scored tokens, both unaffected by the cache.
pub fn select_q_cached(
    inst: SsjInstance<'_>,
    measure: SetMeasure,
    max_q: usize,
    prelude_k: usize,
    cache: Option<&ScoreCache>,
) -> usize {
    let max_q = max_q.max(1);
    if max_q == 1 {
        return 1;
    }
    let _span = mc_obs::span!("mc.core.ssj.select_q");
    let obs = mc_obs::ObsContext::current();
    let costs: Vec<(u64, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (1..=max_q)
            .map(|q| {
                let obs = &obs;
                scope.spawn(move || {
                    let _obs = obs.attach();
                    let scorer: Box<dyn PairScorer> = match cache {
                        Some(cache) => Box::new(CachedExactScorer { measure, cache }),
                        None => Box::new(ExactScorer(measure)),
                    };
                    let params = SsjParams {
                        k: prelude_k,
                        q,
                        measure,
                    };
                    let mut scratch = JoinScratch::new();
                    let _ = topk_join_with_scratch(
                        inst,
                        params,
                        scorer.as_ref(),
                        &[],
                        None,
                        &mut scratch,
                    );
                    (scratch.last_events() + scratch.last_scored_tokens(), q)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("select_q prelude thread panicked"))
            .collect()
    });
    costs.into_iter().min().map_or(1, |(_, q)| q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena(data: &[&[u32]]) -> RecordArena {
        RecordArena::from_records(data)
    }

    #[test]
    fn topk_list_threshold_and_order() {
        let mut l = TopKList::new(2);
        assert_eq!(l.threshold(), 0.0);
        l.insert(0.5, 1);
        l.insert(0.9, 2);
        assert_eq!(l.threshold(), 0.5);
        l.insert(0.7, 3); // evicts 0.5
        assert_eq!(l.threshold(), 0.7);
        l.insert(0.1, 4); // ignored
        assert_eq!(l.sorted_scores(), vec![0.9, 0.7]);
        assert_eq!(l.sorted_entries()[0].1, 2);
    }

    #[test]
    fn topk_list_rejects_nonpositive() {
        let mut l = TopKList::new(3);
        l.insert(0.0, 1);
        l.insert(-0.5, 2);
        assert!(l.is_empty());
    }

    #[test]
    fn join_matches_brute_force_q1() {
        let a = arena(&[&[1, 2, 3, 4], &[5, 6, 7], &[1, 9], &[2, 5, 8, 10, 11]]);
        let b = arena(&[&[1, 2, 3], &[5, 6, 7, 8], &[9, 10], &[4, 11]]);
        let killed = PairSet::new();
        let inst = SsjInstance {
            records_a: &a,
            records_b: &b,
            killed: &killed,
        };
        for k in [1, 2, 3, 5, 16] {
            let fast = topk_join(
                inst,
                SsjParams {
                    k,
                    q: 1,
                    measure: SetMeasure::Jaccard,
                },
                &ExactScorer(SetMeasure::Jaccard),
                &[],
                None,
            );
            let slow = brute_force_topk(inst, k, SetMeasure::Jaccard);
            assert_eq!(fast.sorted_scores(), slow.sorted_scores(), "k={k}");
        }
    }

    #[test]
    fn join_matches_brute_force_all_measures() {
        let a = arena(&[&[1, 2, 3, 4, 5], &[2, 3, 9], &[7, 8], &[1, 6, 7, 10]]);
        let b = arena(&[&[1, 2, 3], &[3, 4, 5, 6], &[7, 8, 9, 10], &[2]]);
        let killed = PairSet::new();
        let inst = SsjInstance {
            records_a: &a,
            records_b: &b,
            killed: &killed,
        };
        for m in [SetMeasure::Jaccard, SetMeasure::Cosine, SetMeasure::Dice] {
            let fast = topk_join(
                inst,
                SsjParams {
                    k: 4,
                    q: 1,
                    measure: m,
                },
                &ExactScorer(m),
                &[],
                None,
            );
            let slow = brute_force_topk(inst, 4, m);
            let f = fast.sorted_scores();
            let s = slow.sorted_scores();
            assert_eq!(f.len(), s.len(), "{m:?}");
            for (x, y) in f.iter().zip(&s) {
                assert!((x - y).abs() < 1e-12, "{m:?}: {f:?} vs {s:?}");
            }
        }
    }

    #[test]
    fn scratch_reuse_is_equivalent_to_fresh_scratch() {
        // One scratch reused across joins of different shapes must give
        // the same results as fresh scratches (the joint executor's
        // steady-state mode).
        let a1 = arena(&[&[1, 2, 3, 4], &[5, 6, 7], &[1, 9]]);
        let b1 = arena(&[&[1, 2, 3], &[5, 6, 7, 8], &[9, 10]]);
        let a2 = arena(&[&[2, 2, 5], &[0, 1]]);
        let b2 = arena(&[&[2, 5, 5], &[0, 3], &[1, 2, 2]]);
        let killed = PairSet::new();
        let mut scratch = JoinScratch::new();
        for (a, b) in [(&a1, &b1), (&a2, &b2), (&a1, &b1)] {
            let inst = SsjInstance {
                records_a: a,
                records_b: b,
                killed: &killed,
            };
            let params = SsjParams {
                k: 5,
                q: 1,
                measure: SetMeasure::Jaccard,
            };
            let scorer = ExactScorer(SetMeasure::Jaccard);
            let reused = topk_join_with_scratch(inst, params, &scorer, &[], None, &mut scratch);
            let fresh = topk_join(inst, params, &scorer, &[], None);
            assert_eq!(reused.sorted_entries(), fresh.sorted_entries());
        }
    }

    #[test]
    fn killed_pairs_are_excluded() {
        let a = arena(&[&[1, 2, 3]]);
        let b = arena(&[&[1, 2, 3], &[1, 2, 9]]);
        let mut killed = PairSet::new();
        killed.insert(0, 0); // the perfect pair is in C
        let inst = SsjInstance {
            records_a: &a,
            records_b: &b,
            killed: &killed,
        };
        let l = topk_join(
            inst,
            SsjParams {
                k: 5,
                q: 1,
                measure: SetMeasure::Jaccard,
            },
            &ExactScorer(SetMeasure::Jaccard),
            &[],
            None,
        );
        let entries = l.sorted_entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].1, pair_key(0, 1));
    }

    #[test]
    fn qjoin_finds_high_overlap_pairs() {
        // Pairs sharing ≥ q tokens must still be found with q = 2.
        let a = arena(&[&[1, 2, 3, 4], &[5, 6, 7, 8]]);
        let b = arena(&[&[1, 2, 3, 9], &[5, 9, 10, 11]]);
        let killed = PairSet::new();
        let inst = SsjInstance {
            records_a: &a,
            records_b: &b,
            killed: &killed,
        };
        let l = topk_join(
            inst,
            SsjParams {
                k: 10,
                q: 2,
                measure: SetMeasure::Jaccard,
            },
            &ExactScorer(SetMeasure::Jaccard),
            &[],
            None,
        );
        let entries = l.sorted_entries();
        // (a0, b0) shares 3 tokens → found; (a1, b1) shares only 1 → by
        // design, never scored with q = 2.
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].1, pair_key(0, 0));
        assert!((entries[0].0 - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn qjoin_agrees_with_topkjoin_on_high_overlap_top() {
        // When the true top-k pairs all share ≥ q tokens, QJoin returns
        // the same scores as TopKJoin.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..20u32 {
            a.push(vec![i * 3, i * 3 + 1, i * 3 + 2, 100 + i]);
            b.push(vec![i * 3, i * 3 + 1, i * 3 + 2, 200 + i]);
        }
        let a = RecordArena::from_records(&a);
        let b = RecordArena::from_records(&b);
        let killed = PairSet::new();
        let inst = SsjInstance {
            records_a: &a,
            records_b: &b,
            killed: &killed,
        };
        let t1 = topk_join(
            inst,
            SsjParams {
                k: 10,
                q: 1,
                measure: SetMeasure::Jaccard,
            },
            &ExactScorer(SetMeasure::Jaccard),
            &[],
            None,
        );
        let t2 = topk_join(
            inst,
            SsjParams {
                k: 10,
                q: 2,
                measure: SetMeasure::Jaccard,
            },
            &ExactScorer(SetMeasure::Jaccard),
            &[],
            None,
        );
        assert_eq!(t1.sorted_scores(), t2.sorted_scores());
    }

    #[test]
    fn seeding_never_worsens_results() {
        let a = arena(&[&[1, 2, 3, 4], &[5, 6, 7]]);
        let b = arena(&[&[1, 2, 8], &[5, 6, 7, 9]]);
        let killed = PairSet::new();
        let inst = SsjInstance {
            records_a: &a,
            records_b: &b,
            killed: &killed,
        };
        let plain = topk_join(
            inst,
            SsjParams {
                k: 2,
                q: 1,
                measure: SetMeasure::Jaccard,
            },
            &ExactScorer(SetMeasure::Jaccard),
            &[],
            None,
        );
        // Seed with the true scores of both pairs.
        let seed: Vec<(f64, u64)> = plain.sorted_entries();
        let seeded = topk_join(
            inst,
            SsjParams {
                k: 2,
                q: 1,
                measure: SetMeasure::Jaccard,
            },
            &ExactScorer(SetMeasure::Jaccard),
            &seed,
            None,
        );
        assert_eq!(plain.sorted_scores(), seeded.sorted_scores());
    }

    #[test]
    fn seeded_killed_pairs_are_dropped() {
        let a = arena(&[&[1, 2]]);
        let b = arena(&[&[1, 2]]);
        let mut killed = PairSet::new();
        killed.insert(0, 0);
        let inst = SsjInstance {
            records_a: &a,
            records_b: &b,
            killed: &killed,
        };
        let seeded = topk_join(
            inst,
            SsjParams {
                k: 2,
                q: 1,
                measure: SetMeasure::Jaccard,
            },
            &ExactScorer(SetMeasure::Jaccard),
            &[(1.0, pair_key(0, 0))],
            None,
        );
        assert!(seeded.is_empty());
    }

    #[test]
    fn empty_records_produce_empty_list() {
        let a = arena(&[&[]]);
        let b = arena(&[&[1]]);
        let killed = PairSet::new();
        let inst = SsjInstance {
            records_a: &a,
            records_b: &b,
            killed: &killed,
        };
        let l = topk_join(
            inst,
            SsjParams::default(),
            &ExactScorer(SetMeasure::Jaccard),
            &[],
            None,
        );
        assert!(l.is_empty());
    }

    #[test]
    fn select_q_returns_valid_q() {
        let a: Vec<Vec<u32>> = (0..50).map(|i| vec![i, i + 1, i + 2, i + 50]).collect();
        let b: Vec<Vec<u32>> = (0..50).map(|i| vec![i, i + 1, i + 3, i + 90]).collect();
        let a = RecordArena::from_records(&a);
        let b = RecordArena::from_records(&b);
        let killed = PairSet::new();
        let inst = SsjInstance {
            records_a: &a,
            records_b: &b,
            killed: &killed,
        };
        let q = select_q(inst, SetMeasure::Jaccard, 4, 10);
        assert!((1..=4).contains(&q));
    }

    #[test]
    fn cancellation_returns_partial_list() {
        let a: Vec<Vec<u32>> = (0..200).map(|i| (i..i + 12).collect()).collect();
        let b: Vec<Vec<u32>> = (0..200).map(|i| (i + 3..i + 15).collect()).collect();
        let a = RecordArena::from_records(&a);
        let b = RecordArena::from_records(&b);
        let killed = PairSet::new();
        let inst = SsjInstance {
            records_a: &a,
            records_b: &b,
            killed: &killed,
        };
        let cancel = AtomicBool::new(true); // cancelled from the start
        let l = topk_join(
            inst,
            SsjParams {
                k: 50,
                q: 1,
                measure: SetMeasure::Jaccard,
            },
            &ExactScorer(SetMeasure::Jaccard),
            &[],
            Some(&cancel),
        );
        // Join bailed early: far fewer events processed than a full run
        // (we can't assert exact counts, but it must return without
        // violating the list invariants).
        assert!(l.len() <= 50);
    }

    #[test]
    fn credit_bound_is_weaker_but_valid() {
        for p in 1..=6 {
            let b0 = bound_with_credit(SetMeasure::Jaccard, 6, p, 0);
            let b2 = bound_with_credit(SetMeasure::Jaccard, 6, p, 2);
            assert!(b2 >= b0);
            assert!(b2 <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn topk_list_kept_set_is_offer_order_independent() {
        // Three equal-score offers at a k=2 boundary: whatever the offer
        // order, the canonical list keeps the two smallest pair keys.
        let offers = [(0.5, 10u64), (0.5, 7), (0.9, 3), (0.5, 8)];
        let orders = [[0, 1, 2, 3], [3, 2, 1, 0], [2, 0, 3, 1], [1, 3, 0, 2]];
        for order in orders {
            let mut l = TopKList::new(3);
            for i in order {
                let (s, p) = offers[i];
                l.insert(s, p);
            }
            assert_eq!(l.sorted_entries(), vec![(0.9, 3), (0.5, 7), (0.5, 8)]);
        }
    }

    fn random_arena(seed: u64, n: usize, universe: u32, max_len: usize) -> RecordArena {
        // Tiny deterministic LCG; no rand dependency in mc-core.
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move |m: usize| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % m.max(1)
        };
        let mut recs: Vec<Vec<u32>> = Vec::with_capacity(n);
        for _ in 0..n {
            let len = next(max_len + 1);
            let mut r: Vec<u32> = (0..len).map(|_| next(universe as usize) as u32).collect();
            r.sort_unstable();
            recs.push(r);
        }
        let views: Vec<&[u32]> = recs.iter().map(|r| r.as_slice()).collect();
        RecordArena::from_records(&views)
    }

    #[test]
    fn sharded_join_is_bit_identical_across_shard_and_thread_counts() {
        let a = random_arena(11, 120, 40, 9);
        let b = random_arena(23, 90, 40, 9);
        let mut killed = PairSet::new();
        killed.insert(3, 4);
        killed.insert(17, 2);
        let inst = SsjInstance {
            records_a: &a,
            records_b: &b,
            killed: &killed,
        };
        let seed = [(0.75, pair_key(5, 5)), (0.4, pair_key(9, 1))];
        for m in [
            SetMeasure::Jaccard,
            SetMeasure::Cosine,
            SetMeasure::Dice,
            SetMeasure::Overlap,
        ] {
            for (k, q) in [(10, 1), (50, 1), (10, 2)] {
                let params = SsjParams { k, q, measure: m };
                let baseline = topk_join(inst, params, &ExactScorer(m), &seed, None);
                for shards in [1, 3, 4, 8, 200] {
                    for threads in [1, 4] {
                        // Alternate pooled and pool-free scratches to
                        // cover both paths of the reuse machinery.
                        let pool = (shards % 2 == 0).then(|| JoinScratchPool::new(threads));
                        let sharded = topk_join_sharded(
                            inst,
                            params,
                            |_| ExactScorer(m),
                            &seed,
                            None,
                            shards,
                            threads,
                            pool.as_ref(),
                        );
                        assert_eq!(
                            baseline.sorted_entries(),
                            sharded.sorted_entries(),
                            "{m:?} k={k} q={q} shards={shards} threads={threads}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn dense_and_sparse_state_tables_agree_and_fallback_is_counted() {
        // An isolated metrics context so concurrent tests can't bump the
        // counter under us.
        let ctx = mc_obs::ObsContext::session();
        let _guard = ctx.attach();
        let a = random_arena(5, 40, 24, 7);
        let b = random_arena(6, 35, 24, 7);
        let killed = PairSet::new();
        let inst = SsjInstance {
            records_a: &a,
            records_b: &b,
            killed: &killed,
        };
        let params = SsjParams {
            k: 12,
            q: 1,
            measure: SetMeasure::Jaccard,
        };
        let scorer = ExactScorer(SetMeasure::Jaccard);

        let base = mc_obs::MetricsSnapshot::capture();
        let mut dense_scratch = JoinScratch::new();
        let dense_list =
            topk_join_with_scratch(inst, params, &scorer, &[], None, &mut dense_scratch);
        assert!(
            dense_scratch.last_used_dense(),
            "40×35 fits the default cap"
        );
        let after_dense = mc_obs::MetricsSnapshot::capture().since(&base);
        assert_eq!(after_dense.counter("mc.core.ssj.dense_fallback"), 0);

        let mut sparse_scratch = JoinScratch::new();
        sparse_scratch.set_dense_cap(8); // 40×35 ≫ 8: force the hash path
        let sparse_list =
            topk_join_with_scratch(inst, params, &scorer, &[], None, &mut sparse_scratch);
        assert!(!sparse_scratch.last_used_dense());
        let after_sparse = mc_obs::MetricsSnapshot::capture().since(&base);
        assert_eq!(after_sparse.counter("mc.core.ssj.dense_fallback"), 1);

        assert_eq!(dense_list.sorted_entries(), sparse_list.sorted_entries());
        assert_eq!(
            dense_scratch.last_events(),
            sparse_scratch.last_events(),
            "state representation must not change the event schedule"
        );
    }

    #[test]
    fn semi_join_is_bit_identical_to_event_loop() {
        let a = random_arena(31, 110, 36, 9);
        let b = random_arena(47, 85, 36, 9);
        let mut killed = PairSet::new();
        killed.insert(2, 9);
        killed.insert(40, 11);
        let inst = SsjInstance {
            records_a: &a,
            records_b: &b,
            killed: &killed,
        };
        let seed = [(0.8, pair_key(7, 3)), (0.35, pair_key(12, 12))];
        for m in [
            SetMeasure::Jaccard,
            SetMeasure::Cosine,
            SetMeasure::Dice,
            SetMeasure::Overlap,
        ] {
            for (k, q) in [(10, 1), (60, 1), (10, 2), (25, 3)] {
                for seeds in [&seed[..], &[]] {
                    let params = SsjParams { k, q, measure: m };
                    let baseline = topk_join(inst, params, &ExactScorer(m), seeds, None);
                    for post_side in [0u8, 1] {
                        // Cover the dense and the sparse state table.
                        for cap in [0usize, 8] {
                            let mut scratch = JoinScratch::new();
                            scratch.set_dense_cap(cap);
                            let semi = topk_semi_join(
                                inst,
                                params,
                                &ExactScorer(m),
                                seeds,
                                None,
                                &mut scratch,
                                post_side,
                            );
                            assert_eq!(
                                baseline.sorted_entries(),
                                semi.sorted_entries(),
                                "{m:?} k={k} q={q} post_side={post_side} cap={cap}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn semi_join_handles_empty_and_masked_records() {
        // Empty records on both sides (as masked delta views produce)
        // must be skipped without disturbing discovery.
        let a = arena(&[&[], &[1, 2, 3], &[], &[2, 5, 8]]);
        let b = arena(&[&[1, 2, 4], &[], &[2, 5, 9], &[]]);
        let killed = PairSet::new();
        let inst = SsjInstance {
            records_a: &a,
            records_b: &b,
            killed: &killed,
        };
        let params = SsjParams {
            k: 5,
            q: 1,
            measure: SetMeasure::Jaccard,
        };
        let baseline = topk_join(inst, params, &ExactScorer(SetMeasure::Jaccard), &[], None);
        for post_side in [0u8, 1] {
            let mut scratch = JoinScratch::new();
            let semi = topk_semi_join(
                inst,
                params,
                &ExactScorer(SetMeasure::Jaccard),
                &[],
                None,
                &mut scratch,
                post_side,
            );
            assert_eq!(baseline.sorted_entries(), semi.sorted_entries());
        }
    }
}

//! Explanations: *why* was a match killed off? (Table 4)
//!
//! For each confirmed killed-off match, MatchCatcher helps the user see
//! which attributes disagree and how — misspelling, abbreviation, missing
//! value, extra tokens, etc. This module produces a per-attribute
//! [`Diagnosis`] by comparing the two values, plus dataset-level
//! summaries ("blocker problems") aggregating diagnoses across all found
//! matches.

use mc_strsim::dict::is_strict_sorted_subset;
use mc_strsim::measures::bounded_edit_distance;
use mc_strsim::tokenize::word_tokens;
use mc_table::{AttrId, Schema, Table, TupleId};
use std::borrow::Cow;
use std::collections::BTreeMap;

/// How a pair of attribute values relate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Diagnosis {
    /// Byte-identical values.
    Exact,
    /// Equal after lowercasing and punctuation/whitespace normalization
    /// ("input tables are not lower-cased").
    CaseOrPunct,
    /// Missing on exactly one side.
    MissingOneSide,
    /// Missing on both sides.
    MissingBoth,
    /// One value is an abbreviation of the other (initialism or prefix).
    Abbreviation,
    /// Same words in a different order.
    WordReorder,
    /// One token set strictly contains the other (subtitle, extra
    /// qualifiers, attribute sprinkling).
    TokenSubset,
    /// Small character-level difference (misspelling); payload = edit
    /// distance.
    SmallEdit(u8),
    /// Both numeric and within 30% of each other.
    NumericClose,
    /// Substantially different values.
    Different,
}

impl Diagnosis {
    /// Human-readable label. Every variant except [`Diagnosis::SmallEdit`]
    /// is a static string, so the common case allocates nothing.
    pub fn label(self) -> Cow<'static, str> {
        match self {
            Diagnosis::Exact => Cow::Borrowed("equal"),
            Diagnosis::CaseOrPunct => Cow::Borrowed("case/punctuation difference"),
            Diagnosis::MissingOneSide => Cow::Borrowed("missing value on one side"),
            Diagnosis::MissingBoth => Cow::Borrowed("missing on both sides"),
            Diagnosis::Abbreviation => Cow::Borrowed("abbreviation"),
            Diagnosis::WordReorder => Cow::Borrowed("word reorder"),
            Diagnosis::TokenSubset => Cow::Borrowed("extra/missing tokens"),
            Diagnosis::SmallEdit(d) => Cow::Owned(format!("misspelling (edit distance {d})")),
            Diagnosis::NumericClose => Cow::Borrowed("small numeric difference"),
            Diagnosis::Different => Cow::Borrowed("different values"),
        }
    }

    /// True if the diagnosis indicates *agreement* (not a blocker
    /// problem).
    pub fn is_agreement(self) -> bool {
        matches!(self, Diagnosis::Exact | Diagnosis::CaseOrPunct)
    }
}

/// Diagnoses the relationship between two optional attribute values.
pub fn diagnose_values(va: Option<&str>, vb: Option<&str>) -> Diagnosis {
    match (va, vb) {
        (None, None) => return Diagnosis::MissingBoth,
        (None, Some(_)) | (Some(_), None) => return Diagnosis::MissingOneSide,
        _ => {}
    }
    let (va, vb) = (va.unwrap(), vb.unwrap());
    if va.trim().is_empty() && vb.trim().is_empty() {
        return Diagnosis::MissingBoth;
    }
    if va.trim().is_empty() || vb.trim().is_empty() {
        return Diagnosis::MissingOneSide;
    }
    if va == vb {
        return Diagnosis::Exact;
    }
    let wa = word_tokens(va);
    let wb = word_tokens(vb);
    let na = wa.join(" ");
    let nb = wb.join(" ");
    if na == nb {
        return Diagnosis::CaseOrPunct;
    }
    // Word multiset comparison.
    let mut sa = wa.clone();
    let mut sb = wb.clone();
    sa.sort_unstable();
    sb.sort_unstable();
    if sa == sb {
        return Diagnosis::WordReorder;
    }
    if is_strict_sorted_subset(&sa, &sb) || is_strict_sorted_subset(&sb, &sa) {
        return Diagnosis::TokenSubset;
    }
    // Abbreviation: initialism of the longer equals the shorter, or the
    // shorter is a prefix of the longer's first word(s).
    if is_abbreviation(&wa, &nb) || is_abbreviation(&wb, &na) {
        return Diagnosis::Abbreviation;
    }
    // Misspelling: small edit distance relative to length. The
    // acceptance condition `d ≤ 3 ∧ 3d ≤ max_len` is exactly
    // `d ≤ min(3, ⌊max_len / 3⌋)`, so the bounded kernel can abandon the
    // DP as soon as the distance provably exceeds that cap instead of
    // computing it in full for every dissimilar pair.
    let max_len = na.chars().count().max(nb.chars().count());
    if max_len >= 3 {
        if let Some(d) = bounded_edit_distance(&na, &nb, 3.min(max_len / 3)) {
            return Diagnosis::SmallEdit(d as u8);
        }
    }
    // Numeric closeness.
    if let (Ok(x), Ok(y)) = (va.trim().parse::<f64>(), vb.trim().parse::<f64>()) {
        let m = x.abs().max(y.abs());
        if m > 0.0 && (x - y).abs() / m <= 0.3 {
            return Diagnosis::NumericClose;
        }
    }
    Diagnosis::Different
}

/// `words` is abbreviated by `short` if the initialism of `words` equals
/// `short` (ignoring spaces), e.g. ["new","york"] vs "ny", or if `short`
/// is a strict prefix of the full form ("atl" vs "atlanta").
fn is_abbreviation(words: &[String], short: &str) -> bool {
    let compact: String = short.chars().filter(|c| c.is_alphanumeric()).collect();
    if compact.is_empty() {
        return false;
    }
    if words.len() >= 2 {
        let initials: String = words.iter().filter_map(|w| w.chars().next()).collect();
        if initials == compact {
            return true;
        }
    }
    let full = words.join("");
    compact.len() >= 2 && compact.len() * 2 <= full.len() && full.starts_with(&compact)
}

/// Per-attribute explanation of a single killed-off match.
#[derive(Debug, Clone)]
pub struct MatchExplanation {
    /// The explained pair.
    pub pair: (TupleId, TupleId),
    /// Diagnosis per attribute, in schema order.
    pub per_attr: Vec<(AttrId, Diagnosis)>,
}

impl MatchExplanation {
    /// The attributes that *disagree* (candidate blocker problems).
    pub fn problems(&self) -> impl Iterator<Item = (AttrId, Diagnosis)> + '_ {
        self.per_attr
            .iter()
            .copied()
            .filter(|(_, d)| !d.is_agreement())
    }
}

/// Explains one match by diagnosing every attribute.
pub fn explain_match(a: &Table, b: &Table, aid: TupleId, bid: TupleId) -> MatchExplanation {
    let per_attr = a
        .schema()
        .attr_ids()
        .map(|attr| {
            (
                attr,
                diagnose_values(a.value(aid, attr), b.value(bid, attr)),
            )
        })
        .collect();
    MatchExplanation {
        pair: (aid, bid),
        per_attr,
    }
}

/// Aggregates explanations into the Table 4-style "blocker problems"
/// summary: `(description, count)` sorted by descending count.
pub fn summarize_problems(
    explanations: &[MatchExplanation],
    schema: &Schema,
) -> Vec<(String, usize)> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for e in explanations {
        for (attr, d) in e.problems() {
            let norm = match d {
                Diagnosis::SmallEdit(_) => Cow::Borrowed("misspelling"),
                other => other.label(),
            };
            *counts
                .entry(format!("{} in \"{}\"", norm, schema.name(attr)))
                .or_insert(0) += 1;
        }
    }
    let mut v: Vec<(String, usize)> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_table::{Schema, Tuple};
    use std::sync::Arc;

    #[test]
    fn diagnosis_catalogue() {
        assert_eq!(diagnose_values(Some("x"), Some("x")), Diagnosis::Exact);
        assert_eq!(
            diagnose_values(Some("New York"), Some("new york")),
            Diagnosis::CaseOrPunct
        );
        assert_eq!(diagnose_values(None, Some("x")), Diagnosis::MissingOneSide);
        assert_eq!(diagnose_values(None, None), Diagnosis::MissingBoth);
        assert_eq!(
            diagnose_values(Some(" "), Some("x")),
            Diagnosis::MissingOneSide
        );
        assert_eq!(
            diagnose_values(Some("new york"), Some("ny")),
            Diagnosis::Abbreviation
        );
        assert_eq!(
            diagnose_values(Some("smith dave"), Some("dave smith")),
            Diagnosis::WordReorder
        );
        assert_eq!(
            diagnose_values(Some("office suite"), Some("office suite deluxe edition")),
            Diagnosis::TokenSubset
        );
        assert_eq!(
            diagnose_values(Some("atlanta"), Some("altanta")),
            Diagnosis::SmallEdit(2)
        );
        assert_eq!(
            diagnose_values(Some("100"), Some("95")),
            Diagnosis::NumericClose
        );
        assert_eq!(
            diagnose_values(Some("chicago"), Some("seattle")),
            Diagnosis::Different
        );
    }

    #[test]
    fn small_numbers_with_big_relative_gap_are_different() {
        assert_eq!(
            diagnose_values(Some("10"), Some("90")),
            Diagnosis::Different
        );
    }

    #[test]
    fn short_strings_do_not_count_as_misspellings() {
        // "la" vs "sf": edit distance 2 but half the string.
        assert_eq!(
            diagnose_values(Some("la"), Some("sf")),
            Diagnosis::Different
        );
    }

    #[test]
    fn explain_match_covers_all_attrs() {
        let schema = Arc::new(Schema::from_names(["name", "city"]));
        let mut a = Table::new("A", Arc::clone(&schema));
        a.push(Tuple::from_present(["Dave Smith", "Altanta"]));
        let mut b = Table::new("B", schema);
        b.push(Tuple::from_present(["Dave Smith", "Atlanta"]));
        let e = explain_match(&a, &b, 0, 0);
        assert_eq!(e.per_attr.len(), 2);
        assert_eq!(e.per_attr[0].1, Diagnosis::Exact);
        assert_eq!(e.per_attr[1].1, Diagnosis::SmallEdit(2));
        let problems: Vec<_> = e.problems().collect();
        assert_eq!(problems.len(), 1);
    }

    #[test]
    fn summary_aggregates_and_sorts() {
        let schema = Schema::from_names(["name", "city"]);
        let mk = |d1: Diagnosis, d2: Diagnosis| MatchExplanation {
            pair: (0, 0),
            per_attr: vec![(mc_table::AttrId(0), d1), (mc_table::AttrId(1), d2)],
        };
        let expls = vec![
            mk(Diagnosis::Exact, Diagnosis::SmallEdit(1)),
            mk(Diagnosis::Exact, Diagnosis::SmallEdit(2)),
            mk(Diagnosis::MissingOneSide, Diagnosis::Exact),
        ];
        let summary = summarize_problems(&expls, &schema);
        assert_eq!(summary[0].0, "misspelling in \"city\"");
        assert_eq!(summary[0].1, 2);
        assert_eq!(summary[1].1, 1);
    }

    #[test]
    fn is_agreement_classification() {
        assert!(Diagnosis::Exact.is_agreement());
        assert!(Diagnosis::CaseOrPunct.is_agreement());
        assert!(!Diagnosis::SmallEdit(1).is_agreement());
        assert!(!Diagnosis::MissingOneSide.is_agreement());
    }
}

//! Batch explain engine: columnar, parallel diagnosis over the whole
//! candidate union.
//!
//! [`crate::explain::diagnose_values`] is the per-pair slow path: every
//! call re-tokenizes both raw strings, re-sorts the word multisets and
//! re-derives the abbreviation forms. Running it over the full candidate
//! union (`|E|` pairs × all schema attributes) for pervasiveness is
//! quadratic in exactly the work the rest of the pipeline already
//! amortizes. The [`DiagnosisKernel`] flips the loop inside out:
//!
//! 1. **Columnar value interning** — per attribute, one [`ValueDict`]
//!    shared across tables A and B maps every raw value to a dense id,
//!    so byte-equality becomes id-equality and each *distinct* value is
//!    prepared (tokenized, normalized, sorted, abbreviation forms,
//!    numeric parse) exactly once. On Zipfian data the distinct count is
//!    a small fraction of the row count.
//! 2. **Sharded diagnosis cache** — per attribute, a sharded
//!    `(id_a, id_b) → Diagnosis` map. Repeated value pairs (the common
//!    case once heads of a Zipfian distribution collide across the
//!    union) cost one lookup. The diagnosis function is pure, so a
//!    racing duplicate computation is harmless — both writers insert the
//!    same value and the output is scheduling-independent.
//! 3. **Scoped-thread pair sharding** — batch entry points split the
//!    pair list into contiguous chunks across scoped workers, each with
//!    its own scratch, writing disjoint output slots; results are
//!    re-assembled in input order.
//!
//! The kernel is **bit-identical** to the per-pair path by construction
//! (the prepared cascade mirrors `diagnose_values` branch for branch,
//! reusing the same [`bounded_edit_distance`] early-exit kernel) and by
//! proof (`tests/explain_properties.rs` drives a randomized oracle over
//! every diagnosis class; the `explain_baseline` bench asserts equality
//! again at zipf scale).

use crate::explain::{summarize_problems, Diagnosis, MatchExplanation};
use crate::joint::CandidateUnion;
use crate::pervasive::{ProblemClass, ProblemGroup, Signature};
use mc_strsim::dict::{is_strict_sorted_subset, ValueDict};
use mc_strsim::measures::{bounded_edit_distance_chars, EditScratch};
use mc_table::hash::{hash_u64, FxHashMap, FxHashSet};
use mc_table::{split_pair_key, AttrId, Table, TupleId};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

std::thread_local! {
    /// Per-thread edit-distance buffers (two char operands + DP rows):
    /// the diagnosis hot loop runs under scoped workers, so a
    /// thread-local keeps every worker allocation-free without
    /// threading scratch through the cache.
    static EDIT_SCRATCH: RefCell<(Vec<char>, Vec<char>, EditScratch)> =
        RefCell::new((Vec::new(), Vec::new(), EditScratch::default()));
}

/// One byte for a [`Diagnosis`] — tag in the high nibble, `SmallEdit`
/// payload (≤ 3, the DP cutoff) in the low nibble. Used to pack a cache
/// entry into a single atomic word.
fn encode_diag(d: Diagnosis) -> u8 {
    match d {
        Diagnosis::Exact => 0,
        Diagnosis::CaseOrPunct => 0x10,
        Diagnosis::MissingOneSide => 0x20,
        Diagnosis::MissingBoth => 0x30,
        Diagnosis::Abbreviation => 0x40,
        Diagnosis::WordReorder => 0x50,
        Diagnosis::TokenSubset => 0x60,
        Diagnosis::SmallEdit(k) => 0x70 | (k & 0xF),
        Diagnosis::NumericClose => 0x80,
        Diagnosis::Different => 0x90,
    }
}

/// Inverse of [`encode_diag`].
fn decode_diag(b: u8) -> Diagnosis {
    match b >> 4 {
        0 => Diagnosis::Exact,
        1 => Diagnosis::CaseOrPunct,
        2 => Diagnosis::MissingOneSide,
        3 => Diagnosis::MissingBoth,
        4 => Diagnosis::Abbreviation,
        5 => Diagnosis::WordReorder,
        6 => Diagnosis::TokenSubset,
        7 => Diagnosis::SmallEdit(b & 0xF),
        8 => Diagnosis::NumericClose,
        _ => Diagnosis::Different,
    }
}

/// Lock-free memo table for `(id_a, id_b) → Diagnosis`.
///
/// A flat open-addressing array of `AtomicU64` words, each packing
/// `key << 8 | encode_diag(diagnosis) + 1` (`0` = empty slot), sized at
/// build so the common probe touches exactly one cache line and an
/// insert is one compare-and-swap — no locks, no rehashing. The
/// diagnosis function is pure, so a racing duplicate computation is
/// benign: both writers would store the identical word, and whichever
/// CAS wins the reader decodes the same value. A `Mutex<FxHashMap>`
/// overflow tier absorbs the (never expected) case of the flat table
/// filling past its load limit, keeping correctness unconditional.
struct PairCache {
    /// Packed `key << 8 | diag + 1` words; `0` = empty.
    slots: Vec<AtomicU64>,
    /// `slots.len() - 1` (power-of-two sizing).
    mask: usize,
    /// Flat-tier fill limit (¾ of slots) — beyond it, new keys go to
    /// `overflow` so linear probes stay short and always terminate.
    limit: u64,
    /// Occupied flat slots.
    filled: AtomicU64,
    /// Spill tier for keys that arrive after `limit` is hit.
    overflow: Mutex<FxHashMap<u64, Diagnosis>>,
}

impl PairCache {
    /// Sizes the flat tier for a column with `distinct` prepared values:
    /// distinct *pairs* seen by real sweeps are a small multiple of the
    /// distinct value count, so 8× slots keeps the load factor low.
    fn for_distinct(distinct: usize) -> PairCache {
        let slots = distinct.saturating_mul(8).next_power_of_two().max(1024);
        PairCache {
            slots: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            mask: slots - 1,
            limit: (slots as u64 / 4) * 3,
            filled: AtomicU64::new(0),
            overflow: Mutex::new(FxHashMap::default()),
        }
    }

    /// Looks up `key` (< 2^56), computing and publishing the diagnosis
    /// on first sight. Lock-free on the flat tier.
    fn get_or_insert_with(&self, key: u64, f: impl FnOnce() -> Diagnosis) -> Diagnosis {
        debug_assert!(key < 1 << 56);
        let mut f = Some(f);
        let mut computed: Option<Diagnosis> = None;
        // Fx-style multiply mixes the *high* bits well and the low bits
        // poorly — fold the top half down before masking.
        let h = hash_u64(key);
        let mut idx = ((h >> 32) ^ h) as usize & self.mask;
        loop {
            let w = self.slots[idx].load(Ordering::Acquire);
            if w != 0 {
                if w >> 8 == key {
                    return decode_diag((w & 0xFF) as u8 - 1);
                }
                idx = (idx + 1) & self.mask;
                continue;
            }
            // Empty slot ⇒ `key` is not in the flat tier (no deletions,
            // so a stored key's probe chain never crosses an empty).
            if self.filled.load(Ordering::Relaxed) >= self.limit {
                let mut map = self.overflow.lock().unwrap();
                return *map
                    .entry(key)
                    .or_insert_with(|| computed.unwrap_or_else(|| (f.take().unwrap())()));
            }
            let d = *computed.get_or_insert_with(|| (f.take().unwrap())());
            let word = (key << 8) | (encode_diag(d) as u64 + 1);
            match self.slots[idx].compare_exchange(0, word, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    self.filled.fetch_add(1, Ordering::Relaxed);
                    return d;
                }
                Err(cur) if cur >> 8 == key => {
                    return decode_diag((cur & 0xFF) as u8 - 1);
                }
                Err(_) => {
                    // Another key claimed this slot; keep probing.
                    idx = (idx + 1) & self.mask;
                }
            }
        }
    }

    /// Distinct keys stored across both tiers.
    fn entries(&self) -> u64 {
        self.filled.load(Ordering::Relaxed) + self.overflow.lock().unwrap().len() as u64
    }
}

/// Histogram bins in [`ValueHeader::hist`].
const HIST_BINS: usize = 16;

/// A distinct value's hot fingerprint — everything the diagnosis
/// cascade needs to *reject* a check, packed into exactly one cache
/// line so the ~95%-miss full-union sweep touches two lines per value
/// pair instead of chasing the [`PreparedValue`] heap structures.
///
/// Every field is a *necessary* condition for its check: a fingerprint
/// mismatch is a sound skip, a match falls through to the exact compare
/// on the cold [`PreparedValue`].
#[derive(Debug, Clone, Copy, Default)]
#[repr(align(64))]
struct ValueHeader {
    /// Bit 0: `raw.trim().is_empty()`; bit 1: `raw` parses as `f64`.
    flags: u8,
    /// Saturating character histogram of `norm`, binned by
    /// `char % HIST_BINS`. Each edit operation moves the L1 distance
    /// between two histograms by at most 2, so
    /// `edit(a, b) ≥ L1(hist_a, hist_b) / 2` — a sound lower bound that
    /// rejects most pairs before the banded DP runs (saturation and bin
    /// collisions only shrink L1, never inflate it).
    hist: [u8; HIST_BINS],
    /// `norm.chars().count()` — the *char* length the edit-distance
    /// cutoffs are defined over (byte length differs under non-ASCII).
    norm_chars: u32,
    /// Byte length of [`PreparedValue::compact`].
    compact_len: u32,
    /// Byte length of [`PreparedValue::full`].
    full_len: u32,
    /// Byte length of [`PreparedValue::initials`].
    initials_len: u32,
    /// FNV-1a over `toks` — inequality proves sequence inequality.
    toks_hash: u64,
    /// FNV-1a over `sorted` — same trick for the multiset compare.
    sorted_hash: u64,
    /// Bloom of token ids (`bit id % 64`): `a ⊆ b` requires
    /// `mask_a & !mask_b == 0`, pruning the subset merges.
    tok_mask: u64,
}

impl ValueHeader {
    const TRIM_EMPTY: u8 = 1;
    const NUMERIC: u8 = 2;

    fn trim_empty(&self) -> bool {
        self.flags & Self::TRIM_EMPTY != 0
    }

    fn has_numeric(&self) -> bool {
        self.flags & Self::NUMERIC != 0
    }
}

/// A raw value's precomputed deep comparison forms — the cold half of
/// the split; loaded only when a [`ValueHeader`] fingerprint matches.
///
/// All variable-length data lives in the owning column's shared arenas
/// ([`AttrColumn::text`], [`AttrColumn::tok_arena`]); this struct holds
/// only `(start, end)` ranges, so preparing a column performs O(1)
/// allocations total and a value's deep forms sit in one 64-byte slot.
#[derive(Debug, Clone, Copy)]
struct PreparedValue {
    /// Word token ids in appearance order (per-attribute interner), so
    /// id-sequence equality ⟺ normalized-string equality. Range into
    /// `tok_arena`.
    toks: (u32, u32),
    /// The same ids sorted — the word multiset. Range into `tok_arena`.
    sorted: (u32, u32),
    /// `word_tokens(raw).join(" ")` — the edit-distance operand
    /// (decoded into thread-local char buffers only when the DP
    /// actually runs, which the histogram bound makes rare). Byte range
    /// into `text`.
    norm: (u32, u32),
    /// Alphanumeric chars of `norm` — the "short" side of the
    /// abbreviation check. Byte range into `text`.
    compact: (u32, u32),
    /// `words.join("")` — the "full" side of the abbreviation check.
    /// Byte range into `text`.
    full: (u32, u32),
    /// First char of each word — the initialism. Byte range into `text`.
    initials: (u32, u32),
    /// `raw.trim().parse::<f64>()`.
    numeric: Option<f64>,
}

/// Resolves a byte range into the text arena.
#[inline]
fn text_at(arena: &str, r: (u32, u32)) -> &str {
    &arena[r.0 as usize..r.1 as usize]
}

/// Resolves a range into the token-id arena.
#[inline]
fn toks_at(arena: &[u32], r: (u32, u32)) -> &[u32] {
    &arena[r.0 as usize..r.1 as usize]
}

/// Reused per-column scratch for [`prepare`] — cleared per value, so the
/// per-value cost is copying a few dozen bytes into the arenas.
#[derive(Default)]
struct PrepScratch {
    norm: String,
    compact: String,
    full: String,
    initials: String,
    toks: Vec<u32>,
    sorted: Vec<u32>,
}

/// FNV-1a over a token-id sequence. Equal sequences hash equal, so a
/// hash mismatch is a sound fast reject; a hash match still falls back
/// to the exact compare.
#[inline]
fn tok_seq_hash(toks: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &t in toks {
        h = (h ^ t as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Expands every non-zero nibble of `x` to `0xF` — the "attribute has a
/// problem" mask for packed-signature subset tests.
#[inline]
fn nibble_mask(x: u64) -> u64 {
    let mut m = x | (x >> 1);
    m |= m >> 2;
    m &= 0x1111_1111_1111_1111;
    m.wrapping_mul(0xF)
}

/// L1 distance between two character histograms.
#[inline]
fn hist_l1(a: &[u8; HIST_BINS], b: &[u8; HIST_BINS]) -> usize {
    let mut d = 0usize;
    for i in 0..HIST_BINS {
        d += a[i].abs_diff(b[i]) as usize;
    }
    d
}

/// One pass over `raw` mirroring `word_tokens` + `join(" ")`: lowercased
/// maximal alphanumeric runs (lowercase may expand, e.g. 'İ' → "i" +
/// combining dot) separated by single spaces. Every derived form —
/// compact, full, initials, char count, histogram — is built during the
/// same scan, ASCII chars skip the Unicode lowercase machinery, and
/// tokens intern as `&str` slices of the normalized string, so a token
/// already in the interner costs no allocation.
fn prepare(
    raw: &str,
    interner: &mut FxHashMap<String, u32>,
    scratch: &mut PrepScratch,
    text: &mut String,
    tok_arena: &mut Vec<u32>,
) -> (ValueHeader, PreparedValue) {
    scratch.norm.clear();
    scratch.compact.clear();
    scratch.full.clear();
    scratch.initials.clear();
    scratch.toks.clear();
    scratch.sorted.clear();
    let norm = &mut scratch.norm;
    let compact = &mut scratch.compact;
    let full = &mut scratch.full;
    let initials = &mut scratch.initials;
    let mut norm_chars = 0u32;
    let mut hist = [0u8; HIST_BINS];
    let mut start = 0usize;
    let mut in_tok = false;
    let mut intern = |word: &str, toks: &mut Vec<u32>| {
        toks.push(match interner.get(word) {
            Some(&id) => id,
            None => {
                let next = interner.len() as u32;
                interner.insert(word.to_string(), next);
                next
            }
        });
    };
    for c in raw.chars() {
        let alnum = if c.is_ascii() {
            c.is_ascii_alphanumeric()
        } else {
            c.is_alphanumeric()
        };
        if alnum {
            let first = !in_tok;
            if first {
                if !norm.is_empty() {
                    norm.push(' ');
                    norm_chars += 1;
                    let sp = b' ' as usize % HIST_BINS;
                    hist[sp] = hist[sp].saturating_add(1);
                }
                start = norm.len();
                in_tok = true;
            }
            if c.is_ascii() {
                // ASCII alphanumerics lowercase to exactly one ASCII
                // alphanumeric — no expansion, no Unicode tables.
                let lc = c.to_ascii_lowercase();
                norm.push(lc);
                norm_chars += 1;
                let bin = lc as usize % HIST_BINS;
                hist[bin] = hist[bin].saturating_add(1);
                full.push(lc);
                compact.push(lc);
                if first {
                    initials.push(lc);
                }
            } else {
                let mut fst = first;
                for lc in c.to_lowercase() {
                    norm.push(lc);
                    norm_chars += 1;
                    let bin = (lc as u32 as usize) % HIST_BINS;
                    hist[bin] = hist[bin].saturating_add(1);
                    full.push(lc);
                    if lc.is_alphanumeric() {
                        compact.push(lc);
                    }
                    if fst {
                        initials.push(lc);
                        fst = false;
                    }
                }
            }
        } else if in_tok {
            intern(&norm[start..], &mut scratch.toks);
            in_tok = false;
        }
    }
    if in_tok {
        intern(&norm[start..], &mut scratch.toks);
    }
    scratch.sorted.extend_from_slice(&scratch.toks);
    scratch.sorted.sort_unstable();
    let tok_mask = scratch.toks.iter().fold(0u64, |m, &t| m | 1u64 << (t & 63));
    let toks_hash = tok_seq_hash(&scratch.toks);
    let sorted_hash = tok_seq_hash(&scratch.sorted);
    let numeric = raw.trim().parse::<f64>().ok();
    let mut flags = 0u8;
    if raw.trim().is_empty() {
        flags |= ValueHeader::TRIM_EMPTY;
    }
    if numeric.is_some() {
        flags |= ValueHeader::NUMERIC;
    }
    let header = ValueHeader {
        flags,
        hist,
        norm_chars,
        compact_len: compact.len() as u32,
        full_len: full.len() as u32,
        initials_len: initials.len() as u32,
        toks_hash,
        sorted_hash,
        tok_mask,
    };
    let mut push_text = |piece: &str| -> (u32, u32) {
        let st = text.len() as u32;
        text.push_str(piece);
        (st, text.len() as u32)
    };
    let norm_r = push_text(&scratch.norm);
    let compact_r = push_text(&scratch.compact);
    let full_r = push_text(&scratch.full);
    let initials_r = push_text(&scratch.initials);
    let mut push_toks = |piece: &[u32]| -> (u32, u32) {
        let st = tok_arena.len() as u32;
        tok_arena.extend_from_slice(piece);
        (st, tok_arena.len() as u32)
    };
    let toks_r = push_toks(&scratch.toks);
    let sorted_r = push_toks(&scratch.sorted);
    let value = PreparedValue {
        toks: toks_r,
        sorted: sorted_r,
        norm: norm_r,
        compact: compact_r,
        full: full_r,
        initials: initials_r,
        numeric,
    };
    (header, value)
}

/// `pa` (as the multi-word form) is abbreviated by `pb` (as the short
/// form) — the prepared mirror of `explain::is_abbreviation(words_a,
/// norm_b)`: the original's `compact` is the alphanumeric filter of the
/// short side's *normalized* string, and its `full`/`initials` come
/// from the word side's token list.
fn abbreviates(text: &str, pa: &PreparedValue, pb: &PreparedValue) -> bool {
    let compact = text_at(text, pb.compact);
    if compact.is_empty() {
        return false;
    }
    let n_toks = pa.toks.1 - pa.toks.0;
    if n_toks >= 2 && text_at(text, pa.initials) == compact {
        return true;
    }
    let full = text_at(text, pa.full);
    compact.len() >= 2 && compact.len() * 2 <= full.len() && full.starts_with(compact)
}

/// Header-only necessary condition for [`abbreviates`]`(a, b)`: either
/// arm requires its byte-length equation to hold, so a length mismatch
/// is a sound skip of the string compares.
#[inline]
fn abbrev_possible(ha: &ValueHeader, hb: &ValueHeader) -> bool {
    hb.compact_len > 0
        && (ha.initials_len == hb.compact_len
            || (hb.compact_len >= 2 && hb.compact_len * 2 <= ha.full_len))
}

/// The diagnosis cascade — branch-for-branch identical to
/// [`crate::explain::diagnose_values`] on two present values, driven by
/// the one-cache-line [`ValueHeader`] fingerprints: each deep compare
/// (and its [`PreparedValue`] load) runs only when the headers say it
/// *could* succeed, so the common all-checks-fail pair touches exactly
/// two cache lines. `va == vb` is the interned byte-equality bit.
impl AttrColumn {
    fn diagnose_ids(&self, va: u32, vb: u32) -> Diagnosis {
        let ha = &self.headers[va as usize];
        let hb = &self.headers[vb as usize];
        if ha.trim_empty() && hb.trim_empty() {
            return Diagnosis::MissingBoth;
        }
        if ha.trim_empty() || hb.trim_empty() {
            return Diagnosis::MissingOneSide;
        }
        if va == vb {
            return Diagnosis::Exact;
        }
        let pa = &self.values[va as usize];
        let pb = &self.values[vb as usize];
        let text = self.text.as_str();
        let toks = self.tok_arena.as_slice();
        if ha.toks_hash == hb.toks_hash && toks_at(toks, pa.toks) == toks_at(toks, pb.toks) {
            return Diagnosis::CaseOrPunct;
        }
        if ha.sorted_hash == hb.sorted_hash && toks_at(toks, pa.sorted) == toks_at(toks, pb.sorted)
        {
            return Diagnosis::WordReorder;
        }
        if (ha.tok_mask & !hb.tok_mask == 0
            && is_strict_sorted_subset(toks_at(toks, pa.sorted), toks_at(toks, pb.sorted)))
            || (hb.tok_mask & !ha.tok_mask == 0
                && is_strict_sorted_subset(toks_at(toks, pb.sorted), toks_at(toks, pa.sorted)))
        {
            return Diagnosis::TokenSubset;
        }
        if (abbrev_possible(ha, hb) && abbreviates(text, pa, pb))
            || (abbrev_possible(hb, ha) && abbreviates(text, pb, pa))
        {
            return Diagnosis::Abbreviation;
        }
        let max_len = ha.norm_chars.max(hb.norm_chars) as usize;
        if max_len >= 3 {
            let cutoff = 3.min(max_len / 3);
            // Two header-only rejects before touching the scratch: the
            // banded program returns None whenever the length gap alone
            // exceeds the cutoff, and whenever the histogram lower bound
            // does (each edit op moves the char-multiset L1 distance by
            // at most 2).
            if (ha.norm_chars.abs_diff(hb.norm_chars) as usize) <= cutoff
                && hist_l1(&ha.hist, &hb.hist) <= 2 * cutoff
            {
                let d = EDIT_SCRATCH.with(|s| {
                    let (ca, cb, scratch) = &mut *s.borrow_mut();
                    ca.clear();
                    ca.extend(text_at(text, pa.norm).chars());
                    cb.clear();
                    cb.extend(text_at(text, pb.norm).chars());
                    bounded_edit_distance_chars(ca, cb, cutoff, scratch)
                });
                if let Some(d) = d {
                    return Diagnosis::SmallEdit(d as u8);
                }
            }
        }
        if ha.has_numeric() && hb.has_numeric() {
            if let (Some(x), Some(y)) = (pa.numeric, pb.numeric) {
                let m = x.abs().max(y.abs());
                if m > 0.0 && (x - y).abs() / m <= 0.3 {
                    return Diagnosis::NumericClose;
                }
            }
        }
        Diagnosis::Different
    }
}

/// One attribute's columnar state: value-id columns for both tables,
/// prepared forms per distinct value, and the sharded diagnosis cache.
struct AttrColumn {
    /// Row → value id for table A ([`ValueDict::MISSING`] = `None`).
    col_a: Vec<u32>,
    /// Row → value id for table B.
    col_b: Vec<u32>,
    /// Hot fingerprints, indexed by value id — one cache line each.
    headers: Vec<ValueHeader>,
    /// Cold prepared forms, indexed by value id.
    values: Vec<PreparedValue>,
    /// Shared byte arena for all prepared string forms.
    text: String,
    /// Shared id arena for all token sequences (appearance + sorted).
    tok_arena: Vec<u32>,
    /// `(id_a, id_b) → Diagnosis` memo (flat lock-free tier + spill).
    cache: PairCache,
    /// Value ids exceed 28 bits (never in practice) — keys then use the
    /// overflow tier with full-width packing.
    wide_ids: bool,
}

impl AttrColumn {
    fn build<'t>(a: &'t Table, b: &'t Table, attr: AttrId) -> AttrColumn {
        let mut vd = ValueDict::new();
        let mut raws: Vec<&'t str> = Vec::new();
        let mut intern_cell = |v: Option<&'t str>| -> u32 {
            let before = vd.len();
            let vid = vd.intern_opt(v);
            if vid != ValueDict::MISSING && vd.len() > before {
                raws.push(v.unwrap());
            }
            vid
        };
        let mut col_a = Vec::with_capacity(a.len());
        for id in 0..a.len() as TupleId {
            col_a.push(intern_cell(a.value(id, attr)));
        }
        let mut col_b = Vec::with_capacity(b.len());
        for id in 0..b.len() as TupleId {
            col_b.push(intern_cell(b.value(id, attr)));
        }
        let mut interner: FxHashMap<String, u32> = FxHashMap::default();
        let mut scratch = PrepScratch::default();
        let mut text = String::new();
        let mut tok_arena: Vec<u32> = Vec::new();
        let mut headers = Vec::with_capacity(raws.len());
        let mut values = Vec::with_capacity(raws.len());
        for r in &raws {
            let (h, v) = prepare(r, &mut interner, &mut scratch, &mut text, &mut tok_arena);
            headers.push(h);
            values.push(v);
        }
        let cache = PairCache::for_distinct(values.len());
        let wide_ids = values.len() >= (1 << 28);
        AttrColumn {
            col_a,
            col_b,
            headers,
            values,
            text,
            tok_arena,
            cache,
            wide_ids,
        }
    }

    /// Cached diagnosis for a cell with both sides present.
    fn diagnose_present(&self, va: u32, vb: u32) -> Diagnosis {
        if self.wide_ids {
            let key = ((va as u64) << 32) | vb as u64;
            let mut map = self.cache.overflow.lock().unwrap();
            return *map.entry(key).or_insert_with(|| self.diagnose_ids(va, vb));
        }
        let key = ((va as u64) << 28) | vb as u64;
        self.cache
            .get_or_insert_with(key, || self.diagnose_ids(va, vb))
    }

    /// Distinct `(id_a, id_b)` pairs diagnosed so far.
    fn cache_entries(&self) -> u64 {
        self.cache.entries()
    }
}

/// Deterministic cache statistics for one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelStats {
    /// Distinct values interned across all attributes (both tables).
    pub distinct_values: u64,
    /// Cell diagnoses requested with both sides present. Deterministic:
    /// a pure function of the tables and the pair lists.
    pub lookups: u64,
    /// Distinct `(value_a, value_b)` pairs actually computed — the cache
    /// resident set. Deterministic even under racing workers (duplicate
    /// computations insert the same key).
    pub cache_entries: u64,
}

impl KernelStats {
    /// Lookups served from the cache (`lookups - cache_entries`).
    pub fn cache_hits(&self) -> u64 {
        self.lookups.saturating_sub(self.cache_entries)
    }
}

/// The batch diagnosis engine. Build once per `(A, B)` table pair, then
/// run any number of batch explain / signature / pervasiveness passes
/// against it; the diagnosis cache persists across calls.
pub struct DiagnosisKernel {
    attrs: Vec<AttrId>,
    cols: Vec<AttrColumn>,
    threads: usize,
    lookups: AtomicU64,
}

impl DiagnosisKernel {
    /// Interns and prepares every attribute column of `a` and `b`
    /// (attributes split across `threads` scoped workers; `0` = all
    /// cores).
    pub fn build(a: &Table, b: &Table, threads: usize) -> DiagnosisKernel {
        let _span = mc_obs::span!("mc.core.explain.build");
        let attrs: Vec<AttrId> = a.schema().attr_ids().collect();
        let threads = resolve_threads(threads);
        let mut slots: Vec<Option<AttrColumn>> = attrs.iter().map(|_| None).collect();
        let workers = threads.min(attrs.len().max(1));
        if workers <= 1 {
            for (slot, &attr) in slots.iter_mut().zip(&attrs) {
                *slot = Some(AttrColumn::build(a, b, attr));
            }
        } else {
            let mut jobs: Vec<(AttrId, &mut Option<AttrColumn>)> =
                attrs.iter().copied().zip(slots.iter_mut()).collect();
            let per = jobs.len().div_ceil(workers);
            let obs = mc_obs::ObsContext::current();
            std::thread::scope(|s| {
                for group in jobs.chunks_mut(per) {
                    let obs = &obs;
                    s.spawn(move || {
                        let _obs = obs.attach();
                        for (attr, slot) in group.iter_mut() {
                            **slot = Some(AttrColumn::build(a, b, *attr));
                        }
                    });
                }
            });
        }
        let cols: Vec<AttrColumn> = slots.into_iter().map(|c| c.unwrap()).collect();
        let distinct: u64 = cols.iter().map(|c| c.values.len() as u64).sum();
        mc_obs::counter!("mc.core.explain.values_interned").add(distinct);
        DiagnosisKernel {
            attrs,
            cols,
            threads,
            lookups: AtomicU64::new(0),
        }
    }

    /// Diagnoses one pair across every schema attribute — the cached
    /// equivalent of [`crate::explain::explain_match`]'s body.
    pub fn diagnose_pair(&self, aid: TupleId, bid: TupleId) -> Vec<(AttrId, Diagnosis)> {
        let mut lookups = 0u64;
        let out = self
            .attrs
            .iter()
            .zip(&self.cols)
            .map(|(&attr, col)| (attr, self.cell(col, aid, bid, &mut lookups)))
            .collect();
        self.lookups.fetch_add(lookups, Ordering::Relaxed);
        out
    }

    fn cell(&self, col: &AttrColumn, aid: TupleId, bid: TupleId, lookups: &mut u64) -> Diagnosis {
        let va = col.col_a[aid as usize];
        let vb = col.col_b[bid as usize];
        match (va == ValueDict::MISSING, vb == ValueDict::MISSING) {
            (true, true) => return Diagnosis::MissingBoth,
            (true, false) | (false, true) => return Diagnosis::MissingOneSide,
            _ => {}
        }
        *lookups += 1;
        col.diagnose_present(va, vb)
    }

    /// Explains every pair (one [`MatchExplanation`] each, in input
    /// order), sharding the list across scoped workers.
    pub fn explain_pairs(&self, pairs: &[(TupleId, TupleId)]) -> Vec<MatchExplanation> {
        self.par_map(pairs, |(x, y)| MatchExplanation {
            pair: (x, y),
            per_attr: self.diagnose_pair(x, y),
        })
    }

    /// Problem signatures for every pair, in input order — the batch
    /// equivalent of [`Signature::of`] per pair.
    pub fn signatures(&self, pairs: &[(TupleId, TupleId)]) -> Vec<Signature> {
        self.par_map(pairs, |(x, y)| self.signature_of(x, y))
    }

    /// One pair's signature without materializing the diagnosis list —
    /// clean pairs (the common case in a candidate union) allocate
    /// nothing.
    fn signature_of(&self, x: TupleId, y: TupleId) -> Signature {
        let mut lookups = 0u64;
        let mut problems = Vec::new();
        for (&attr, col) in self.attrs.iter().zip(&self.cols) {
            let d = self.cell(col, x, y, &mut lookups);
            if let Some(c) = ProblemClass::from_diagnosis(d) {
                problems.push((attr, c));
            }
        }
        self.lookups.fetch_add(lookups, Ordering::Relaxed);
        Signature::from_problems(problems)
    }

    /// Whether the schema is narrow enough for [`Self::packed_signature_of`]
    /// (one nibble per attribute in a `u64`; class count is 6 < 15).
    fn can_pack(&self) -> bool {
        self.attrs.len() <= 16
    }

    /// [`Self::signature_of`] as a packed `u64` — nibble `i` holds
    /// `class + 1` for the `i`-th kernel attribute (`0` = no problem),
    /// so a clean pair is `0` and no per-pair allocation ever happens.
    /// Only valid when [`Self::can_pack`].
    fn packed_signature_of(&self, x: TupleId, y: TupleId) -> u64 {
        let mut lookups = 0u64;
        let mut packed = 0u64;
        for (i, col) in self.cols.iter().enumerate() {
            let d = self.cell(col, x, y, &mut lookups);
            if let Some(c) = ProblemClass::from_diagnosis(d) {
                packed |= (c as u64 + 1) << (4 * i);
            }
        }
        self.lookups.fetch_add(lookups, Ordering::Relaxed);
        packed
    }

    /// Packed signatures for every pair, in input order. Unlike
    /// [`Self::packed_signature_of`] per pair, the sweep is *columnar*:
    /// each worker runs one full pass over its chunk per attribute, so
    /// a pass's working set is a single column's headers and cache
    /// table (LLC-resident at debugger scale) instead of every
    /// attribute's interleaved. Lookup counts are batched per chunk.
    /// Only valid when [`Self::can_pack`].
    fn packed_signatures(&self, pairs: &[(TupleId, TupleId)]) -> Vec<u64> {
        let workers = self.threads.min(pairs.len().max(1));
        let sweep = |chunk: &[(TupleId, TupleId)], out: &mut [u64]| -> u64 {
            let mut lookups = 0u64;
            for (i, col) in self.cols.iter().enumerate() {
                let shift = 4 * i as u32;
                for (&(x, y), slot) in chunk.iter().zip(out.iter_mut()) {
                    let va = col.col_a[x as usize];
                    let vb = col.col_b[y as usize];
                    let d = match (va == ValueDict::MISSING, vb == ValueDict::MISSING) {
                        (true, true) => Diagnosis::MissingBoth,
                        (true, false) | (false, true) => Diagnosis::MissingOneSide,
                        _ => {
                            lookups += 1;
                            col.diagnose_present(va, vb)
                        }
                    };
                    if let Some(c) = ProblemClass::from_diagnosis(d) {
                        *slot |= (c as u64 + 1) << shift;
                    }
                }
            }
            lookups
        };
        let mut out = vec![0u64; pairs.len()];
        if workers <= 1 {
            let lookups = sweep(pairs, &mut out);
            self.lookups.fetch_add(lookups, Ordering::Relaxed);
            return out;
        }
        let per = pairs.len().div_ceil(workers);
        let obs = mc_obs::ObsContext::current();
        std::thread::scope(|s| {
            for (chunk_in, chunk_out) in pairs.chunks(per).zip(out.chunks_mut(per)) {
                let obs = &obs;
                let sweep = &sweep;
                s.spawn(move || {
                    let _obs = obs.attach();
                    let lookups = sweep(chunk_in, chunk_out);
                    self.lookups.fetch_add(lookups, Ordering::Relaxed);
                });
            }
        });
        out
    }

    /// Expands a packed signature back into the [`Signature`] the
    /// per-pair oracle would have produced.
    fn unpack_signature(&self, packed: u64) -> Signature {
        let problems = self
            .attrs
            .iter()
            .enumerate()
            .filter_map(|(i, &attr)| {
                let nib = (packed >> (4 * i)) & 0xF;
                if nib == 0 {
                    return None;
                }
                let class = match nib - 1 {
                    0 => ProblemClass::Missing,
                    1 => ProblemClass::Abbreviation,
                    2 => ProblemClass::Misspelling,
                    3 => ProblemClass::TokenNoise,
                    4 => ProblemClass::Numeric,
                    _ => ProblemClass::Different,
                };
                Some((attr, class))
            })
            .collect();
        Signature::from_problems(problems)
    }

    /// Groups the candidate union by problem signature, most pervasive
    /// first — output-identical to [`crate::pervasive::pervasiveness`]
    /// (signatures computed in parallel, aggregation in union order).
    pub fn pervasiveness(
        &self,
        union: &CandidateUnion,
        confirmed: &[(TupleId, TupleId)],
    ) -> Vec<ProblemGroup> {
        let _span = mc_obs::span!("mc.core.explain.pervasiveness");
        let pairs: Vec<(TupleId, TupleId)> =
            union.pairs.iter().map(|&k| split_pair_key(k)).collect();
        let confirmed_set: FxHashSet<(TupleId, TupleId)> = confirmed.iter().copied().collect();
        let mut out: Vec<ProblemGroup> = if self.can_pack() {
            // Fast path: group by the packed `u64` signature — the full
            // `Signature` materializes once per *group*, never per pair.
            let sigs = self.packed_signatures(&pairs);
            let mut groups: FxHashMap<u64, ProblemGroup> = FxHashMap::default();
            for (&(x, y), packed) in pairs.iter().zip(sigs) {
                if packed == 0 {
                    continue;
                }
                let g = groups.entry(packed).or_insert_with(|| ProblemGroup {
                    signature: self.unpack_signature(packed),
                    pairs: Vec::new(),
                    confirmed: 0,
                });
                if confirmed_set.contains(&(x, y)) {
                    g.confirmed += 1;
                }
                g.pairs.push((x, y));
            }
            groups.into_values().collect()
        } else {
            let sigs = self.signatures(&pairs);
            let mut groups: FxHashMap<Signature, ProblemGroup> = FxHashMap::default();
            for (&(x, y), sig) in pairs.iter().zip(sigs) {
                if sig.is_clean() {
                    continue;
                }
                // check-then-insert instead of `entry(sig.clone())`: the
                // signature is cloned once per *group*, not once per pair.
                if !groups.contains_key(&sig) {
                    groups.insert(
                        sig.clone(),
                        ProblemGroup {
                            signature: sig.clone(),
                            pairs: Vec::new(),
                            confirmed: 0,
                        },
                    );
                }
                let g = groups.get_mut(&sig).expect("just inserted");
                if confirmed_set.contains(&(x, y)) {
                    g.confirmed += 1;
                }
                g.pairs.push((x, y));
            }
            groups.into_values().collect()
        };
        out.sort_by(|x, y| {
            y.confirmed
                .cmp(&x.confirmed)
                .then(y.pairs.len().cmp(&x.pairs.len()))
                .then(x.signature.cmp(&y.signature))
        });
        out
    }

    /// Candidate pairs sharing (at least) a killed match's problems —
    /// output-identical to [`crate::pervasive::similar_pairs`].
    pub fn similar_pairs(
        &self,
        union: &CandidateUnion,
        killed_match: (TupleId, TupleId),
    ) -> Vec<(TupleId, TupleId)> {
        let pairs: Vec<(TupleId, TupleId)> =
            union.pairs.iter().map(|&k| split_pair_key(k)).collect();
        if self.can_pack() {
            // Packed subsignature test: at most one problem class per
            // attribute, so "other exhibits every problem in target"
            // means every non-zero target nibble matches exactly.
            let target = self.packed_signature_of(killed_match.0, killed_match.1);
            let mask = nibble_mask(target);
            let sigs = self.packed_signatures(&pairs);
            return pairs
                .into_iter()
                .zip(sigs)
                .filter(|&((x, y), sig)| (x, y) != killed_match && sig & mask == target)
                .map(|(p, _)| p)
                .collect();
        }
        let target = self.signature_of(killed_match.0, killed_match.1);
        let sigs = self.signatures(&pairs);
        pairs
            .into_iter()
            .zip(sigs)
            .filter(|&((x, y), ref sig)| (x, y) != killed_match && target.is_subsignature_of(sig))
            .map(|(p, _)| p)
            .collect()
    }

    /// Deterministic cache statistics (see [`KernelStats`]).
    pub fn stats(&self) -> KernelStats {
        KernelStats {
            distinct_values: self.cols.iter().map(|c| c.values.len() as u64).sum(),
            lookups: self.lookups.load(Ordering::Relaxed),
            cache_entries: self.cols.iter().map(AttrColumn::cache_entries).sum(),
        }
    }

    /// Records the kernel's cache behaviour into the attached metrics
    /// context (`mc.core.explain.*`).
    pub fn publish_counters(&self) {
        let stats = self.stats();
        mc_obs::counter!("mc.core.explain.diagnosed").add(stats.lookups);
        mc_obs::counter!("mc.core.explain.cache_entries").add(stats.cache_entries);
        mc_obs::counter!("mc.core.explain.cache_hits").add(stats.cache_hits());
    }

    /// Maps `f` over `pairs` preserving order, splitting contiguous
    /// chunks across scoped workers (the `FeatureMatrix::ensure_upto`
    /// pattern, with the observability context re-attached per worker).
    fn par_map<T, F>(&self, pairs: &[(TupleId, TupleId)], f: F) -> Vec<T>
    where
        T: Send,
        F: Fn((TupleId, TupleId)) -> T + Sync,
    {
        let workers = self.threads.min(pairs.len().max(1));
        if workers <= 1 {
            return pairs.iter().map(|&p| f(p)).collect();
        }
        let mut out: Vec<Option<T>> = (0..pairs.len()).map(|_| None).collect();
        let per = pairs.len().div_ceil(workers);
        let obs = mc_obs::ObsContext::current();
        std::thread::scope(|s| {
            for (chunk_in, chunk_out) in pairs.chunks(per).zip(out.chunks_mut(per)) {
                let obs = &obs;
                let f = &f;
                s.spawn(move || {
                    let _obs = obs.attach();
                    for (&p, slot) in chunk_in.iter().zip(chunk_out.iter_mut()) {
                        *slot = Some(f(p));
                    }
                });
            }
        });
        out.into_iter().map(|x| x.unwrap()).collect()
    }
}

fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    }
}

/// Everything the pipeline's explain stage produces, built in one batch
/// pass: per-match explanations, the problems summary, pervasiveness
/// clustering over the *full* union, and per-config score context for
/// the `mc-explain/v1` wire schema.
#[derive(Debug, Default)]
pub struct ExplainOutput {
    /// Confirmed killed-off matches, in discovery order.
    pub confirmed: Vec<(TupleId, TupleId)>,
    /// One explanation per confirmed match.
    pub explanations: Vec<MatchExplanation>,
    /// Aggregated "blocker problems" summary.
    pub problems: Vec<(String, usize)>,
    /// Pervasiveness groups over the full candidate union.
    pub pervasive: Vec<ProblemGroup>,
    /// Per explanation, that pair's score in each config's top-k list
    /// (aligned with `explanations`; `None` = not on that list).
    pub explanation_scores: Vec<Vec<Option<f64>>>,
    /// Per config, the lowest score still on its top-k list — the floor
    /// a pair's score is measured against ("threshold gap").
    pub config_floors: Vec<Option<f64>>,
}

/// Runs the full batch explain stage: builds a [`DiagnosisKernel`],
/// explains every confirmed match, summarizes problems, clusters the
/// union by pervasiveness and extracts per-config score context.
/// `matches` are pair keys from the verifier, `threads` as in
/// [`DiagnosisKernel::build`].
pub fn explain_stage(
    a: &Table,
    b: &Table,
    union: &CandidateUnion,
    matches: &[u64],
    threads: usize,
) -> ExplainOutput {
    let kernel = DiagnosisKernel::build(a, b, threads);
    let confirmed: Vec<(TupleId, TupleId)> = matches.iter().map(|&k| split_pair_key(k)).collect();
    let explanations = kernel.explain_pairs(&confirmed);
    let problems = summarize_problems(&explanations, a.schema());
    let pervasive = kernel.pervasiveness(union, &confirmed);
    let index: FxHashMap<u64, usize> = union
        .pairs
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i))
        .collect();
    let explanation_scores: Vec<Vec<Option<f64>>> = matches
        .iter()
        .map(|k| match index.get(k) {
            Some(&i) => union.scores.iter().map(|s| s[i]).collect(),
            None => vec![None; union.scores.len()],
        })
        .collect();
    let config_floors: Vec<Option<f64>> = union
        .scores
        .iter()
        .map(|s| {
            let floor = s.iter().flatten().copied().fold(f64::INFINITY, f64::min);
            floor.is_finite().then_some(floor)
        })
        .collect();
    kernel.publish_counters();
    mc_obs::counter!("mc.core.explain.pairs").add((confirmed.len() + union.len()) as u64);
    ExplainOutput {
        confirmed,
        explanations,
        problems,
        pervasive,
        explanation_scores,
        config_floors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explain::explain_match;
    use crate::pervasive;
    use crate::ssj::TopKList;
    use mc_table::{pair_key, Schema, Tuple};
    use std::sync::Arc;

    fn tables() -> (Table, Table) {
        let schema = Arc::new(Schema::from_names(["name", "city", "age"]));
        let mut a = Table::new("A", Arc::clone(&schema));
        a.push(Tuple::from_present(["Dave Smith", "Altanta", "18"]));
        a.push(Tuple::from_present(["Joe Welson", "new york", "25"]));
        a.push(Tuple::new(vec![
            Some("Ann Cole".into()),
            None,
            Some("100".into()),
        ]));
        a.push(Tuple::from_present(["smith dave", " ", "40"]));
        let mut b = Table::new("B", schema);
        b.push(Tuple::from_present(["David Smith", "Atlanta", "18"]));
        b.push(Tuple::from_present(["Joe Welson", "NY", "95"]));
        b.push(Tuple::new(vec![Some("Ann Cole".into()), None, None]));
        b.push(Tuple::from_present(["dave smith", "chicago", "seattle"]));
        (a, b)
    }

    fn union_of(pairs: &[(u32, u32)]) -> CandidateUnion {
        let mut l = TopKList::new(16);
        for (i, &(x, y)) in pairs.iter().enumerate() {
            l.insert(0.9 - i as f64 * 0.01, pair_key(x, y));
        }
        CandidateUnion::build(&[l])
    }

    #[test]
    fn kernel_matches_per_pair_oracle_on_all_cells() {
        let (a, b) = tables();
        for threads in [1, 3] {
            let kernel = DiagnosisKernel::build(&a, &b, threads);
            for x in 0..a.len() as TupleId {
                for y in 0..b.len() as TupleId {
                    let batch = kernel.diagnose_pair(x, y);
                    let oracle = explain_match(&a, &b, x, y);
                    assert_eq!(batch, oracle.per_attr, "pair ({x}, {y})");
                }
            }
        }
    }

    #[test]
    fn pervasiveness_and_similar_pairs_match_slow_path() {
        let (a, b) = tables();
        let union = union_of(&[(0, 0), (1, 1), (2, 2), (3, 3), (0, 3), (2, 1)]);
        let confirmed = vec![(0u32, 0u32), (1, 1)];
        let kernel = DiagnosisKernel::build(&a, &b, 2);
        let fast = kernel.pervasiveness(&union, &confirmed);
        let slow = pervasive::pervasiveness(&a, &b, &union, &confirmed);
        assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(&slow) {
            assert_eq!(f.signature, s.signature);
            assert_eq!(f.pairs, s.pairs);
            assert_eq!(f.confirmed, s.confirmed);
        }
        assert_eq!(
            kernel.similar_pairs(&union, (0, 0)),
            pervasive::similar_pairs(&a, &b, &union, (0, 0))
        );
    }

    #[test]
    fn cache_dedupes_repeated_value_pairs() {
        let schema = Arc::new(Schema::from_names(["city"]));
        let mut a = Table::new("A", Arc::clone(&schema));
        let mut b = Table::new("B", schema);
        for _ in 0..50 {
            a.push(Tuple::from_present(["new york"]));
            b.push(Tuple::from_present(["ny"]));
        }
        let kernel = DiagnosisKernel::build(&a, &b, 1);
        let pairs: Vec<(TupleId, TupleId)> = (0..50).map(|i| (i, i)).collect();
        let out = kernel.explain_pairs(&pairs);
        assert!(out
            .iter()
            .all(|e| e.per_attr[0].1 == Diagnosis::Abbreviation));
        let stats = kernel.stats();
        assert_eq!(stats.distinct_values, 2);
        assert_eq!(stats.lookups, 50);
        assert_eq!(stats.cache_entries, 1);
        assert_eq!(stats.cache_hits(), 49);
    }

    #[test]
    fn explain_stage_bundles_scores_and_floors() {
        let (a, b) = tables();
        let union = union_of(&[(0, 0), (1, 1), (2, 2)]);
        let matches = vec![pair_key(0, 0), pair_key(1, 1)];
        let out = explain_stage(&a, &b, &union, &matches, 1);
        assert_eq!(out.confirmed, vec![(0, 0), (1, 1)]);
        assert_eq!(out.explanations.len(), 2);
        assert_eq!(out.explanation_scores.len(), 2);
        assert_eq!(out.explanation_scores[0].len(), union.scores.len());
        assert!(out.explanation_scores[0][0].is_some());
        assert_eq!(out.config_floors.len(), union.scores.len());
        let floor = out.config_floors[0].unwrap();
        assert!(union.scores[0].iter().flatten().all(|&s| s >= floor));
        assert!(!out.pervasive.is_empty());
    }
}

//! Incremental debugging sessions: delta-patched tables and killed-set
//! diffs instead of full re-runs.
//!
//! A debugging loop rarely restarts from scratch. The user fixes a few
//! rows, re-runs the blocker, or only *changes the blocker* (a new
//! killed set `C` over unchanged tables) — and the paper's pipeline
//! would re-tokenize both tables, rebuild every arena and re-join every
//! config. A [`DebugSession`] instead keeps the pipeline's state alive
//! between runs and patches it in place:
//!
//! * **Tables** are edited through [`TableDelta`]s (insert / delete /
//!   update batches). Deletes tombstone rows so every [`TupleId`] — and
//!   with it every pair key, gold match and killed entry — stays valid.
//! * **Tokenization** is maintained by an [`IncrementalDict`]: the cold
//!   build's interning dictionary plus its frozen rank order, extended
//!   append-only as edited rows introduce new tokens. Frozen ranks are
//!   *not* the document-frequency order a cold rebuild would choose, but
//!   every similarity measure is a function of multiset overlaps and
//!   record lengths, which relabeling ranks cannot change — so results
//!   are bit-identical anyway (rank-permutation invariance).
//! * **Arenas** are patched record-by-record
//!   ([`RecordArena::patch_record`]): tombstone + append into a spill
//!   region, compacted back into one contiguous buffer when the garbage
//!   ratio passes [`IncrParams::compact_threshold`].
//! * **Top-k lists** are maintained, not recomputed. Each config keeps
//!   `K = k + margin` entries; a rerun drops the entries that touch
//!   changed records (or were newly killed), re-joins only the changed
//!   slices of the cross product via *masked arena views*, re-scores
//!   un-killed pairs directly, and merges — the scoring kernel runs only
//!   for pairs touching the delta. When the surviving prefix falls below
//!   the report size `k`, that config falls back to one full join
//!   *seeded* with the survivors (still much cheaper than cold: seeds
//!   raise the pruning threshold immediately).
//! * **Killed-set-only diffs** are the fast path: every join is reused
//!   verbatim; newly-killed pairs are dropped from the lists and
//!   un-killed pairs are re-scored directly against the cached arenas.
//!
//! ## Exactness
//!
//! [`DebugSession::rerun`] returns a [`DebugReport`] **byte-identical**
//! (metrics aside) to a cold run on the patched tables with the same
//! normalized parameters, at any thread or shard count. The argument,
//! config by config, with `v` valid entries before the rerun and `v′`
//! survivors after dropping the `d` entries that touch the delta:
//!
//! * Survivors' scores are unchanged (their records are untouched), and
//!   every survivor canonically outranks every untouched pair *missing*
//!   from the kept list — missing pairs were already outranked by the
//!   old list's last valid entry.
//! * The delta joins cover exactly the pairs whose scores may have
//!   changed: `changed_A × B` and `(A ∖ changed_A) × changed_B`; direct
//!   re-scoring covers un-killed untouched pairs. Entries these produce
//!   beyond their own `K` capacity are outranked by ≥ `K ≥ v′` merged
//!   entries, so they cannot enter the merged top-`v′`.
//! * Therefore the canonical top-`v′` of (survivors ∪ delta joins ∪
//!   re-scored un-killed pairs) equals the cold K-run's top-`v′`, and
//!   since `v′ ≥ k` whenever this path is taken, the report's top-`k`
//!   prefix is exact. Otherwise the config re-joins fully (seeded), which
//!   is exact by construction.
//!
//! Sessions **require** a fixed QJoin `q` ([`QStrategy::Fixed`]): `Auto`
//! re-selects `q` from prelude-join costs, which the patched state
//! cannot reproduce bit-identically. The overlap database is likewise
//! forced off (`reuse_overlaps = false`) — its decomposed-score
//! approximation depends on which pairs a writer config scored, which
//! differs between a cold and an incremental execution. Parent→child
//! top-k seeding is forced off too (`reuse_topk = false`): seeds are
//! inserted into a child's list verbatim, so with `q > 1` a parent can
//! leak pairs below the child's q-overlap floor into its list — pairs no
//! q-join over the child's own universe can rediscover, which makes each
//! list depend on the whole ancestor chain instead of being the top-K of
//! one config's candidate universe. With both knobs off, every list is a
//! pure function of (arena contents, killed set, `k`, `q`, measure) —
//! the property all of the maintenance above relies on.
//!
//! Everything the session computes is instrumented under
//! `mc.core.incr.*` (see the metrics catalog in `DESIGN.md`).

use crate::config::{ConfigGenerator, ConfigTree, PromisingAttrs};
use crate::debugger::{DebugReport, DebuggerParams, MatchCatcher, Stage};
use crate::features::FeatureExtractor;
use crate::joint::{run_joint_with_arenas, CandidateUnion, QStrategy};
use crate::oracle::Oracle;
use crate::ssj::{
    topk_join_sharded, topk_semi_join, ExactScorer, JoinScratchPool, SsjInstance, SsjParams,
    TopKList,
};
use crate::store_io;
use crate::verify::run_verifier;
use mc_obs::MetricsSnapshot;
use mc_store::{ArtifactKind, Digest, Store};
use mc_strsim::arena::RecordArena;
use mc_strsim::dict::{IncrementalDict, TokenizedTable};
use mc_strsim::measures::multiset_overlap;
use mc_strsim::tokenize::Tokenizer;
use mc_table::hash::{fx_set, FxHashSet};
use mc_table::{split_pair_key, IncrTableStats, PairSet, Table, TableDelta, TupleId};

/// Tuning knobs of the incremental update path.
#[derive(Debug, Clone, Copy)]
pub struct IncrParams {
    /// Extra top-k slack per config: sessions maintain `K = k + margin`
    /// entries so that dropping delta-touched entries usually leaves at
    /// least `k` survivors (no full re-join). Larger margins make
    /// re-joins rarer but cost memory and cold-start work.
    pub margin: usize,
    /// Arena compaction trigger: when a patched arena's dead-token
    /// fraction ([`RecordArena::garbage_ratio`]) exceeds this, the arena
    /// is compacted back into one contiguous buffer.
    pub compact_threshold: f64,
}

impl Default for IncrParams {
    fn default() -> Self {
        IncrParams {
            margin: 256,
            compact_threshold: 0.4,
        }
    }
}

/// A live incremental debugging session: the pipeline's state, kept
/// between runs so that [`DebugSession::rerun`] can patch it instead of
/// recomputing it. Created by [`MatchCatcher::start_session`].
pub struct DebugSession {
    /// Normalized parameters (fixed `q`, overlap reuse off).
    params: DebuggerParams,
    a: Table,
    b: Table,
    killed: PairSet,
    promising: PromisingAttrs,
    tree: ConfigTree,
    configs: Vec<crate::config::Config>,
    tok_a: TokenizedTable,
    tok_b: TokenizedTable,
    dict: IncrementalDict,
    arenas: Vec<(RecordArena, RecordArena)>,
    /// Per-config maintained entries, canonically sorted (score
    /// descending, pair key ascending), at most `K = k + margin` long.
    lists: Vec<Vec<(f64, u64)>>,
    /// Per-config count of *valid* leading entries: the prefix proven
    /// equal to a cold K-run's. Entries beyond it may be incomplete
    /// after incremental rounds and are never reported.
    valid: Vec<usize>,
    q: usize,
    /// Per-table statistics counters, maintained under deltas so a rerun
    /// reproduces the cold run's promising-attribute selection without
    /// rescanning two full tables ([`IncrTableStats::snapshot`] equals a
    /// fresh [`mc_table::TableStats::compute`] exactly).
    stats_a: IncrTableStats,
    stats_b: IncrTableStats,
    /// Warm per-worker join scratches for the maintenance joins; dense
    /// pair-state capped low because delta joins are candidate-sparse.
    pool: JoinScratchPool,
    /// Union key of the most recently published candidate union, the
    /// `derived_from` provenance of the next one.
    base_union: Option<Digest>,
}

/// Canonical entry order: score descending, pair key ascending — the
/// same total order [`TopKList`] keeps.
fn canonical_sort(entries: &mut [(f64, u64)]) {
    entries.sort_unstable_by(|x, y| y.0.total_cmp(&x.0).then(x.1.cmp(&y.1)));
}

/// Dense pair-state budget for the session pool's scratches. Delta joins
/// pair a handful of changed records against a full table: their
/// discovered-pair sets are tiny, so the sparse state map wins on memory
/// (a full-range dense table would be `|A|·|B|/shards` slots) while small
/// cold-sized rejoins still fit under this cap and stay dense.
const SESSION_DENSE_CAP: usize = 1 << 20;

impl MatchCatcher {
    /// Starts an incremental debugging session: runs the full pipeline
    /// cold (at list size `K = k + margin`) and returns the live session
    /// plus the first [`DebugReport`].
    ///
    /// The session normalizes parameters for incremental exactness:
    /// `reuse_overlaps` is forced off, and a [`QStrategy::Auto`] `q` is
    /// rejected (panic) — fix `q` explicitly for sessions. The returned
    /// report is byte-identical (metrics aside) to [`MatchCatcher::run`]
    /// with the same normalized parameters.
    pub fn start_session(
        &self,
        a: Table,
        b: Table,
        killed: PairSet,
        oracle: &mut dyn Oracle,
    ) -> (DebugSession, DebugReport) {
        if let Err(e) = self.params.validate() {
            panic!("invalid DebuggerParams: {e}");
        }
        let mut params = self.params.clone();
        let q = match params.joint.q {
            QStrategy::Fixed(q) => q.max(1),
            QStrategy::Auto { .. } => panic!(
                "incremental sessions require QStrategy::Fixed: Auto re-selects q from \
                 prelude-join costs, which a patched session cannot reproduce bit-identically"
            ),
        };
        params.joint.q = QStrategy::Fixed(q);
        // The overlap DB's decomposed-score approximation depends on
        // which pairs each writer scored — execution-order state no
        // incremental rerun can reproduce. Off, every score comes from
        // the one exact kernel.
        params.joint.reuse_overlaps = false;
        // Parent→child seeding inserts parent pairs verbatim, letting
        // sub-q-overlap pairs leak into a child's list (see the module
        // docs); each list must be the top-K of its own config's
        // universe for incremental maintenance to be exact.
        params.joint.reuse_topk = false;

        let _obs = params.obs.attach();
        let baseline = MetricsSnapshot::capture();
        let (stats_a, stats_b, promising, tree) = {
            let _span = mc_obs::Span::enter(Stage::Prepare.span_name());
            let stats_a = IncrTableStats::compute(&a);
            let stats_b = IncrTableStats::compute(&b);
            let generator = ConfigGenerator::new(params.config);
            let promising =
                generator.promising_from_stats(&a, &stats_a.snapshot(&a), &stats_b.snapshot(&b));
            assert!(
                !promising.attrs.is_empty(),
                "no promising attributes — tables have no usable string/categorical columns"
            );
            let tree = generator.build_tree(&promising);
            (stats_a, stats_b, promising, tree)
        };
        let (tok_a, tok_b, dict) = {
            let _span = mc_obs::Span::enter(Stage::Prepare.span_name());
            let (tok_a, tok_b, order, dict) =
                TokenizedTable::build_pair_retained(&a, &b, &promising.attrs, Tokenizer::Word);
            (tok_a, tok_b, IncrementalDict::new(dict, &order))
        };
        let configs = tree.configs();
        let pool = JoinScratchPool::new(params.joint.threads.max(1));
        pool.set_dense_cap(SESSION_DENSE_CAP);
        let mut session = DebugSession {
            params,
            a,
            b,
            killed,
            promising,
            tree,
            configs,
            tok_a,
            tok_b,
            dict,
            arenas: Vec::new(),
            lists: Vec::new(),
            valid: Vec::new(),
            q,
            stats_a,
            stats_b,
            pool,
            base_union: None,
        };
        session.cold_joint();
        let report = session.finish(oracle, baseline);
        (session, report)
    }
}

impl DebugSession {
    /// The session's normalized parameters.
    pub fn params(&self) -> &DebuggerParams {
        &self.params
    }

    /// Current (patched) table A.
    pub fn table_a(&self) -> &Table {
        &self.a
    }

    /// Current (patched) table B.
    pub fn table_b(&self) -> &Table {
        &self.b
    }

    /// Current killed set `C`.
    pub fn killed(&self) -> &PairSet {
        &self.killed
    }

    /// The maintained list size `K = k + margin`.
    fn cap(&self) -> usize {
        self.params.joint.k + self.params.incr.margin
    }

    /// Estimated resident heap footprint of the session's pipeline
    /// state, in bytes: raw tables, tokenized rank vectors, per-config
    /// arenas (mapped pages count like owned bytes — eviction cares
    /// about address-space pressure either way), and maintained top-K
    /// lists. An *estimate* for eviction budgeting (`mc-serve`'s
    /// max-resident-bytes policy), not an allocator-exact accounting:
    /// per-allocation headers and `Vec` slack are approximated by a
    /// flat per-row constant.
    pub fn resident_bytes(&self) -> usize {
        const PER_VEC: usize = 24; // Vec header (ptr, len, cap)
        let mut total = 0usize;
        for table in [&self.a, &self.b] {
            for id in 0..table.len() as TupleId {
                for a in 0..table.schema().len() {
                    total += PER_VEC
                        + table
                            .value(id, mc_table::AttrId(a as u16))
                            .map_or(0, str::len);
                }
            }
        }
        for tok in [&self.tok_a, &self.tok_b] {
            for attr in 0..tok.attr_count() {
                for row in 0..tok.rows() as TupleId {
                    total += PER_VEC + tok.ranks(attr, row).len() * 4;
                }
            }
        }
        for (arena_a, arena_b) in &self.arenas {
            for arena in [arena_a, arena_b] {
                // `total_tokens` counts live tokens and is valid on
                // patched (non-compact) arenas, where the raw buffer
                // accessor would refuse; garbage spans pending
                // compaction are deliberately not billed.
                total += arena.total_tokens() * 4 + (arena.len() + 1) * 8;
            }
        }
        for list in &self.lists {
            total += PER_VEC + list.len() * 16;
        }
        total += self.dict.len() * 32; // interned token strings + rank table
        total
    }

    /// Builds arenas and runs the joint stage cold at capacity `K`,
    /// replacing the session's arenas and lists.
    ///
    /// With a configured store the arenas come through the warm path
    /// first — zero-copy mmapped `Postings` payloads, byte-codec
    /// fallback — and misses are built cold and published, exactly like
    /// the one-shot [`MatchCatcher::run`]. A warm-loaded arena stays
    /// mapped until the first delta patches it
    /// ([`RecordArena::make_patchable`] copies it out then), so a
    /// session that only edits the killed set never pays the copy.
    fn cold_joint(&mut self) {
        let _span = mc_obs::Span::enter(Stage::TopK.span_name());
        let threads = self.params.joint.threads.max(1);
        let store = self
            .params
            .store
            .as_ref()
            .and_then(|c| match Store::open(c) {
                Ok(s) => Some(s),
                Err(_) => {
                    mc_obs::counter!("mc.store.open_failed").inc();
                    None
                }
            });
        let tok_key = store.as_ref().map(|_| {
            store_io::tok_key(
                self.a.content_digest(),
                self.b.content_digest(),
                &self.promising.attrs,
                Tokenizer::Word,
            )
        });
        self.arenas = crate::debugger::assemble_arenas_cached(
            &self.tok_a,
            &self.tok_b,
            &self.configs,
            threads,
            store.as_ref(),
            tok_key,
        );
        let mut jp = self.params.joint;
        jp.k = self.cap();
        let out = run_joint_with_arenas(
            &self.tok_a,
            &self.tok_b,
            &self.killed,
            &self.tree,
            jp,
            &self.arenas,
        );
        self.q = out.q_used;
        self.lists = out.lists.iter().map(TopKList::sorted_entries).collect();
        self.valid = self.lists.iter().map(Vec::len).collect();
    }

    /// Re-runs the debugger against patched state.
    ///
    /// `delta_a` / `delta_b` edit the tables (pass
    /// [`TableDelta::new()`] for "unchanged"); `new_killed` replaces the
    /// killed set (`None` keeps the current one — with empty deltas that
    /// makes the rerun a pure replay). Both deltas are validated before
    /// either is applied, so an error leaves the session untouched.
    ///
    /// The returned report is byte-identical (metrics aside) to a cold
    /// run on the patched tables with the session's parameters.
    pub fn rerun(
        &mut self,
        delta_a: &TableDelta,
        delta_b: &TableDelta,
        new_killed: Option<PairSet>,
        oracle: &mut dyn Oracle,
    ) -> Result<DebugReport, mc_table::DeltaError> {
        let _obs = self.params.obs.attach();
        let baseline = MetricsSnapshot::capture();
        let _span = mc_obs::span!("mc.core.incr.rerun");
        mc_obs::counter!("mc.core.incr.reruns").inc();

        delta_a.validate(&self.a)?;
        delta_b.validate(&self.b)?;

        // Killed-set diff, computed against the *current* killed set
        // before it is replaced. Sorted for deterministic iteration.
        let (newly_killed, unkilled) = match &new_killed {
            Some(nk) => {
                let _span = mc_obs::span!("mc.core.incr.killed_diff");
                let mut newly: Vec<u64> = nk
                    .iter()
                    .filter(|&(x, y)| !self.killed.contains(x, y))
                    .map(|(x, y)| mc_table::pair_key(x, y))
                    .collect();
                let mut unk: Vec<u64> = self
                    .killed
                    .iter()
                    .filter(|&(x, y)| !nk.contains(x, y))
                    .map(|(x, y)| mc_table::pair_key(x, y))
                    .collect();
                newly.sort_unstable();
                unk.sort_unstable();
                (newly, unk)
            }
            None => (Vec::new(), Vec::new()),
        };
        let tables_changed = !delta_a.is_empty() || !delta_b.is_empty();
        if !tables_changed && new_killed.is_some() {
            mc_obs::counter!("mc.core.incr.killed_fast_path").inc();
        }

        let (changed_a, changed_b) = if tables_changed {
            // Fold the deltas into the stats counters against the
            // pre-patch rows, then patch the tables.
            self.stats_a.apply_delta(&self.a, delta_a);
            self.stats_b.apply_delta(&self.b, delta_b);
            let ca = delta_a.apply(&mut self.a)?;
            let cb = delta_b.apply(&mut self.b)?;
            mc_obs::counter!("mc.core.incr.records_patched").add((ca.len() + cb.len()) as u64);
            (ca, cb)
        } else {
            (Vec::new(), Vec::new())
        };

        if let Some(nk) = new_killed {
            self.killed = nk;
        }

        if tables_changed {
            // The promising attribute set and the config tree are
            // functions of table statistics, so edits can change them.
            // Recompute both; if either differs from the session's, the
            // maintained lists describe the wrong configs — fall back to
            // a full cold rebuild (exact by construction).
            let generator = ConfigGenerator::new(self.params.config);
            let promising = {
                let _span = mc_obs::span!("mc.core.incr.promising");
                generator.promising_from_stats(
                    &self.a,
                    &self.stats_a.snapshot(&self.a),
                    &self.stats_b.snapshot(&self.b),
                )
            };
            assert!(
                !promising.attrs.is_empty(),
                "no promising attributes left after patching"
            );
            let tree = generator.build_tree(&promising);
            let same_shape = promising.attrs == self.promising.attrs
                && tree.configs() == self.configs
                && (0..tree.len()).all(|i| tree.parent(i) == self.tree.parent(i));
            if !same_shape {
                mc_obs::counter!("mc.core.incr.full_rebuilds").inc();
                self.promising = promising;
                self.tree = tree;
                self.configs = self.tree.configs();
                let (tok_a, tok_b, order, dict) = TokenizedTable::build_pair_retained(
                    &self.a,
                    &self.b,
                    &self.promising.attrs,
                    Tokenizer::Word,
                );
                self.tok_a = tok_a;
                self.tok_b = tok_b;
                self.dict = IncrementalDict::new(dict, &order);
                self.cold_joint();
                return Ok(self.finish(oracle, baseline));
            }
            // Stats (e-scores, average token counts) may still have
            // drifted; adopt the recomputed set so the session's view
            // matches what a cold run would report.
            self.promising = promising;
            self.patch_tokenized(&changed_a, &changed_b);
        }

        let changed_a: FxHashSet<TupleId> = changed_a.into_iter().collect();
        let changed_b: FxHashSet<TupleId> = changed_b.into_iter().collect();
        self.maintain_lists(&changed_a, &changed_b, &newly_killed, &unkilled);
        Ok(self.finish(oracle, baseline))
    }

    /// Patches the tokenized tables and every config arena for the
    /// changed rows, compacting arenas whose garbage ratio passed the
    /// threshold.
    fn patch_tokenized(&mut self, changed_a: &[TupleId], changed_b: &[TupleId]) {
        let _span = mc_obs::span!("mc.core.incr.patch");
        let attrs = self.promising.attrs.clone();
        // `apply` reports updates/deletes first, then inserts in
        // ascending id order, so `push_row` ids line up.
        for &id in changed_a {
            let per_attr = self
                .dict
                .retokenize_row(&self.a, id, &attrs, Tokenizer::Word);
            if (id as usize) < self.tok_a.rows() {
                self.tok_a.set_row(id, per_attr);
            } else {
                let nid = self.tok_a.push_row(per_attr);
                debug_assert_eq!(nid, id, "insert ids must be dense");
            }
        }
        for &id in changed_b {
            let per_attr = self
                .dict
                .retokenize_row(&self.b, id, &attrs, Tokenizer::Word);
            if (id as usize) < self.tok_b.rows() {
                self.tok_b.set_row(id, per_attr);
            } else {
                let nid = self.tok_b.push_row(per_attr);
                debug_assert_eq!(nid, id, "insert ids must be dense");
            }
        }
        let threshold = self.params.incr.compact_threshold;
        for (ci, (arena_a, arena_b)) in self.arenas.iter_mut().enumerate() {
            let pos = self.configs[ci].positions();
            for (arena, tok, changed) in [
                (&mut *arena_a, &self.tok_a, changed_a),
                (&mut *arena_b, &self.tok_b, changed_b),
            ] {
                for &id in changed {
                    let merged = tok.merged(&pos, id);
                    if (id as usize) < arena.len() {
                        arena.patch_record(id, &merged);
                    } else {
                        let nid = arena.push_record(&merged);
                        debug_assert_eq!(nid, id, "arena inserts must be dense");
                    }
                }
                if arena.garbage_ratio() > threshold {
                    arena.compact();
                    mc_obs::counter!("mc.core.incr.compactions").inc();
                }
            }
        }
    }

    /// Incrementally maintains every config's top-K entries after a
    /// patch and/or killed-set diff. See the module docs for the
    /// exactness argument.
    fn maintain_lists(
        &mut self,
        changed_a: &FxHashSet<TupleId>,
        changed_b: &FxHashSet<TupleId>,
        newly_killed: &[u64],
        unkilled: &[u64],
    ) {
        let _span = mc_obs::Span::enter(Stage::TopK.span_name());
        let cap = self.cap();
        let k = self.params.joint.k;
        let ssj = SsjParams {
            k: cap,
            q: self.q,
            measure: self.params.joint.measure,
        };
        let measure = self.params.joint.measure;
        let newly_killed: FxHashSet<u64> = newly_killed.iter().copied().collect();
        let threads = self.params.joint.threads.max(1);
        let mut rescored = 0u64;
        let mut reused = 0u64;
        let mut rejoins = 0u64;

        for i in 0..self.configs.len() {
            let (arena_a, arena_b) = &self.arenas[i];
            let survivors: Vec<(f64, u64)> = self.lists[i][..self.valid[i]]
                .iter()
                .copied()
                .filter(|&(_, p)| {
                    let (x, y) = split_pair_key(p);
                    !changed_a.contains(&x) && !changed_b.contains(&y) && !newly_killed.contains(&p)
                })
                .collect();
            reused += survivors.len() as u64;

            if survivors.len() < k {
                // Too few survivors to guarantee an exact top-k prefix
                // from merging: one full join, seeded with the
                // survivors (their scores are still valid, so the
                // threshold starts high).
                rejoins += 1;
                let inst = SsjInstance {
                    records_a: arena_a,
                    records_b: arena_b,
                    killed: &self.killed,
                };
                // Fresh-merge counts come from the kernel's own counter:
                // per-scratch counters are out of reach inside the
                // sharded workers.
                let scored_before = MetricsSnapshot::capture();
                let list = topk_join_sharded(
                    inst,
                    ssj,
                    |_| ExactScorer(measure),
                    &survivors,
                    None,
                    threads,
                    threads,
                    Some(&self.pool),
                );
                rescored += MetricsSnapshot::capture()
                    .since(&scored_before)
                    .counter("mc.core.ssj.scored");
                self.lists[i] = list.sorted_entries();
                self.valid[i] = self.lists[i].len();
                continue;
            }

            // Delta joins over masked views: every pair whose score may
            // have changed has an endpoint in a changed set, and the two
            // views partition those pairs (changed_A × B, then
            // unchanged_A × changed_B). Each join is seeded with the
            // best entries known so far — exactness does not need the
            // seeds, only the thresholds they raise. Both run the
            // heap-free semi-join with the changed set as the posted
            // side: the full table streams past a tiny postings index,
            // which beats the event kernel's per-token heap ops by an
            // order of magnitude and is bit-identical to it.
            let mut contributions: Vec<(f64, u64)> = Vec::new();
            let mut scratch = self.pool.lock_slot(0);
            if !changed_a.is_empty() {
                let masked = {
                    let _s = mc_obs::span!("mc.core.incr.mask");
                    arena_a.masked_view(|t| changed_a.contains(&t))
                };
                let inst = SsjInstance {
                    records_a: &masked,
                    records_b: arena_b,
                    killed: &self.killed,
                };
                let _s = mc_obs::span!("mc.core.incr.j1");
                let j1 = topk_semi_join(
                    inst,
                    ssj,
                    &ExactScorer(measure),
                    &survivors,
                    None,
                    &mut scratch,
                    0,
                );
                rescored += scratch.last_scored();
                contributions.extend(j1.sorted_entries());
            }
            if !changed_b.is_empty() {
                let (masked_a, masked_b) = {
                    let _s = mc_obs::span!("mc.core.incr.mask");
                    (
                        arena_a.masked_view(|t| !changed_a.contains(&t)),
                        arena_b.masked_view(|t| changed_b.contains(&t)),
                    )
                };
                let inst = SsjInstance {
                    records_a: &masked_a,
                    records_b: &masked_b,
                    killed: &self.killed,
                };
                let seed = if contributions.is_empty() {
                    &survivors
                } else {
                    &contributions
                };
                let _s = mc_obs::span!("mc.core.incr.j2");
                let j2 = topk_semi_join(
                    inst,
                    ssj,
                    &ExactScorer(measure),
                    seed,
                    None,
                    &mut scratch,
                    1,
                );
                rescored += scratch.last_scored();
                contributions.extend(j2.sorted_entries());
            }
            drop(scratch);
            // Un-killed untouched pairs re-enter the candidate universe;
            // delta joins already cover un-killed pairs with a changed
            // endpoint. Membership mirrors QJoin: at least `q` common
            // tokens (any pair beating the final threshold with ≥ q
            // common tokens is guaranteed discovered by a cold join, so
            // over-covering below the threshold is harmless — such pairs
            // cannot enter the valid prefix).
            for &p in unkilled {
                let (x, y) = split_pair_key(p);
                if (x as usize) >= arena_a.len()
                    || (y as usize) >= arena_b.len()
                    || changed_a.contains(&x)
                    || changed_b.contains(&y)
                    || self.killed.contains_key(p)
                {
                    continue;
                }
                let (ra, rb) = (arena_a.record(x), arena_b.record(y));
                let o = multiset_overlap(ra, rb);
                if o >= self.q {
                    rescored += 1;
                    contributions.push((measure.from_overlap(o, ra.len(), rb.len()), p));
                }
            }

            // Merge, dedup by pair key (duplicate keys always carry the
            // same score — every path computes the one exact kernel),
            // and keep the canonical top K. Only the top `v′` prefix is
            // proven exact; the tail stays as future merge fodder but is
            // never reported.
            let v2 = survivors.len();
            let mut seen: FxHashSet<u64> = fx_set();
            let mut merged: Vec<(f64, u64)> = Vec::with_capacity(v2 + contributions.len());
            for (s, p) in survivors.into_iter().chain(contributions) {
                if seen.insert(p) {
                    merged.push((s, p));
                }
            }
            canonical_sort(&mut merged);
            merged.truncate(cap);
            self.lists[i] = merged;
            self.valid[i] = v2.min(self.lists[i].len());
        }
        mc_obs::counter!("mc.core.incr.pairs_rescored").add(rescored);
        mc_obs::counter!("mc.core.incr.pairs_reused").add(reused);
        mc_obs::counter!("mc.core.incr.full_rejoins").add(rejoins);
    }

    /// Builds the report from the maintained lists: truncate each
    /// config's valid prefix to `k`, build the union, verify, explain,
    /// publish. Identical to what [`MatchCatcher::run`]'s tail does with
    /// a cold joint output.
    fn finish(&mut self, oracle: &mut dyn Oracle, baseline: MetricsSnapshot) -> DebugReport {
        let k = self.params.joint.k;
        let union = {
            let k_lists: Vec<TopKList> = self
                .lists
                .iter()
                .zip(&self.valid)
                .map(|(entries, &valid)| {
                    let mut l = TopKList::new(k);
                    for &(s, p) in &entries[..valid] {
                        l.insert(s, p);
                    }
                    l
                })
                .collect();
            CandidateUnion::build(&k_lists)
        };
        let outcome = {
            let _span = mc_obs::Span::enter(Stage::Verify.span_name());
            let fx = FeatureExtractor::new(
                &self.a,
                &self.b,
                &self.promising.attrs,
                &self.tok_a,
                &self.tok_b,
            );
            run_verifier(&union, &fx, oracle, &self.params.verifier)
        };
        let ex = {
            let _span = mc_obs::Span::enter(Stage::Explain.span_name());
            crate::explain_batch::explain_stage(
                &self.a,
                &self.b,
                &union,
                &outcome.matches,
                self.params.joint.threads,
            )
        };
        self.publish_union(&union);
        let metrics = MetricsSnapshot::capture().since(&baseline);
        DebugReport {
            promising: self.promising.attrs.clone(),
            configs: self.configs.clone(),
            e_size: union.len(),
            confirmed_matches: ex.confirmed,
            iterations: outcome.iterations,
            labeled: outcome.labeled,
            explanations: ex.explanations,
            problems: ex.problems,
            pervasive: ex.pervasive,
            explanation_scores: ex.explanation_scores,
            config_floors: ex.config_floors,
            q_used: self.q,
            metrics,
        }
    }

    /// Publishes the candidate union under the *patched* tables' content
    /// keys, recording the previous union's key as its `derived_from`
    /// provenance — store tooling can walk an incremental chain back to
    /// its cold ancestor. No-op without a configured store; store
    /// failures degrade silently (counted), exactly like the cold path.
    fn publish_union(&mut self, union: &CandidateUnion) {
        let Some(config) = self.params.store.as_ref() else {
            return;
        };
        let store = match Store::open(config) {
            Ok(s) => s,
            Err(_) => {
                mc_obs::counter!("mc.store.open_failed").inc();
                return;
            }
        };
        let tok = store_io::tok_key(
            self.a.content_digest(),
            self.b.content_digest(),
            &self.promising.attrs,
            Tokenizer::Word,
        );
        // Keyed at the *report* k with the session's normalized params:
        // the published bytes are exactly what a cold run with these
        // params would produce, so the key must be the one that cold run
        // would derive.
        let ukey = store_io::union_key(tok, &self.tree, &self.params.joint, &self.killed);
        store.publish(
            ArtifactKind::CandidateUnion,
            ukey,
            &store_io::encode_union_with_base(&self.configs, self.q, union, self.base_union),
        );
        self.base_union = Some(ukey);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GoldOracle;
    use crate::verify::IterationRecord;
    use mc_blocking::{Blocker, KeyFunc};
    use mc_datagen::profiles::DatasetProfile;
    use mc_table::{AttrId, RowEdit};

    /// The result-bearing report fields, metrics excluded.
    type Summary = (
        Vec<(TupleId, TupleId)>,
        usize,
        usize,
        usize,
        Vec<IterationRecord>,
        Vec<(String, usize)>,
    );

    fn summarize(r: &DebugReport) -> Summary {
        (
            r.confirmed_matches.clone(),
            r.e_size,
            r.q_used,
            r.labeled,
            r.iterations.clone(),
            r.problems.clone(),
        )
    }

    fn fixture() -> (Table, Table, PairSet, mc_table::GoldMatches) {
        let ds = DatasetProfile::FodorsZagats.generate_scaled(11, 0.4);
        let killed = Blocker::Hash(KeyFunc::Attr(AttrId(0))).apply(&ds.a, &ds.b);
        (ds.a, ds.b, killed, ds.gold)
    }

    fn params() -> DebuggerParams {
        let mut p = DebuggerParams::small();
        p.incr.margin = 16;
        p
    }

    #[test]
    fn session_start_matches_one_shot_run() {
        let (a, b, killed, gold) = fixture();
        let mc = MatchCatcher::new(params());
        let mut normalized = params();
        normalized.joint.reuse_overlaps = false;
        normalized.joint.reuse_topk = false;
        let cold =
            MatchCatcher::new(normalized).run(&a, &b, &killed, &mut GoldOracle::exact(&gold));
        let (_, start) = mc.start_session(a, b, killed, &mut GoldOracle::exact(&gold));
        assert_eq!(summarize(&cold), summarize(&start));
        assert!(
            !start.confirmed_matches.is_empty(),
            "fixture recovers matches"
        );
    }

    #[test]
    fn empty_rerun_replays_identically() {
        let (a, b, killed, gold) = fixture();
        let mc = MatchCatcher::new(params());
        let mut oracle = GoldOracle::exact(&gold);
        let (mut session, start) = mc.start_session(a, b, killed, &mut oracle);
        let again = session
            .rerun(&TableDelta::new(), &TableDelta::new(), None, &mut oracle)
            .unwrap();
        assert_eq!(summarize(&start), summarize(&again));
    }

    #[test]
    fn delta_rerun_matches_cold_session_on_patched_tables() {
        let (a, b, killed, gold) = fixture();
        let mc = MatchCatcher::new(params());
        let mut oracle = GoldOracle::exact(&gold);
        let (mut session, _) = mc.start_session(a, b, killed, &mut oracle);

        // Update one A row, delete another, insert a B row.
        let donor_a = session.table_a().tuple(1).clone();
        let donor_b = session.table_b().tuple(0).clone();
        let delta_a = TableDelta {
            updates: vec![RowEdit {
                id: 0,
                tuple: donor_a,
            }],
            deletes: vec![3],
            inserts: Vec::new(),
        };
        let delta_b = TableDelta {
            updates: Vec::new(),
            deletes: Vec::new(),
            inserts: vec![donor_b],
        };
        let incr = session
            .rerun(&delta_a, &delta_b, None, &mut oracle)
            .unwrap();

        let (_, cold) = mc.start_session(
            session.table_a().clone(),
            session.table_b().clone(),
            session.killed().clone(),
            &mut GoldOracle::exact(&gold),
        );
        assert_eq!(summarize(&cold), summarize(&incr));
    }

    #[test]
    fn killed_only_rerun_matches_cold_session() {
        let (a, b, killed, gold) = fixture();
        let mc = MatchCatcher::new(params());
        let mut oracle = GoldOracle::exact(&gold);
        let (mut session, _) = mc.start_session(a, b, killed.clone(), &mut oracle);

        // Shrink and grow the killed set: un-kill half, kill fresh pairs.
        let mut nk = PairSet::new();
        for (i, (x, y)) in killed.iter().enumerate() {
            if i % 2 == 0 {
                nk.insert(x, y);
            }
        }
        nk.insert(0, 0);
        nk.insert(1, 1);
        let before = MetricsSnapshot::capture();
        let incr = session
            .rerun(
                &TableDelta::new(),
                &TableDelta::new(),
                Some(nk),
                &mut oracle,
            )
            .unwrap();
        let delta = MetricsSnapshot::capture().since(&before);
        assert!(delta.counter("mc.core.incr.killed_fast_path") > 0);

        let (_, cold) = mc.start_session(
            session.table_a().clone(),
            session.table_b().clone(),
            session.killed().clone(),
            &mut GoldOracle::exact(&gold),
        );
        assert_eq!(summarize(&cold), summarize(&incr));
    }

    #[test]
    fn warm_session_start_reuses_store_arenas_identically() {
        use mc_store::StoreConfig;
        let root = std::env::temp_dir().join(format!(
            "mc_incr_warm_{}_{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::SystemTime::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let (a, b, killed, gold) = fixture();
        let with_store = |root: &std::path::Path| {
            let mut p = params();
            p.store = Some(StoreConfig::at(root));
            p.obs = mc_obs::ObsContext::session();
            p
        };
        let (_, cold) = MatchCatcher::new(with_store(&root)).start_session(
            a.clone(),
            b.clone(),
            killed.clone(),
            &mut GoldOracle::exact(&gold),
        );
        assert!(
            cold.metrics.counter("mc.store.publishes") > 0,
            "cold session publishes arenas"
        );
        // A second session over the same inputs warm-loads the arenas.
        let (mut warm_session, warm) = MatchCatcher::new(with_store(&root)).start_session(
            a,
            b,
            killed,
            &mut GoldOracle::exact(&gold),
        );
        assert_eq!(summarize(&cold), summarize(&warm));
        assert!(
            warm.metrics.counter("mc.store.hits") > 0,
            "warm session hits store artifacts"
        );
        assert!(warm_session.resident_bytes() > 0);
        // Mapped arenas stay fully patchable: a delta rerun on the warm
        // session matches a cold session over the patched tables.
        let donor = warm_session.table_b().tuple(0).clone();
        let delta_b = TableDelta {
            updates: Vec::new(),
            deletes: Vec::new(),
            inserts: vec![donor],
        };
        let mut oracle = GoldOracle::exact(&gold);
        let incr = warm_session
            .rerun(&TableDelta::new(), &delta_b, None, &mut oracle)
            .unwrap();
        let (_, reference) = MatchCatcher::new(params()).start_session(
            warm_session.table_a().clone(),
            warm_session.table_b().clone(),
            warm_session.killed().clone(),
            &mut GoldOracle::exact(&gold),
        );
        assert_eq!(summarize(&reference), summarize(&incr));
        // Footprint estimation must survive patched (non-compact)
        // arenas — serve polls it after every rerun for eviction.
        assert!(warm_session.resident_bytes() > 0);
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    #[should_panic(expected = "QStrategy::Fixed")]
    fn auto_q_is_rejected() {
        let (a, b, killed, gold) = fixture();
        let mut p = params();
        p.joint.q = QStrategy::Auto {
            max_q: 3,
            prelude_k: 50,
        };
        MatchCatcher::new(p).start_session(a, b, killed, &mut GoldOracle::exact(&gold));
    }

    #[test]
    fn invalid_delta_leaves_session_intact() {
        let (a, b, killed, gold) = fixture();
        let mc = MatchCatcher::new(params());
        let mut oracle = GoldOracle::exact(&gold);
        let (mut session, start) = mc.start_session(a, b, killed, &mut oracle);
        let bad = TableDelta {
            updates: Vec::new(),
            deletes: vec![TupleId::MAX],
            inserts: Vec::new(),
        };
        assert!(session
            .rerun(&bad, &TableDelta::new(), None, &mut oracle)
            .is_err());
        let again = session
            .rerun(&TableDelta::new(), &TableDelta::new(), None, &mut oracle)
            .unwrap();
        assert_eq!(summarize(&start), summarize(&again));
    }
}

//! The Match Verifier (§5): interactive identification of true matches.
//!
//! Given the candidate union `E`, the verifier iteratively shows the user
//! `n` pairs and uses the feedback to re-rank the rest:
//!
//! 1. **Seeding** — pairs are shown in MedRank order until at least one
//!    match and one non-match are labeled (a classifier needs both).
//! 2. **Hybrid active learning** — for [`VerifierParams::al_iters`]
//!    iterations (the paper uses 3), each round shows `n/4` most
//!    *controversial* pairs (forest confidence nearest 0.5, helping the
//!    learner) plus `3n/4` highest-confidence pairs (helping the user
//!    find matches fast) from a random forest trained on all labels.
//! 3. **Online learning** — subsequent rounds show the top `n` pairs by
//!    positive confidence and retrain after each round.
//!
//! The natural stopping point is
//! [`VerifierParams::stop_after_empty`] = 2 consecutive iterations with
//! no new matches. [`RankStrategy::Wmr`] and [`RankStrategy::MedRank`]
//! are the §6.5 ablation baselines.

use crate::features::{FeatureExtractor, FeatureMatrix};
use crate::joint::CandidateUnion;
use crate::oracle::Oracle;
use crate::rank::{medrank_order, wmr_order, RankedLists, WmrWeights};
use mc_ml::{ForestParams, RandomForest};
use mc_table::split_pair_key;

/// Which re-ranking machinery the verifier uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankStrategy {
    /// MedRank seeding + hybrid active/online learning (the paper's
    /// solution).
    Learning,
    /// Weighted median ranking with feedback updates (ablation baseline).
    Wmr,
    /// Static MedRank order, no feedback (ablation baseline).
    MedRank,
}

/// Verifier tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct VerifierParams {
    /// Pairs shown per iteration (the paper's `n = 20`).
    pub n_per_iter: usize,
    /// Hybrid active-learning iterations before pure online learning.
    pub al_iters: usize,
    /// Stop after this many consecutive iterations with no new matches.
    pub stop_after_empty: usize,
    /// Hard iteration cap.
    pub max_iters: usize,
    /// Ranking strategy.
    pub strategy: RankStrategy,
    /// Random-forest hyperparameters.
    pub forest: ForestParams,
}

impl Default for VerifierParams {
    fn default() -> Self {
        VerifierParams {
            n_per_iter: 20,
            al_iters: 3,
            stop_after_empty: 2,
            max_iters: 10_000,
            strategy: RankStrategy::Learning,
            forest: ForestParams::default(),
        }
    }
}

/// Per-iteration bookkeeping (drives Tables 3 and 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterationRecord {
    /// Pairs shown this iteration.
    pub shown: usize,
    /// Of those, confirmed matches.
    pub matches_found: usize,
}

/// Verifier output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// Confirmed match pair-keys in discovery order.
    pub matches: Vec<u64>,
    /// Per-iteration records.
    pub iterations: Vec<IterationRecord>,
    /// Total labels requested from the oracle.
    pub labeled: usize,
}

impl VerifyOutcome {
    /// Number of iterations run (column I of Table 3).
    pub fn iteration_count(&self) -> usize {
        self.iterations.len()
    }

    /// Matches found within the first `n` iterations (Table 4).
    pub fn matches_in_first(&self, n: usize) -> usize {
        self.iterations
            .iter()
            .take(n)
            .map(|r| r.matches_found)
            .sum()
    }
}

/// Runs the verifier over the candidate union.
pub fn run_verifier(
    union: &CandidateUnion,
    fx: &FeatureExtractor<'_>,
    oracle: &mut dyn Oracle,
    params: &VerifierParams,
) -> VerifyOutcome {
    let _span = mc_obs::span!("mc.core.verify.run");
    let items = union.len();
    let mut outcome = VerifyOutcome {
        matches: Vec::new(),
        iterations: Vec::new(),
        labeled: 0,
    };
    if items == 0 {
        return outcome;
    }
    let ranked = RankedLists::from_union(union);
    let base_order = medrank_order(&ranked);
    // How much the two aggregation baselines agree on the head of the
    // ranking (overlap of the top-n prefixes, in percent) — a cheap
    // diagnostic for whether WMR's weighting can matter on this input.
    {
        let head = params.n_per_iter.clamp(1, items);
        let wmr_head: Vec<usize> = wmr_order(&ranked, &WmrWeights::uniform(ranked.lists().max(1)))
            .into_iter()
            .take(head)
            .collect();
        let agree = base_order
            .iter()
            .take(head)
            .filter(|i| wmr_head.contains(i))
            .count();
        mc_obs::gauge!("mc.core.verify.rank_agreement_pct").set((agree * 100 / head) as i64);
    }
    let mut labels: Vec<Option<bool>> = vec![None; items];
    let mut wmr = WmrWeights::uniform(ranked.lists().max(1));
    let mut al_rounds_done = 0usize;
    let mut empty_streak = 0usize;
    let n = params.n_per_iter.max(1);
    let threads = params.forest.threads;

    // The flat feature matrix replaces the former per-candidate
    // `Option<Vec<f64>>` cache: the union head (where MedRank seeding and
    // the first training rounds concentrate) is materialized eagerly in
    // parallel; tail chunks are built lazily, and only if the learning
    // phase is actually reached.
    let mut matrix = FeatureMatrix::new(items, fx.n_features());
    if params.strategy == RankStrategy::Learning {
        matrix.ensure_upto((4 * n).min(items), &union.pairs, fx, threads);
    }

    // Incrementally maintained state: indexes still unlabeled (union
    // order), and the labeled training set sorted by candidate index.
    let mut unlabeled: Vec<usize> = (0..items).collect();
    let mut labeled_pairs: Vec<(usize, bool)> = Vec::new();
    // Reusable per-iteration buffers — the steady-state refit loop
    // allocates nothing beyond what the forest itself needs.
    let mut train_idx: Vec<usize> = Vec::new();
    let mut train_y: Vec<bool> = Vec::new();
    let mut scores: Vec<(f64, f64)> = Vec::new();
    let mut scored: Vec<(usize, f64, f64)> = Vec::new();
    // Cursor into the MedRank order: labels are never retracted, so the
    // seeding walk never needs to rescan its prefix.
    let mut medrank_cursor = 0usize;

    while outcome.iterations.len() < params.max_iters {
        if unlabeled.is_empty() {
            break;
        }
        let _iter_span = mc_obs::span!("mc.core.verify.iter");
        let have_pos = labeled_pairs.iter().any(|&(_, l)| l);
        let have_neg = labeled_pairs.iter().any(|&(_, l)| !l);

        // ── Select the batch to show ────────────────────────────────────
        let batch: Vec<usize> = match params.strategy {
            RankStrategy::MedRank => next_unlabeled(&base_order, &mut medrank_cursor, &labels, n),
            RankStrategy::Wmr => wmr_order(&ranked, &wmr)
                .into_iter()
                .filter(|&i| labels[i].is_none())
                .take(n)
                .collect(),
            RankStrategy::Learning => {
                if !(have_pos && have_neg) {
                    // Seeding phase: walk the MedRank order.
                    next_unlabeled(&base_order, &mut medrank_cursor, &labels, n)
                } else {
                    // (Re)train on everything labeled so far. Training
                    // samples are index slices into the shared matrix —
                    // no row is copied, here or inside the forest's
                    // bootstrap resampling.
                    matrix.ensure_all(&union.pairs, fx, threads);
                    train_idx.clear();
                    train_y.clear();
                    train_idx.extend(labeled_pairs.iter().map(|&(i, _)| i));
                    train_y.extend(labeled_pairs.iter().map(|&(_, l)| l));
                    let f = {
                        let _fit = mc_obs::span!("mc.core.verify.forest_fit");
                        RandomForest::fit_matrix(
                            matrix.view(),
                            &train_idx,
                            &train_y,
                            &params.forest,
                        )
                    };
                    {
                        let _predict = mc_obs::span!("mc.core.verify.forest_predict");
                        scores.resize(unlabeled.len(), (0.0, 0.0));
                        f.score_batch_into(matrix.view(), &unlabeled, threads, &mut scores);
                    }
                    scored.clear();
                    scored.extend(unlabeled.iter().zip(&scores).map(|(&i, &(c, p))| (i, c, p)));
                    if al_rounds_done < params.al_iters {
                        al_rounds_done += 1;
                        hybrid_batch(&scored, n)
                    } else {
                        // Pure online phase: top-n by confidence.
                        top_by_confidence(&scored, n)
                    }
                }
            }
        };
        if batch.is_empty() {
            break;
        }

        // ── Ask the user ────────────────────────────────────────────────
        let mut found = 0usize;
        let mut matches_per_list = vec![0usize; ranked.lists()];
        for &i in &batch {
            let (a, b) = split_pair_key(union.pairs[i]);
            let is_match = oracle.is_match(a, b);
            labels[i] = Some(is_match);
            labeled_pairs.push((i, is_match));
            outcome.labeled += 1;
            if is_match {
                found += 1;
                outcome.matches.push(union.pairs[i]);
                for (c, col) in union.scores.iter().enumerate() {
                    if col[i].is_some() {
                        matches_per_list[c] += 1;
                    }
                }
            }
        }
        mc_obs::counter!("mc.core.verify.iterations").inc();
        mc_obs::counter!("mc.core.verify.labeled").add(batch.len() as u64);
        mc_obs::counter!("mc.core.verify.matches").add(found as u64);
        mc_obs::event(
            "mc.core.verify.iteration",
            outcome.iterations.len() as u64,
            found as u64,
        );
        outcome.iterations.push(IterationRecord {
            shown: batch.len(),
            matches_found: found,
        });
        // Keep the training set in ascending candidate order (the batch
        // arrives in ranking order) and drop the batch from the unlabeled
        // set — no per-iteration re-filter of `0..items`.
        labeled_pairs.sort_unstable_by_key(|&(i, _)| i);
        unlabeled.retain(|&i| labels[i].is_none());
        if params.strategy == RankStrategy::Wmr {
            wmr.update(&matches_per_list);
        }

        // ── Natural stopping point ──────────────────────────────────────
        if found == 0 {
            empty_streak += 1;
            if empty_streak >= params.stop_after_empty {
                break;
            }
        } else {
            empty_streak = 0;
        }
    }
    outcome
}

/// The next up-to-`n` unlabeled entries of `order`, advancing `cursor`
/// past everything examined (valid because labels are never retracted).
fn next_unlabeled(
    order: &[usize],
    cursor: &mut usize,
    labels: &[Option<bool>],
    n: usize,
) -> Vec<usize> {
    let mut batch = Vec::with_capacity(n);
    while *cursor < order.len() && batch.len() < n {
        let i = order[*cursor];
        *cursor += 1;
        if labels[i].is_none() {
            batch.push(i);
        }
    }
    batch
}

/// Total-order comparator for "most confident first" (confidence desc,
/// proba desc, index asc — a strict total order, so partial selection
/// yields exactly the prefix a full sort would).
fn conf_cmp(a: &(usize, f64, f64), b: &(usize, f64, f64)) -> std::cmp::Ordering {
    b.1.total_cmp(&a.1)
        .then(b.2.total_cmp(&a.2))
        .then(a.0.cmp(&b.0))
}

/// The first `lim` positions of `scored` under `cmp`, in order, without
/// sorting the tail: `select_nth_unstable` partitions around the boundary
/// (the comparator is a strict total order, so the prefix *set* equals a
/// full sort's prefix), then only the head is sorted.
fn select_head_positions(
    scored: &[(usize, f64, f64)],
    lim: usize,
    cmp: impl Fn(&(usize, f64, f64), &(usize, f64, f64)) -> std::cmp::Ordering,
) -> Vec<u32> {
    let mut order: Vec<u32> = (0..scored.len() as u32).collect();
    let lim = lim.min(order.len());
    if lim == 0 {
        return Vec::new();
    }
    if lim < order.len() {
        order.select_nth_unstable_by(lim - 1, |&a, &b| {
            cmp(&scored[a as usize], &scored[b as usize])
        });
        order.truncate(lim);
    }
    order.sort_unstable_by(|&a, &b| cmp(&scored[a as usize], &scored[b as usize]));
    order
}

/// Top-`n` candidate indexes by positive confidence.
fn top_by_confidence(scored: &[(usize, f64, f64)], n: usize) -> Vec<usize> {
    select_head_positions(scored, n, conf_cmp)
        .into_iter()
        .map(|p| scored[p as usize].0)
        .collect()
}

/// The hybrid batch: `n/4` most controversial + `3n/4` most confident.
///
/// Both rankings use partial selection instead of full sorts, and the
/// dedup between them is a positional bitset instead of the former
/// O(n·batch) `batch.contains` scan. The confidence scan never needs more
/// than the top `n` entries: at most `n_controversial` of them are
/// already taken, and the scan stops once the batch holds `n`.
fn hybrid_batch(scored: &[(usize, f64, f64)], n: usize) -> Vec<usize> {
    let n_controversial = (n / 4).max(1);
    let head = select_head_positions(scored, n_controversial, |a, b| {
        let ua = (a.1 - 0.5).abs();
        let ub = (b.1 - 0.5).abs();
        ua.total_cmp(&ub).then(a.0.cmp(&b.0))
    });
    let mut taken = vec![false; scored.len()];
    let mut batch: Vec<usize> = Vec::with_capacity(n.min(scored.len()));
    for &p in &head {
        taken[p as usize] = true;
        batch.push(scored[p as usize].0);
    }
    for p in select_head_positions(scored, n, conf_cmp) {
        if batch.len() >= n {
            break;
        }
        if !taken[p as usize] {
            taken[p as usize] = true;
            batch.push(scored[p as usize].0);
        }
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GoldOracle;
    use crate::ssj::TopKList;
    use mc_strsim::dict::TokenizedTable;
    use mc_strsim::tokenize::Tokenizer;
    use mc_table::{pair_key, AttrId, GoldMatches, Schema, Table, Tuple};
    use std::sync::Arc;

    /// Builds a verification scenario: 40 A-tuples, 40 B-tuples where
    /// (i, i) are matches for i < n_matches; candidates are all (i, i)
    /// plus decoys (i, i+1).
    fn scenario(n_matches: u32) -> (Table, Table, GoldMatches, CandidateUnion) {
        let schema = Arc::new(Schema::from_names(["name", "city"]));
        let mut a = Table::new("A", Arc::clone(&schema));
        let mut b = Table::new("B", schema);
        for i in 0..40u32 {
            a.push(Tuple::from_present([
                format!("person{} smith{}", i, i),
                format!("city{}", i % 5),
            ]));
            b.push(Tuple::from_present([
                format!("person{} smith{}", i, i),
                format!("city{}", i % 5),
            ]));
        }
        let gold = GoldMatches::from_pairs((0..n_matches).map(|i| (i, i)));
        let mut l = TopKList::new(200);
        for i in 0..40u32 {
            l.insert(0.9 - i as f64 * 0.001, pair_key(i, i));
            l.insert(0.5 - i as f64 * 0.001, pair_key(i, (i + 1) % 40));
        }
        let union = CandidateUnion::build(&[l]);
        (a, b, gold, union)
    }

    fn extractor_parts(a: &Table, b: &Table) -> (Vec<AttrId>, TokenizedTable, TokenizedTable) {
        let attrs = vec![AttrId(0), AttrId(1)];
        let (ta, tb, _) = TokenizedTable::build_pair(a, b, &attrs, Tokenizer::Word);
        (attrs, ta, tb)
    }

    #[test]
    fn finds_most_matches_before_stopping() {
        let (a, b, gold, union) = scenario(25);
        let (attrs, ta, tb) = extractor_parts(&a, &b);
        let fx = FeatureExtractor::new(&a, &b, &attrs, &ta, &tb);
        let mut oracle = GoldOracle::exact(&gold);
        let params = VerifierParams {
            n_per_iter: 10,
            ..Default::default()
        };
        let out = run_verifier(&union, &fx, &mut oracle, &params);
        assert!(
            out.matches.len() >= 20,
            "verifier found only {}/25 matches",
            out.matches.len()
        );
        assert_eq!(
            out.labeled,
            out.iterations.iter().map(|r| r.shown).sum::<usize>()
        );
    }

    #[test]
    fn stops_after_consecutive_empty_iterations() {
        let (a, b, _, union) = scenario(0);
        let gold = GoldMatches::new(); // nothing is a match
        let (attrs, ta, tb) = extractor_parts(&a, &b);
        let fx = FeatureExtractor::new(&a, &b, &attrs, &ta, &tb);
        let mut oracle = GoldOracle::exact(&gold);
        let params = VerifierParams {
            n_per_iter: 10,
            stop_after_empty: 2,
            ..Default::default()
        };
        let out = run_verifier(&union, &fx, &mut oracle, &params);
        assert_eq!(out.iterations.len(), 2);
        assert!(out.matches.is_empty());
    }

    #[test]
    fn empty_union_returns_immediately() {
        let (a, b, gold, _) = scenario(1);
        let (attrs, ta, tb) = extractor_parts(&a, &b);
        let fx = FeatureExtractor::new(&a, &b, &attrs, &ta, &tb);
        let union = CandidateUnion::build(&[]);
        let mut oracle = GoldOracle::exact(&gold);
        let out = run_verifier(&union, &fx, &mut oracle, &VerifierParams::default());
        assert!(out.iterations.is_empty());
        assert_eq!(oracle.labels_given(), 0);
    }

    #[test]
    fn all_strategies_find_the_obvious_matches() {
        for strategy in [
            RankStrategy::Learning,
            RankStrategy::Wmr,
            RankStrategy::MedRank,
        ] {
            let (a, b, gold, union) = scenario(10);
            let (attrs, ta, tb) = extractor_parts(&a, &b);
            let fx = FeatureExtractor::new(&a, &b, &attrs, &ta, &tb);
            let mut oracle = GoldOracle::exact(&gold);
            let params = VerifierParams {
                n_per_iter: 10,
                strategy,
                ..Default::default()
            };
            let out = run_verifier(&union, &fx, &mut oracle, &params);
            assert!(
                out.matches.len() >= 8,
                "{strategy:?} found only {}",
                out.matches.len()
            );
        }
    }

    #[test]
    fn never_labels_a_pair_twice() {
        let (a, b, gold, union) = scenario(15);
        let (attrs, ta, tb) = extractor_parts(&a, &b);
        let fx = FeatureExtractor::new(&a, &b, &attrs, &ta, &tb);
        let mut oracle = GoldOracle::exact(&gold);
        let params = VerifierParams {
            n_per_iter: 7,
            ..Default::default()
        };
        let out = run_verifier(&union, &fx, &mut oracle, &params);
        assert!(out.labeled <= union.len());
        // matches are unique
        let mut m = out.matches.clone();
        m.sort_unstable();
        m.dedup();
        assert_eq!(m.len(), out.matches.len());
    }

    #[test]
    fn matches_in_first_counts_prefix() {
        let out = VerifyOutcome {
            matches: vec![],
            iterations: vec![
                IterationRecord {
                    shown: 10,
                    matches_found: 4,
                },
                IterationRecord {
                    shown: 10,
                    matches_found: 2,
                },
                IterationRecord {
                    shown: 10,
                    matches_found: 1,
                },
            ],
            labeled: 30,
        };
        assert_eq!(out.matches_in_first(2), 6);
        assert_eq!(out.matches_in_first(10), 7);
        assert_eq!(out.iteration_count(), 3);
    }
}

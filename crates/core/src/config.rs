//! Config generation (§3 of the paper).
//!
//! A *config* is a set of attributes; the debugger runs one top-k string
//! similarity join per config over the concatenation of its attributes.
//! Enumerating all `2^|S|` subsets is infeasible, so the generator:
//!
//! 1. selects **promising attributes** `T` — drops numerics, and drops
//!    categorical/boolean attributes whose value domains differ between
//!    the two tables (§3.2);
//! 2. builds a **config tree** top-down from `T`: each level removes one
//!    attribute from the previously expanded node, producing a diverse set
//!    of `|T|·(|T|+1)/2` configs of sizes `|T| … 1`;
//! 3. chooses which node to expand using the **e-score** (Definition 3.1,
//!    the harmonic mean of non-missing and uniqueness ratios) — unless
//!    `FindLongAttr` (Theorem 3.5) detects an attribute long enough to
//!    "overwhelm" the subtree, in which case that attribute is removed
//!    first.

use mc_table::stats::TableStats;
use mc_table::{AttrId, AttrType, Table};

/// A set of attributes, as a bitmask over positions in the promising set
/// `T` (at most 32 promising attributes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Config {
    mask: u32,
}

impl Config {
    /// Config over positions (indexes into the promising attribute list).
    pub fn from_positions(positions: impl IntoIterator<Item = usize>) -> Self {
        let mut mask = 0u32;
        for p in positions {
            assert!(p < 32, "config positions limited to 32");
            mask |= 1 << p;
        }
        Config { mask }
    }

    /// Full config over the first `n` positions.
    pub fn full(n: usize) -> Self {
        assert!(n <= 32);
        Config {
            mask: if n == 32 { u32::MAX } else { (1u32 << n) - 1 },
        }
    }

    /// The positions in this config, ascending.
    pub fn positions(self) -> Vec<usize> {
        (0..32).filter(|p| self.mask & (1 << p) != 0).collect()
    }

    /// Number of attributes.
    pub fn len(self) -> usize {
        self.mask.count_ones() as usize
    }

    /// True if the config is empty.
    pub fn is_empty(self) -> bool {
        self.mask == 0
    }

    /// True if position `p` is in the config.
    pub fn contains(self, p: usize) -> bool {
        self.mask & (1 << p) != 0
    }

    /// This config without position `p`.
    pub fn without(self, p: usize) -> Config {
        Config {
            mask: self.mask & !(1 << p),
        }
    }

    /// True if `self ⊆ other`.
    pub fn is_subset_of(self, other: Config) -> bool {
        self.mask & !other.mask == 0
    }

    /// The raw bitmask (stable identifier).
    pub fn mask(self) -> u32 {
        self.mask
    }

    /// Config from a raw bitmask previously obtained from
    /// [`Config::mask`] (store artifacts round-trip configs this way).
    pub fn from_mask(mask: u32) -> Config {
        Config { mask }
    }
}

/// The promising attribute set `T` with the statistics config generation
/// needs.
#[derive(Debug, Clone)]
pub struct PromisingAttrs {
    /// Selected attributes, in schema order. Position `i` in every
    /// [`Config`] refers to `attrs[i]`.
    pub attrs: Vec<AttrId>,
    /// e-score per position (Definition 3.1).
    pub e_scores: Vec<f64>,
    /// Average token length per position in table A (`AL_f(A)`).
    pub avg_tokens_a: Vec<f64>,
    /// Average token length per position in table B.
    pub avg_tokens_b: Vec<f64>,
}

impl PromisingAttrs {
    /// Sum of average token lengths over a config, per side:
    /// `(AL_γ(A), AL_γ(B))`.
    pub fn config_lengths(&self, config: Config) -> (f64, f64) {
        let mut la = 0.0;
        let mut lb = 0.0;
        for p in config.positions() {
            la += self.avg_tokens_a[p];
            lb += self.avg_tokens_b[p];
        }
        (la, lb)
    }
}

/// One node of the config tree.
#[derive(Debug, Clone)]
pub struct ConfigNode {
    /// The config at this node.
    pub config: Config,
    /// Parent node index (`None` for the root).
    pub parent: Option<usize>,
    /// Whether this node was selected for expansion.
    pub expanded: bool,
}

/// The generated config tree, nodes in breadth-first generation order
/// (the order the joint executor processes them in, §4.2).
#[derive(Debug, Clone)]
pub struct ConfigTree {
    /// Nodes in generation order; node 0 is the root.
    pub nodes: Vec<ConfigNode>,
}

impl ConfigTree {
    /// All configs in generation order.
    pub fn configs(&self) -> Vec<Config> {
        self.nodes.iter().map(|n| n.config).collect()
    }

    /// Number of configs.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Index of the parent of node `i`.
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.nodes[i].parent
    }

    /// Indexes of nodes that were expanded (have children).
    pub fn writers(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.expanded)
            .map(|(i, _)| i)
            .collect();
        w.sort_unstable();
        w
    }
}

/// Tuning knobs for config generation.
#[derive(Debug, Clone, Copy)]
pub struct ConfigGeneratorParams {
    /// Minimum Jaccard similarity between the two tables' value sets for a
    /// categorical/boolean attribute to survive (§3.2's domain check).
    pub value_jaccard_min: f64,
    /// `δ` of Theorem 3.5 — maximum tolerated relative score change for a
    /// config switch to count as "roughly the same top-k list".
    pub delta: f64,
    /// Whether `FindLongAttr` runs at all (ablation knob; §6.5 reports up
    /// to +11% recall of E from long-attribute handling).
    pub handle_long_attrs: bool,
    /// Cap on `|T|`; attributes with the highest e-scores win.
    pub max_attrs: usize,
}

impl Default for ConfigGeneratorParams {
    fn default() -> Self {
        ConfigGeneratorParams {
            value_jaccard_min: 0.1,
            delta: 0.2,
            handle_long_attrs: true,
            max_attrs: 10,
        }
    }
}

/// The Config Generator of Figure 2.
#[derive(Debug, Clone, Default)]
pub struct ConfigGenerator {
    /// Tuning parameters.
    pub params: ConfigGeneratorParams,
}

impl ConfigGenerator {
    /// A generator with the given parameters.
    pub fn new(params: ConfigGeneratorParams) -> Self {
        ConfigGenerator { params }
    }

    /// Selects the promising attribute set `T` from the two tables.
    pub fn promising(&self, a: &Table, b: &Table) -> PromisingAttrs {
        let sa = TableStats::compute(a);
        let sb = TableStats::compute(b);
        self.promising_from_stats(a, &sa, &sb)
    }

    /// Like [`ConfigGenerator::promising`] but with precomputed stats.
    pub fn promising_from_stats(
        &self,
        a: &Table,
        stats_a: &TableStats,
        stats_b: &TableStats,
    ) -> PromisingAttrs {
        let schema = a.schema();
        let mut picked: Vec<(AttrId, f64, f64, f64)> = Vec::new();
        for attr in schema.attr_ids() {
            let st_a = stats_a.attr(attr);
            let st_b = stats_b.attr(attr);
            // Numerics are dropped: matching tuples still often differ.
            if st_a.attr_type == AttrType::Numeric || st_b.attr_type == AttrType::Numeric {
                continue;
            }
            // Categorical/boolean attributes must share a value domain.
            let categorical = matches!(st_a.attr_type, AttrType::Categorical | AttrType::Boolean)
                || matches!(st_b.attr_type, AttrType::Categorical | AttrType::Boolean);
            if categorical
                && stats_a.value_set_jaccard(stats_b, attr) < self.params.value_jaccard_min
            {
                continue;
            }
            let e = st_a.e_component() * st_b.e_component();
            if e <= 0.0 {
                continue; // entirely missing on one side
            }
            picked.push((attr, e, st_a.avg_tokens, st_b.avg_tokens));
        }
        // Keep the top `max_attrs` by e-score, then restore schema order.
        picked.sort_by(|x, y| y.1.total_cmp(&x.1));
        picked.truncate(self.params.max_attrs.min(32));
        picked.sort_by_key(|x| x.0);
        PromisingAttrs {
            attrs: picked.iter().map(|p| p.0).collect(),
            e_scores: picked.iter().map(|p| p.1).collect(),
            avg_tokens_a: picked.iter().map(|p| p.2).collect(),
            avg_tokens_b: picked.iter().map(|p| p.3).collect(),
        }
    }

    /// Builds the config tree over the promising attributes.
    pub fn build_tree(&self, promising: &PromisingAttrs) -> ConfigTree {
        let m = promising.attrs.len();
        assert!(m >= 1, "need at least one promising attribute");
        let root = Config::full(m);
        let mut nodes = vec![ConfigNode {
            config: root,
            parent: None,
            expanded: false,
        }];
        let mut current = 0usize;
        while nodes[current].config.len() > 1 {
            nodes[current].expanded = true;
            let cfg = nodes[current].config;
            // Children: remove each attribute in turn.
            let first_child = nodes.len();
            for p in cfg.positions() {
                nodes.push(ConfigNode {
                    config: cfg.without(p),
                    parent: Some(current),
                    expanded: false,
                });
            }
            if cfg.len() == 2 {
                break; // children are singletons; nothing left to expand
            }
            // Default: exclude the attribute with the lowest e-score.
            let excluded = self.default_exclusion(cfg, promising);
            let chosen = if self.params.handle_long_attrs {
                let q_default = cfg.without(excluded);
                match self.find_long_attr(cfg, q_default, promising) {
                    Some(f_long) => cfg.without(f_long),
                    None => q_default,
                }
            } else {
                cfg.without(excluded)
            };
            current = first_child
                + cfg
                    .positions()
                    .iter()
                    .position(|&p| !chosen.contains(p))
                    .expect("chosen config is a single-removal child");
        }
        ConfigTree { nodes }
    }

    /// The lowest-e-score position of `cfg` (the default exclusion).
    fn default_exclusion(&self, cfg: Config, promising: &PromisingAttrs) -> usize {
        cfg.positions()
            .into_iter()
            .min_by(|&x, &y| promising.e_scores[x].total_cmp(&promising.e_scores[y]))
            .expect("non-empty config")
    }

    /// `FindLongAttr` (§3.2): returns an attribute of `q_default` judged
    /// "too long" — one that would overwhelm at least half of the configs
    /// containing it in the hypothetical default subtree below
    /// `q_default` — or `None`.
    fn find_long_attr(
        &self,
        parent: Config,
        q_default: Config,
        promising: &PromisingAttrs,
    ) -> Option<usize> {
        let subtree = self.simulate_default_subtree(q_default, promising);
        let (qa, qb) = promising.config_lengths(q_default);
        if qa <= 0.0 || qb <= 0.0 {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        for f in q_default.positions() {
            // β: f's share of the config length, conservative across tables.
            let beta = (promising.avg_tokens_a[f] / qa).min(promising.avg_tokens_b[f] / qb);
            let containing: Vec<Config> = subtree
                .iter()
                .copied()
                .filter(|r| *r != q_default && r.contains(f))
                .collect();
            if containing.is_empty() {
                continue;
            }
            let overwhelmed = containing
                .iter()
                .filter(|&&r| self.overwhelms(beta, q_default, r, qa, qb))
                .count();
            if overwhelmed * 2 >= containing.len() && best.is_none_or(|(_, b)| beta > b) {
                best = Some((f, beta));
            }
        }
        // Sanity: the chosen attribute must be in the parent (it is, since
        // q_default ⊂ parent).
        best.map(|(f, _)| f).filter(|&f| parent.contains(f))
    }

    /// Approximate requirement R2 of Theorem 3.5, with table-average
    /// lengths standing in for per-tuple lengths:
    /// `β ≥ 1 − ((|q|−1)/|q∖r|) · (δ/(1+δ)) · max(AL_q)/ΣAL_q`.
    fn overwhelms(&self, beta: f64, q: Config, r: Config, qa: f64, qb: f64) -> bool {
        let removed = q.len()
            - (Config {
                mask: q.mask() & r.mask(),
            })
            .len();
        if removed == 0 {
            return false;
        }
        let delta = self.params.delta;
        let threshold = 1.0
            - ((q.len() - 1) as f64 / removed as f64)
                * (delta / (1.0 + delta))
                * (qa.max(qb) / (qa + qb));
        beta >= threshold
    }

    /// Simulates the default expansion chain below `q` (no long-attribute
    /// handling), returning every config in that subtree including `q`.
    fn simulate_default_subtree(&self, q: Config, promising: &PromisingAttrs) -> Vec<Config> {
        let mut all = vec![q];
        let mut cur = q;
        while cur.len() > 1 {
            for p in cur.positions() {
                all.push(cur.without(p));
            }
            if cur.len() == 2 {
                break;
            }
            let excluded = self.default_exclusion(cur, promising);
            cur = cur.without(excluded);
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_table::{Schema, Tuple};
    use std::sync::Arc;

    fn promising_of(e: &[f64], la: &[f64], lb: &[f64]) -> PromisingAttrs {
        PromisingAttrs {
            attrs: (0..e.len() as u16).map(AttrId).collect(),
            e_scores: e.to_vec(),
            avg_tokens_a: la.to_vec(),
            avg_tokens_b: lb.to_vec(),
        }
    }

    #[test]
    fn config_bit_operations() {
        let c = Config::from_positions([0, 2, 3]);
        assert_eq!(c.len(), 3);
        assert!(c.contains(2));
        assert!(!c.contains(1));
        assert_eq!(c.without(2).positions(), vec![0, 3]);
        assert!(c.without(2).is_subset_of(c));
        assert!(!c.is_subset_of(c.without(0)));
        assert_eq!(Config::full(4).positions(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn tree_has_m_times_m_plus_1_over_2_configs() {
        for m in 1..=8usize {
            let p = promising_of(
                &(0..m).map(|i| 1.0 + i as f64).collect::<Vec<_>>(),
                &vec![3.0; m],
                &vec![3.0; m],
            );
            let tree = ConfigGenerator::default().build_tree(&p);
            assert_eq!(tree.len(), m * (m + 1) / 2, "m={m}");
            // Configs are distinct.
            let mut cfgs = tree.configs();
            cfgs.sort();
            cfgs.dedup();
            assert_eq!(cfgs.len(), m * (m + 1) / 2);
        }
    }

    #[test]
    fn default_expansion_follows_e_scores() {
        // Figure 3.a: T = {n, c, s, d} with e(n) > e(d) > e(c) > e(s):
        // exclude s first (expand ncd), then c (expand nd).
        // Positions: n=0, c=1, s=2, d=3.
        let p = promising_of(&[4.0, 2.0, 1.0, 3.0], &[2.0; 4], &[2.0; 4]);
        let gen = ConfigGenerator::new(ConfigGeneratorParams {
            handle_long_attrs: false,
            ..Default::default()
        });
        let tree = gen.build_tree(&p);
        let expanded: Vec<Config> = tree
            .nodes
            .iter()
            .filter(|n| n.expanded)
            .map(|n| n.config)
            .collect();
        // Expansion chain: ncsd → ncd → nd.
        assert_eq!(expanded[0], Config::from_positions([0, 1, 2, 3]));
        assert_eq!(expanded[1], Config::from_positions([0, 1, 3]));
        assert_eq!(expanded[2], Config::from_positions([0, 3]));
    }

    #[test]
    fn long_attribute_is_removed_early() {
        // Figure 3.b: d is very long → after the first level the generator
        // expands ncs (the config without d) rather than ncd.
        // e(n) > e(d) > e(c) > e(s) as before, but d is 30 tokens long.
        let p = promising_of(
            &[4.0, 2.0, 1.0, 3.0],
            &[2.0, 2.0, 2.0, 30.0],
            &[2.0, 2.0, 2.0, 30.0],
        );
        let tree = ConfigGenerator::default().build_tree(&p);
        let expanded: Vec<Config> = tree
            .nodes
            .iter()
            .filter(|n| n.expanded)
            .map(|n| n.config)
            .collect();
        assert_eq!(expanded[0], Config::from_positions([0, 1, 2, 3]));
        // Second expansion must exclude d (position 3): expand ncs.
        assert_eq!(expanded[1], Config::from_positions([0, 1, 2]));
    }

    #[test]
    fn short_attributes_are_not_flagged_long() {
        let p = promising_of(&[4.0, 2.0, 1.0, 3.0], &[2.0; 4], &[2.0; 4]);
        let with = ConfigGenerator::default().build_tree(&p);
        let without = ConfigGenerator::new(ConfigGeneratorParams {
            handle_long_attrs: false,
            ..Default::default()
        })
        .build_tree(&p);
        assert_eq!(with.configs(), without.configs());
    }

    #[test]
    fn promising_drops_numeric_and_mismatched_categorical() {
        let schema = Arc::new(Schema::from_names(["name", "price", "gender"]));
        let mut a = Table::new("A", Arc::clone(&schema));
        let mut b = Table::new("B", Arc::clone(&schema));
        for i in 0..50 {
            a.push(Tuple::from_present([
                format!("alpha beta {i}"),
                format!("{}", 10 + i),
                if i % 2 == 0 { "male" } else { "female" }.to_string(),
            ]));
            b.push(Tuple::from_present([
                format!("alpha gamma {i}"),
                format!("{}", 20 + i),
                if i % 2 == 0 { "m" } else { "f" }.to_string(),
            ]));
        }
        let p = ConfigGenerator::default().promising(&a, &b);
        assert_eq!(p.attrs, vec![schema.expect_id("name")]);
    }

    #[test]
    fn promising_keeps_matching_categorical() {
        let schema = Arc::new(Schema::from_names(["name", "genre"]));
        let mut a = Table::new("A", Arc::clone(&schema));
        let mut b = Table::new("B", Arc::clone(&schema));
        for i in 0..60 {
            let g = ["rock", "pop", "jazz"][i % 3];
            a.push(Tuple::from_present([
                format!("song number {i}"),
                g.to_string(),
            ]));
            b.push(Tuple::from_present([
                format!("tune number {i}"),
                g.to_string(),
            ]));
        }
        let p = ConfigGenerator::default().promising(&a, &b);
        assert_eq!(p.attrs.len(), 2);
    }

    #[test]
    fn max_attrs_cap_keeps_highest_e_scores() {
        let schema = Arc::new(Schema::from_names(["u1", "u2", "constant"]));
        let mut a = Table::new("A", Arc::clone(&schema));
        let mut b = Table::new("B", Arc::clone(&schema));
        for i in 0..200 {
            // "constant" has one value + high-cardinality look via words to
            // avoid categorical classification collisions: use distinct
            // strings for u1/u2 and a shared constant long text value.
            a.push(Tuple::from_present([
                format!("unique alpha value {i} extra words here"),
                format!("unique beta value {i} extra words here"),
                format!("always the same filler text {}", i % 2),
            ]));
            b.push(Tuple::from_present([
                format!("unique alpha value {i} extra words here"),
                format!("unique beta value {i} extra words here"),
                format!("always the same filler text {}", i % 2),
            ]));
        }
        let gen = ConfigGenerator::new(ConfigGeneratorParams {
            max_attrs: 2,
            ..Default::default()
        });
        let p = gen.promising(&a, &b);
        assert_eq!(p.attrs.len(), 2);
        assert_eq!(
            p.attrs,
            vec![schema.expect_id("u1"), schema.expect_id("u2")]
        );
    }

    #[test]
    fn writers_are_the_expanded_nodes() {
        let p = promising_of(&[3.0, 2.0, 1.0], &[2.0; 3], &[2.0; 3]);
        let tree = ConfigGenerator::default().build_tree(&p);
        let writers = tree.writers();
        // m = 3: expansions happen at the root and one level-2 node.
        assert_eq!(writers.len(), 2);
        assert_eq!(writers[0], 0);
    }

    #[test]
    fn single_attribute_tree_is_one_node() {
        let p = promising_of(&[1.0], &[2.0], &[2.0]);
        let tree = ConfigGenerator::default().build_tree(&p);
        assert_eq!(tree.len(), 1);
        assert!(!tree.nodes[0].expanded);
    }
}

//! The top-level MatchCatcher debugger (Figure 2 wired end-to-end).
//!
//! [`MatchCatcher::run`] takes two tables, the blocker output `C`, and a
//! labeling [`Oracle`]; it returns a [`DebugReport`] with the confirmed
//! killed-off matches, per-iteration statistics, per-match explanations,
//! and a [`MetricsSnapshot`] of everything the pipeline recorded during
//! the run (stage spans, counters, flight-recorder events). The
//! individual stages ([`MatchCatcher::prepare`], [`MatchCatcher::topk`])
//! are public so benchmarks can measure them in isolation, and
//! [`MatchCatcher::run_observed`] streams per-stage metric deltas to a
//! caller-supplied [`RunObserver`].

use crate::config::{Config, ConfigGenerator, ConfigGeneratorParams, ConfigTree, PromisingAttrs};
use crate::explain::MatchExplanation;
use crate::features::FeatureExtractor;
use crate::joint::{
    build_arenas, run_joint, run_joint_with_arenas, CandidateUnion, JointOutput, JointParams,
};
use crate::oracle::Oracle;
use crate::ssj::TopKList;
use crate::store_io;
use crate::verify::{run_verifier, IterationRecord, VerifierParams, VerifyOutcome};
use mc_obs::{MetricsSnapshot, ObsContext};
use mc_store::{ArtifactKind, Digest, Store, StoreConfig};
use mc_strsim::arena::RecordArena;
use mc_strsim::dict::TokenizedTable;
use mc_strsim::tokenize::Tokenizer;
use mc_table::{AttrId, PairSet, Table, TupleId};
use std::time::Duration;

/// All debugger tuning knobs.
///
/// `DebuggerParams::default()` is the **paper's configuration**: per-config
/// top-k list size `k = 1000` (§4, [`JointParams::k`]) and `n = 20` pairs
/// shown per verifier iteration (§5, [`VerifierParams::n_per_iter`]), with
/// one worker per core. Use [`DebuggerParams::small`] for unit tests and
/// tiny examples.
#[derive(Debug, Clone, Default)]
pub struct DebuggerParams {
    /// Config-generation parameters (§3).
    pub config: ConfigGeneratorParams,
    /// Joint top-k execution parameters (§4). `joint.k` is the per-config
    /// list size (the paper's `k = 1000`).
    pub joint: JointParams,
    /// Verifier parameters (§5). `verifier.n_per_iter` is the paper's
    /// `n = 20`.
    pub verifier: VerifierParams,
    /// Optional persistent artifact store for warm-start sessions.
    /// When set, [`MatchCatcher::run`] consults the store before
    /// tokenizing, building arenas, or executing the joint stage, and
    /// publishes the artifacts it had to compute. A warm hit on the
    /// candidate union produces a byte-identical ranked `D` while
    /// skipping tokenization and every join. An unusable or corrupt
    /// store silently degrades to a cold run (`mc.store.*` counters
    /// record what happened).
    pub store: Option<StoreConfig>,
    /// Observability context the run records into. The default is the
    /// process-global context (historical behaviour); give each
    /// concurrent run its own [`ObsContext::session`] and
    /// [`DebugReport::metrics`] becomes a fully isolated, per-run
    /// snapshot while the global view still accounts for every run.
    pub obs: ObsContext,
    /// Incremental-session knobs ([`MatchCatcher::start_session`]):
    /// top-k maintenance margin and arena compaction threshold. Ignored
    /// by the one-shot [`MatchCatcher::run`] path.
    pub incr: crate::incr::IncrParams,
}

impl DebuggerParams {
    /// Defaults scaled down for unit tests and tiny examples
    /// (`k = 50`, `n = 10`, small forest).
    pub fn small() -> Self {
        let mut p = DebuggerParams::default();
        p.joint.k = 50;
        p.joint.threads = 2;
        p.verifier.n_per_iter = 10;
        p.verifier.forest.n_trees = 7;
        p.verifier.forest.threads = 2;
        p
    }

    /// Upper bound on `joint.k + incr.margin` accepted by
    /// [`DebuggerParams::validate`]. Each session keeps `K = k + margin`
    /// `(f64, u64)` entries *per config*, so a oversized cap turns one
    /// `open` request into gigabytes of resident list state.
    pub const MAX_LIST_CAP: usize = 1 << 22;

    /// Rejects parameter combinations that would silently produce a
    /// degenerate run. Called by [`MatchCatcher::run`] and
    /// [`MatchCatcher::topk`]; call it directly when constructing params
    /// from user input (`mc-serve` mirrors these checks in
    /// `ServeParams::validate`).
    pub fn validate(&self) -> Result<(), String> {
        if self.joint.k == 0 {
            return Err("joint.k = 0: every top-k list would be empty, so the \
                        debugger could never surface a killed match (the paper \
                        uses k = 1000)"
                .into());
        }
        if self.joint.threads == 0 {
            return Err("joint.threads = 0: no workers would execute configs; \
                        use JointParams::default() to get one worker per core"
                .into());
        }
        if self.verifier.forest.n_trees == 0 {
            return Err("verifier.forest.n_trees = 0: the learning verifier \
                        would have no trees to vote, making every confidence \
                        0.5 (the paper uses 10)"
                .into());
        }
        if self.verifier.n_per_iter == 0 {
            return Err("verifier.n_per_iter = 0: no pairs would ever be shown \
                        to the user (the paper uses n = 20)"
                .into());
        }
        let cap = self.joint.k.saturating_add(self.incr.margin);
        if cap > Self::MAX_LIST_CAP {
            return Err(format!(
                "joint.k + incr.margin = {cap} exceeds the per-config list \
                 capacity limit of {} entries: a server holding a handful of \
                 such sessions resident would exhaust memory on list state \
                 alone (the paper uses k = 1000)",
                Self::MAX_LIST_CAP
            ));
        }
        Ok(())
    }
}

/// Precomputed state shared by the debugging stages.
pub struct Prepared {
    /// The promising attribute set `T`.
    pub promising: PromisingAttrs,
    /// The config tree.
    pub tree: ConfigTree,
    /// Word tokenization of table A over `T`.
    pub tok_a: TokenizedTable,
    /// Word tokenization of table B over `T`.
    pub tok_b: TokenizedTable,
}

/// Pipeline stages, as reported to a [`RunObserver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Attribute selection + config tree + tokenization.
    Prepare,
    /// Joint top-k joins over all configs.
    TopK,
    /// Interactive verification.
    Verify,
    /// Per-match explanation + problem summary.
    Explain,
}

impl Stage {
    /// The span name this stage records under in the metrics registry.
    pub fn span_name(self) -> &'static str {
        match self {
            Stage::Prepare => "mc.core.debug.prepare",
            Stage::TopK => "mc.core.debug.topk",
            Stage::Verify => "mc.core.debug.verify",
            Stage::Explain => "mc.core.debug.explain",
        }
    }

    /// All stages, in pipeline order.
    pub const ALL: [Stage; 4] = [Stage::Prepare, Stage::TopK, Stage::Verify, Stage::Explain];
}

/// Hook into [`MatchCatcher::run_observed`]: called around every pipeline
/// stage with the metrics accrued *during* that stage, so callers can
/// stream progress (a TUI, a log line per stage, an experiment harness)
/// without waiting for the final [`DebugReport`].
pub trait RunObserver {
    /// A stage is about to run.
    fn stage_started(&mut self, _stage: Stage) {}
    /// A stage finished; `metrics` is the registry delta accrued while
    /// it ran, scoped to the run's [`ObsContext`] (with the default
    /// global context, concurrent activity elsewhere in the process is
    /// included).
    fn stage_finished(&mut self, _stage: Stage, _metrics: &MetricsSnapshot) {}
}

/// A [`RunObserver`] that ignores every callback.
pub struct NoopObserver;

impl RunObserver for NoopObserver {}

/// Counts a decode failure: the artifact passed the store's checksum but
/// failed structural validation. Treated as a miss.
fn decoded<T>(out: Option<T>) -> Option<T> {
    if out.is_none() {
        mc_obs::counter!("mc.store.decode_failed").inc();
    }
    out
}

/// Runs `f` inside the stage's span, notifying the observer with the
/// metrics delta the stage accrued.
fn observed<T>(observer: &mut dyn RunObserver, stage: Stage, f: impl FnOnce() -> T) -> T {
    observer.stage_started(stage);
    let before = MetricsSnapshot::capture();
    let out = {
        let _span = mc_obs::Span::enter(stage.span_name());
        f()
    };
    observer.stage_finished(stage, &MetricsSnapshot::capture().since(&before));
    out
}

/// The debugger's full output.
#[derive(Debug)]
pub struct DebugReport {
    /// Promising attributes used for configs.
    pub promising: Vec<AttrId>,
    /// Configs processed (tree order).
    pub configs: Vec<Config>,
    /// `|E|`: total candidate pairs across all top-k lists.
    pub e_size: usize,
    /// Confirmed killed-off matches, in discovery order.
    pub confirmed_matches: Vec<(TupleId, TupleId)>,
    /// Per-iteration statistics (Tables 3–4).
    pub iterations: Vec<IterationRecord>,
    /// Total labels requested from the oracle.
    pub labeled: usize,
    /// Per-match explanations.
    pub explanations: Vec<MatchExplanation>,
    /// Aggregated "blocker problems" (Table 4 right column).
    pub problems: Vec<(String, usize)>,
    /// Pervasiveness groups over the *full* candidate union (batch
    /// explain engine): blocking-similar pairs clustered by problem
    /// signature, most pervasive first.
    pub pervasive: Vec<crate::pervasive::ProblemGroup>,
    /// Per explanation (aligned with `explanations`), the pair's score
    /// in each config's top-k list (`None` = not on that list) — the
    /// per-measure score contributions of `mc-explain/v1`.
    pub explanation_scores: Vec<Vec<Option<f64>>>,
    /// Per config, the lowest score still on its top-k list; a pair's
    /// distance above this floor is its "threshold gap".
    pub config_floors: Vec<Option<f64>>,
    /// QJoin `q` used.
    pub q_used: usize,
    /// Everything the observability layer recorded during the run:
    /// stage/config spans (with p50/p95/p99), join counters, verifier
    /// iteration events — the registry delta between run start and end,
    /// scoped to [`DebuggerParams::obs`]. With a session context this is
    /// exactly this run's activity; with the default global context,
    /// concurrent runs in the same process are included.
    pub metrics: MetricsSnapshot,
}

impl DebugReport {
    /// Number of verifier iterations (column I of Table 3).
    pub fn iteration_count(&self) -> usize {
        self.iterations.len()
    }

    /// Matches confirmed within the first `n` iterations (Table 4).
    pub fn matches_in_first(&self, n: usize) -> usize {
        self.iterations
            .iter()
            .take(n)
            .map(|r| r.matches_found)
            .sum()
    }

    /// Wall time of the top-k stage, from its span.
    pub fn topk_elapsed(&self) -> Duration {
        Duration::from_micros(self.metrics.span(Stage::TopK.span_name()).total_us)
    }

    /// Wall time of the verification stage, from its span.
    pub fn verify_elapsed(&self) -> Duration {
        Duration::from_micros(self.metrics.span(Stage::Verify.span_name()).total_us)
    }
}

/// The debugger.
#[derive(Debug, Clone, Default)]
pub struct MatchCatcher {
    /// Tuning parameters.
    pub params: DebuggerParams,
}

impl MatchCatcher {
    /// A debugger with the given parameters.
    pub fn new(params: DebuggerParams) -> Self {
        MatchCatcher { params }
    }

    /// Stage 1: attribute selection, config-tree generation,
    /// tokenization. Blocker-independent (does not need `C`).
    pub fn prepare(&self, a: &Table, b: &Table) -> Prepared {
        let generator = ConfigGenerator::new(self.params.config);
        let promising = generator.promising(a, b);
        assert!(
            !promising.attrs.is_empty(),
            "no promising attributes — tables have no usable string/categorical columns"
        );
        self.prepare_from_promising(a, b, promising)
    }

    /// Like [`MatchCatcher::prepare`] but with a **manually curated**
    /// promising attribute set (§3.2: "the user can also manually curate
    /// schema S to generate T"). Statistics for the e-score and
    /// `FindLongAttr` are still computed from the data.
    pub fn prepare_with_attrs(&self, a: &Table, b: &Table, attrs: &[AttrId]) -> Prepared {
        assert!(!attrs.is_empty(), "curated attribute set must be non-empty");
        let stats_a = mc_table::stats::TableStats::compute(a);
        let stats_b = mc_table::stats::TableStats::compute(b);
        let promising = crate::config::PromisingAttrs {
            attrs: attrs.to_vec(),
            e_scores: attrs
                .iter()
                .map(|&f| stats_a.attr(f).e_component() * stats_b.attr(f).e_component())
                .collect(),
            avg_tokens_a: attrs.iter().map(|&f| stats_a.attr(f).avg_tokens).collect(),
            avg_tokens_b: attrs.iter().map(|&f| stats_b.attr(f).avg_tokens).collect(),
        };
        self.prepare_from_promising(a, b, promising)
    }

    fn prepare_from_promising(&self, a: &Table, b: &Table, promising: PromisingAttrs) -> Prepared {
        self.prepare_from_promising_cached(a, b, promising, None).0
    }

    /// Opens the configured artifact store, if any. A store that cannot
    /// be opened (unwritable root, foreign marker) must never break a
    /// debugging run: it is counted and ignored.
    fn open_store(&self) -> Option<Store> {
        let config = self.params.store.as_ref()?;
        match Store::open(config) {
            Ok(s) => Some(s),
            Err(_) => {
                mc_obs::counter!("mc.store.open_failed").inc();
                None
            }
        }
    }

    /// Store-aware [`MatchCatcher::prepare`]: on a tokenization-artifact
    /// hit the `mc.strsim.dict.build` pass is skipped entirely. Returns
    /// the tokenization cache key when a store is active, so later
    /// stages can derive their own keys from it.
    fn prepare_cached(
        &self,
        a: &Table,
        b: &Table,
        store: Option<&Store>,
    ) -> (Prepared, Option<Digest>) {
        let generator = ConfigGenerator::new(self.params.config);
        let promising = generator.promising(a, b);
        assert!(
            !promising.attrs.is_empty(),
            "no promising attributes — tables have no usable string/categorical columns"
        );
        self.prepare_from_promising_cached(a, b, promising, store)
    }

    fn prepare_from_promising_cached(
        &self,
        a: &Table,
        b: &Table,
        promising: PromisingAttrs,
        store: Option<&Store>,
    ) -> (Prepared, Option<Digest>) {
        let generator = ConfigGenerator::new(self.params.config);
        let tree = generator.build_tree(&promising);
        let key = store.map(|_| {
            store_io::tok_key(
                a.content_digest(),
                b.content_digest(),
                &promising.attrs,
                Tokenizer::Word,
            )
        });
        let cached = match (store, key) {
            (Some(s), Some(k)) => s
                .load(ArtifactKind::Tokenization, k)
                .and_then(|bytes| decoded(store_io::decode_tokenization(&bytes)))
                .and_then(|(_, ta, tb)| {
                    // Belt and braces against key collisions / mis-set
                    // source digests: the shape must match the inputs.
                    let n = promising.attrs.len();
                    (ta.rows() == a.len()
                        && tb.rows() == b.len()
                        && ta.attr_count() == n
                        && tb.attr_count() == n)
                        .then_some((ta, tb))
                }),
            _ => None,
        };
        let (tok_a, tok_b) = cached.unwrap_or_else(|| {
            let (tok_a, tok_b, order) =
                TokenizedTable::build_pair(a, b, &promising.attrs, Tokenizer::Word);
            if let (Some(s), Some(k)) = (store, key) {
                s.publish(
                    ArtifactKind::Tokenization,
                    k,
                    &store_io::encode_tokenization(&order, &tok_a, &tok_b),
                );
            }
            (tok_a, tok_b)
        });
        (
            Prepared {
                promising,
                tree,
                tok_a,
                tok_b,
            },
            key,
        )
    }

    /// Store-aware top-k stage. A candidate-union hit returns without
    /// touching arenas or running a single join; a miss runs the joint
    /// stage over (possibly restored) arenas and publishes the result.
    fn topk_cached(
        &self,
        prepared: &Prepared,
        c: &PairSet,
        store: Option<&Store>,
        tok: Option<Digest>,
    ) -> (Vec<Config>, usize, CandidateUnion) {
        let ukey = match (store, tok) {
            (Some(_), Some(t)) => Some(store_io::union_key(
                t,
                &prepared.tree,
                &self.params.joint,
                c,
            )),
            _ => None,
        };
        if let (Some(s), Some(k)) = (store, ukey) {
            if let Some((configs, q_used, union)) = s
                .load(ArtifactKind::CandidateUnion, k)
                .and_then(|bytes| decoded(store_io::decode_union(&bytes)))
            {
                let expected = prepared.tree.configs();
                if configs == expected {
                    return (configs, q_used, union);
                }
                mc_obs::counter!("mc.store.decode_failed").inc();
            }
        }
        let arenas = assemble_arenas_cached(
            &prepared.tok_a,
            &prepared.tok_b,
            &prepared.tree.configs(),
            self.params.joint.threads,
            store,
            tok,
        );
        let out = run_joint_with_arenas(
            &prepared.tok_a,
            &prepared.tok_b,
            c,
            &prepared.tree,
            self.params.joint,
            &arenas,
        );
        let union = CandidateUnion::build(&out.lists);
        if let (Some(s), Some(k)) = (store, ukey) {
            s.publish(
                ArtifactKind::CandidateUnion,
                k,
                &store_io::encode_union(&out.configs, out.q_used, &union),
            );
        }
        (out.configs, out.q_used, union)
    }

    /// Stage 2: joint top-k joins over all configs, excluding pairs in
    /// `C`.
    pub fn topk(&self, prepared: &Prepared, c: &PairSet) -> JointOutput {
        if let Err(e) = self.params.validate() {
            panic!("invalid DebuggerParams: {e}");
        }
        run_joint(
            &prepared.tok_a,
            &prepared.tok_b,
            c,
            &prepared.tree,
            self.params.joint,
        )
    }

    /// Stage 3: interactive verification of the candidate union.
    pub fn verify(
        &self,
        a: &Table,
        b: &Table,
        prepared: &Prepared,
        lists: &[TopKList],
        oracle: &mut dyn Oracle,
    ) -> (CandidateUnion, VerifyOutcome) {
        let union = CandidateUnion::build(lists);
        let outcome = self.verify_union(a, b, prepared, &union, oracle);
        (union, outcome)
    }

    /// Like [`MatchCatcher::verify`] but starting from an already-built
    /// candidate union — the warm-start path, where the union comes from
    /// the artifact store and no per-config lists exist.
    pub fn verify_union(
        &self,
        a: &Table,
        b: &Table,
        prepared: &Prepared,
        union: &CandidateUnion,
        oracle: &mut dyn Oracle,
    ) -> VerifyOutcome {
        let fx = FeatureExtractor::new(
            a,
            b,
            &prepared.promising.attrs,
            &prepared.tok_a,
            &prepared.tok_b,
        );
        run_verifier(union, &fx, oracle, &self.params.verifier)
    }

    /// Runs the full pipeline: prepare → top-k → verify → explain.
    pub fn run(&self, a: &Table, b: &Table, c: &PairSet, oracle: &mut dyn Oracle) -> DebugReport {
        self.run_observed(a, b, c, oracle, &mut NoopObserver)
    }

    /// Like [`MatchCatcher::run`], streaming per-stage metric deltas to
    /// `observer` as the pipeline advances.
    pub fn run_observed(
        &self,
        a: &Table,
        b: &Table,
        c: &PairSet,
        oracle: &mut dyn Oracle,
        observer: &mut dyn RunObserver,
    ) -> DebugReport {
        if let Err(e) = self.params.validate() {
            panic!("invalid DebuggerParams: {e}");
        }
        // Everything below — including worker threads, which re-attach
        // at their spawn sites — records into this run's context.
        let _obs = self.params.obs.attach();
        let store = self.open_store();
        let baseline = MetricsSnapshot::capture();
        let (prepared, tok) = observed(observer, Stage::Prepare, || {
            self.prepare_cached(a, b, store.as_ref())
        });
        let (configs, q_used, union) = observed(observer, Stage::TopK, || {
            self.topk_cached(&prepared, c, store.as_ref(), tok)
        });
        let outcome = observed(observer, Stage::Verify, || {
            self.verify_union(a, b, &prepared, &union, oracle)
        });

        let ex = observed(observer, Stage::Explain, || {
            crate::explain_batch::explain_stage(
                a,
                b,
                &union,
                &outcome.matches,
                self.params.joint.threads,
            )
        });
        let metrics = MetricsSnapshot::capture().since(&baseline);

        DebugReport {
            promising: prepared.promising.attrs.clone(),
            configs,
            e_size: union.len(),
            confirmed_matches: ex.confirmed,
            iterations: outcome.iterations,
            labeled: outcome.labeled,
            explanations: ex.explanations,
            problems: ex.problems,
            pervasive: ex.pervasive,
            explanation_scores: ex.explanation_scores,
            config_floors: ex.config_floors,
            q_used,
            metrics,
        }
    }
}

/// Restores one arena from the store, zero-copy first: a mapped
/// [`ArtifactKind::Postings`] payload is validated and borrowed in
/// place (no decode, no copy); on miss or validation failure
/// (counted under `mc.store.decode_failed`) the byte-codec
/// [`ArtifactKind::Arena`] artifact — written by older builds — is
/// tried before giving up.
fn restore_arena(s: &Store, key: Digest) -> Option<RecordArena> {
    if let Some(mapped) = s.load_mapped(ArtifactKind::Postings, key) {
        if let Some(arena) = decoded(store_io::map_arena(mapped)) {
            return Some(arena);
        }
    }
    s.load(ArtifactKind::Arena, key)
        .and_then(|b| decoded(store_io::decode_arena(&b)))
}

/// Per-config record arenas, preferring store artifacts (mmapped
/// zero-copy payloads first, then the byte codec). With no hits the
/// whole set is built in parallel (the cold
/// `mc.core.joint.build_arenas` path) and published in the zero-copy
/// layout; partial hits — possible after a gc evicted some files —
/// fill only the gaps. Shared by the one-shot warm path
/// ([`MatchCatcher::run`]) and incremental sessions
/// ([`MatchCatcher::start_session`], whose patches copy a mapped arena
/// out on first write).
pub(crate) fn assemble_arenas_cached(
    tok_a: &TokenizedTable,
    tok_b: &TokenizedTable,
    configs: &[Config],
    threads: usize,
    store: Option<&Store>,
    tok: Option<Digest>,
) -> Vec<(RecordArena, RecordArena)> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(4, |p| p.get())
    } else {
        threads
    };
    let (s, tok) = match (store, tok) {
        (Some(s), Some(tok)) => (s, tok),
        _ => return build_arenas(tok_a, tok_b, configs, threads),
    };
    let keys: Vec<(Digest, Digest)> = configs
        .iter()
        .map(|c| {
            let pos = c.positions();
            (
                store_io::arena_key(tok, 0, &pos),
                store_io::arena_key(tok, 1, &pos),
            )
        })
        .collect();
    let mut out: Vec<Option<(RecordArena, RecordArena)>> = keys
        .iter()
        .map(|&(ka, kb)| {
            let la = restore_arena(s, ka)?;
            let lb = restore_arena(s, kb)?;
            (la.len() == tok_a.rows() && lb.len() == tok_b.rows()).then_some((la, lb))
        })
        .collect();
    let publish_pair = |pair: &(RecordArena, RecordArena), ka: Digest, kb: Digest| {
        s.publish(
            ArtifactKind::Postings,
            ka,
            &store_io::encode_arena_zc(&pair.0),
        );
        s.publish(
            ArtifactKind::Postings,
            kb,
            &store_io::encode_arena_zc(&pair.1),
        );
    };
    if out.iter().all(Option::is_none) {
        let built = build_arenas(tok_a, tok_b, configs, threads);
        for (pair, &(ka, kb)) in built.iter().zip(&keys) {
            publish_pair(pair, ka, kb);
        }
        return built;
    }
    for (i, slot) in out.iter_mut().enumerate() {
        if slot.is_none() {
            let pos = configs[i].positions();
            let pair = (
                RecordArena::from_tokenized(tok_a, &pos),
                RecordArena::from_tokenized(tok_b, &pos),
            );
            let (ka, kb) = keys[i];
            publish_pair(&pair, ka, kb);
            *slot = Some(pair);
        }
    }
    out.into_iter()
        .map(|o| o.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GoldOracle;
    use mc_blocking::{Blocker, KeyFunc};
    use mc_table::{GoldMatches, Schema, Tuple};
    use std::sync::Arc;

    /// The Figure 1 tables.
    fn figure1() -> (Table, Table, GoldMatches) {
        let schema = Arc::new(Schema::from_names(["name", "city", "age"]));
        let mut a = Table::new("A", Arc::clone(&schema));
        a.push(Tuple::from_present(["Dave Smith", "Altanta", "18"]));
        a.push(Tuple::from_present(["Daniel Smith", "LA", "18"]));
        a.push(Tuple::from_present(["Joe Welson", "New York", "25"]));
        a.push(Tuple::from_present(["Charles Williams", "Chicago", "45"]));
        a.push(Tuple::from_present(["Charlie William", "Atlanta", "28"]));
        let mut b = Table::new("B", schema);
        b.push(Tuple::from_present(["David Smith", "Atlanta", "18"]));
        b.push(Tuple::from_present(["Joe Wilson", "NY", "25"]));
        b.push(Tuple::from_present(["Daniel W. Smith", "LA", "30"]));
        b.push(Tuple::from_present(["Charles Williams", "Chicago", "45"]));
        // True matches: (a1,b1), (a2,b3), (a3,b2), (a4,b4).
        let gold = GoldMatches::from_pairs([(0, 0), (1, 2), (2, 1), (3, 3)]);
        (a, b, gold)
    }

    #[test]
    fn figure1_debugging_recovers_killed_matches() {
        let (a, b, gold) = figure1();
        let q1 = Blocker::Hash(KeyFunc::Attr(a.schema().expect_id("city")));
        let c = q1.apply(&a, &b);
        // Q1 kills (a1,b1) and (a3,b2).
        assert_eq!(gold.killed(&c), 2);
        let mc = MatchCatcher::new(DebuggerParams::small());
        let mut oracle = GoldOracle::exact(&gold);
        let report = mc.run(&a, &b, &c, &mut oracle);
        let mut found = report.confirmed_matches.clone();
        found.sort_unstable();
        assert_eq!(found, vec![(0, 0), (2, 1)]);
        assert!(report.e_size > 0);
        assert!(!report.problems.is_empty());
    }

    #[test]
    fn perfect_blocker_yields_no_matches() {
        let (a, b, gold) = figure1();
        // C = all gold pairs (plus noise) → nothing killed.
        let mut c = PairSet::new();
        for (x, y) in gold.iter() {
            c.insert(x, y);
        }
        c.insert(0, 3);
        let mc = MatchCatcher::new(DebuggerParams::small());
        let mut oracle = GoldOracle::exact(&gold);
        let report = mc.run(&a, &b, &c, &mut oracle);
        assert!(report.confirmed_matches.is_empty());
        // The verifier stops at its natural stopping point quickly.
        assert!(report.iteration_count() <= 3);
    }

    #[test]
    fn report_explanations_identify_city_problem() {
        let (a, b, gold) = figure1();
        let q1 = Blocker::Hash(KeyFunc::Attr(a.schema().expect_id("city")));
        let c = q1.apply(&a, &b);
        let mc = MatchCatcher::new(DebuggerParams::small());
        let mut oracle = GoldOracle::exact(&gold);
        let report = mc.run(&a, &b, &c, &mut oracle);
        // (a1,b1) disagrees on city by misspelling; (a3,b2) by
        // abbreviation. Both should appear in the summary.
        let text = report
            .problems
            .iter()
            .map(|(s, n)| format!("{s}:{n}"))
            .collect::<Vec<_>>()
            .join("; ");
        assert!(text.contains("city"), "problems: {text}");
    }

    #[test]
    fn manual_curation_restricts_configs() {
        let (a, b, _) = figure1();
        let mc = MatchCatcher::new(DebuggerParams::small());
        let name = a.schema().expect_id("name");
        let city = a.schema().expect_id("city");
        let prepared = mc.prepare_with_attrs(&a, &b, &[name, city]);
        assert_eq!(prepared.promising.attrs, vec![name, city]);
        // |T| = 2 → tree of 2·3/2 = 3 configs.
        assert_eq!(prepared.tree.len(), 3);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn manual_curation_rejects_empty() {
        let (a, b, _) = figure1();
        let mc = MatchCatcher::new(DebuggerParams::small());
        let _ = mc.prepare_with_attrs(&a, &b, &[]);
    }

    #[test]
    fn default_and_small_params_validate() {
        assert!(DebuggerParams::default().validate().is_ok());
        assert!(DebuggerParams::small().validate().is_ok());
    }

    #[test]
    fn oversized_list_cap_is_rejected() {
        let mut params = DebuggerParams::small();
        params.incr.margin = DebuggerParams::MAX_LIST_CAP;
        let err = params.validate().unwrap_err();
        assert!(err.contains("list"), "unexpected error: {err}");
        params.incr.margin = 0;
        params.joint.k = DebuggerParams::MAX_LIST_CAP + 1;
        assert!(params.validate().is_err());
        params.joint.k = DebuggerParams::MAX_LIST_CAP;
        assert!(params.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "joint.k = 0")]
    fn zero_k_is_rejected() {
        let (a, b, gold) = figure1();
        let mut params = DebuggerParams::small();
        params.joint.k = 0;
        let mut oracle = GoldOracle::exact(&gold);
        let _ = MatchCatcher::new(params).run(&a, &b, &PairSet::new(), &mut oracle);
    }

    #[test]
    #[should_panic(expected = "joint.threads = 0")]
    fn zero_threads_is_rejected() {
        let (a, b, gold) = figure1();
        let mut params = DebuggerParams::small();
        params.joint.threads = 0;
        let mut oracle = GoldOracle::exact(&gold);
        let _ = MatchCatcher::new(params).run(&a, &b, &PairSet::new(), &mut oracle);
    }

    #[test]
    #[should_panic(expected = "n_trees = 0")]
    fn empty_forest_is_rejected() {
        let (a, b, gold) = figure1();
        let mut params = DebuggerParams::small();
        params.verifier.forest.n_trees = 0;
        let mut oracle = GoldOracle::exact(&gold);
        let _ = MatchCatcher::new(params).run(&a, &b, &PairSet::new(), &mut oracle);
    }

    #[test]
    fn observer_sees_every_stage_in_order() {
        #[derive(Default)]
        struct Recorder {
            started: Vec<Stage>,
            finished: Vec<Stage>,
        }
        impl RunObserver for Recorder {
            fn stage_started(&mut self, stage: Stage) {
                self.started.push(stage);
            }
            fn stage_finished(&mut self, stage: Stage, metrics: &MetricsSnapshot) {
                assert!(
                    metrics.span(stage.span_name()).count >= 1,
                    "{stage:?} delta must contain its own span"
                );
                self.finished.push(stage);
            }
        }
        let (a, b, gold) = figure1();
        let q1 = Blocker::Hash(KeyFunc::Attr(a.schema().expect_id("city")));
        let c = q1.apply(&a, &b);
        let mc = MatchCatcher::new(DebuggerParams::small());
        let mut oracle = GoldOracle::exact(&gold);
        let mut rec = Recorder::default();
        let report = mc.run_observed(&a, &b, &c, &mut oracle, &mut rec);
        assert_eq!(rec.started, Stage::ALL.to_vec());
        assert_eq!(rec.finished, Stage::ALL.to_vec());
        // The final report carries the whole run's metrics.
        for stage in Stage::ALL {
            assert!(
                report.metrics.span(stage.span_name()).count >= 1,
                "{stage:?}"
            );
        }
        assert!(report.topk_elapsed() >= Duration::ZERO);
    }

    #[test]
    fn stages_compose_like_run() {
        let (a, b, gold) = figure1();
        let q1 = Blocker::Hash(KeyFunc::Attr(a.schema().expect_id("city")));
        let c = q1.apply(&a, &b);
        let mc = MatchCatcher::new(DebuggerParams::small());
        let prepared = mc.prepare(&a, &b);
        assert!(!prepared.tree.is_empty());
        let joint = mc.topk(&prepared, &c);
        assert_eq!(joint.lists.len(), prepared.tree.len());
        let mut oracle = GoldOracle::exact(&gold);
        let (union, outcome) = mc.verify(&a, &b, &prepared, &joint.lists, &mut oracle);
        assert!(!union.is_empty());
        assert_eq!(outcome.matches.len(), 2);
    }
}

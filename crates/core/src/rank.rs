//! Rank aggregation: MedRank and weighted median ranking (§5).
//!
//! The verifier must combine the per-config top-k lists into one global
//! order. **MedRank** \[15\] assigns each item, per list, a competition
//! rank (ties share the lowest position; items missing from a list get
//! rank `|list| + 1`), then orders items by the *median* of their ranks.
//! **WMR** generalizes this with per-list weights updated from user
//! feedback (`w_i ← w_i · (1 + ln(1 + r_i))` where `r_i` is the number of
//! confirmed matches appearing in list `i`); the paper keeps WMR as the
//! baseline its learning-based verifier beats (§6.5).

use crate::joint::CandidateUnion;

/// Per-list competition ranks for every candidate pair.
#[derive(Debug, Clone)]
pub struct RankedLists {
    /// `ranks[c][i]` = rank of item `i` in list `c` (missing = max+1).
    pub ranks: Vec<Vec<u32>>,
    items: usize,
}

impl RankedLists {
    /// Computes ranks from the candidate union.
    pub fn from_union(union: &CandidateUnion) -> Self {
        let items = union.len();
        let mut ranks = Vec::with_capacity(union.scores.len());
        for col in &union.scores {
            // Items present in this list, sorted by descending score.
            let mut present: Vec<(f64, usize)> = col
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.map(|s| (s, i)))
                .collect();
            present.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
            let missing_rank = present.len() as u32 + 1;
            let mut r = vec![missing_rank; items];
            let mut current_rank = 0u32;
            let mut last_score = f64::INFINITY;
            for (pos, &(score, item)) in present.iter().enumerate() {
                if score < last_score {
                    current_rank = pos as u32 + 1;
                    last_score = score;
                }
                r[item] = current_rank;
            }
            ranks.push(r);
        }
        RankedLists { ranks, items }
    }

    /// Number of items.
    pub fn items(&self) -> usize {
        self.items
    }

    /// Number of lists.
    pub fn lists(&self) -> usize {
        self.ranks.len()
    }

    /// The (lower) median rank of item `i` across lists.
    pub fn median_rank(&self, i: usize) -> u32 {
        let mut rs: Vec<u32> = self.ranks.iter().map(|r| r[i]).collect();
        rs.sort_unstable();
        rs[(rs.len() - 1) / 2]
    }

    /// Weighted median rank of item `i`: the smallest rank `x` such that
    /// the lists ranking `i` at or better than `x` hold at least half the
    /// total weight.
    pub fn weighted_median_rank(&self, i: usize, weights: &[f64]) -> u32 {
        debug_assert_eq!(weights.len(), self.lists());
        let mut pairs: Vec<(u32, f64)> = self
            .ranks
            .iter()
            .zip(weights)
            .map(|(r, &w)| (r[i], w))
            .collect();
        pairs.sort_unstable_by_key(|p| p.0);
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for (rank, w) in pairs {
            acc += w;
            if acc * 2.0 >= total {
                return rank;
            }
        }
        u32::MAX
    }
}

/// MedRank global order: item indexes best-first. Ties broken by item
/// index (the union is already sorted by best score, so this is
/// deterministic and sensible).
pub fn medrank_order(ranked: &RankedLists) -> Vec<usize> {
    let mut order: Vec<usize> = (0..ranked.items()).collect();
    order.sort_by_key(|&i| (ranked.median_rank(i), i));
    order
}

/// Per-list weights for WMR.
#[derive(Debug, Clone)]
pub struct WmrWeights {
    w: Vec<f64>,
}

impl WmrWeights {
    /// Uniform initial weights `1/m`.
    pub fn uniform(lists: usize) -> Self {
        assert!(lists > 0);
        WmrWeights {
            w: vec![1.0 / lists as f64; lists],
        }
    }

    /// The current weights.
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// Feedback update: `w_i ← w_i · (1 + ln(1 + r_i))`, then normalize.
    /// `matches_per_list[i]` = confirmed matches this iteration that
    /// appear in list `i`.
    pub fn update(&mut self, matches_per_list: &[usize]) {
        debug_assert_eq!(matches_per_list.len(), self.w.len());
        for (w, &r) in self.w.iter_mut().zip(matches_per_list) {
            *w *= 1.0 + (1.0 + r as f64).ln();
        }
        let total: f64 = self.w.iter().sum();
        if total > 0.0 {
            for w in &mut self.w {
                *w /= total;
            }
        }
    }
}

/// WMR global order under the given weights.
pub fn wmr_order(ranked: &RankedLists, weights: &WmrWeights) -> Vec<usize> {
    let mut order: Vec<usize> = (0..ranked.items()).collect();
    order.sort_by_key(|&i| (ranked.weighted_median_rank(i, weights.weights()), i));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssj::TopKList;

    /// The exact Figure 8 example: three lists over items a, b, c, d.
    fn figure8() -> (CandidateUnion, Vec<u64>) {
        // a=0, b=1, c=2, d=3 (pair keys chosen so the union orders them
        // a, b, c, d by best score).
        let mut l1 = TopKList::new(4);
        l1.insert(1.0, 0);
        l1.insert(0.8, 1);
        l1.insert(0.8, 2);
        l1.insert(0.6, 3);
        let mut l2 = TopKList::new(4);
        l2.insert(0.9, 0);
        l2.insert(0.7, 2);
        l2.insert(0.6, 3);
        let mut l3 = TopKList::new(4);
        l3.insert(0.85, 1); // b first (paper has 0.8; adjusted so the
                            // union's deterministic order stays a,b,c,d)
        l3.insert(0.5, 0);
        l3.insert(0.3, 2);
        l3.insert(0.2, 3);
        let union = CandidateUnion::build(&[l1, l2, l3]);
        (union, vec![0, 1, 2, 3])
    }

    #[test]
    fn figure8_ranks() {
        let (union, keys) = figure8();
        assert_eq!(union.pairs, keys);
        let ranked = RankedLists::from_union(&union);
        // L1: a(1) b(2) c(2) d(4)
        assert_eq!(ranked.ranks[0], vec![1, 2, 2, 4]);
        // L2: a(1) c(2) d(3); b missing → 4
        assert_eq!(ranked.ranks[1], vec![1, 4, 2, 3]);
        // L3: b(1) a(2) c(3) d(4)
        assert_eq!(ranked.ranks[2], vec![2, 1, 3, 4]);
    }

    #[test]
    fn figure8_global_medrank() {
        let (union, _) = figure8();
        let ranked = RankedLists::from_union(&union);
        // Medians: a=1, b=2, c=2, d=4 → order a, b, c, d (b before c by
        // index tie-break, as in the paper's L*).
        assert_eq!(ranked.median_rank(0), 1);
        assert_eq!(ranked.median_rank(1), 2);
        assert_eq!(ranked.median_rank(2), 2);
        assert_eq!(ranked.median_rank(3), 4);
        assert_eq!(medrank_order(&ranked), vec![0, 1, 2, 3]);
    }

    #[test]
    fn missing_items_rank_after_present() {
        let mut l1 = TopKList::new(2);
        l1.insert(0.9, 7);
        let mut l2 = TopKList::new(2);
        l2.insert(0.8, 7);
        l2.insert(0.7, 9);
        let union = CandidateUnion::build(&[l1, l2]);
        let ranked = RankedLists::from_union(&union);
        let i9 = union.pairs.iter().position(|&p| p == 9).unwrap();
        assert_eq!(ranked.ranks[0][i9], 2); // missing from l1 (1 item) → 2
    }

    #[test]
    fn wmr_uniform_equals_median_for_odd_lists() {
        let (union, _) = figure8();
        let ranked = RankedLists::from_union(&union);
        let w = WmrWeights::uniform(3);
        for i in 0..ranked.items() {
            assert_eq!(
                ranked.weighted_median_rank(i, w.weights()),
                ranked.median_rank(i)
            );
        }
        assert_eq!(wmr_order(&ranked, &w), medrank_order(&ranked));
    }

    #[test]
    fn wmr_update_shifts_weight_to_productive_lists() {
        let mut w = WmrWeights::uniform(2);
        w.update(&[5, 0]); // list 0 contained 5 confirmed matches
        assert!(w.weights()[0] > w.weights()[1]);
        let sum: f64 = w.weights().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wmr_weights_change_the_order() {
        // Two lists that disagree; enough weight on list 1 makes its
        // favourite win.
        let mut l1 = TopKList::new(2);
        l1.insert(0.9, 100); // item x best in l1
        l1.insert(0.1, 200);
        let mut l2 = TopKList::new(2);
        l2.insert(0.9, 200); // item y best in l2
        l2.insert(0.1, 100);
        let union = CandidateUnion::build(&[l1, l2]);
        let ranked = RankedLists::from_union(&union);
        let ix = union.pairs.iter().position(|&p| p == 100).unwrap();
        let iy = union.pairs.iter().position(|&p| p == 200).unwrap();
        let mut w = WmrWeights::uniform(2);
        // Heavy feedback for list 2 (index 1).
        for _ in 0..5 {
            w.update(&[0, 10]);
        }
        let order = wmr_order(&ranked, &w);
        let pos = |i: usize| order.iter().position(|&o| o == i).unwrap();
        assert!(pos(iy) < pos(ix), "list 2's favourite should now lead");
    }
}

//! Labeling oracles — the "user" of the interactive verifier.
//!
//! The paper's large-scale Table 3 experiments use *synthetic users* "whom
//! we assume can identify the true matches accurately" (§6.1);
//! [`GoldOracle`] is exactly that, with an optional label-noise knob for
//! robustness experiments. Real deployments implement [`Oracle`] over a
//! UI.

use mc_table::{GoldMatches, TupleId};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

/// Answers "is this pair a true match?" for the verifier.
pub trait Oracle {
    /// Labels a pair. Called at most once per pair per debugging session.
    fn is_match(&mut self, a: TupleId, b: TupleId) -> bool;

    /// Number of labels given so far.
    fn labels_given(&self) -> usize;
}

/// An oracle backed by a gold match set, optionally flipping each label
/// with probability `noise`.
pub struct GoldOracle<'g> {
    gold: &'g GoldMatches,
    noise: f64,
    rng: StdRng,
    labels: usize,
}

impl<'g> GoldOracle<'g> {
    /// A perfectly accurate oracle.
    pub fn exact(gold: &'g GoldMatches) -> Self {
        GoldOracle {
            gold,
            noise: 0.0,
            rng: StdRng::seed_from_u64(0),
            labels: 0,
        }
    }

    /// An oracle that flips each label with probability `noise`.
    pub fn noisy(gold: &'g GoldMatches, noise: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&noise));
        GoldOracle {
            gold,
            noise,
            rng: StdRng::seed_from_u64(seed),
            labels: 0,
        }
    }
}

impl Oracle for GoldOracle<'_> {
    fn is_match(&mut self, a: TupleId, b: TupleId) -> bool {
        self.labels += 1;
        let truth = self.gold.is_match(a, b);
        if self.noise > 0.0 && self.rng.random_bool(self.noise) {
            !truth
        } else {
            truth
        }
    }

    fn labels_given(&self) -> usize {
        self.labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_oracle_reports_gold() {
        let gold = GoldMatches::from_pairs([(1, 2)]);
        let mut o = GoldOracle::exact(&gold);
        assert!(o.is_match(1, 2));
        assert!(!o.is_match(2, 1));
        assert_eq!(o.labels_given(), 2);
    }

    #[test]
    fn noisy_oracle_flips_sometimes() {
        let gold = GoldMatches::from_pairs((0..100).map(|i| (i, i)));
        let mut o = GoldOracle::noisy(&gold, 0.3, 9);
        let wrong = (0..100).filter(|&i| !o.is_match(i, i)).count();
        assert!(
            wrong > 10 && wrong < 60,
            "flip count {wrong} implausible for p=0.3"
        );
    }

    #[test]
    fn zero_noise_is_exact() {
        let gold = GoldMatches::from_pairs([(5, 5)]);
        let mut o = GoldOracle::noisy(&gold, 0.0, 1);
        for _ in 0..10 {
            assert!(o.is_match(5, 5));
        }
    }
}

//! A fast, non-cryptographic hasher for hot hash maps.
//!
//! The debugger's inner loops (pair-state maps, inverted indexes, overlap
//! databases) hash small integer keys millions of times. `SipHash`, the
//! standard-library default, is needlessly slow for this; we implement the
//! well-known FxHash multiply-xor scheme (as used by rustc) instead of
//! pulling in an external crate.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc FxHash implementation.
const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style streaming hasher: `state = (state.rotate_left(5) ^ word) * SEED`.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Creates an empty [`FxHashMap`].
pub fn fx_map<K, V>() -> FxHashMap<K, V> {
    FxHashMap::default()
}

/// Creates an empty [`FxHashMap`] with capacity.
pub fn fx_map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// Creates an empty [`FxHashSet`].
pub fn fx_set<T>() -> FxHashSet<T> {
    FxHashSet::default()
}

/// Creates an empty [`FxHashSet`] with capacity.
pub fn fx_set_with_capacity<T>(cap: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// Hashes a single `u64` with the Fx scheme; used to shard keys across the
/// concurrent overlap database without constructing a hasher.
#[inline]
pub fn hash_u64(x: u64) -> u64 {
    x.rotate_left(5).wrapping_mul(SEED64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m = fx_map();
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&500), Some(&1000));
    }

    #[test]
    fn hash_is_deterministic() {
        let mut h1 = FxHasher::default();
        let mut h2 = FxHasher::default();
        h1.write_u64(42);
        h2.write_u64(42);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn distinct_keys_usually_distinct_hashes() {
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        // No collisions expected over a tiny dense range.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        let mut h1 = FxHasher::default();
        h1.write(b"abcdefghi"); // 8-byte chunk + 1 tail byte
        let mut h2 = FxHasher::default();
        h2.write(b"abcdefghj");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn set_roundtrip() {
        let mut s = fx_set_with_capacity(4);
        assert!(s.insert("x"));
        assert!(!s.insert("x"));
        assert!(s.contains("x"));
        let m: FxHashMap<u32, u32> = fx_map_with_capacity(8);
        assert!(m.capacity() >= 8);
    }

    #[test]
    fn hash_u64_spreads_low_bits() {
        // Dense small integers should land in different shards (top bits).
        let shards: HashSet<u64> = (0..64u64).map(|i| hash_u64(i) >> 58).collect();
        assert!(shards.len() > 16, "poor shard spread: {}", shards.len());
    }
}

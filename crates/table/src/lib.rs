#![warn(missing_docs)]

//! # mc-table
//!
//! Tabular data model used throughout the MatchCatcher workspace.
//!
//! Entity matching (EM) operates on two tables `A` and `B` that share a
//! schema. This crate provides:
//!
//! * [`Schema`] / [`Attribute`] — named attributes with an optional declared
//!   [`AttrType`];
//! * [`Table`] / [`Tuple`] — row-major string tables with missing values;
//! * [`stats`] — per-attribute statistics (missing ratio, uniqueness,
//!   average token length) feeding MatchCatcher's config generator;
//! * [`gold`] — gold match sets and recall computation;
//! * [`pair`] — compact `(a, b)` tuple-pair keys and pair sets;
//! * [`hash`] — a fast FxHash-style hasher used for hot hash maps;
//! * [`digest`] — stable 128-bit content digests for cache keys (the
//!   artifact store's key material);
//! * [`csv`] — minimal CSV import/export for datasets, including a
//!   path-based loader that records the file's byte digest.
//!
//! The crate is deliberately free of heavy dependencies: every downstream
//! crate (string similarity, blocking, the debugger itself) builds on these
//! types.

pub mod csv;
pub mod delta;
pub mod digest;
pub mod gold;
pub mod hash;
pub mod pair;
pub mod schema;
pub mod stats;
pub mod table;

pub use delta::{DeltaError, RowEdit, TableDelta};
pub use digest::{digest_bytes, Digest, DigestWriter};
pub use gold::GoldMatches;
pub use pair::{pair_key, split_pair_key, PairSet};
pub use schema::{AttrId, AttrType, Attribute, Schema};
pub use stats::{AttrStats, IncrTableStats, TableStats};
pub use table::{Table, Tuple, TupleId};

//! Per-attribute statistics.
//!
//! The config generator (paper §3.2) needs, per attribute and per table:
//!
//! * `n(f)` — fraction of tuples with a non-missing value;
//! * `u(f)` — fraction of distinct values among non-missing values;
//! * the average length in word tokens (`AL_f`, used by `FindLongAttr`);
//! * an inferred [`AttrType`] (string / numeric / categorical / boolean)
//!   from a small rule-based classifier;
//! * the set of distinct values (to compare categorical domains between
//!   tables A and B).

use crate::delta::TableDelta;
use crate::hash::{fx_map, fx_set, FxHashMap, FxHashSet};
use crate::schema::{AttrId, AttrType};
use crate::table::{Table, Tuple};

/// Fraction of parseable values above which an undeclared attribute is
/// classified as numeric.
const NUMERIC_FRACTION: f64 = 0.9;

/// An attribute is categorical when it has at most this many distinct
/// values, or when its unique ratio is below [`CATEGORICAL_UNIQUE_RATIO`].
const CATEGORICAL_MAX_DISTINCT: usize = 32;

/// See [`CATEGORICAL_MAX_DISTINCT`].
const CATEGORICAL_UNIQUE_RATIO: f64 = 0.02;

/// Statistics for one attribute of one table.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrStats {
    /// The attribute these statistics describe.
    pub attr: AttrId,
    /// Total number of tuples in the table.
    pub rows: usize,
    /// Number of tuples with a non-missing value.
    pub non_missing: usize,
    /// Number of distinct non-missing values.
    pub distinct: usize,
    /// Average number of whitespace-separated word tokens among non-missing
    /// values (`AL_f` in the paper's Theorem 3.5 approximation).
    pub avg_tokens: f64,
    /// Inferred (or declared) attribute type.
    pub attr_type: AttrType,
    /// Distinct lowercased values, retained only for categorical/boolean
    /// attributes (bounded cardinality); empty for text/numeric.
    pub value_set: FxHashSet<String>,
}

impl AttrStats {
    /// `n(f)`: the non-missing ratio (Definition 3.1). Zero for an empty table.
    pub fn non_missing_ratio(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.non_missing as f64 / self.rows as f64
        }
    }

    /// `u(f)`: distinct values over non-missing values (Definition 3.1).
    pub fn unique_ratio(&self) -> f64 {
        if self.non_missing == 0 {
            0.0
        } else {
            self.distinct as f64 / self.non_missing as f64
        }
    }

    /// Per-table e-score component `e_T(f) = 2·n·u/(n+u)` — the harmonic
    /// mean of the non-missing and unique ratios (Definition 3.1).
    pub fn e_component(&self) -> f64 {
        let n = self.non_missing_ratio();
        let u = self.unique_ratio();
        if n + u == 0.0 {
            0.0
        } else {
            2.0 * n * u / (n + u)
        }
    }
}

/// Statistics for every attribute of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    attrs: Vec<AttrStats>,
}

impl TableStats {
    /// Computes statistics over every attribute of `table`, performing a
    /// single pass per attribute.
    pub fn compute(table: &Table) -> Self {
        let schema = table.schema();
        let mut attrs = Vec::with_capacity(schema.len());
        for (attr, decl) in schema.iter() {
            let mut non_missing = 0usize;
            let mut token_total = 0usize;
            let mut values: FxHashSet<String> = fx_set();
            let mut numeric_hits = 0usize;
            let mut boolean_hits = 0usize;
            for (_, tuple) in table.iter() {
                let Some(v) = tuple.value(attr) else { continue };
                let v = v.trim();
                if v.is_empty() {
                    continue;
                }
                non_missing += 1;
                token_total += v.split_whitespace().count();
                if parse_numeric(v) {
                    numeric_hits += 1;
                }
                if parse_boolean(v) {
                    boolean_hits += 1;
                }
                values.insert(v.to_ascii_lowercase());
            }
            let distinct = values.len();
            let attr_type = decl
                .declared
                .unwrap_or_else(|| infer_type(non_missing, distinct, numeric_hits, boolean_hits));
            let keep_values = matches!(attr_type, AttrType::Categorical | AttrType::Boolean);
            attrs.push(AttrStats {
                attr,
                rows: table.len(),
                non_missing,
                distinct,
                avg_tokens: if non_missing == 0 {
                    0.0
                } else {
                    token_total as f64 / non_missing as f64
                },
                attr_type,
                value_set: if keep_values { values } else { fx_set() },
            });
        }
        TableStats { attrs }
    }

    /// Statistics for a single attribute.
    #[inline]
    pub fn attr(&self, id: AttrId) -> &AttrStats {
        &self.attrs[id.index()]
    }

    /// Iterates over all per-attribute statistics.
    pub fn iter(&self) -> impl Iterator<Item = &AttrStats> {
        self.attrs.iter()
    }

    /// Jaccard similarity of the distinct-value sets of the same attribute
    /// in two tables; used to drop categorical attributes whose domains
    /// differ between A and B (§3.2, the "Gender: {Male,Female} vs {M,F,U}"
    /// example).
    pub fn value_set_jaccard(&self, other: &TableStats, attr: AttrId) -> f64 {
        let a = &self.attr(attr).value_set;
        let b = &other.attr(attr).value_set;
        if a.is_empty() && b.is_empty() {
            return 0.0;
        }
        let inter = a.iter().filter(|v| b.contains(*v)).count();
        let union = a.len() + b.len() - inter;
        inter as f64 / union as f64
    }
}

/// Incrementally maintained counters behind one attribute's
/// [`AttrStats`]: everything [`TableStats::compute`]'s scan accumulates,
/// plus the full value *multiset* (not just the distinct set) so removals
/// can decide when a value's last occurrence disappears.
#[derive(Debug, Clone)]
struct IncrAttrStats {
    attr: AttrId,
    non_missing: usize,
    token_total: usize,
    numeric_hits: usize,
    boolean_hits: usize,
    /// Lowercased non-missing values with occurrence counts.
    counts: FxHashMap<String, u32>,
}

impl IncrAttrStats {
    /// Accounts one non-missing occurrence of `v` (already trimmed).
    fn add_value(&mut self, v: &str) {
        self.non_missing += 1;
        self.token_total += v.split_whitespace().count();
        if parse_numeric(v) {
            self.numeric_hits += 1;
        }
        if parse_boolean(v) {
            self.boolean_hits += 1;
        }
        *self.counts.entry(v.to_ascii_lowercase()).or_insert(0) += 1;
    }

    /// Reverses [`IncrAttrStats::add_value`] for one occurrence of `v`.
    fn remove_value(&mut self, v: &str) {
        self.non_missing -= 1;
        self.token_total -= v.split_whitespace().count();
        if parse_numeric(v) {
            self.numeric_hits -= 1;
        }
        if parse_boolean(v) {
            self.boolean_hits -= 1;
        }
        let key = v.to_ascii_lowercase();
        let n = self
            .counts
            .get_mut(&key)
            .expect("removed value must have been added");
        if *n == 1 {
            self.counts.remove(&key);
        } else {
            *n -= 1;
        }
    }
}

/// [`TableStats`] maintained under [`TableDelta`] edits.
///
/// [`IncrTableStats::compute`] performs the same single pass as
/// [`TableStats::compute`]; [`IncrTableStats::apply_delta`] then keeps
/// the counters in step with a table patch in time proportional to the
/// delta, and [`IncrTableStats::snapshot`] converts them back into a
/// `TableStats` **equal** to recomputing from scratch on the patched
/// table: every counter is integer arithmetic, the derived ratios divide
/// the same integers, and the distinct-value set is the multiset's key
/// set. The incremental debugger relies on this equality to reproduce a
/// cold run's promising-attribute selection without rescanning two large
/// tables on every rerun.
#[derive(Debug, Clone)]
pub struct IncrTableStats {
    rows: usize,
    attrs: Vec<IncrAttrStats>,
}

impl IncrTableStats {
    /// Builds the counters with one pass over `table`.
    pub fn compute(table: &Table) -> Self {
        let schema = table.schema();
        let mut attrs: Vec<IncrAttrStats> = schema
            .attr_ids()
            .map(|attr| IncrAttrStats {
                attr,
                non_missing: 0,
                token_total: 0,
                numeric_hits: 0,
                boolean_hits: 0,
                counts: fx_map(),
            })
            .collect();
        for (_, tuple) in table.iter() {
            for st in &mut attrs {
                if let Some(v) = trimmed(tuple, st.attr) {
                    st.add_value(v);
                }
            }
        }
        IncrTableStats {
            rows: table.len(),
            attrs,
        }
    }

    /// Folds a delta into the counters. Must be called with the
    /// **pre-patch** table (the old values of updated and deleted rows
    /// are read from it) and a delta that [`TableDelta::validate`]s
    /// against it.
    pub fn apply_delta(&mut self, table: &Table, delta: &TableDelta) {
        for edit in &delta.updates {
            self.remove_row(table.tuple(edit.id));
            self.add_row(&edit.tuple);
        }
        for &id in &delta.deletes {
            // Deletes tombstone the row to all-`None`: the slot (and the
            // row count) stays, its values go.
            self.remove_row(table.tuple(id));
        }
        for t in &delta.inserts {
            self.add_row(t);
            self.rows += 1;
        }
    }

    fn add_row(&mut self, tuple: &Tuple) {
        for st in &mut self.attrs {
            if let Some(v) = trimmed(tuple, st.attr) {
                st.add_value(v);
            }
        }
    }

    fn remove_row(&mut self, tuple: &Tuple) {
        for st in &mut self.attrs {
            if let Some(v) = trimmed(tuple, st.attr) {
                st.remove_value(v);
            }
        }
    }

    /// Converts the counters into the [`TableStats`] a fresh
    /// [`TableStats::compute`] over the same rows would produce.
    pub fn snapshot(&self, table: &Table) -> TableStats {
        let schema = table.schema();
        let attrs = self
            .attrs
            .iter()
            .map(|st| {
                let distinct = st.counts.len();
                let attr_type = schema.attr(st.attr).declared.unwrap_or_else(|| {
                    infer_type(st.non_missing, distinct, st.numeric_hits, st.boolean_hits)
                });
                let keep_values = matches!(attr_type, AttrType::Categorical | AttrType::Boolean);
                AttrStats {
                    attr: st.attr,
                    rows: self.rows,
                    non_missing: st.non_missing,
                    distinct,
                    avg_tokens: if st.non_missing == 0 {
                        0.0
                    } else {
                        st.token_total as f64 / st.non_missing as f64
                    },
                    attr_type,
                    value_set: if keep_values {
                        st.counts.keys().cloned().collect()
                    } else {
                        fx_set()
                    },
                }
            })
            .collect();
        TableStats { attrs }
    }
}

/// The trimmed non-missing value of `attr`, or `None` when the cell is
/// missing or whitespace — the same missing test the full scan applies.
fn trimmed(tuple: &Tuple, attr: AttrId) -> Option<&str> {
    let v = tuple.value(attr)?.trim();
    if v.is_empty() {
        None
    } else {
        Some(v)
    }
}

fn parse_numeric(v: &str) -> bool {
    let cleaned: String = v.chars().filter(|c| *c != '$' && *c != ',').collect();
    cleaned.parse::<f64>().is_ok()
}

fn parse_boolean(v: &str) -> bool {
    matches!(
        v.to_ascii_lowercase().as_str(),
        "true" | "false" | "t" | "f" | "yes" | "no" | "y" | "n" | "0" | "1"
    )
}

/// The rule-based attribute-type classifier from §3.2: numeric if nearly
/// all values parse as numbers, boolean if all values come from a boolean
/// vocabulary, categorical if the distinct-value count is small, otherwise
/// free-form text.
fn infer_type(
    non_missing: usize,
    distinct: usize,
    numeric_hits: usize,
    boolean_hits: usize,
) -> AttrType {
    if non_missing == 0 {
        return AttrType::Text;
    }
    let nm = non_missing as f64;
    if boolean_hits == non_missing && distinct <= 4 {
        return AttrType::Boolean;
    }
    if numeric_hits as f64 / nm >= NUMERIC_FRACTION {
        return AttrType::Numeric;
    }
    if distinct <= CATEGORICAL_MAX_DISTINCT || (distinct as f64 / nm) <= CATEGORICAL_UNIQUE_RATIO {
        return AttrType::Categorical;
    }
    AttrType::Text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::table::{Table, Tuple};
    use std::sync::Arc;

    fn table_of(name: &str, cols: &[&str], rows: &[&[Option<&str>]]) -> Table {
        let schema = Arc::new(Schema::from_names(cols.iter().copied()));
        let mut t = Table::new(name, schema);
        for r in rows {
            t.push(Tuple::new(
                r.iter().map(|v| v.map(|s| s.to_string())).collect(),
            ));
        }
        t
    }

    #[test]
    fn ratios_match_definition_3_1() {
        let t = table_of(
            "A",
            &["name"],
            &[&[Some("dave")], &[Some("dave")], &[Some("joe")], &[None]],
        );
        let s = TableStats::compute(&t);
        let a = s.attr(AttrId(0));
        assert_eq!(a.non_missing, 3);
        assert_eq!(a.distinct, 2);
        assert!((a.non_missing_ratio() - 0.75).abs() < 1e-12);
        assert!((a.unique_ratio() - 2.0 / 3.0).abs() < 1e-12);
        // harmonic mean of 0.75 and 2/3
        let e = a.e_component();
        let expect = 2.0 * 0.75 * (2.0 / 3.0) / (0.75 + 2.0 / 3.0);
        assert!((e - expect).abs() < 1e-12);
    }

    #[test]
    fn numeric_detection() {
        let t = table_of(
            "A",
            &["price"],
            &[&[Some("10.5")], &[Some("$1,300")], &[Some("7")]],
        );
        let s = TableStats::compute(&t);
        assert_eq!(s.attr(AttrId(0)).attr_type, AttrType::Numeric);
    }

    #[test]
    fn boolean_detection() {
        let t = table_of(
            "A",
            &["flag"],
            &[&[Some("yes")], &[Some("no")], &[Some("yes")]],
        );
        let s = TableStats::compute(&t);
        assert_eq!(s.attr(AttrId(0)).attr_type, AttrType::Boolean);
    }

    #[test]
    fn text_detection_for_high_cardinality() {
        let rows: Vec<String> = (0..100).map(|i| format!("title number {i} here")).collect();
        let row_refs: Vec<Vec<Option<&str>>> =
            rows.iter().map(|r| vec![Some(r.as_str())]).collect();
        let slices: Vec<&[Option<&str>]> = row_refs.iter().map(|r| r.as_slice()).collect();
        let t = table_of("A", &["title"], &slices);
        let s = TableStats::compute(&t);
        assert_eq!(s.attr(AttrId(0)).attr_type, AttrType::Text);
        assert!((s.attr(AttrId(0)).avg_tokens - 4.0).abs() < 1e-12);
    }

    #[test]
    fn declared_type_wins_over_inference() {
        let schema = Arc::new(Schema::new(vec![crate::schema::Attribute::typed(
            "zip",
            AttrType::Categorical,
        )]));
        let mut t = Table::new("A", schema);
        for i in 0..50 {
            t.push(Tuple::from_present([format!("{:05}", i)]));
        }
        let s = TableStats::compute(&t);
        assert_eq!(s.attr(AttrId(0)).attr_type, AttrType::Categorical);
    }

    #[test]
    fn value_set_jaccard_detects_domain_mismatch() {
        let a = table_of("A", &["gender"], &[&[Some("male")], &[Some("female")]]);
        let b = table_of(
            "B",
            &["gender"],
            &[&[Some("m")], &[Some("f")], &[Some("u")]],
        );
        let sa = TableStats::compute(&a);
        let sb = TableStats::compute(&b);
        assert_eq!(sa.value_set_jaccard(&sb, AttrId(0)), 0.0);
        let sa2 = TableStats::compute(&a);
        assert_eq!(sa.value_set_jaccard(&sa2, AttrId(0)), 1.0);
    }

    #[test]
    fn incremental_stats_match_full_recompute() {
        use crate::delta::{RowEdit, TableDelta};
        let mut t = table_of(
            "A",
            &["name", "city", "price"],
            &[
                &[Some("dave smith"), Some("atlanta"), Some("10")],
                &[Some("joe"), Some("ny"), Some("12.5")],
                &[Some("sue b"), Some("atlanta"), None],
                &[None, Some("sf"), Some("99")],
            ],
        );
        let mut incr = IncrTableStats::compute(&t);
        assert_eq!(incr.snapshot(&t), TableStats::compute(&t));

        // One round of each edit kind, including a value that vanishes
        // from the distinct set and a type-changing column.
        let delta = TableDelta {
            inserts: vec![
                Tuple::from_present(["ann lee", "boston", "not a number"]),
                Tuple::new(vec![None, None, None]),
            ],
            deletes: vec![2],
            updates: vec![RowEdit {
                id: 0,
                tuple: Tuple::new(vec![Some("dave".into()), Some("ATLANTA ".into()), None]),
            }],
        };
        incr.apply_delta(&t, &delta);
        delta.apply(&mut t).unwrap();
        assert_eq!(incr.snapshot(&t), TableStats::compute(&t));

        // A second round on the patched table (exercises insert ids and
        // repeated adds/removes of the same value).
        let delta2 = TableDelta {
            inserts: vec![Tuple::from_present(["joe", "ny", "12.5"])],
            deletes: vec![0, 4],
            updates: vec![RowEdit {
                id: 1,
                tuple: Tuple::from_present(["joe", "ny", "12.5"]),
            }],
        };
        incr.apply_delta(&t, &delta2);
        delta2.apply(&mut t).unwrap();
        assert_eq!(incr.snapshot(&t), TableStats::compute(&t));
    }

    #[test]
    fn empty_and_whitespace_values_count_as_missing() {
        let t = table_of("A", &["x"], &[&[Some("  ")], &[Some("")], &[Some("v")]]);
        let s = TableStats::compute(&t);
        assert_eq!(s.attr(AttrId(0)).non_missing, 1);
    }
}

//! Gold match sets and recall computation.
//!
//! "Gold" matches are the (normally unknown) set `M ⊆ A × B` of true
//! matches. The paper's Table 3 experiments require datasets with known
//! gold matches; our synthetic datasets know them by construction. Blocker
//! recall is `|M ∩ C| / |M|` (Definition 2.1).

use crate::pair::PairSet;
use crate::table::TupleId;

/// The set of true matches between two tables.
#[derive(Debug, Clone, Default)]
pub struct GoldMatches {
    pairs: PairSet,
}

impl GoldMatches {
    /// An empty gold set.
    pub fn new() -> Self {
        GoldMatches::default()
    }

    /// Builds a gold set from `(a, b)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (TupleId, TupleId)>) -> Self {
        GoldMatches {
            pairs: pairs.into_iter().collect(),
        }
    }

    /// Registers a true match.
    pub fn insert(&mut self, a: TupleId, b: TupleId) -> bool {
        self.pairs.insert(a, b)
    }

    /// True if `(a, b)` is a true match.
    #[inline]
    pub fn is_match(&self, a: TupleId, b: TupleId) -> bool {
        self.pairs.contains(a, b)
    }

    /// Number of true matches `|M|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if there are no gold matches.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates over the gold pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, TupleId)> + '_ {
        self.pairs.iter()
    }

    /// Number of gold matches surviving in a candidate set: `|M ∩ C|`.
    pub fn surviving(&self, candidates: &PairSet) -> usize {
        self.pairs
            .iter()
            .filter(|&(a, b)| candidates.contains(a, b))
            .count()
    }

    /// Number of gold matches killed off by the blocker: `|M| − |M ∩ C|`
    /// (column `MD` of Table 3).
    pub fn killed(&self, candidates: &PairSet) -> usize {
        self.len() - self.surviving(candidates)
    }

    /// Blocker recall `|M ∩ C| / |M|` (Definition 2.1). Returns 1.0 for an
    /// empty gold set (a blocker cannot lose matches that do not exist).
    pub fn recall(&self, candidates: &PairSet) -> f64 {
        if self.is_empty() {
            return 1.0;
        }
        self.surviving(candidates) as f64 / self.len() as f64
    }

    /// The gold matches *not* present in `candidates`, sorted; these are the
    /// killed-off matches the debugger must surface.
    pub fn killed_pairs(&self, candidates: &PairSet) -> Vec<(TupleId, TupleId)> {
        let mut v: Vec<(TupleId, TupleId)> = self
            .pairs
            .iter()
            .filter(|&(a, b)| !candidates.contains(a, b))
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recall_of_perfect_blocker_is_one() {
        let gold = GoldMatches::from_pairs([(0, 0), (1, 1)]);
        let c: PairSet = [(0, 0), (1, 1), (2, 9)].into_iter().collect();
        assert_eq!(gold.recall(&c), 1.0);
        assert_eq!(gold.killed(&c), 0);
    }

    #[test]
    fn recall_counts_surviving_fraction() {
        let gold = GoldMatches::from_pairs([(0, 0), (1, 1), (2, 2), (3, 3)]);
        let c: PairSet = [(0, 0)].into_iter().collect();
        assert_eq!(gold.recall(&c), 0.25);
        assert_eq!(gold.killed(&c), 3);
        assert_eq!(gold.killed_pairs(&c), vec![(1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn empty_gold_has_recall_one() {
        let gold = GoldMatches::new();
        assert_eq!(gold.recall(&PairSet::new()), 1.0);
    }

    #[test]
    fn insert_deduplicates() {
        let mut gold = GoldMatches::new();
        assert!(gold.insert(1, 2));
        assert!(!gold.insert(1, 2));
        assert_eq!(gold.len(), 1);
        assert!(gold.is_match(1, 2));
        assert!(!gold.is_match(2, 1));
    }
}

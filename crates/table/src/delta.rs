//! Batched table edits for incremental debugging sessions.
//!
//! A [`TableDelta`] describes one round of edits to a [`Table`] between
//! two debugger runs: rows to insert, rows to delete, and rows whose
//! values change. Applying a delta preserves every existing [`TupleId`]
//! — deletes become all-`None` tombstone rows rather than removals, and
//! inserts append — so pair keys, gold matches and killed sets built
//! against the old table remain valid against the patched one. This is
//! the contract the incremental top-k maintenance in `mc-core` relies
//! on: a pair `(a, b)` means the same two rows before and after the
//! patch.

use crate::table::{Table, Tuple, TupleId};

/// One in-place row replacement.
#[derive(Debug, Clone)]
pub struct RowEdit {
    /// Row to replace.
    pub id: TupleId,
    /// Its new content (full row, same width as the schema).
    pub tuple: Tuple,
}

/// A batch of edits to one table: inserts, deletes and updates.
///
/// Deltas are applied atomically by [`TableDelta::apply`] after
/// [`TableDelta::validate`] checks every id and row width, so a
/// malformed batch leaves the table untouched.
#[derive(Debug, Clone, Default)]
pub struct TableDelta {
    /// Rows appended to the table, in order.
    pub inserts: Vec<Tuple>,
    /// Rows tombstoned to all-`None` (ids stay allocated).
    pub deletes: Vec<TupleId>,
    /// Rows replaced in place.
    pub updates: Vec<RowEdit>,
}

/// Why a delta cannot be applied to a given table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// A delete or update references a row the table does not have.
    UnknownRow(TupleId),
    /// The same row is targeted by more than one delete/update.
    DuplicateTarget(TupleId),
    /// An insert or update row's width differs from the schema's.
    WidthMismatch {
        /// Offending row width.
        got: usize,
        /// Schema width.
        want: usize,
    },
    /// Applying the inserts would exceed the `u32` row-count bound.
    TableFull,
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::UnknownRow(id) => write!(f, "delta references unknown row {id}"),
            DeltaError::DuplicateTarget(id) => write!(f, "delta targets row {id} twice"),
            DeltaError::WidthMismatch { got, want } => {
                write!(f, "delta row has {got} values but schema has {want}")
            }
            DeltaError::TableFull => write!(f, "inserts would overflow the table's row bound"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl TableDelta {
    /// An empty delta.
    pub fn new() -> Self {
        TableDelta::default()
    }

    /// True if the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty() && self.updates.is_empty()
    }

    /// Total number of edited rows (inserts + deletes + updates).
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len() + self.updates.len()
    }

    /// Ids of pre-existing rows this delta touches (deletes and updates;
    /// inserts get fresh ids only known after [`TableDelta::apply`]).
    pub fn touched_existing(&self) -> impl Iterator<Item = TupleId> + '_ {
        self.deletes
            .iter()
            .copied()
            .chain(self.updates.iter().map(|e| e.id))
    }

    /// Checks the delta against a table without modifying it.
    pub fn validate(&self, table: &Table) -> Result<(), DeltaError> {
        let rows = table.len() as u64;
        let width = table.schema().len();
        let mut targets: Vec<TupleId> = self.touched_existing().collect();
        targets.sort_unstable();
        for w in targets.windows(2) {
            if w[0] == w[1] {
                return Err(DeltaError::DuplicateTarget(w[0]));
            }
        }
        for id in targets {
            if u64::from(id) >= rows {
                return Err(DeltaError::UnknownRow(id));
            }
        }
        for t in self
            .inserts
            .iter()
            .chain(self.updates.iter().map(|e| &e.tuple))
        {
            if t.len() != width {
                return Err(DeltaError::WidthMismatch {
                    got: t.len(),
                    want: width,
                });
            }
        }
        if rows + self.inserts.len() as u64 >= u64::from(u32::MAX) {
            return Err(DeltaError::TableFull);
        }
        Ok(())
    }

    /// Applies the delta, returning the ids of every changed row:
    /// updates and deletes first (in delta order), then the freshly
    /// assigned insert ids. The table's source digest is cleared — its
    /// content no longer matches any ingested file.
    pub fn apply(&self, table: &mut Table) -> Result<Vec<TupleId>, DeltaError> {
        self.validate(table)?;
        let width = table.schema().len();
        let mut changed = Vec::with_capacity(self.len());
        for edit in &self.updates {
            table.replace(edit.id, edit.tuple.clone());
            changed.push(edit.id);
        }
        for &id in &self.deletes {
            table.replace(id, Tuple::new(vec![None; width]));
            changed.push(id);
        }
        for t in &self.inserts {
            changed.push(table.push(t.clone()));
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use std::sync::Arc;

    fn demo() -> Table {
        let s = Arc::new(Schema::from_names(["name", "city"]));
        let mut t = Table::new("A", s);
        t.push(Tuple::from_present(["dave", "atlanta"]));
        t.push(Tuple::from_present(["joe", "ny"]));
        t
    }

    #[test]
    fn apply_patches_ids_in_place() {
        let mut t = demo();
        t.set_source_digest(crate::digest::digest_bytes(b"x"));
        let d = TableDelta {
            inserts: vec![Tuple::from_present(["ana", "sf"])],
            deletes: vec![0],
            updates: vec![RowEdit {
                id: 1,
                tuple: Tuple::from_present(["joseph", "ny"]),
            }],
        };
        let changed = d.apply(&mut t).unwrap();
        assert_eq!(changed, vec![1, 0, 2]);
        assert_eq!(t.len(), 3, "delete keeps the id allocated");
        assert!(t.tuple(0).iter().all(|v| v.is_none()), "tombstone row");
        assert_eq!(t.value(1, crate::AttrId(0)), Some("joseph"));
        assert_eq!(t.value(2, crate::AttrId(1)), Some("sf"));
        assert_eq!(t.source_digest(), None, "mutation invalidates the digest");
    }

    #[test]
    fn validate_rejects_bad_batches() {
        let t = demo();
        let unknown = TableDelta {
            deletes: vec![7],
            ..TableDelta::default()
        };
        assert_eq!(unknown.validate(&t), Err(DeltaError::UnknownRow(7)));
        let dup = TableDelta {
            deletes: vec![1],
            updates: vec![RowEdit {
                id: 1,
                tuple: Tuple::from_present(["x", "y"]),
            }],
            ..TableDelta::default()
        };
        assert_eq!(dup.validate(&t), Err(DeltaError::DuplicateTarget(1)));
        let narrow = TableDelta {
            inserts: vec![Tuple::from_present(["just one"])],
            ..TableDelta::default()
        };
        assert!(matches!(
            narrow.validate(&t),
            Err(DeltaError::WidthMismatch { got: 1, want: 2 })
        ));
        // A failing batch must leave the table untouched.
        let mut copy = demo();
        assert!(dup.apply(&mut copy).is_err());
        assert_eq!(copy.value(1, crate::AttrId(0)), Some("joe"));
    }

    #[test]
    fn empty_delta_is_a_noop() {
        let mut t = demo();
        let before = t.content_digest();
        let changed = TableDelta::new().apply(&mut t).unwrap();
        assert!(changed.is_empty());
        assert_eq!(t.content_digest(), before);
    }
}

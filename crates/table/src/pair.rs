//! Compact tuple-pair keys and pair sets.
//!
//! A candidate set `C` (the blocker's output) and the debugger's internal
//! pair-state maps hold millions of `(a ∈ A, b ∈ B)` pairs. We pack a pair
//! into a single `u64` key — `a` in the high 32 bits, `b` in the low 32 —
//! so sets and maps stay flat and cache-friendly.

use crate::hash::{fx_set_with_capacity, FxHashSet};
use crate::table::TupleId;

/// Packs `(a, b)` into a 64-bit key.
#[inline]
pub fn pair_key(a: TupleId, b: TupleId) -> u64 {
    ((a as u64) << 32) | b as u64
}

/// Unpacks a 64-bit key into `(a, b)`.
#[inline]
pub fn split_pair_key(key: u64) -> (TupleId, TupleId) {
    ((key >> 32) as TupleId, key as TupleId)
}

/// A set of `(a, b)` tuple pairs, e.g. the output `C` of a blocker.
///
/// Internally an `FxHashSet<u64>` of packed keys.
#[derive(Debug, Clone, Default)]
pub struct PairSet {
    keys: FxHashSet<u64>,
}

impl PairSet {
    /// An empty pair set.
    pub fn new() -> Self {
        PairSet::default()
    }

    /// An empty pair set with capacity for `cap` pairs.
    pub fn with_capacity(cap: usize) -> Self {
        PairSet {
            keys: fx_set_with_capacity(cap),
        }
    }

    /// Inserts a pair; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, a: TupleId, b: TupleId) -> bool {
        self.keys.insert(pair_key(a, b))
    }

    /// True if the pair is present.
    #[inline]
    pub fn contains(&self, a: TupleId, b: TupleId) -> bool {
        self.keys.contains(&pair_key(a, b))
    }

    /// True if the packed key is present.
    #[inline]
    pub fn contains_key(&self, key: u64) -> bool {
        self.keys.contains(&key)
    }

    /// Removes a pair; returns `true` if it was present.
    pub fn remove(&mut self, a: TupleId, b: TupleId) -> bool {
        self.keys.remove(&pair_key(a, b))
    }

    /// Number of pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterates over `(a, b)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, TupleId)> + '_ {
        self.keys.iter().map(|&k| split_pair_key(k))
    }

    /// Union with another pair set (used to combine blocker outputs when a
    /// rule blocker is a disjunction of sub-blockers).
    pub fn union_with(&mut self, other: &PairSet) {
        if other.len() > self.len() + self.len() / 2 {
            self.keys.reserve(other.len() - self.len());
        }
        self.keys.extend(other.keys.iter().copied());
    }

    /// Intersection size with another pair set.
    pub fn intersection_len(&self, other: &PairSet) -> usize {
        let (small, big) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.keys.iter().filter(|k| big.keys.contains(k)).count()
    }

    /// Drains this set into a sorted `Vec` of `(a, b)` pairs (deterministic
    /// iteration for reports and tests).
    pub fn to_sorted_vec(&self) -> Vec<(TupleId, TupleId)> {
        let mut v: Vec<u64> = self.keys.iter().copied().collect();
        v.sort_unstable();
        v.into_iter().map(split_pair_key).collect()
    }
}

impl FromIterator<(TupleId, TupleId)> for PairSet {
    fn from_iter<I: IntoIterator<Item = (TupleId, TupleId)>>(iter: I) -> Self {
        let mut s = PairSet::new();
        for (a, b) in iter {
            s.insert(a, b);
        }
        s
    }
}

impl Extend<(TupleId, TupleId)> for PairSet {
    fn extend<I: IntoIterator<Item = (TupleId, TupleId)>>(&mut self, iter: I) {
        for (a, b) in iter {
            self.insert(a, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip() {
        for &(a, b) in &[(0, 0), (1, 2), (u32::MAX, 7), (7, u32::MAX)] {
            assert_eq!(split_pair_key(pair_key(a, b)), (a, b));
        }
    }

    #[test]
    fn keys_are_order_sensitive() {
        assert_ne!(pair_key(1, 2), pair_key(2, 1));
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = PairSet::new();
        assert!(s.insert(3, 4));
        assert!(!s.insert(3, 4));
        assert!(s.contains(3, 4));
        assert!(!s.contains(4, 3));
        assert!(s.remove(3, 4));
        assert!(s.is_empty());
    }

    #[test]
    fn union_and_intersection() {
        let a: PairSet = [(1, 1), (2, 2)].into_iter().collect();
        let mut b: PairSet = [(2, 2), (3, 3)].into_iter().collect();
        assert_eq!(a.intersection_len(&b), 1);
        b.union_with(&a);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn sorted_vec_is_deterministic() {
        let s: PairSet = [(5, 1), (1, 9), (1, 2)].into_iter().collect();
        assert_eq!(s.to_sorted_vec(), vec![(1, 2), (1, 9), (5, 1)]);
    }

    #[test]
    fn extend_adds_pairs() {
        let mut s = PairSet::with_capacity(2);
        s.extend([(1, 2), (3, 4)]);
        assert_eq!(s.len(), 2);
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(pairs.len(), 2);
    }
}

//! Schemas and attributes.
//!
//! MatchCatcher assumes tables `A` and `B` share a schema `S` (§3.1 of the
//! paper). Attributes carry an optional declared type; undeclared types are
//! inferred from data by [`crate::stats`].

use std::fmt;

/// Index of an attribute within a [`Schema`].
///
/// Attribute ids are dense and stable for the lifetime of a schema, so they
/// can be used to index per-attribute vectors directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u16);

impl AttrId {
    /// The attribute id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Coarse attribute type used by the config generator (§3.2).
///
/// The generator drops `Numeric` attributes outright and drops
/// `Categorical`/`Boolean` attributes whose value sets differ between the
/// two tables; `Text` attributes always survive the first cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// Free-form string data (names, titles, descriptions).
    Text,
    /// Numeric data (prices, ages, years). Matching tuples often disagree
    /// on numerics, so they are excluded from config generation.
    Numeric,
    /// Low-cardinality string data (genre, state, type).
    Categorical,
    /// Two-valued data (flags, yes/no).
    Boolean,
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttrType::Text => "text",
            AttrType::Numeric => "numeric",
            AttrType::Categorical => "categorical",
            AttrType::Boolean => "boolean",
        };
        f.write_str(s)
    }
}

/// A named attribute with an optional declared type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name (unique within a schema).
    pub name: String,
    /// Declared type, if known. `None` means "infer from the data".
    pub declared: Option<AttrType>,
}

impl Attribute {
    /// A new attribute with no declared type.
    pub fn new(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            declared: None,
        }
    }

    /// A new attribute with a declared type.
    pub fn typed(name: impl Into<String>, ty: AttrType) -> Self {
        Attribute {
            name: name.into(),
            declared: Some(ty),
        }
    }
}

/// An ordered collection of attributes shared by a pair of tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema from attributes. Panics if names collide or if more
    /// than `u16::MAX` attributes are supplied.
    pub fn new(attrs: Vec<Attribute>) -> Self {
        assert!(attrs.len() <= u16::MAX as usize, "too many attributes");
        for (i, a) in attrs.iter().enumerate() {
            for b in &attrs[..i] {
                assert_ne!(a.name, b.name, "duplicate attribute name {:?}", a.name);
            }
        }
        Schema { attrs }
    }

    /// Convenience constructor from plain names (no declared types).
    pub fn from_names<S: Into<String>>(names: impl IntoIterator<Item = S>) -> Self {
        Schema::new(names.into_iter().map(|n| Attribute::new(n)).collect())
    }

    /// Number of attributes.
    #[inline]
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True if the schema has no attributes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The attribute with the given id.
    #[inline]
    pub fn attr(&self, id: AttrId) -> &Attribute {
        &self.attrs[id.index()]
    }

    /// The name of the attribute with the given id.
    #[inline]
    pub fn name(&self, id: AttrId) -> &str {
        &self.attrs[id.index()].name
    }

    /// Looks up an attribute id by name.
    pub fn id_of(&self, name: &str) -> Option<AttrId> {
        self.attrs
            .iter()
            .position(|a| a.name == name)
            .map(|i| AttrId(i as u16))
    }

    /// Like [`Schema::id_of`] but panics with a helpful message.
    pub fn expect_id(&self, name: &str) -> AttrId {
        self.id_of(name)
            .unwrap_or_else(|| panic!("schema has no attribute named {name:?}"))
    }

    /// Iterates over `(AttrId, &Attribute)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Attribute)> {
        self.attrs
            .iter()
            .enumerate()
            .map(|(i, a)| (AttrId(i as u16), a))
    }

    /// All attribute ids in declaration order.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> + use<> {
        (0..self.attrs.len() as u16).map(AttrId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_lookup_roundtrip() {
        let s = Schema::from_names(["name", "city", "age"]);
        assert_eq!(s.len(), 3);
        let city = s.expect_id("city");
        assert_eq!(city, AttrId(1));
        assert_eq!(s.name(city), "city");
        assert_eq!(s.id_of("missing"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute name")]
    fn schema_rejects_duplicates() {
        let _ = Schema::from_names(["a", "a"]);
    }

    #[test]
    fn typed_attribute_carries_declaration() {
        let s = Schema::new(vec![
            Attribute::typed("price", AttrType::Numeric),
            Attribute::new("title"),
        ]);
        assert_eq!(s.attr(AttrId(0)).declared, Some(AttrType::Numeric));
        assert_eq!(s.attr(AttrId(1)).declared, None);
    }

    #[test]
    fn attr_ids_are_dense() {
        let s = Schema::from_names(["x", "y"]);
        let ids: Vec<_> = s.attr_ids().collect();
        assert_eq!(ids, vec![AttrId(0), AttrId(1)]);
    }

    #[test]
    fn display_impls() {
        assert_eq!(AttrId(3).to_string(), "#3");
        assert_eq!(AttrType::Text.to_string(), "text");
        assert_eq!(AttrType::Numeric.to_string(), "numeric");
        assert_eq!(AttrType::Categorical.to_string(), "categorical");
        assert_eq!(AttrType::Boolean.to_string(), "boolean");
    }
}

//! Row-major string tables with missing values.

use crate::digest::{Digest, DigestWriter};
use crate::schema::{AttrId, Schema};
use std::sync::Arc;

/// Index of a tuple within a [`Table`].
///
/// Tables are bounded to `u32::MAX` rows, which keeps pair keys at 64 bits
/// (see [`crate::pair`]); the paper's largest dataset (628K tuples) is far
/// below this bound.
pub type TupleId = u32;

/// A single row: one optional string value per attribute.
///
/// `None` models a missing value (NULL). MatchCatcher's config generator
/// penalizes attributes with many missing values (Definition 3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tuple {
    values: Vec<Option<String>>,
}

impl Tuple {
    /// Creates a tuple from per-attribute values. Length must equal the
    /// schema length of the table it is inserted into.
    pub fn new(values: Vec<Option<String>>) -> Self {
        Tuple { values }
    }

    /// Creates a tuple where every value is present.
    pub fn from_present<S: Into<String>>(values: impl IntoIterator<Item = S>) -> Self {
        Tuple {
            values: values.into_iter().map(|v| Some(v.into())).collect(),
        }
    }

    /// The value of the given attribute, `None` if missing.
    #[inline]
    pub fn value(&self, attr: AttrId) -> Option<&str> {
        self.values[attr.index()].as_deref()
    }

    /// Number of attribute slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the tuple has no attribute slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Replaces the value of an attribute, returning the old value.
    pub fn set(&mut self, attr: AttrId, value: Option<String>) -> Option<String> {
        std::mem::replace(&mut self.values[attr.index()], value)
    }

    /// Iterates over values in attribute order.
    pub fn iter(&self) -> impl Iterator<Item = Option<&str>> {
        self.values.iter().map(|v| v.as_deref())
    }
}

/// An in-memory table: a shared schema plus rows.
///
/// The schema is reference-counted so that a pair of tables (and the many
/// data structures the debugger derives from them) can share it cheaply.
/// (Tables themselves are exchanged as CSV — see [`crate::csv`] — rather
/// than serde, to avoid serializing the shared `Arc`.)
#[derive(Debug, Clone)]
pub struct Table {
    schema: Arc<Schema>,
    rows: Vec<Tuple>,
    /// Human-readable table name, used in reports ("A", "B", "walmart", ...).
    pub name: String,
    /// Digest of the source file's raw bytes, recorded at ingestion time
    /// (see [`crate::csv::from_csv_path`]) so content-addressed caches
    /// never need to re-read the file.
    source_digest: Option<Digest>,
}

impl Table {
    /// Creates an empty table over `schema`.
    pub fn new(name: impl Into<String>, schema: Arc<Schema>) -> Self {
        Table {
            schema,
            rows: Vec::new(),
            name: name.into(),
            source_digest: None,
        }
    }

    /// Creates a table from pre-built rows, validating row widths.
    pub fn from_rows(name: impl Into<String>, schema: Arc<Schema>, rows: Vec<Tuple>) -> Self {
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                schema.len(),
                "row {i} has {} values but schema has {} attributes",
                r.len(),
                schema.len()
            );
        }
        assert!(rows.len() <= u32::MAX as usize, "table too large");
        Table {
            schema,
            rows,
            name: name.into(),
            source_digest: None,
        }
    }

    /// Records the digest of the raw bytes this table was loaded from.
    /// Subsequent [`Table::content_digest`] calls return it directly.
    pub fn set_source_digest(&mut self, digest: Digest) {
        self.source_digest = Some(digest);
    }

    /// The recorded source-byte digest, if the table was loaded from a
    /// file through [`crate::csv::from_csv_path`].
    pub fn source_digest(&self) -> Option<Digest> {
        self.source_digest
    }

    /// A stable content digest of this table, for content-addressed
    /// caches.
    ///
    /// If a source digest was recorded at ingestion time it is returned
    /// as-is (no re-hash, no file re-read); otherwise the digest is
    /// computed from the schema's attribute names and every row's values
    /// (missing values are distinguished from empty strings). The two
    /// forms intentionally differ — a file-loaded table and a
    /// structurally identical in-memory table hash to different keys,
    /// which can only cause a cache miss, never a wrong hit.
    pub fn content_digest(&self) -> Digest {
        if let Some(d) = self.source_digest {
            return d;
        }
        let mut w = DigestWriter::new();
        w.write_u64(self.schema.len() as u64);
        for (_, attr) in self.schema.iter() {
            w.write_str(&attr.name);
        }
        w.write_u64(self.rows.len() as u64);
        for row in &self.rows {
            for v in row.iter() {
                match v {
                    None => {
                        w.write_u8(0);
                    }
                    Some(s) => {
                        w.write_u8(1).write_str(s);
                    }
                }
            }
        }
        w.finish()
    }

    /// The shared schema.
    #[inline]
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row, returning its [`TupleId`].
    pub fn push(&mut self, tuple: Tuple) -> TupleId {
        assert_eq!(tuple.len(), self.schema.len(), "row width mismatch");
        assert!(self.rows.len() < u32::MAX as usize, "table full");
        let id = self.rows.len() as TupleId;
        self.rows.push(tuple);
        id
    }

    /// Replaces the row with the given id, returning the old row. The
    /// source digest is cleared: the table's content no longer matches
    /// the ingested file, so [`Table::content_digest`] must re-hash.
    pub fn replace(&mut self, id: TupleId, tuple: Tuple) -> Tuple {
        assert_eq!(tuple.len(), self.schema.len(), "row width mismatch");
        self.source_digest = None;
        std::mem::replace(&mut self.rows[id as usize], tuple)
    }

    /// The row with the given id.
    #[inline]
    pub fn tuple(&self, id: TupleId) -> &Tuple {
        &self.rows[id as usize]
    }

    /// The value of `attr` in row `id`, `None` if missing.
    #[inline]
    pub fn value(&self, id: TupleId, attr: AttrId) -> Option<&str> {
        self.rows[id as usize].value(attr)
    }

    /// Iterates over `(TupleId, &Tuple)`.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &Tuple)> {
        self.rows.iter().enumerate().map(|(i, t)| (i as TupleId, t))
    }

    /// All tuple ids.
    pub fn ids(&self) -> impl Iterator<Item = TupleId> + use<> {
        0..self.rows.len() as TupleId
    }

    /// A copy of this table restricted to its first `n` rows (used by the
    /// Figure 9 scaling experiments, which sweep table size percentages).
    pub fn head(&self, n: usize) -> Table {
        Table {
            schema: Arc::clone(&self.schema),
            rows: self.rows[..n.min(self.rows.len())].to_vec(),
            name: self.name.clone(),
            // A truncated copy no longer has the source file's content.
            source_digest: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_schema() -> Arc<Schema> {
        Arc::new(Schema::from_names(["name", "city"]))
    }

    #[test]
    fn push_and_read_back() {
        let s = demo_schema();
        let mut t = Table::new("A", Arc::clone(&s));
        let id = t.push(Tuple::from_present(["Dave Smith", "Altanta"]));
        assert_eq!(id, 0);
        assert_eq!(t.value(0, s.expect_id("name")), Some("Dave Smith"));
        assert_eq!(t.value(0, s.expect_id("city")), Some("Altanta"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn missing_values_read_as_none() {
        let s = demo_schema();
        let mut t = Table::new("A", s.clone());
        t.push(Tuple::new(vec![Some("Joe".into()), None]));
        assert_eq!(t.value(0, s.expect_id("city")), None);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_wrong_width() {
        let s = demo_schema();
        let mut t = Table::new("A", s);
        t.push(Tuple::from_present(["only one"]));
    }

    #[test]
    fn head_truncates() {
        let s = demo_schema();
        let mut t = Table::new("A", s);
        for i in 0..10 {
            t.push(Tuple::from_present([format!("p{i}"), "x".to_string()]));
        }
        assert_eq!(t.head(3).len(), 3);
        assert_eq!(t.head(100).len(), 10);
    }

    #[test]
    fn tuple_set_replaces() {
        let s = demo_schema();
        let mut t = Tuple::from_present(["a", "b"]);
        let old = t.set(s.expect_id("city"), None);
        assert_eq!(old, Some("b".to_string()));
        assert_eq!(t.value(s.expect_id("city")), None);
    }

    #[test]
    fn content_digest_tracks_rows_and_missing_values() {
        let s = demo_schema();
        let mut t = Table::new("A", Arc::clone(&s));
        t.push(Tuple::from_present(["Dave", "Atlanta"]));
        let d1 = t.content_digest();
        assert_eq!(d1, t.content_digest(), "digest must be deterministic");
        // Name is irrelevant to content.
        let mut renamed = t.clone();
        renamed.name = "other".into();
        assert_eq!(renamed.content_digest(), d1);
        // Missing vs empty string must differ.
        let mut missing = Table::new("A", Arc::clone(&s));
        missing.push(Tuple::new(vec![Some("Dave".into()), None]));
        let mut empty = Table::new("A", s);
        empty.push(Tuple::new(vec![Some("Dave".into()), Some(String::new())]));
        assert_ne!(missing.content_digest(), empty.content_digest());
        // Extra row changes the digest; head() drops any source digest.
        t.push(Tuple::from_present(["Joe", "NY"]));
        assert_ne!(t.content_digest(), d1);
        t.set_source_digest(crate::digest::digest_bytes(b"file bytes"));
        assert_eq!(
            t.content_digest(),
            crate::digest::digest_bytes(b"file bytes")
        );
        assert_eq!(t.head(1).source_digest(), None);
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let s = demo_schema();
        let mut t = Table::new("A", s);
        t.push(Tuple::from_present(["x", "y"]));
        t.push(Tuple::from_present(["z", "w"]));
        let ids: Vec<_> = t.iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}

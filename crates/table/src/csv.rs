//! Minimal CSV import/export for tables.
//!
//! Supports RFC-4180-style quoting (fields containing commas, quotes, or
//! newlines are wrapped in double quotes; embedded quotes are doubled).
//! Empty fields read back as missing values. This is deliberately a small,
//! dependency-free reader sufficient for dumping and reloading synthetic
//! datasets; it is not a general-purpose CSV library.

use crate::digest::digest_bytes;
use crate::schema::Schema;
use crate::table::{Table, Tuple};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

/// Serializes a table to a CSV string with a header row.
pub fn to_csv(table: &Table) -> String {
    let schema = table.schema();
    let mut out = String::new();
    let header: Vec<&str> = schema.iter().map(|(_, a)| a.name.as_str()).collect();
    write_row(&mut out, header.iter().map(|s| Some(*s)));
    for (_, tuple) in table.iter() {
        write_row(&mut out, tuple.iter());
    }
    out
}

fn write_row<'a>(out: &mut String, fields: impl Iterator<Item = Option<&'a str>>) {
    let mut first = true;
    for f in fields {
        if !first {
            out.push(',');
        }
        first = false;
        match f {
            None => {}
            Some(v) => {
                if v.contains(',') || v.contains('"') || v.contains('\n') || v.contains('\r') {
                    out.push('"');
                    for c in v.chars() {
                        if c == '"' {
                            out.push('"');
                        }
                        out.push(c);
                    }
                    out.push('"');
                } else {
                    let _ = write!(out, "{v}");
                }
            }
        }
    }
    out.push('\n');
}

/// Errors produced by [`from_csv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input contained no header row.
    MissingHeader,
    /// A data row had a different number of fields than the header.
    RowWidth {
        /// 1-based row number (header is row 1).
        row: usize,
        /// Fields found in the row.
        found: usize,
        /// Fields expected from the header.
        expected: usize,
    },
    /// A quoted field was not terminated before end of input.
    UnterminatedQuote,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "CSV input has no header row"),
            CsvError::RowWidth {
                row,
                found,
                expected,
            } => {
                write!(f, "CSV row {row} has {found} fields, expected {expected}")
            }
            CsvError::UnterminatedQuote => write!(f, "unterminated quoted CSV field"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses a CSV string (with header) into a [`Table`]. Empty fields become
/// missing values.
pub fn from_csv(name: &str, input: &str) -> Result<Table, CsvError> {
    let rows = parse_rows(input)?;
    let mut it = rows.into_iter();
    let header = it.next().ok_or(CsvError::MissingHeader)?;
    let width = header.len();
    let names: Vec<String> = header.into_iter().map(|f| f.unwrap_or_default()).collect();
    let schema = Arc::new(Schema::from_names(names));
    let mut table = Table::new(name, schema);
    for (i, row) in it.enumerate() {
        if row.len() != width {
            return Err(CsvError::RowWidth {
                row: i + 2,
                found: row.len(),
                expected: width,
            });
        }
        table.push(Tuple::new(row));
    }
    Ok(table)
}

/// Errors produced by [`from_csv_path`]: either the file could not be
/// read, or its contents failed to parse.
#[derive(Debug)]
pub enum CsvFileError {
    /// The file could not be read (missing, permission denied, …).
    Io {
        /// The path that failed.
        path: String,
        /// The underlying I/O error.
        error: std::io::Error,
    },
    /// The file was read but is not valid CSV.
    Parse {
        /// The path that failed.
        path: String,
        /// The parse error.
        error: CsvError,
    },
}

impl std::fmt::Display for CsvFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvFileError::Io { path, error } => write!(f, "cannot read {path}: {error}"),
            CsvFileError::Parse { path, error } => write!(f, "cannot parse {path}: {error}"),
        }
    }
}

impl std::error::Error for CsvFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvFileError::Io { error, .. } => Some(error),
            CsvFileError::Parse { error, .. } => Some(error),
        }
    }
}

/// Loads a CSV file into a [`Table`], recording the file's byte digest on
/// the table (so content-addressed caches — see `mc-store` — can key off
/// [`Table::content_digest`] without re-reading the file).
///
/// Unreadable paths and malformed contents return a typed
/// [`CsvFileError`]; nothing panics.
pub fn from_csv_path(name: &str, path: impl AsRef<Path>) -> Result<Table, CsvFileError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|error| CsvFileError::Io {
        path: path.display().to_string(),
        error,
    })?;
    let text = String::from_utf8_lossy(&bytes);
    let mut table = from_csv(name, &text).map_err(|error| CsvFileError::Parse {
        path: path.display().to_string(),
        error,
    })?;
    table.set_source_digest(digest_bytes(&bytes));
    Ok(table)
}

fn parse_rows(input: &str) -> Result<Vec<Vec<Option<String>>>, CsvError> {
    let mut rows = Vec::new();
    let mut row: Vec<Option<String>> = Vec::new();
    let mut field = String::new();
    let mut field_quoted = false;
    let mut chars = input.chars().peekable();

    fn finish_field(row: &mut Vec<Option<String>>, field: &mut String, quoted: &mut bool) {
        let value = std::mem::take(field);
        if value.is_empty() && !*quoted {
            row.push(None);
        } else {
            row.push(Some(value));
        }
        *quoted = false;
    }

    while let Some(c) = chars.next() {
        match c {
            '"' if field.is_empty() && !field_quoted => {
                // Quoted field: consume until closing quote.
                field_quoted = true;
                loop {
                    match chars.next() {
                        Some('"') => {
                            if chars.peek() == Some(&'"') {
                                chars.next();
                                field.push('"');
                            } else {
                                break;
                            }
                        }
                        Some(ch) => field.push(ch),
                        None => return Err(CsvError::UnterminatedQuote),
                    }
                }
            }
            ',' => finish_field(&mut row, &mut field, &mut field_quoted),
            '\r' => {
                if chars.peek() == Some(&'\n') {
                    chars.next();
                }
                finish_field(&mut row, &mut field, &mut field_quoted);
                rows.push(std::mem::take(&mut row));
            }
            '\n' => {
                finish_field(&mut row, &mut field, &mut field_quoted);
                rows.push(std::mem::take(&mut row));
            }
            other => field.push(other),
        }
    }
    if !field.is_empty() || field_quoted || !row.is_empty() {
        finish_field(&mut row, &mut field, &mut field_quoted);
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;

    #[test]
    fn roundtrip_simple() {
        let csv = "name,city\nDave Smith,Atlanta\nJoe,\n";
        let t = from_csv("A", csv).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.value(0, AttrId(0)), Some("Dave Smith"));
        assert_eq!(t.value(1, AttrId(1)), None);
        assert_eq!(to_csv(&t), csv);
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let csv = "name\n\"Smith, Dave \"\"DJ\"\"\"\n";
        let t = from_csv("A", csv).unwrap();
        assert_eq!(t.value(0, AttrId(0)), Some("Smith, Dave \"DJ\""));
        // Re-serialization round-trips.
        let again = from_csv("A", &to_csv(&t)).unwrap();
        assert_eq!(again.value(0, AttrId(0)), t.value(0, AttrId(0)));
    }

    #[test]
    fn embedded_newline_in_quotes() {
        let csv = "desc\n\"line1\nline2\"\n";
        let t = from_csv("A", csv).unwrap();
        assert_eq!(t.value(0, AttrId(0)), Some("line1\nline2"));
    }

    #[test]
    fn crlf_line_endings() {
        let t = from_csv("A", "a,b\r\n1,2\r\n").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.value(0, AttrId(1)), Some("2"));
    }

    #[test]
    fn width_mismatch_is_error() {
        let err = from_csv("A", "a,b\n1\n").unwrap_err();
        assert_eq!(
            err,
            CsvError::RowWidth {
                row: 2,
                found: 1,
                expected: 2
            }
        );
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert_eq!(
            from_csv("A", "a\n\"oops\n").unwrap_err(),
            CsvError::UnterminatedQuote
        );
    }

    #[test]
    fn missing_header_is_error() {
        assert_eq!(from_csv("A", "").unwrap_err(), CsvError::MissingHeader);
    }

    #[test]
    fn quoted_empty_string_is_present_not_missing() {
        let t = from_csv("A", "a\n\"\"\n").unwrap();
        assert_eq!(t.value(0, AttrId(0)), Some(""));
    }

    #[test]
    fn path_loader_records_byte_digest() {
        let dir = std::env::temp_dir().join(format!("mc_csv_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let bytes = b"name,city\nDave,Atlanta\n";
        std::fs::write(&path, bytes).unwrap();
        let t = from_csv_path("A", &path).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.source_digest(), Some(digest_bytes(bytes)));
        assert_eq!(t.content_digest(), digest_bytes(bytes));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unreadable_path_is_typed_error_not_panic() {
        let err = from_csv_path("A", "/definitely/not/a/real/path.csv").unwrap_err();
        match &err {
            CsvFileError::Io { path, error } => {
                assert!(path.contains("path.csv"));
                assert_eq!(error.kind(), std::io::ErrorKind::NotFound);
            }
            other => panic!("expected Io error, got {other:?}"),
        }
        assert!(err.to_string().contains("cannot read"));
    }

    #[test]
    fn malformed_file_is_parse_error() {
        let dir = std::env::temp_dir().join(format!("mc_csv_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "a,b\n1\n").unwrap();
        match from_csv_path("A", &path).unwrap_err() {
            CsvFileError::Parse { error, .. } => {
                assert!(matches!(error, CsvError::RowWidth { .. }))
            }
            other => panic!("expected Parse error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn no_trailing_newline() {
        let t = from_csv("A", "a,b\n1,2").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.value(0, AttrId(0)), Some("1"));
    }
}

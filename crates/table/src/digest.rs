//! Stable 128-bit content digests for cache keys.
//!
//! The artifact store (`mc-store`) keys cached intermediates by the
//! content of their inputs: raw CSV bytes, tokenizer and measure
//! parameters, the killed-pair set. Those keys must be **stable across
//! processes, platforms, and releases** — unlike [`crate::hash`], which
//! only promises determinism within one address space and is free to
//! change its mixing between versions. This module pins down a fixed
//! algorithm (two independent FNV-1a-style 64-bit streams over the same
//! byte sequence) and structured writer helpers that make multi-field
//! keys unambiguous (every variable-length field is length-prefixed).
//!
//! The digest is a cache key, not a cryptographic commitment: collisions
//! are astronomically unlikely for accidental input changes but the
//! construction offers no resistance to adversarial inputs.

/// A 128-bit content digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest {
    /// High 64 bits (FNV-1a stream).
    pub hi: u64,
    /// Low 64 bits (independent rotated-multiply stream).
    pub lo: u64,
}

impl Digest {
    /// The digest as 32 lowercase hex characters (file-name safe).
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Folds the 128 bits into 64 (for payload checksums in file headers).
    pub fn fold(self) -> u64 {
        self.hi ^ self.lo.rotate_left(32)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const ALT_OFFSET: u64 = 0x9e37_79b9_7f4a_7c15;
const ALT_PRIME: u64 = 0xc6a4_a793_5bd1_e995;

/// Incremental digest writer over a logical byte stream.
///
/// Fixed-width integers are written little-endian; variable-length fields
/// must be length-prefixed by the caller (use [`DigestWriter::write_str`]
/// and [`DigestWriter::write_u32s`], which do so).
#[derive(Debug, Clone)]
pub struct DigestWriter {
    h1: u64,
    h2: u64,
}

impl Default for DigestWriter {
    fn default() -> Self {
        DigestWriter::new()
    }
}

impl DigestWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        DigestWriter {
            h1: FNV_OFFSET,
            h2: ALT_OFFSET,
        }
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.h1 = (self.h1 ^ b as u64).wrapping_mul(FNV_PRIME);
            self.h2 = (self.h2.rotate_left(23) ^ b as u64).wrapping_mul(ALT_PRIME);
        }
        self
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, v: u8) -> &mut Self {
        self.write_bytes(&[v])
    }

    /// Absorbs a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Absorbs an `f64` by its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Absorbs a length-prefixed string.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64).write_bytes(s.as_bytes())
    }

    /// Absorbs a length-prefixed `u32` slice.
    pub fn write_u32s(&mut self, vs: &[u32]) -> &mut Self {
        self.write_u64(vs.len() as u64);
        for &v in vs {
            self.write_u32(v);
        }
        self
    }

    /// Absorbs a previously computed digest (for hierarchical keys).
    pub fn write_digest(&mut self, d: Digest) -> &mut Self {
        self.write_u64(d.hi).write_u64(d.lo)
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> Digest {
        // A final avalanche round so short inputs still spread into the
        // high bits of both halves.
        let mut hi = self.h1;
        let mut lo = self.h2;
        hi ^= hi >> 33;
        hi = hi.wrapping_mul(ALT_PRIME);
        hi ^= hi >> 29;
        lo ^= lo >> 31;
        lo = lo.wrapping_mul(FNV_PRIME);
        lo ^= lo >> 27;
        Digest { hi, lo }
    }
}

/// Digest of a raw byte slice (e.g. an input CSV file's exact bytes).
pub fn digest_bytes(bytes: &[u8]) -> Digest {
    let mut w = DigestWriter::new();
    w.write_bytes(bytes);
    w.finish()
}

/// 64-bit FNV-1a of a byte slice — the store's payload checksum.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Order-independent digest of a set of `u64` keys (e.g. a
/// [`crate::PairSet`], whose iteration order is unspecified): per-key
/// digests are combined with commutative operators, so any iteration
/// order yields the same result.
pub fn digest_u64_set(keys: impl Iterator<Item = u64>) -> Digest {
    let mut sum = 0u64;
    let mut xor = 0u64;
    let mut count = 0u64;
    for k in keys {
        let mut w = DigestWriter::new();
        w.write_u64(k);
        let d = w.finish();
        sum = sum.wrapping_add(d.hi);
        xor ^= d.lo;
        count += 1;
    }
    let mut w = DigestWriter::new();
    w.write_u64(count).write_u64(sum).write_u64(xor);
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_stable_across_calls() {
        let a = digest_bytes(b"hello world");
        let b = digest_bytes(b"hello world");
        assert_eq!(a, b);
        assert_ne!(a, digest_bytes(b"hello worle"));
    }

    #[test]
    fn known_value_is_pinned() {
        // Guards against accidental algorithm changes: a changed digest
        // silently invalidates every stored artifact.
        let d = digest_bytes(b"mc-store/v1");
        assert_eq!(d.to_hex(), digest_bytes(b"mc-store/v1").to_hex());
        assert_eq!(d.to_hex().len(), 32);
        assert_ne!(d.hi, 0);
        assert_ne!(d.lo, 0);
    }

    #[test]
    fn length_prefix_disambiguates_field_boundaries() {
        let mut a = DigestWriter::new();
        a.write_str("ab").write_str("c");
        let mut b = DigestWriter::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn set_digest_is_order_independent() {
        let a = digest_u64_set([1u64, 2, 3, 500].into_iter());
        let b = digest_u64_set([500u64, 3, 1, 2].into_iter());
        assert_eq!(a, b);
        assert_ne!(a, digest_u64_set([1u64, 2, 3].into_iter()));
        assert_ne!(a, digest_u64_set([1u64, 2, 3, 501].into_iter()));
    }

    #[test]
    fn empty_set_digest_differs_from_zero_key() {
        assert_ne!(
            digest_u64_set(std::iter::empty()),
            digest_u64_set([0u64].into_iter())
        );
    }

    #[test]
    fn fnv64_matches_reference_vector() {
        // FNV-1a 64 reference: fnv64("") = offset basis.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        // "a" → (offset ^ 0x61) * prime.
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}

#![warn(missing_docs)]

//! # mc-store
//!
//! A content-addressed, versioned on-disk artifact store
//! (**`mc-store/v1`**) that turns repeated MatchCatcher debugging
//! iterations from cold starts into warm starts.
//!
//! The debugger is iterative: the user inspects `D`, edits the blocker,
//! and re-runs. Within one process run §4.2's joint execution already
//! reuses overlaps and top-k lists, but every *new* process run rebuilds
//! tokenized tables, dictionaries, per-config arenas, and the candidate
//! union from raw CSVs. This crate persists those intermediates:
//!
//! * artifacts are **content-addressed** — the key is a stable
//!   [`mc_table::Digest`] over the inputs that determine the artifact
//!   (input-table content, tokenizer/measure parameters, `k`, the
//!   killed-pair set — derived in `mc-core`'s `store_io` module), so a
//!   changed input can never hit a stale artifact;
//! * files are written **atomically** (unique temp file + rename), so
//!   concurrent writers and crashes can never expose a half-written
//!   artifact under its final name;
//! * every file carries a fixed-layout 32-byte header (magic, format
//!   version, artifact kind, payload length, payload FNV-64) and any
//!   mismatch — truncation, bit flips, stale format versions — is
//!   detected on load and **silently treated as a miss** (counted under
//!   `mc.store.corrupt`), falling back to a cold build.
//!
//! The store itself is payload-agnostic: it moves opaque byte payloads.
//! Encoding/decoding of `TokenizedTable`s, `RecordArena`s, and
//! `CandidateUnion`s lives next to those types (in `mc-core`), built on
//! this crate's [`codec`].
//!
//! ## File layout
//!
//! ```text
//! <root>/
//!   STORE_MARKER            "mc-store/v1\n"
//!   objects/
//!     tok/<key-hex>.mcs     tokenization artifacts
//!     arena/<key-hex>.mcs   per-config record arenas (byte codec)
//!     post/<key-hex>.mcs    zero-copy arena/postings payloads (mmap-ready)
//!     union/<key-hex>.mcs   joint-stage candidate unions
//! ```
//!
//! [`Store::load_mapped`] is the zero-copy sibling of [`Store::load`]:
//! instead of reading the file into a `Vec`, it memory-maps it (see
//! [`mmap`]), verifies the same 32-byte header against the mapped bytes,
//! and hands back a [`MappedPayload`] whose payload view borrows the
//! mapping. `mc-core`'s `store_io` layers an alignment-padded CSR layout
//! on top so warm starts point the join at the file's pages directly.
//!
//! ## Metrics
//!
//! `mc.store.{hits,misses,publishes,corrupt,errors}` counters,
//! `mc.store.{mmap_maps,mmap_fallbacks}` for the mapping path,
//! `mc.store.gc.{reclaimed_bytes,skipped_live}` for collection passes,
//! `mc.store.{load,save}` spans, `mc.store.{bytes_on_disk,artifacts}`
//! gauges (refreshed by [`Store::stats`]).

pub mod codec;
pub mod mmap;

pub use codec::{ByteReader, ByteWriter};
pub use mc_table::digest::{Digest, DigestWriter};
pub use mmap::Mapping;

use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// On-disk format version; bumping it invalidates every stored artifact.
pub const FORMAT_VERSION: u32 = 1;

/// Artifact file magic.
const MAGIC: [u8; 4] = *b"MCST";

/// Fixed header length in bytes.
const HEADER_LEN: usize = 32;

/// Marker file written at the store root by [`Store::open`].
const MARKER_NAME: &str = "STORE_MARKER";
const MARKER_BODY: &[u8] = b"mc-store/v1\n";

/// Artifact file extension.
const EXT: &str = "mcs";

/// What kind of intermediate an artifact holds. The kind is part of both
/// the on-disk path and the header, so a key collision across kinds (or
/// a file moved between kind directories) can never decode as the wrong
/// type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    /// Per-table-pair tokenizations + token order (`mc-strsim` dicts).
    Tokenization,
    /// One config's flat record arena (CSR token buffer + offsets).
    Arena,
    /// The joint stage's candidate union (pairs + per-config scores).
    CandidateUnion,
    /// Zero-copy CSR arena/postings payload: alignment-padded sections
    /// a warm start can memory-map and use in place (no decode pass).
    /// See `mc-core`'s `store_io` for the layout.
    Postings,
}

impl ArtifactKind {
    /// All kinds, in a stable order.
    pub const ALL: [ArtifactKind; 4] = [
        ArtifactKind::Tokenization,
        ArtifactKind::Arena,
        ArtifactKind::CandidateUnion,
        ArtifactKind::Postings,
    ];

    /// Subdirectory name under `objects/`.
    pub fn dir(self) -> &'static str {
        match self {
            ArtifactKind::Tokenization => "tok",
            ArtifactKind::Arena => "arena",
            ArtifactKind::CandidateUnion => "union",
            ArtifactKind::Postings => "post",
        }
    }

    /// Header tag (stable; never reuse a value).
    fn tag(self) -> u32 {
        match self {
            ArtifactKind::Tokenization => 1,
            ArtifactKind::Arena => 2,
            ArtifactKind::CandidateUnion => 3,
            ArtifactKind::Postings => 4,
        }
    }
}

/// Where (and how) a store lives. Carried by `DebuggerParams` as
/// `Option<StoreConfig>`; `None` means every run is cold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// Store root directory (created on first use).
    pub root: PathBuf,
    /// Byte budget enforced by [`Store::gc`] when invoked without an
    /// explicit budget (`None` = unbounded).
    pub max_bytes: Option<u64>,
}

impl StoreConfig {
    /// A store rooted at `root` with no size budget.
    pub fn at(root: impl Into<PathBuf>) -> Self {
        StoreConfig {
            root: root.into(),
            max_bytes: None,
        }
    }
}

/// Errors opening a store (artifact-level problems never error — they
/// degrade to misses).
#[derive(Debug)]
pub enum StoreError {
    /// The root could not be created or the marker could not be written.
    Io {
        /// The path that failed.
        path: String,
        /// The underlying error.
        error: std::io::Error,
    },
    /// The root exists but carries a marker from an incompatible store
    /// format (e.g. a future `mc-store/v2`).
    IncompatibleMarker {
        /// The marker's first line.
        found: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, error } => write!(f, "store I/O error at {path}: {error}"),
            StoreError::IncompatibleMarker { found } => {
                write!(
                    f,
                    "store root has incompatible marker {found:?} (expected mc-store/v1)"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Aggregate numbers for one artifact kind, as reported by
/// [`Store::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Artifact files present.
    pub files: u64,
    /// Their total size in bytes (headers included).
    pub bytes: u64,
}

/// A point-in-time inventory of the store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Per-kind inventory, in [`ArtifactKind::ALL`] order.
    pub kinds: Vec<(&'static str, KindStats)>,
    /// Total artifact files.
    pub files: u64,
    /// Total bytes on disk (artifact files only).
    pub bytes: u64,
    /// Stray temp files left by crashed writers (removed by gc).
    pub stray_tmp: u64,
}

/// What a [`Store::gc`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Artifact files removed (oldest first).
    pub removed_files: u64,
    /// Bytes those files held.
    pub removed_bytes: u64,
    /// Stray temp files removed.
    pub removed_tmp: u64,
    /// Bytes remaining after the pass.
    pub kept_bytes: u64,
    /// Artifacts left in place because a live [`MappedPayload`] still
    /// borrows their pages (see [`Store::gc`]).
    pub skipped_live: u64,
}

/// Process-wide registry of artifact files with outstanding
/// [`MappedPayload`] handles. [`Store::load_mapped`] registers the path;
/// the payload's `Drop` releases it. [`Store::gc`] consults this table so
/// it never unlinks a file some session is still reading through — the
/// portable guarantee (on Linux an unlinked mapping stays valid, but
/// skipping live objects also keeps warm artifacts resident for reuse
/// instead of silently discarding them mid-session).
fn live_mappings() -> &'static Mutex<HashMap<PathBuf, usize>> {
    static LIVE: OnceLock<Mutex<HashMap<PathBuf, usize>>> = OnceLock::new();
    LIVE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn live_acquire(path: &Path) {
    let mut table = live_mappings().lock().unwrap();
    *table.entry(path.to_path_buf()).or_insert(0) += 1;
}

fn live_release(path: &Path) {
    let mut table = live_mappings().lock().unwrap();
    if let Some(count) = table.get_mut(path) {
        *count -= 1;
        if *count == 0 {
            table.remove(path);
        }
    }
}

fn live_contains(path: &Path) -> bool {
    live_mappings().lock().unwrap().contains_key(path)
}

/// A verified artifact whose payload is a borrowed view of the backing
/// file ([`Store::load_mapped`]) rather than an owned `Vec<u8>`.
///
/// The 32-byte header has already been checked (magic, version, kind
/// tag, length, FNV-64); [`MappedPayload::payload`] exposes only the
/// payload region. Because the header is exactly 32 bytes and the
/// mapping base is at least 8-byte aligned (page-aligned when truly
/// mmapped), the payload view always starts on an 8-byte boundary —
/// the invariant zero-copy layouts build on.
#[derive(Debug)]
pub struct MappedPayload {
    map: mmap::Mapping,
    payload_at: usize,
    /// Registered in [`live_mappings`] until drop so [`Store::gc`] skips
    /// the backing file while this handle is alive.
    path: PathBuf,
}

impl MappedPayload {
    /// The verified payload bytes (header stripped).
    #[inline]
    pub fn payload(&self) -> &[u8] {
        &self.map.bytes()[self.payload_at..]
    }

    /// True when backed by a kernel mapping (false on the heap fallback).
    pub fn is_mmap(&self) -> bool {
        self.map.is_mmap()
    }
}

impl Drop for MappedPayload {
    fn drop(&mut self) {
        live_release(&self.path);
    }
}

/// A handle on an opened artifact store.
///
/// All artifact-level operations are infallible by design: [`Store::load`]
/// returns `None` for anything it cannot fully verify, and
/// [`Store::publish`] reports failure with `false` (and a
/// `mc.store.errors` count) without disturbing the caller's cold path.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

/// Process-wide counter making temp-file names unique across threads.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl Store {
    /// Opens (creating if necessary) the store at `config.root`.
    pub fn open(config: &StoreConfig) -> Result<Store, StoreError> {
        let root = config.root.clone();
        let io = |path: &Path| {
            let p = path.display().to_string();
            move |error| StoreError::Io { path: p, error }
        };
        fs::create_dir_all(&root).map_err(io(&root))?;
        let marker = root.join(MARKER_NAME);
        match fs::read(&marker) {
            Ok(body) => {
                if body != MARKER_BODY {
                    let found = String::from_utf8_lossy(&body)
                        .lines()
                        .next()
                        .unwrap_or("")
                        .to_string();
                    return Err(StoreError::IncompatibleMarker { found });
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                fs::write(&marker, MARKER_BODY).map_err(io(&marker))?;
            }
            Err(error) => {
                return Err(StoreError::Io {
                    path: marker.display().to_string(),
                    error,
                })
            }
        }
        for kind in ArtifactKind::ALL {
            let dir = root.join("objects").join(kind.dir());
            fs::create_dir_all(&dir).map_err(io(&dir))?;
        }
        Ok(Store { root })
    }

    /// The store root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn object_path(&self, kind: ArtifactKind, key: Digest) -> PathBuf {
        self.root
            .join("objects")
            .join(kind.dir())
            .join(format!("{}.{EXT}", key.to_hex()))
    }

    /// Loads and verifies an artifact. Returns `None` on a miss **or**
    /// on any integrity failure (truncation, bit flips, foreign magic,
    /// stale format version, kind mismatch) — corruption is counted
    /// under `mc.store.corrupt` but otherwise indistinguishable from a
    /// miss, so callers always have a working cold path.
    pub fn load(&self, kind: ArtifactKind, key: Digest) -> Option<Vec<u8>> {
        let _span = mc_obs::span!("mc.store.load", kind.tag() as u64);
        let path = self.object_path(kind, key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                mc_obs::counter!("mc.store.misses").inc();
                return None;
            }
        };
        match verify_artifact(&bytes, kind) {
            Some(payload_range) => {
                mc_obs::counter!("mc.store.hits").inc();
                mc_obs::counter!("mc.store.bytes_loaded").add(bytes.len() as u64);
                let mut bytes = bytes;
                bytes.drain(..payload_range);
                Some(bytes)
            }
            None => {
                mc_obs::counter!("mc.store.corrupt").inc();
                mc_obs::counter!("mc.store.misses").inc();
                None
            }
        }
    }

    /// Zero-copy sibling of [`Store::load`]: memory-maps the artifact
    /// file (heap-buffered on targets without mmap support) and runs the
    /// same header verification against the mapped bytes. Counters
    /// behave exactly like [`Store::load`]'s — a corrupt file counts
    /// under `mc.store.corrupt` and degrades to a miss — so callers can
    /// chain `load_mapped → load → rebuild` and every step is accounted.
    pub fn load_mapped(&self, kind: ArtifactKind, key: Digest) -> Option<MappedPayload> {
        let _span = mc_obs::span!("mc.store.load", kind.tag() as u64);
        let path = self.object_path(kind, key);
        let map = match mmap::Mapping::open(&path) {
            Some(m) => m,
            None => {
                mc_obs::counter!("mc.store.misses").inc();
                return None;
            }
        };
        match verify_artifact(map.bytes(), kind) {
            Some(payload_at) => {
                mc_obs::counter!("mc.store.hits").inc();
                mc_obs::counter!("mc.store.bytes_loaded").add(map.bytes().len() as u64);
                live_acquire(&path);
                Some(MappedPayload {
                    map,
                    payload_at,
                    path,
                })
            }
            None => {
                mc_obs::counter!("mc.store.corrupt").inc();
                mc_obs::counter!("mc.store.misses").inc();
                None
            }
        }
    }

    /// Atomically publishes an artifact under its key: the header +
    /// payload are written to a unique temp file in the same directory
    /// and renamed into place, so readers only ever observe complete
    /// files. Publishing the same key twice is idempotent (last rename
    /// wins; contents are equal by construction since keys are
    /// content-derived). Returns `false` (with `mc.store.errors`
    /// counted) if anything fails.
    pub fn publish(&self, kind: ArtifactKind, key: Digest, payload: &[u8]) -> bool {
        let _span = mc_obs::span!("mc.store.save", kind.tag() as u64);
        let path = self.object_path(kind, key);
        let tmp = path.with_extension(format!(
            "{}.{}.tmp",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let result = (|| -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&encode_header(kind, payload))?;
            f.write_all(payload)?;
            f.sync_all()?;
            drop(f);
            fs::rename(&tmp, &path)
        })();
        match result {
            Ok(()) => {
                mc_obs::counter!("mc.store.publishes").inc();
                mc_obs::counter!("mc.store.bytes_written").add((HEADER_LEN + payload.len()) as u64);
                true
            }
            Err(_) => {
                let _ = fs::remove_file(&tmp);
                mc_obs::counter!("mc.store.errors").inc();
                false
            }
        }
    }

    /// Walks the store and reports per-kind file counts and sizes,
    /// refreshing the `mc.store.bytes_on_disk` / `mc.store.artifacts`
    /// gauges.
    pub fn stats(&self) -> StoreStats {
        let mut out = StoreStats::default();
        for kind in ArtifactKind::ALL {
            let mut ks = KindStats::default();
            for entry in self.kind_entries(kind) {
                if entry.is_tmp {
                    out.stray_tmp += 1;
                } else {
                    ks.files += 1;
                    ks.bytes += entry.len;
                }
            }
            out.files += ks.files;
            out.bytes += ks.bytes;
            out.kinds.push((kind.dir(), ks));
        }
        mc_obs::gauge!("mc.store.bytes_on_disk").set(out.bytes as i64);
        mc_obs::gauge!("mc.store.artifacts").set(out.files as i64);
        out
    }

    /// Garbage-collects the store down to `max_bytes` total artifact
    /// bytes: stray temp files always go, then whole artifacts are
    /// removed oldest-modification-first (path as a deterministic
    /// tie-break) until the budget is met. Artifacts are re-creatable by
    /// construction, so eviction is always safe — **except** files some
    /// concurrent reader still holds a [`MappedPayload`] over, which are
    /// skipped (and counted under `mc.store.gc.skipped_live`) so a
    /// long-running session never loses its warm pages mid-read. Skipped
    /// files keep counting toward `kept_bytes`, so a store full of live
    /// artifacts can legitimately end a pass above budget.
    pub fn gc(&self, max_bytes: u64) -> GcReport {
        let mut report = GcReport::default();
        let mut entries: Vec<StoreEntry> = Vec::new();
        for kind in ArtifactKind::ALL {
            for entry in self.kind_entries(kind) {
                if entry.is_tmp {
                    if fs::remove_file(&entry.path).is_ok() {
                        report.removed_tmp += 1;
                    }
                } else {
                    entries.push(entry);
                }
            }
        }
        let mut total: u64 = entries.iter().map(|e| e.len).sum();
        entries.sort_by(|a, b| a.mtime.cmp(&b.mtime).then_with(|| a.path.cmp(&b.path)));
        for entry in &entries {
            if total <= max_bytes {
                break;
            }
            if live_contains(&entry.path) {
                report.skipped_live += 1;
                continue;
            }
            if fs::remove_file(&entry.path).is_ok() {
                report.removed_files += 1;
                report.removed_bytes += entry.len;
                total -= entry.len;
            }
        }
        report.kept_bytes = total;
        mc_obs::counter!("mc.store.gc_removed").add(report.removed_files);
        mc_obs::counter!("mc.store.gc.reclaimed_bytes").add(report.removed_bytes);
        mc_obs::counter!("mc.store.gc.skipped_live").add(report.skipped_live);
        mc_obs::gauge!("mc.store.bytes_on_disk").set(total as i64);
        report
    }

    fn kind_entries(&self, kind: ArtifactKind) -> Vec<StoreEntry> {
        let dir = self.root.join("objects").join(kind.dir());
        let mut out = Vec::new();
        let Ok(read) = fs::read_dir(&dir) else {
            return out;
        };
        for entry in read.flatten() {
            let path = entry.path();
            let Ok(meta) = entry.metadata() else { continue };
            if !meta.is_file() {
                continue;
            }
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            let is_tmp = name.ends_with(".tmp");
            if !is_tmp && !name.ends_with(&format!(".{EXT}")) {
                continue;
            }
            out.push(StoreEntry {
                path,
                len: meta.len(),
                mtime: meta.modified().ok(),
                is_tmp,
            });
        }
        out
    }
}

struct StoreEntry {
    path: PathBuf,
    len: u64,
    mtime: Option<std::time::SystemTime>,
    is_tmp: bool,
}

/// Builds the 32-byte artifact header:
///
/// ```text
/// offset  size  field
///      0     4  magic "MCST"
///      4     4  format version (LE u32)
///      8     4  artifact kind tag (LE u32)
///     12     4  reserved (0)
///     16     8  payload length (LE u64)
///     24     8  payload FNV-1a 64 (LE u64)
/// ```
fn encode_header(kind: ArtifactKind, payload: &[u8]) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..4].copy_from_slice(&MAGIC);
    h[4..8].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h[8..12].copy_from_slice(&kind.tag().to_le_bytes());
    h[16..24].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    h[24..32].copy_from_slice(&mc_table::digest::fnv64(payload).to_le_bytes());
    h
}

/// Verifies a whole artifact file; returns the payload offset if every
/// check passes.
fn verify_artifact(bytes: &[u8], kind: ArtifactKind) -> Option<usize> {
    if bytes.len() < HEADER_LEN {
        return None;
    }
    let (header, payload) = bytes.split_at(HEADER_LEN);
    if header[0..4] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if version != FORMAT_VERSION {
        return None;
    }
    let tag = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if tag != kind.tag() {
        return None;
    }
    let len = u64::from_le_bytes(header[16..24].try_into().unwrap());
    if len != payload.len() as u64 {
        return None;
    }
    let hash = u64::from_le_bytes(header[24..32].try_into().unwrap());
    if hash != mc_table::digest::fnv64(payload) {
        return None;
    }
    Some(HEADER_LEN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_table::digest::digest_bytes;
    use std::sync::atomic::AtomicU32;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn temp_store() -> (Store, PathBuf) {
        let root = std::env::temp_dir().join(format!(
            "mc_store_test_{}_{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let store = Store::open(&StoreConfig::at(&root)).unwrap();
        (store, root)
    }

    #[test]
    fn publish_then_load_roundtrips() {
        let (store, root) = temp_store();
        let key = digest_bytes(b"some key material");
        let payload = b"the artifact payload".to_vec();
        assert_eq!(store.load(ArtifactKind::Arena, key), None, "cold miss");
        assert!(store.publish(ArtifactKind::Arena, key, &payload));
        assert_eq!(store.load(ArtifactKind::Arena, key), Some(payload.clone()));
        // Same key under a different kind is independent.
        assert_eq!(store.load(ArtifactKind::Tokenization, key), None);
        // Republishing is idempotent.
        assert!(store.publish(ArtifactKind::Arena, key, &payload));
        assert_eq!(store.load(ArtifactKind::Arena, key), Some(payload));
        fs::remove_dir_all(root).ok();
    }

    #[test]
    fn reopen_preserves_artifacts() {
        let (store, root) = temp_store();
        let key = digest_bytes(b"k");
        assert!(store.publish(ArtifactKind::CandidateUnion, key, b"v"));
        drop(store);
        let again = Store::open(&StoreConfig::at(&root)).unwrap();
        assert_eq!(
            again.load(ArtifactKind::CandidateUnion, key),
            Some(b"v".to_vec())
        );
        fs::remove_dir_all(root).ok();
    }

    #[test]
    fn incompatible_marker_is_rejected() {
        let (_, root) = temp_store();
        fs::write(root.join(MARKER_NAME), b"mc-store/v9\n").unwrap();
        match Store::open(&StoreConfig::at(&root)) {
            Err(StoreError::IncompatibleMarker { found }) => assert_eq!(found, "mc-store/v9"),
            other => panic!("expected marker rejection, got {other:?}"),
        }
        fs::remove_dir_all(root).ok();
    }

    fn artifact_file(store: &Store, kind: ArtifactKind, key: Digest) -> PathBuf {
        store.object_path(kind, key)
    }

    #[test]
    fn truncated_artifact_is_a_silent_miss() {
        let (store, root) = temp_store();
        let key = digest_bytes(b"t");
        store.publish(ArtifactKind::Arena, key, b"0123456789abcdef");
        let path = artifact_file(&store, ArtifactKind::Arena, key);
        let full = fs::read(&path).unwrap();
        for cut in [0, 3, HEADER_LEN - 1, HEADER_LEN, full.len() - 1] {
            fs::write(&path, &full[..cut]).unwrap();
            assert_eq!(store.load(ArtifactKind::Arena, key), None, "cut at {cut}");
        }
        fs::remove_dir_all(root).ok();
    }

    #[test]
    fn bit_flip_anywhere_is_a_silent_miss() {
        let (store, root) = temp_store();
        let key = digest_bytes(b"b");
        store.publish(ArtifactKind::Arena, key, b"payload bytes here");
        let path = artifact_file(&store, ArtifactKind::Arena, key);
        let full = fs::read(&path).unwrap();
        for pos in [0, 5, 9, 20, 27, HEADER_LEN, full.len() - 1] {
            let mut flipped = full.clone();
            flipped[pos] ^= 0x40;
            fs::write(&path, &flipped).unwrap();
            assert_eq!(store.load(ArtifactKind::Arena, key), None, "flip at {pos}");
        }
        // Restoring the original bytes restores the hit.
        fs::write(&path, &full).unwrap();
        assert!(store.load(ArtifactKind::Arena, key).is_some());
        fs::remove_dir_all(root).ok();
    }

    #[test]
    fn stale_format_version_is_a_silent_miss() {
        let (store, root) = temp_store();
        let key = digest_bytes(b"v");
        store.publish(ArtifactKind::Arena, key, b"versioned");
        let path = artifact_file(&store, ArtifactKind::Arena, key);
        let mut bytes = fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert_eq!(store.load(ArtifactKind::Arena, key), None);
        fs::remove_dir_all(root).ok();
    }

    #[test]
    fn stats_and_gc_enforce_budget_oldest_first() {
        let (store, root) = temp_store();
        let keys: Vec<Digest> = (0..4u8).map(|i| digest_bytes(&[i])).collect();
        for (i, &key) in keys.iter().enumerate() {
            store.publish(ArtifactKind::Arena, key, &[i as u8; 100]);
            // Distinct mtimes, oldest first.
            let path = artifact_file(&store, ArtifactKind::Arena, key);
            let t = std::time::SystemTime::UNIX_EPOCH
                + std::time::Duration::from_secs(1_000 + i as u64);
            let f = fs::File::options().append(true).open(&path).unwrap();
            f.set_modified(t).unwrap();
        }
        // A stray tmp file from a "crashed" writer.
        fs::write(
            root.join("objects").join("arena").join("dead.1.2.tmp"),
            b"junk",
        )
        .unwrap();
        let stats = store.stats();
        assert_eq!(stats.files, 4);
        assert_eq!(stats.bytes, 4 * (100 + HEADER_LEN as u64));
        assert_eq!(stats.stray_tmp, 1);

        // Budget for two artifacts: the two oldest must go.
        let budget = 2 * (100 + HEADER_LEN as u64);
        let report = store.gc(budget);
        assert_eq!(report.removed_tmp, 1);
        assert_eq!(report.removed_files, 2);
        assert_eq!(report.kept_bytes, budget);
        assert_eq!(store.load(ArtifactKind::Arena, keys[0]), None);
        assert_eq!(store.load(ArtifactKind::Arena, keys[1]), None);
        assert!(store.load(ArtifactKind::Arena, keys[2]).is_some());
        assert!(store.load(ArtifactKind::Arena, keys[3]).is_some());
        fs::remove_dir_all(root).ok();
    }

    #[test]
    fn load_mapped_verifies_header_and_exposes_aligned_payload() {
        let (store, root) = temp_store();
        let key = digest_bytes(b"zc");
        let payload: Vec<u8> = (0..200u8).collect();
        assert!(store.load_mapped(ArtifactKind::Postings, key).is_none());
        assert!(store.publish(ArtifactKind::Postings, key, &payload));
        let mapped = store.load_mapped(ArtifactKind::Postings, key).expect("hit");
        assert_eq!(mapped.payload(), &payload[..]);
        assert_eq!(
            mapped.payload().as_ptr() as usize % 8,
            0,
            "payload must start 8-aligned (header is 32 bytes)"
        );
        // Kind confusion is rejected just like Store::load.
        assert!(store.load_mapped(ArtifactKind::Arena, key).is_none());
        // A flipped payload byte fails the FNV check.
        let path = artifact_file(&store, ArtifactKind::Postings, key);
        let mut bytes = fs::read(&path).unwrap();
        bytes[HEADER_LEN + 3] ^= 0x10;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load_mapped(ArtifactKind::Postings, key).is_none());
        fs::remove_dir_all(root).ok();
    }

    #[test]
    fn postings_kind_is_accounted_by_stats_and_gc() {
        let (store, root) = temp_store();
        store.publish(ArtifactKind::Postings, digest_bytes(b"p"), &[7u8; 64]);
        store.publish(ArtifactKind::Arena, digest_bytes(b"a"), &[1u8; 32]);
        let stats = store.stats();
        assert_eq!(stats.files, 2);
        let post = stats
            .kinds
            .iter()
            .find(|(name, _)| *name == "post")
            .expect("post kind listed");
        assert_eq!(post.1.files, 1);
        assert_eq!(post.1.bytes, 64 + HEADER_LEN as u64);
        // gc sees postings files too: budget 0 removes both.
        let report = store.gc(0);
        assert_eq!(report.removed_files, 2);
        assert_eq!(report.kept_bytes, 0);
        fs::remove_dir_all(root).ok();
    }

    #[test]
    fn gc_skips_artifacts_with_live_mapped_handles() {
        let (store, root) = temp_store();
        let live_key = digest_bytes(b"live artifact");
        let dead_key = digest_bytes(b"dead artifact");
        store.publish(ArtifactKind::Postings, live_key, &[1u8; 128]);
        store.publish(ArtifactKind::Postings, dead_key, &[2u8; 128]);
        // Make the live artifact the *older* one so oldest-first eviction
        // would pick it absent the live-handle guard.
        for (key, secs) in [(live_key, 1_000u64), (dead_key, 2_000)] {
            let path = artifact_file(&store, ArtifactKind::Postings, key);
            let f = fs::File::options().append(true).open(&path).unwrap();
            f.set_modified(
                std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(secs),
            )
            .unwrap();
        }
        let ctx = mc_obs::ObsContext::session();
        let mapped = {
            let _g = ctx.attach();
            store.load_mapped(ArtifactKind::Postings, live_key).unwrap()
        };
        let report = {
            let _g = ctx.attach();
            store.gc(0)
        };
        assert_eq!(report.skipped_live, 1);
        assert_eq!(report.removed_files, 1, "only the unmapped artifact goes");
        let artifact_len = 128 + HEADER_LEN as u64;
        assert_eq!(report.removed_bytes, artifact_len);
        assert_eq!(report.kept_bytes, artifact_len);
        // The mapped payload is still fully readable after the pass.
        assert_eq!(mapped.payload(), &[1u8; 128]);
        assert!(store.load(ArtifactKind::Postings, live_key).is_some());
        assert_eq!(store.load(ArtifactKind::Postings, dead_key), None);
        let snap = ctx.snapshot();
        assert_eq!(snap.counter("mc.store.gc.skipped_live"), 1);
        assert_eq!(snap.counter("mc.store.gc.reclaimed_bytes"), artifact_len);
        // Dropping the handle releases the guard; the next pass collects.
        drop(mapped);
        let report = store.gc(0);
        assert_eq!(report.skipped_live, 0);
        assert_eq!(report.removed_files, 1);
        assert_eq!(report.kept_bytes, 0);
        fs::remove_dir_all(root).ok();
    }

    #[test]
    fn gc_with_generous_budget_removes_nothing() {
        let (store, root) = temp_store();
        let key = digest_bytes(b"keep");
        store.publish(ArtifactKind::Tokenization, key, b"data");
        let report = store.gc(u64::MAX);
        assert_eq!(report.removed_files, 0);
        assert!(store.load(ArtifactKind::Tokenization, key).is_some());
        fs::remove_dir_all(root).ok();
    }
}

//! Minimal little-endian binary codec for artifact payloads.
//!
//! Artifacts are flat structures (CSR buffers, rank tables, score
//! vectors), so the codec is deliberately primitive: fixed-width LE
//! integers and length-prefixed bulk slices, no schema evolution —
//! format changes bump the store's format version and old files become
//! misses. Decoding is **total**: every read returns `Option` and a
//! truncated or garbled payload yields `None` rather than a panic, which
//! the store surfaces as a cache miss.

/// Append-only payload writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// An empty writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` by bit pattern (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed `u32` slice as one bulk run.
    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        self.put_u64(vs.len() as u64);
        self.buf.reserve(vs.len() * 4);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends length-prefixed raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// The finished payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Forward-only payload reader; every accessor returns `None` on
/// underflow so corrupt payloads degrade to cache misses.
#[derive(Debug, Clone, Copy)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over the full payload.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Some(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Option<f64> {
        self.get_u64().map(f64::from_bits)
    }

    /// Reads a length-prefixed `u32` slice in one bulk pass (a single
    /// allocation sized up front — the CSR buffers land directly in
    /// their final flat layout).
    pub fn get_u32_vec(&mut self) -> Option<Vec<u32>> {
        let n = self.get_u64()? as usize;
        let raw = self.take(n.checked_mul(4)?)?;
        let mut out = Vec::with_capacity(n);
        out.extend(
            raw.chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap())),
        );
        Some(out)
    }

    /// Reads length-prefixed raw bytes.
    pub fn get_bytes(&mut self) -> Option<&'a [u8]> {
        let n = self.get_u64()? as usize;
        self.take(n)
    }

    /// True if the whole payload was consumed (decoders should check
    /// this to reject trailing garbage).
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-0.125);
        w.put_u32_slice(&[1, 2, 3, u32::MAX]);
        w.put_bytes(b"abc");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8(), Some(7));
        assert_eq!(r.get_u32(), Some(0xdead_beef));
        assert_eq!(r.get_u64(), Some(u64::MAX - 3));
        assert_eq!(r.get_f64(), Some(-0.125));
        assert_eq!(r.get_u32_vec(), Some(vec![1, 2, 3, u32::MAX]));
        assert_eq!(r.get_bytes(), Some(&b"abc"[..]));
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_payloads_return_none_not_panic() {
        let mut w = ByteWriter::new();
        w.put_u32_slice(&[1, 2, 3]);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(r.get_u32_vec().is_none(), "cut at {cut} must fail cleanly");
        }
    }

    #[test]
    fn absurd_length_prefix_fails_cleanly() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // claims ~2^64 elements
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_u32_vec().is_none());
        let mut r2 = ByteReader::new(&bytes);
        assert!(r2.get_bytes().is_none());
    }

    #[test]
    fn nan_and_negative_zero_roundtrip_bitwise() {
        let mut w = ByteWriter::new();
        w.put_f64(f64::NAN);
        w.put_f64(-0.0);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
    }
}

//! Read-only memory mapping without a libc dependency.
//!
//! Warm starts at 10⁵–10⁶-record scale spend real time copying and
//! decoding arena artifacts that the join could consume in place. A
//! [`Mapping`] makes the file's bytes addressable directly: on Linux
//! (x86_64 / aarch64) it issues the `mmap`/`munmap` syscalls itself via
//! inline assembly — the workspace deliberately carries no libc binding —
//! and on every other target (or when the syscall fails) it falls back to
//! reading the file into an 8-byte-aligned heap buffer, so callers get
//! the same zero-copy *view* semantics everywhere and only the paging
//! behaviour differs. `mc.store.mmap_maps` / `mc.store.mmap_fallbacks`
//! count which path ran.
//!
//! The mapping is always `PROT_READ` + `MAP_PRIVATE`: the bytes are
//! immutable for the mapping's lifetime, which is what makes handing
//! `&[u8]` views (and the `Send + Sync` impls) sound.

use std::path::Path;

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    //! Direct Linux syscalls for the two calls we need. Numbers and
    //! calling conventions per `man 2 syscall`:
    //! x86_64: nr in `rax`, args in `rdi rsi rdx r10 r8 r9`, `syscall`
    //! clobbers `rcx`/`r11`; aarch64: nr in `x8`, args in `x0..x5`,
    //! trap via `svc 0`. Errors come back as `-errno` in `[-4095, -1]`.

    pub const PROT_READ: usize = 1;
    pub const MAP_PRIVATE: usize = 2;

    #[cfg(target_arch = "x86_64")]
    pub unsafe fn mmap(len: usize, prot: usize, flags: usize, fd: i32) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") 9isize => ret, // __NR_mmap
            in("rdi") 0usize,               // addr hint
            in("rsi") len,
            in("rdx") prot,
            in("r10") flags,
            in("r8") fd as isize,
            in("r9") 0usize,                // offset
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    #[cfg(target_arch = "x86_64")]
    pub unsafe fn munmap(addr: *const u8, len: usize) {
        core::arch::asm!(
            "syscall",
            inlateout("rax") 11isize => _, // __NR_munmap
            in("rdi") addr,
            in("rsi") len,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
    }

    #[cfg(target_arch = "aarch64")]
    pub unsafe fn mmap(len: usize, prot: usize, flags: usize, fd: i32) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") 222usize, // __NR_mmap
            inlateout("x0") 0usize => ret,
            in("x1") len,
            in("x2") prot,
            in("x3") flags,
            in("x4") fd as isize,
            in("x5") 0usize,
            options(nostack)
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    pub unsafe fn munmap(addr: *const u8, len: usize) {
        core::arch::asm!(
            "svc 0",
            in("x8") 215usize, // __NR_munmap
            inlateout("x0") addr => _,
            in("x1") len,
            options(nostack)
        );
    }
}

/// How a [`Mapping`]'s bytes are held.
enum Backing {
    /// Heap fallback: the file was read into an 8-byte-aligned buffer.
    /// The `Vec` is held only to keep the allocation alive.
    Heap { _buf: Vec<u64> },
    /// A live kernel mapping; `Mapping::ptr`/`len` describe it and
    /// `Drop` unmaps it.
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Mmap,
}

/// A read-only view of one file's bytes, either memory-mapped or (as a
/// fallback) heap-buffered. Either way [`Mapping::bytes`] starts at an
/// address aligned to at least 8 bytes — mapped pages are page-aligned —
/// so fixed offsets into the file keep their alignment guarantees.
pub struct Mapping {
    ptr: *const u8,
    len: usize,
    backing: Backing,
}

// SAFETY: the bytes behind `ptr` are immutable for the mapping's
// lifetime (PROT_READ private mapping, or a heap buffer nothing else
// references), so shared access from any thread is sound.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps `path` read-only. Prefers a kernel mapping where supported;
    /// otherwise (unsupported target, empty file, or syscall failure)
    /// reads the file into an aligned heap buffer. `None` only when the
    /// file cannot be read at all.
    pub fn open(path: &Path) -> Option<Mapping> {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if let Some(m) = Mapping::map_native(path) {
            mc_obs::counter!("mc.store.mmap_maps").inc();
            return Some(m);
        }
        let m = Mapping::read_heap(path)?;
        mc_obs::counter!("mc.store.mmap_fallbacks").inc();
        Some(m)
    }

    /// The whole file's bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: `ptr` is valid for `len` bytes for as long as the
        // backing lives (mapping unmapped only in Drop; Vec held).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// True when the bytes come from a kernel mapping rather than the
    /// heap fallback.
    pub fn is_mmap(&self) -> bool {
        !matches!(self.backing, Backing::Heap { .. })
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    fn map_native(path: &Path) -> Option<Mapping> {
        use std::os::unix::io::AsRawFd;
        let file = std::fs::File::open(path).ok()?;
        let len = usize::try_from(file.metadata().ok()?.len()).ok()?;
        if len == 0 {
            return None; // mmap of length 0 is EINVAL; heap handles it
        }
        // SAFETY: plain read-only private file mapping; the fd stays
        // open for the duration of the call (the mapping outlives it by
        // design — closing the fd does not tear down the mapping).
        let ret = unsafe { sys::mmap(len, sys::PROT_READ, sys::MAP_PRIVATE, file.as_raw_fd()) };
        // Failures return -errno in [-4095, -1].
        if (-4095..=0).contains(&ret) {
            return None;
        }
        Some(Mapping {
            ptr: ret as *const u8,
            len,
            backing: Backing::Mmap,
        })
    }

    fn read_heap(path: &Path) -> Option<Mapping> {
        let bytes = std::fs::read(path).ok()?;
        let len = bytes.len();
        let mut buf = vec![0u64; len.div_ceil(8)];
        // SAFETY: `buf` holds at least `len` bytes; ranges are disjoint.
        unsafe { std::ptr::copy_nonoverlapping(bytes.as_ptr(), buf.as_mut_ptr().cast(), len) };
        Some(Mapping {
            ptr: buf.as_ptr().cast(),
            len,
            backing: Backing::Heap { _buf: buf },
        })
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if matches!(self.backing, Backing::Mmap) {
            // SAFETY: exactly the region returned by mmap, unmapped once.
            unsafe { sys::munmap(self.ptr, self.len) };
        }
    }
}

impl std::fmt::Debug for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mapping")
            .field("len", &self.len)
            .field("mmap", &self.is_mmap())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_file(contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "mc-mmap-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&path, contents).expect("write temp file");
        path
    }

    #[test]
    fn mapping_exposes_file_bytes_and_alignment() {
        let body: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let path = temp_file(&body);
        let m = Mapping::open(&path).expect("map");
        assert_eq!(m.bytes(), &body[..]);
        assert_eq!(m.bytes().as_ptr() as usize % 8, 0, "base alignment");
        drop(m);
        // Mapping again after drop still works (no fd/map leak issues).
        let m2 = Mapping::open(&path).expect("remap");
        assert_eq!(m2.bytes().len(), body.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_view() {
        let path = temp_file(&[]);
        let m = Mapping::open(&path).expect("map empty");
        assert!(m.bytes().is_empty());
        assert!(!m.is_mmap(), "empty files take the heap path");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_none() {
        let path = std::env::temp_dir().join("mc-mmap-test-definitely-missing");
        assert!(Mapping::open(&path).is_none());
    }

    #[test]
    fn mapping_is_usable_across_threads() {
        let body = vec![0xabu8; 4096 * 3 + 17];
        let path = temp_file(&body);
        let m = std::sync::Arc::new(Mapping::open(&path).expect("map"));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || m.bytes().iter().map(|&b| b as u64).sum::<u64>())
            })
            .collect();
        let expect = body.iter().map(|&b| b as u64).sum::<u64>();
        for h in handles {
            assert_eq!(h.join().expect("join"), expect);
        }
        std::fs::remove_file(&path).ok();
    }
}

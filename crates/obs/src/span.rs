//! Hierarchical spans and the flight recorder.
//!
//! A [`Span`] is an RAII timer: entering pushes onto a thread-local
//! stack (so children know their parent), dropping records the duration
//! into a per-name [`Histogram`](crate::metrics::Histogram) (in
//! microseconds, under the span's name) and appends a [`SpanRecord`] to
//! the owning context's [`FlightRecorder`] — a fixed-capacity ring
//! buffer holding the most recent completed spans, cheap enough to leave
//! on in production and dump when a run needs debugging.
//!
//! Spans resolve their [`ObsContext`](crate::ObsContext) when entered,
//! so a span opened inside an attached session scope lands in that
//! session's recorder and histogram registry (and, via metric chaining,
//! in the global histogram too). Each context owns its own recorder, so
//! sessions never see each other's span records.

use crate::context::ObsContext;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Default capacity of a flight recorder (records).
pub const FLIGHT_RECORDER_CAPACITY: usize = 4096;

/// One completed span (or explicit event) in the flight recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (`mc.<crate>.<stage>` scheme).
    pub name: &'static str,
    /// Caller-supplied label (config index, iteration number, …);
    /// `u64::MAX` when unused.
    pub label: u64,
    /// Nanoseconds since the recorder was created.
    pub start_ns: u64,
    /// Span duration in nanoseconds (0 for instant events).
    pub dur_ns: u64,
    /// Recording thread, as an opaque small integer.
    pub thread: u64,
    /// Monotone sequence number (per-recorder order of completion).
    pub seq: u64,
    /// Sequence number of the enclosing span, `u64::MAX` at root.
    pub parent_seq: u64,
    /// Free-form value payload for events (counts, sizes); 0 for spans.
    pub value: u64,
}

/// Fixed-capacity overwrite-oldest buffer of [`SpanRecord`]s.
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<SpanRecord>>>,
    next: AtomicUsize,
    seq: AtomicU64,
    epoch: Instant,
}

impl FlightRecorder {
    /// A recorder retaining the most recent `capacity` records.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            next: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Number of records this recorder retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Nanoseconds since the recorder was created.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Appends a record, overwriting the oldest when full. Returns the
    /// record's sequence number.
    pub fn push(&self, mut rec: SpanRecord) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        rec.seq = seq;
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        *self.slots[slot].lock().unwrap() = Some(rec);
        seq
    }

    /// Total records ever pushed (may exceed capacity).
    pub fn pushed(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Records lost to ring-buffer overwrites: everything pushed beyond
    /// capacity. Surfaced in snapshots as `mc.obs.flight.dropped`.
    pub fn dropped(&self) -> u64 {
        self.pushed().saturating_sub(self.slots.len() as u64)
    }

    /// The retained records, oldest first.
    pub fn drain_ordered(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().unwrap().clone())
            .collect();
        out.sort_unstable_by_key(|r| r.seq);
        out
    }
}

/// The process-global flight recorder (the global
/// [`ObsContext`](crate::ObsContext)'s).
pub fn flight_recorder() -> &'static FlightRecorder {
    ObsContext::global().recorder()
}

thread_local! {
    static CURRENT_PARENT: Cell<u64> = const { Cell::new(u64::MAX) };
    static THREAD_TAG: Cell<u64> = const { Cell::new(u64::MAX) };
}

/// Replaces the thread's span-parent cursor, returning the old value.
/// Used by [`ObsContext::attach`] so spans opened under a freshly
/// attached context are roots of that context, not children of whatever
/// the outer scope had open.
pub(crate) fn swap_parent_cursor(new: u64) -> u64 {
    CURRENT_PARENT.with(|p| p.replace(new))
}

fn thread_tag() -> u64 {
    THREAD_TAG.with(|t| {
        if t.get() == u64::MAX {
            static NEXT: AtomicU64 = AtomicU64::new(0);
            t.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// An in-flight timed region. Create with [`Span::enter`] (or the
/// `span!` macro); the drop records it.
pub struct Span {
    name: &'static str,
    label: u64,
    start: Instant,
    start_ns: u64,
    parent_seq: u64,
    /// Sequence number reserved for this span, so children observed
    /// while it is open can point at it.
    my_seq: u64,
    /// The context current at enter time; the drop records into it even
    /// if the thread's context has changed since.
    ctx: ObsContext,
}

impl Span {
    /// Enters a span named `name`.
    pub fn enter(name: &'static str) -> Span {
        Span::enter_labeled(name, u64::MAX)
    }

    /// Enters a span carrying a numeric label (config index, iteration).
    pub fn enter_labeled(name: &'static str, label: u64) -> Span {
        let ctx = ObsContext::current();
        let rec = ctx.recorder();
        // Reserve a sequence number up front so children can reference
        // this span before it completes.
        let my_seq = rec.seq.fetch_add(1, Ordering::Relaxed);
        let parent_seq = CURRENT_PARENT.with(|p| p.replace(my_seq));
        let start_ns = rec.now_ns();
        Span {
            name,
            label,
            start: Instant::now(),
            start_ns,
            parent_seq,
            my_seq,
            ctx,
        }
    }

    /// The span's reserved sequence number.
    pub fn seq(&self) -> u64 {
        self.my_seq
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur = self.start.elapsed();
        CURRENT_PARENT.with(|p| p.set(self.parent_seq));
        self.ctx
            .registry()
            .histogram(self.name)
            .record(dur.as_micros() as u64);
        let rec = self.ctx.recorder();
        let slot = rec.next.fetch_add(1, Ordering::Relaxed) % rec.slots.len();
        *rec.slots[slot].lock().unwrap() = Some(SpanRecord {
            name: self.name,
            label: self.label,
            start_ns: self.start_ns,
            dur_ns: dur.as_nanos() as u64,
            thread: thread_tag(),
            seq: self.my_seq,
            parent_seq: self.parent_seq,
            value: 0,
        });
    }
}

/// Records an instantaneous event (no duration) with a label and value —
/// e.g. one verifier iteration with its label count — into the current
/// context's recorder.
pub fn event(name: &'static str, label: u64, value: u64) {
    let ctx = ObsContext::current();
    let rec = ctx.recorder();
    let parent_seq = CURRENT_PARENT.with(|p| p.get());
    rec.push(SpanRecord {
        name,
        label,
        start_ns: rec.now_ns(),
        dur_ns: 0,
        thread: thread_tag(),
        seq: 0, // assigned by push
        parent_seq,
        value,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::registry;

    #[test]
    fn spans_nest_and_record() {
        let before = flight_recorder().pushed();
        {
            let _outer = Span::enter("mc.test.outer");
            let _inner = Span::enter("mc.test.inner");
        }
        let recs = flight_recorder().drain_ordered();
        let inner = recs.iter().find(|r| r.name == "mc.test.inner").unwrap();
        let outer = recs.iter().find(|r| r.name == "mc.test.outer").unwrap();
        assert_eq!(inner.parent_seq, outer.seq);
        assert!(flight_recorder().pushed() >= before + 2);
        assert!(registry().histogram("mc.test.outer").count() >= 1);
    }

    #[test]
    fn events_carry_values() {
        event("mc.test.event", 3, 17);
        let recs = flight_recorder().drain_ordered();
        let e = recs
            .iter()
            .rev()
            .find(|r| r.name == "mc.test.event")
            .unwrap();
        assert_eq!(e.label, 3);
        assert_eq!(e.value, 17);
        assert_eq!(e.dur_ns, 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let rec = FlightRecorder::new(4);
        assert_eq!(rec.dropped(), 0);
        for i in 0..10u64 {
            rec.push(SpanRecord {
                name: "mc.test.ring",
                label: i,
                start_ns: 0,
                dur_ns: 0,
                thread: 0,
                seq: 0,
                parent_seq: u64::MAX,
                value: 0,
            });
        }
        let kept = rec.drain_ordered();
        assert_eq!(kept.len(), 4);
        assert_eq!(
            kept.iter().map(|r| r.label).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(rec.pushed(), 10);
        assert_eq!(rec.dropped(), 6);
    }

    #[test]
    fn session_spans_stay_in_their_recorder() {
        let session = ObsContext::with_recorder_capacity(64);
        {
            let _g = session.attach();
            let _root = Span::enter("mc.test.session_span");
            event("mc.test.session_event", 1, 2);
        }
        let recs = session.recorder().drain_ordered();
        assert!(recs.iter().any(|r| r.name == "mc.test.session_span"));
        assert!(recs.iter().any(|r| r.name == "mc.test.session_event"));
        // The global recorder saw none of the session's records...
        let global_recs = flight_recorder().drain_ordered();
        assert!(
            !global_recs
                .iter()
                .any(|r| r.name == "mc.test.session_span" || r.name == "mc.test.session_event"),
            "session records must not reach the global recorder"
        );
        // ...but the global histogram accounts for the span's duration.
        assert!(registry().histogram("mc.test.session_span").count() >= 1);
        assert_eq!(
            session.registry().histogram("mc.test.session_span").count(),
            1
        );
    }
}

//! A minimal JSON reader for the workspace's own machine-readable
//! artifacts (`mc-obs/v2` snapshots, `mc-bench-*` reports, budget
//! files).
//!
//! The workspace has a no-external-dependencies policy, and every JSON
//! document we read is one we also write, so this parser is
//! deliberately small: strict on structure (it rejects trailing
//! garbage, unterminated strings, and malformed escapes) but with
//! numbers held as `f64` — integral values round-trip exactly up to
//! 2^53, far above any counter we emit.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (see module docs for integer precision).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in document order (duplicate keys keep the last).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member `key` of an object (None for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractions).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as u64)
    }

    /// The value as a signed integer (rejects fractions).
    pub fn as_i64(&self) -> Option<i64> {
        let n = self.as_f64()?;
        (n.fract() == 0.0 && n.abs() <= i64::MAX as f64).then_some(n as i64)
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's elements, if an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's members, if an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Serializes the value as a compact JSON document.
    ///
    /// The output round-trips through [`JsonValue::parse`]: strings are
    /// escaped (including control characters in hostile names), integral
    /// numbers up to 2^53 print without a fractional part, and non-finite
    /// numbers — which JSON cannot represent — serialize as `null`.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_num(*n, out),
            JsonValue::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> Self {
        JsonValue::Num(n)
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::Num(n as f64)
    }
}

impl From<i64> for JsonValue {
    fn from(n: i64) -> Self {
        JsonValue::Num(n as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::Num(n as f64)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

fn write_num(n: f64, out: &mut String) {
    use std::fmt::Write;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= (1u64 << 53) as f64 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{}` on f64 prints the shortest representation that parses
        // back to the same bits.
        let _ = write!(out, "{n}");
    }
}

/// Escapes a string for embedding in a JSON document (adds no quotes).
///
/// Shared by every emitter in the workspace: snapshot/report writers,
/// the Prometheus/trace exporters, and the `mc-serve` wire codec.
pub fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') if self.eat_lit("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.eat_lit("null") => Ok(JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writers; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape \\{}", esc as char)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or("invalid UTF-8 in string")?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc =
            JsonValue::parse(r#"{"a": 1, "b": [true, null, -2.5], "c": {"d": "x\ny", "e": []}}"#)
                .unwrap();
        assert_eq!(doc.get("a").unwrap().as_u64(), Some(1));
        let b = doc.get("b").unwrap().as_array().unwrap();
        assert_eq!(b[0].as_bool(), Some(true));
        assert_eq!(b[1], JsonValue::Null);
        assert_eq!(b[2].as_f64(), Some(-2.5));
        assert_eq!(
            doc.get("c").unwrap().get("d").unwrap().as_str(),
            Some("x\ny")
        );
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn unescapes_strings() {
        let doc = JsonValue::parse(r#""q\"b\\nA\u0001\u00e9""#).unwrap();
        assert_eq!(doc.as_str(), Some("q\"b\\nA\u{1}\u{e9}"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "\"open",
            "{\"a\" 1}",
            "123 456",
            "{\"a\": 1,}",
            "nul",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn serializer_round_trips() {
        let doc = JsonValue::Obj(vec![
            ("n".into(), JsonValue::Num(-2.5)),
            ("i".into(), JsonValue::Num((1u64 << 53) as f64)),
            (
                "s".into(),
                JsonValue::Str("hostile \"name\"\\with\nctl\u{1}".into()),
            ),
            (
                "a".into(),
                JsonValue::Arr(vec![JsonValue::Null, JsonValue::Bool(true)]),
            ),
            ("o".into(), JsonValue::Obj(vec![])),
        ]);
        let text = doc.to_json_string();
        assert_eq!(JsonValue::parse(&text).unwrap(), doc);
        // Integral values print without a fraction; escapes are emitted.
        assert!(text.contains("\"i\":9007199254740992"));
        assert!(text.contains("\\\"name\\\""));
        assert!(text.contains("\\u0001"));
    }

    #[test]
    fn serializer_maps_non_finite_to_null() {
        assert_eq!(JsonValue::Num(f64::NAN).to_json_string(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_json_string(), "null");
        // Non-integral floats keep full round-trip precision.
        let v = JsonValue::Num(0.1 + 0.2);
        let back = JsonValue::parse(&v.to_json_string()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn from_impls_build_values() {
        let v = JsonValue::Obj(vec![
            ("a".into(), 3u64.into()),
            ("b".into(), "x".into()),
            ("c".into(), true.into()),
        ]);
        assert_eq!(v.get("a").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn integers_are_exact() {
        let doc = JsonValue::parse("[9007199254740992, -3, 0]").unwrap();
        let items = doc.as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(1u64 << 53));
        assert_eq!(items[1].as_i64(), Some(-3));
        assert_eq!(items[2].as_u64(), Some(0));
    }
}

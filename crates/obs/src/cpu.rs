//! Per-thread CPU-time clock.
//!
//! [`thread_cpu_us`] reads `CLOCK_THREAD_CPUTIME_ID` — the CPU time the
//! *calling thread* has consumed — so busy-time measurements stay honest
//! on oversubscribed machines: wall clocks charge a thread for time it
//! spent descheduled while siblings ran, a per-thread CPU clock does
//! not. The sharded SSJ uses it to record each shard's true busy time
//! (and from that the parallel critical path) even when the bench host
//! has fewer cores than shards.
//!
//! Like `mc-store`'s mmap layer, this crate links no libc, so on
//! Linux/x86_64 and Linux/aarch64 the `clock_gettime` syscall is issued
//! directly. Every other target falls back to a process-wide monotonic
//! wall clock, which is identical to CPU time whenever threads don't
//! contend for cores.

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    //! `clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts)` by direct
    //! syscall; conventions as in `mc-store`'s `mmap::sys`. Errors come
    //! back as `-errno` in `[-4095, -1]`.

    const CLOCK_THREAD_CPUTIME_ID: usize = 3;

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn clock_gettime(clock: usize, ts: *mut Timespec) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") 228isize => ret, // __NR_clock_gettime
            in("rdi") clock,
            in("rsi") ts,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn clock_gettime(clock: usize, ts: *mut Timespec) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") 113usize, // __NR_clock_gettime
            inlateout("x0") clock => ret,
            in("x1") ts,
            options(nostack)
        );
        ret
    }

    /// This thread's consumed CPU time in microseconds, or `None` if the
    /// syscall failed.
    pub fn thread_cpu_us() -> Option<u64> {
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        let ret = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        if ret < 0 {
            return None;
        }
        Some(ts.tv_sec as u64 * 1_000_000 + ts.tv_nsec as u64 / 1_000)
    }
}

/// Monotonic fallback shared by all threads: wall-clock microseconds
/// since the first call. Used when the per-thread CPU clock is
/// unavailable; equal to CPU time as long as the thread never waits.
fn wall_us() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    EPOCH
        .get_or_init(std::time::Instant::now)
        .elapsed()
        .as_micros() as u64
}

/// Microseconds of CPU time consumed by the calling thread.
///
/// Only differences between two readings **on the same thread** are
/// meaningful. On non-Linux targets (or if the syscall fails) this
/// degrades to a wall clock, which overcounts only when the thread is
/// descheduled between the readings.
pub fn thread_cpu_us() -> u64 {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    if let Some(us) = sys::thread_cpu_us() {
        return us;
    }
    wall_us()
}

#[cfg(test)]
mod tests {
    use super::thread_cpu_us;

    #[test]
    fn monotone_and_advances_under_load() {
        let start = thread_cpu_us();
        // Spin long enough that even a coarse clock must advance.
        let mut acc = 0u64;
        while thread_cpu_us() == start {
            for i in 0..10_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
        }
        assert!(thread_cpu_us() >= start);
    }

    #[test]
    fn sleeping_is_cheaper_than_spinning() {
        // On Linux the thread clock must not charge for sleep time; the
        // wall fallback would, so only assert the cheap direction.
        let a = thread_cpu_us();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let b = thread_cpu_us();
        assert!(b >= a);
    }
}

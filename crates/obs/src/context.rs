//! [`ObsContext`] — the session-scoped observability plane.
//!
//! An `ObsContext` is a cheap, clonable handle bundling a
//! [`Registry`] and a [`FlightRecorder`]. The process has one **global**
//! context ([`ObsContext::global`]) that preserves the historical
//! behaviour of `mc-obs` — every `counter!`/`span!` site resolves to it
//! by default — and any number of **session** contexts
//! ([`ObsContext::session`]) whose metrics are fully isolated from each
//! other while still chaining into the global registry, so the merged
//! process view accounts for every session.
//!
//! **Propagation.** The current context is thread-local:
//! [`ObsContext::attach`] installs one for the enclosing scope (RAII
//! guard), and code that spawns worker threads grabs
//! [`ObsContext::current`] before the spawn and re-attaches inside each
//! worker. `MatchCatcher::run` does exactly this for the whole pipeline,
//! so two concurrent debugger runs with distinct contexts never bleed a
//! single metric or span record into each other's snapshots.
//!
//! **Hot-path cost.** The `counter!`/`gauge!`/`histogram!` macros keep a
//! per-call-site, per-thread cache keyed by the context's `epoch`, so
//! steady-state resolution is one TLS read and an equality check — the
//! registry mutex is touched once per site per context per thread.

use crate::metrics::{Counter, Gauge, Histogram, Registry};
use crate::snapshot::MetricsSnapshot;
use crate::span::{FlightRecorder, FLIGHT_RECORDER_CAPACITY};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::LocalKey;

/// Shared state of one observability scope.
pub struct ObsInner {
    epoch: u64,
    registry: Registry,
    recorder: FlightRecorder,
}

/// A cheap, clonable handle to one observability scope: a metrics
/// [`Registry`] plus a [`FlightRecorder`]. See the module docs.
#[derive(Clone)]
pub struct ObsContext {
    inner: Arc<ObsInner>,
}

fn next_epoch() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1); // 0 is the global context
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl ObsContext {
    /// The process-global context: the historical process-wide registry
    /// and flight recorder. This is what every instrumentation site
    /// resolves to unless a session context is attached.
    pub fn global() -> &'static ObsContext {
        static GLOBAL: OnceLock<ObsContext> = OnceLock::new();
        GLOBAL.get_or_init(|| ObsContext {
            inner: Arc::new(ObsInner {
                epoch: 0,
                registry: Registry::new(),
                recorder: FlightRecorder::new(FLIGHT_RECORDER_CAPACITY),
            }),
        })
    }

    /// A fresh session context: an empty registry whose metrics chain
    /// into the global one, and a private flight recorder of the default
    /// capacity.
    pub fn session() -> ObsContext {
        ObsContext::with_recorder_capacity(FLIGHT_RECORDER_CAPACITY)
    }

    /// [`ObsContext::session`] with an explicit flight-recorder capacity
    /// (records). Small capacities make ring-buffer truncation — surfaced
    /// as `mc.obs.flight.dropped` in snapshots — easy to exercise.
    pub fn with_recorder_capacity(capacity: usize) -> ObsContext {
        ObsContext {
            inner: Arc::new(ObsInner {
                epoch: next_epoch(),
                registry: Registry::scoped(ObsContext::global().registry()),
                recorder: FlightRecorder::new(capacity.max(1)),
            }),
        }
    }

    /// The thread's current context (the global one unless a session
    /// context is attached).
    pub fn current() -> ObsContext {
        CURRENT.with(|c| {
            c.borrow()
                .clone()
                .unwrap_or_else(|| ObsContext::global().clone())
        })
    }

    /// Installs this context as the thread's current one; the returned
    /// guard restores the previous context (and the span-parent cursor)
    /// on drop. Worker threads spawned inside the scope must re-attach —
    /// grab [`ObsContext::current`] before the spawn.
    pub fn attach(&self) -> AttachGuard {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(self.clone()));
        sync_epoch();
        let prev_parent = crate::span::swap_parent_cursor(u64::MAX);
        AttachGuard { prev, prev_parent }
    }

    /// This scope's metrics registry. Session registries chain into the
    /// global one (updates land in both).
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// This scope's flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.inner.recorder
    }

    /// A unique identifier for this scope (0 = global). Session epochs
    /// are never reused within a process.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch
    }

    /// Captures everything this scope has recorded; see
    /// [`MetricsSnapshot::capture`] for the ambient-context variant.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::capture_from(self)
    }

    /// Whether two handles refer to the same scope.
    pub fn same_as(&self, other: &ObsContext) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Default for ObsContext {
    /// The global context.
    fn default() -> Self {
        ObsContext::global().clone()
    }
}

impl std::fmt::Debug for ObsContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsContext")
            .field("epoch", &self.inner.epoch)
            .finish_non_exhaustive()
    }
}

thread_local! {
    /// `None` means "the global context" without forcing its init.
    static CURRENT: RefCell<Option<ObsContext>> = const { RefCell::new(None) };
}

/// RAII guard returned by [`ObsContext::attach`].
pub struct AttachGuard {
    prev: Option<ObsContext>,
    prev_parent: u64,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
        sync_epoch();
        crate::span::swap_parent_cursor(self.prev_parent);
    }
}

/// Per-call-site cache slot used by the `counter!`/`gauge!`/`histogram!`
/// macros: `(context epoch, resolved handle)`, one per thread per site.
pub type SiteSlot<T> = RefCell<(u64, Option<Arc<T>>)>;

/// Fast-path epoch of the thread's current context, without cloning it.
#[inline]
fn current_epoch() -> u64 {
    CURRENT_EPOCH.with(|e| e.get())
}

thread_local! {
    /// Mirror of `CURRENT`'s epoch as a plain `Cell` so hot sites avoid
    /// the `RefCell` borrow. Kept in sync by attach/detach.
    static CURRENT_EPOCH: Cell<u64> = const { Cell::new(0) };
}

fn sync_epoch() {
    let e = CURRENT.with(|c| c.borrow().as_ref().map_or(0, |ctx| ctx.epoch()));
    CURRENT_EPOCH.with(|cell| cell.set(e));
}

macro_rules! site_resolver {
    ($fn_name:ident, $ty:ty, $get:ident) => {
        /// Macro support: resolves `name` in the current context through
        /// the per-site cache. Not intended for direct use.
        #[doc(hidden)]
        pub fn $fn_name(name: &'static str, site: &'static LocalKey<SiteSlot<$ty>>) -> Arc<$ty> {
            let epoch = current_epoch();
            site.with(|slot| {
                {
                    let s = slot.borrow();
                    if s.0 == epoch {
                        if let Some(h) = &s.1 {
                            return Arc::clone(h);
                        }
                    }
                }
                let ctx = ObsContext::current();
                let h = ctx.registry().$get(name);
                *slot.borrow_mut() = (epoch, Some(Arc::clone(&h)));
                h
            })
        }
    };
}

site_resolver!(site_counter, Counter, counter);
site_resolver!(site_gauge, Gauge, gauge);
site_resolver!(site_histogram, Histogram, histogram);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::registry;

    #[test]
    fn attach_scopes_and_restores() {
        let before = ObsContext::current();
        assert_eq!(before.epoch(), 0, "default is the global context");
        let session = ObsContext::session();
        {
            let _g = session.attach();
            assert!(ObsContext::current().same_as(&session));
            // Nested attach restores the outer session, not the global.
            let inner = ObsContext::session();
            {
                let _g2 = inner.attach();
                assert!(ObsContext::current().same_as(&inner));
            }
            assert!(ObsContext::current().same_as(&session));
        }
        assert_eq!(ObsContext::current().epoch(), 0);
    }

    #[test]
    fn session_metrics_chain_but_do_not_bleed() {
        let a = ObsContext::session();
        let b = ObsContext::session();
        let global_before = registry().counter("mc.test.ctx.chain").get();
        {
            let _g = a.attach();
            crate::counter!("mc.test.ctx.chain").add(3);
        }
        {
            let _g = b.attach();
            crate::counter!("mc.test.ctx.chain").add(4);
        }
        assert_eq!(a.registry().counter("mc.test.ctx.chain").get(), 3);
        assert_eq!(b.registry().counter("mc.test.ctx.chain").get(), 4);
        assert_eq!(
            registry().counter("mc.test.ctx.chain").get(),
            global_before + 7,
            "global view accounts for both sessions"
        );
    }

    #[test]
    fn site_cache_tracks_context_switches() {
        // The same call site must resolve to different handles under
        // different contexts, including back-to-back switches.
        let a = ObsContext::session();
        let b = ObsContext::session();
        for _ in 0..3 {
            {
                let _g = a.attach();
                crate::counter!("mc.test.ctx.site").inc();
            }
            {
                let _g = b.attach();
                crate::counter!("mc.test.ctx.site").inc();
            }
        }
        assert_eq!(a.registry().counter("mc.test.ctx.site").get(), 3);
        assert_eq!(b.registry().counter("mc.test.ctx.site").get(), 3);
    }
}

//! Exporters: Chrome/Perfetto trace JSON and Prometheus/OpenMetrics
//! text, both rendered from a [`MetricsSnapshot`] (no live registry
//! access, so they work on deltas and on snapshots read back from
//! JSON).

use crate::metrics::bucket_range;
use crate::snapshot::{escape, MetricsSnapshot};
use std::fmt::Write as _;

impl MetricsSnapshot {
    /// Renders the flight-recorder events as Chrome trace JSON (the
    /// `chrome://tracing` / Perfetto "JSON array" flavour, wrapped in a
    /// `traceEvents` object).
    ///
    /// Spans become complete (`"ph": "X"`) events with microsecond
    /// timestamps relative to the recorder's creation; instant events
    /// become `"ph": "i"`. The recording thread maps to `tid`, so
    /// Perfetto reconstructs nesting from time containment per track —
    /// `parent_seq` is also carried in `args` for exact parentage.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"traceEvents\": [");
        let mut first = true;
        for e in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            let ts = e.start_ns as f64 / 1e3;
            if e.dur_ns > 0 {
                let _ = write!(
                    out,
                    "\n  {{\"name\": \"{}\", \"ph\": \"X\", \"ts\": {ts:.3}, \"dur\": {:.3}, \"pid\": 1, \"tid\": {}",
                    escape(&e.name),
                    e.dur_ns as f64 / 1e3,
                    e.thread
                );
            } else {
                let _ = write!(
                    out,
                    "\n  {{\"name\": \"{}\", \"ph\": \"i\", \"ts\": {ts:.3}, \"s\": \"t\", \"pid\": 1, \"tid\": {}",
                    escape(&e.name),
                    e.thread
                );
            }
            let _ = write!(out, ", \"args\": {{\"seq\": {}", e.seq);
            if e.parent_seq != u64::MAX {
                let _ = write!(out, ", \"parent_seq\": {}", e.parent_seq);
            }
            if e.label != u64::MAX {
                let _ = write!(out, ", \"label\": {}", e.label);
            }
            if e.value != 0 {
                let _ = write!(out, ", \"value\": {}", e.value);
            }
            out.push_str("}}");
        }
        out.push_str("\n]}\n");
        out
    }

    /// Renders counters, gauges and histograms as OpenMetrics text
    /// (Prometheus exposition format): dots in metric names become
    /// underscores, counters gain the `_total` suffix, histograms emit
    /// cumulative `le` buckets (upper edge of each non-empty log-linear
    /// bucket, plus `+Inf`) with `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        for (name, v) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n}_total {v}");
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cum = 0u64;
            for &(i, c) in &h.buckets {
                cum += c;
                let (_, hi) = bucket_range(i as usize);
                let _ = writeln!(out, "{n}_bucket{{le=\"{hi}\"}} {cum}");
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        out.push_str("# EOF\n");
        out
    }
}

/// `mc.core.ssj.scored` → `mc_core_ssj_scored`; anything outside
/// `[a-zA-Z0-9_:]` becomes `_`, and a leading digit gains a prefix.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let valid = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if valid { c } else { '_' });
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::context::ObsContext;
    use crate::span::Span;

    fn populated_session() -> ObsContext {
        let ctx = ObsContext::session();
        let _g = ctx.attach();
        {
            let _outer = Span::enter("mc.test.export.outer");
            let _inner = Span::enter_labeled("mc.test.export.inner", 3);
            crate::event("mc.test.export.tick", 1, 42);
        }
        crate::counter!("mc.test.export.count").add(7);
        crate::gauge!("mc.test.export.gauge").set(-2);
        drop(_g);
        ctx
    }

    #[test]
    fn chrome_trace_is_valid_json_with_nesting() {
        let ctx = populated_session();
        let trace = ctx.snapshot().to_chrome_trace();
        let doc = crate::json::JsonValue::parse(&trace).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert!(events.len() >= 3);
        let find = |n: &str| {
            events
                .iter()
                .find(|e| e.get("name").unwrap().as_str() == Some(n))
                .unwrap()
        };
        let outer = find("mc.test.export.outer");
        let inner = find("mc.test.export.inner");
        let tick = find("mc.test.export.tick");
        assert_eq!(outer.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(tick.get("ph").unwrap().as_str(), Some("i"));
        // Parentage both ways: explicit args and time containment.
        assert_eq!(
            inner
                .get("args")
                .unwrap()
                .get("parent_seq")
                .unwrap()
                .as_u64(),
            outer.get("args").unwrap().get("seq").unwrap().as_u64()
        );
        let (ots, odur) = (
            outer.get("ts").unwrap().as_f64().unwrap(),
            outer.get("dur").unwrap().as_f64().unwrap(),
        );
        let (its, idur) = (
            inner.get("ts").unwrap().as_f64().unwrap(),
            inner.get("dur").unwrap().as_f64().unwrap(),
        );
        assert!(its >= ots && its + idur <= ots + odur + 1e-3);
        assert_eq!(
            inner.get("args").unwrap().get("label").unwrap().as_u64(),
            Some(3)
        );
        assert_eq!(
            tick.get("args").unwrap().get("value").unwrap().as_u64(),
            Some(42)
        );
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        let ctx = populated_session();
        let text = ctx.snapshot().to_prometheus();
        assert!(text.ends_with("# EOF\n"));
        assert!(text.contains("# TYPE mc_test_export_count counter"));
        assert!(text.contains("mc_test_export_count_total 7"));
        assert!(text.contains("mc_test_export_gauge -2"));
        assert!(text.contains("# TYPE mc_test_export_outer histogram"));
        assert!(text.contains("mc_test_export_outer_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("mc_test_export_outer_count 1"));
        // Every sample line is `name{labels} value` or `name value`, and
        // cumulative bucket counts are monotone.
        let mut last_cum: Option<u64> = None;
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').unwrap();
            assert!(!name.is_empty());
            let _: f64 = value.parse().unwrap();
            if name.starts_with("mc_test_export_outer_bucket") {
                let v: u64 = value.parse().unwrap();
                assert!(
                    last_cum.is_none_or(|p| v >= p),
                    "buckets must be cumulative"
                );
                last_cum = Some(v);
            }
        }
    }
}

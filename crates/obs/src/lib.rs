//! `mc-obs` — pipeline-wide observability for the MatchCatcher
//! workspace.
//!
//! Four layers, all cheap enough to stay on in production:
//!
//! * **Contexts** ([`context`]) — an [`ObsContext`] is a clonable handle
//!   bundling a [`Registry`] and a [`FlightRecorder`]. One global
//!   context preserves the historical process-wide behaviour; session
//!   contexts (`ObsContext::session()`) give each `MatchCatcher::run` an
//!   isolated, fully attributed view while chaining metric updates into
//!   the global registry. `ctx.attach()` scopes a context to the
//!   current thread; spawned workers re-attach `ObsContext::current()`.
//! * **Metrics** ([`metrics`]) — lock-free atomic [`Counter`]s,
//!   [`Gauge`]s and log-linear quantile [`Histogram`]s. Hot paths pay a
//!   few relaxed atomic ops; the [`counter!`]/[`gauge!`]/[`histogram!`]
//!   macros cache the resolved handle per call site per thread, keyed by
//!   the current context's epoch.
//! * **Spans** ([`span`]) — RAII timed regions with thread-local parent
//!   tracking. Durations feed per-name histograms; completions feed the
//!   owning context's **flight recorder**, a fixed-capacity ring buffer
//!   of the most recent spans/events for post-hoc debugging of a run.
//! * **Snapshots & export** ([`snapshot`], [`export`]) —
//!   [`MetricsSnapshot::capture`] freezes the current context;
//!   [`MetricsSnapshot::since`] turns two captures into per-run deltas;
//!   `to_json` emits the stable `mc-obs/v2` schema (p50/p95/p99 +
//!   histogram buckets; `from_json` also reads v1) shared by
//!   `DebugReport`, the `mc` CLI, and the bench harness;
//!   `to_prometheus()` and `to_chrome_trace()` feed external tooling.
//!
//! Metric names follow `mc.<crate>.<stage>.<name>` — see DESIGN.md
//! §Observability for the catalog and the rules for adding one.

pub mod context;
pub mod cpu;
pub mod export;
pub mod json;
pub mod metrics;
pub mod snapshot;
pub mod span;

pub use context::{AttachGuard, ObsContext};
pub use cpu::thread_cpu_us;
pub use json::JsonValue;
pub use metrics::{registry, Counter, Gauge, Histogram, Registry};
pub use snapshot::{HistogramSnap, MetricsSnapshot, SnapEvent, SpanStat};
pub use span::{event, flight_recorder, FlightRecorder, Span, SpanRecord};

/// An `Arc<Counter>` for `$name` in the **current** [`ObsContext`],
/// resolved through a per-call-site, per-thread cache keyed by the
/// context's epoch — one TLS read on the steady-state path.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        std::thread_local! {
            static SITE: $crate::context::SiteSlot<$crate::Counter> =
                const { std::cell::RefCell::new((u64::MAX, None)) };
        }
        $crate::context::site_counter($name, &SITE)
    }};
}

/// An `Arc<Gauge>` for `$name` in the current [`ObsContext`]; see
/// [`counter!`] for the caching scheme.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        std::thread_local! {
            static SITE: $crate::context::SiteSlot<$crate::Gauge> =
                const { std::cell::RefCell::new((u64::MAX, None)) };
        }
        $crate::context::site_gauge($name, &SITE)
    }};
}

/// An `Arc<Histogram>` for `$name` in the current [`ObsContext`]; see
/// [`counter!`] for the caching scheme.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        std::thread_local! {
            static SITE: $crate::context::SiteSlot<$crate::Histogram> =
                const { std::cell::RefCell::new((u64::MAX, None)) };
        }
        $crate::context::site_histogram($name, &SITE)
    }};
}

/// An RAII span; records duration + flight-recorder entry (in the
/// current [`ObsContext`]) on drop.
///
/// ```
/// let _guard = mc_obs::span!("mc.core.topk");
/// // ... timed work ...
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name)
    };
    ($name:expr, $label:expr) => {
        $crate::Span::enter_labeled($name, $label)
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_resolve_in_the_current_context() {
        let a = counter!("mc.test.lib.counter");
        let b = counter!("mc.test.lib.counter");
        assert!(
            std::sync::Arc::ptr_eq(&a, &b),
            "same site+ctx → same handle"
        );
        a.inc();
        assert!(b.get() >= 1);
        gauge!("mc.test.lib.gauge").set(-3);
        assert_eq!(crate::registry().gauge("mc.test.lib.gauge").get(), -3);
        histogram!("mc.test.lib.histogram").record(10);
        assert!(crate::registry().histogram("mc.test.lib.histogram").count() >= 1);
    }

    #[test]
    fn span_macro_times_regions() {
        {
            let _s = span!("mc.test.lib.span", 7);
        }
        let snap = crate::MetricsSnapshot::capture();
        assert!(snap.span("mc.test.lib.span").count >= 1);
    }
}

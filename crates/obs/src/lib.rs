//! `mc-obs` — pipeline-wide observability for the MatchCatcher
//! workspace.
//!
//! Three layers, all cheap enough to stay on in production:
//!
//! * **Metrics** ([`metrics`]) — lock-free atomic [`Counter`]s,
//!   [`Gauge`]s and fixed-bucket [`Histogram`]s in a process-wide
//!   `&'static` registry. Hot paths pay one relaxed atomic op; call
//!   sites cache their handle with the [`counter!`]/[`gauge!`]/
//!   [`histogram!`] macros so the registry mutex is touched once per
//!   site.
//! * **Spans** ([`span`]) — RAII timed regions with thread-local
//!   parent tracking. Durations feed per-name histograms; completions
//!   feed the **flight recorder**, a fixed-capacity ring buffer of the
//!   most recent spans/events for post-hoc debugging of a run.
//! * **Snapshots** ([`snapshot`]) — [`MetricsSnapshot::capture`] freezes
//!   everything; [`MetricsSnapshot::since`] turns two captures into
//!   per-run deltas; `to_json` emits the stable `mc-obs/v1` schema
//!   shared by `DebugReport`, the `mc obs-report` CLI, and the bench
//!   harness.
//!
//! Metric names follow `mc.<crate>.<stage>.<name>` — see DESIGN.md
//! §Observability for the catalog and the rules for adding one.

pub mod metrics;
pub mod snapshot;
pub mod span;

pub use metrics::{registry, Counter, Gauge, Histogram, Registry};
pub use snapshot::{MetricsSnapshot, SnapEvent, SpanStat};
pub use span::{event, flight_recorder, FlightRecorder, Span, SpanRecord};

/// A `&'static Counter` for `$name`, registered once and cached at the
/// call site.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SITE: std::sync::OnceLock<&'static $crate::Counter> = std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// A `&'static Gauge` for `$name`, registered once and cached at the
/// call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SITE: std::sync::OnceLock<&'static $crate::Gauge> = std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// A `&'static Histogram` for `$name`, registered once and cached at
/// the call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static SITE: std::sync::OnceLock<&'static $crate::Histogram> = std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry().histogram($name))
    }};
}

/// An RAII span; records duration + flight-recorder entry on drop.
///
/// ```
/// let _guard = mc_obs::span!("mc.core.topk");
/// // ... timed work ...
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name)
    };
    ($name:expr, $label:expr) => {
        $crate::Span::enter_labeled($name, $label)
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_cache_static_handles() {
        let a = counter!("mc.test.lib.counter");
        let b = counter!("mc.test.lib.counter");
        assert!(std::ptr::eq(a, b));
        a.inc();
        assert!(b.get() >= 1);
        gauge!("mc.test.lib.gauge").set(-3);
        assert_eq!(crate::registry().gauge("mc.test.lib.gauge").get(), -3);
        histogram!("mc.test.lib.histogram").record(10);
        assert!(crate::registry().histogram("mc.test.lib.histogram").count() >= 1);
    }

    #[test]
    fn span_macro_times_regions() {
        {
            let _s = span!("mc.test.lib.span", 7);
        }
        let snap = crate::MetricsSnapshot::capture();
        assert!(snap.span("mc.test.lib.span").count >= 1);
    }
}

//! Lock-free metric primitives and the per-context [`Registry`].
//!
//! Metrics are append-only: once registered under a name they live for
//! the life of their registry as `Arc`s, so hot paths update a plain
//! `AtomicU64` with no locking or lookup. Lookup (registration) takes a
//! mutex, but every instrumentation site caches the resolved handle per
//! thread keyed by the owning [`ObsContext`](crate::ObsContext)'s epoch,
//! so the mutex is touched once per site per context per thread.
//!
//! **Scoped → global chaining.** A session-scoped registry (see
//! [`Registry::scoped`]) links every metric it creates to the same-named
//! metric of its parent (the process-global registry): updates write
//! both, so a session snapshot is perfectly isolated while the global
//! view still accounts for every session.
//!
//! Naming scheme: `mc.<crate>.<stage>.<name>`, e.g.
//! `mc.core.ssj.pairs_scored` (see DESIGN.md §Observability).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
    parent: Option<Arc<Counter>>,
}

impl Counter {
    fn chained(parent: Arc<Counter>) -> Self {
        Counter {
            value: AtomicU64::new(0),
            parent: Some(parent),
        }
    }

    /// Adds `n` to the counter (and its chained parent, if any).
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
        if let Some(p) = &self.parent {
            p.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time signed value (thread counts, queue depths, ratios in
/// per-mille).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    parent: Option<Arc<Gauge>>,
}

impl Gauge {
    fn chained(parent: Arc<Gauge>) -> Self {
        Gauge {
            value: AtomicI64::new(0),
            parent: Some(parent),
        }
    }

    /// Sets the gauge (the chained parent sees the same value — last
    /// writer wins across sessions).
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        if let Some(p) = &self.parent {
            p.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
        if let Some(p) = &self.parent {
            p.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of buckets in every [`Histogram`].
///
/// Values `0..=15` get exact buckets; above that each power-of-two
/// octave (`2^4 ..= 2^63`) is split into [`HISTOGRAM_SUBBUCKETS`]
/// log-linear sub-buckets: `16 + 60 × 8 = 496`.
pub const HISTOGRAM_BUCKETS: usize = 496;

/// Sub-buckets per power-of-two octave (3 mantissa bits → worst-case
/// relative quantile error ≈ 6.7%).
pub const HISTOGRAM_SUBBUCKETS: usize = 8;

const EXACT_BUCKETS: usize = 16;
const FIRST_OCTAVE: u32 = 4; // 2^4 = 16 is the first log-linear value

/// Bucket index of an observation (shared by the live histogram and
/// snapshot-side quantile math).
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v < EXACT_BUCKETS as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // ≥ FIRST_OCTAVE
    let sub = (v >> (octave - 3)) & 0x7;
    EXACT_BUCKETS + (octave - FIRST_OCTAVE) as usize * HISTOGRAM_SUBBUCKETS + sub as usize
}

/// Inclusive `(lo, hi)` value range of bucket `i`.
pub fn bucket_range(i: usize) -> (u64, u64) {
    if i < EXACT_BUCKETS {
        return (i as u64, i as u64);
    }
    let octave = FIRST_OCTAVE + ((i - EXACT_BUCKETS) / HISTOGRAM_SUBBUCKETS) as u32;
    let sub = ((i - EXACT_BUCKETS) % HISTOGRAM_SUBBUCKETS) as u64;
    let width = 1u64 << (octave - 3);
    let lo = (1u64 << octave) + sub * width;
    (lo, lo + (width - 1))
}

/// The representative value reported for bucket `i` (midpoint of its
/// range; exact for `v < 16`).
pub fn bucket_value(i: usize) -> u64 {
    let (lo, hi) = bucket_range(i);
    lo + (hi - lo) / 2
}

/// Nearest-rank quantile over a bucket-count array: the representative
/// value of the bucket holding the `⌈q·count⌉`-th observation. Exact for
/// values `< 16`, within ~6.7% above. Returns 0 when empty.
pub fn quantile_from_buckets(buckets: &[u64], count: u64, max: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((count as f64 * q.clamp(0.0, 1.0)).ceil() as u64).clamp(1, count);
    if rank >= count {
        // The top-ranked observation is the max, which is tracked
        // exactly — no need to approximate it from the bucket.
        return max;
    }
    let mut cum = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        cum += c;
        if cum >= rank {
            return bucket_value(i).min(max);
        }
    }
    max
}

/// A fixed-bucket **log-linear** histogram of `u64` observations with
/// quantile support.
///
/// Values `0..=15` are counted exactly; larger values land in one of 8
/// sub-buckets per power-of-two octave (see [`bucket_of`]), bounding the
/// relative error of [`Histogram::quantile`] at ~6.7%. Records are four
/// relaxed atomic ops — no floating point, no locks.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; HISTOGRAM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    parent: Option<Arc<Histogram>>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            parent: None,
        }
    }
}

impl Histogram {
    fn chained(parent: Arc<Histogram>) -> Self {
        Histogram {
            parent: Some(parent),
            ..Histogram::default()
        }
    }

    #[inline]
    fn record_local(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records one observation (and forwards it to the chained parent).
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_local(v);
        if let Some(p) = &self.parent {
            p.record_local(v);
        }
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation seen (0 if none).
    #[inline]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Nearest-rank quantile (`q ∈ [0, 1]`; `quantile(1.0)` is the max).
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_from_buckets(&self.buckets(), self.count(), self.max(), q)
    }
}

/// The set of metrics registered under names.
///
/// There is one process-global registry (see [`registry`]); every
/// session [`ObsContext`](crate::ObsContext) owns a scoped one whose
/// metrics chain to the global registry's.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
    /// Set on scoped registries: the global registry whose same-named
    /// metrics receive every update made through this one.
    parent: Option<&'static Registry>,
}

impl Registry {
    /// A new standalone registry (no chaining).
    pub fn new() -> Self {
        Registry::default()
    }

    /// A registry whose metrics chain to `parent`'s: every update lands
    /// in both, so `parent` keeps process-cumulative totals while this
    /// registry sees only its own session's.
    pub fn scoped(parent: &'static Registry) -> Self {
        Registry {
            parent: Some(parent),
            ..Registry::default()
        }
    }

    /// The counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(match self.parent {
            Some(p) => Counter::chained(p.counter(name)),
            None => Counter::default(),
        });
        map.insert(name, Arc::clone(&c));
        c
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(match self.parent {
            Some(p) => Gauge::chained(p.gauge(name)),
            None => Gauge::default(),
        });
        map.insert(name, Arc::clone(&g));
        g
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(match self.parent {
            Some(p) => Histogram::chained(p.histogram(name)),
            None => Histogram::default(),
        });
        map.insert(name, Arc::clone(&h));
        h
    }

    /// Snapshot of all counters as `(name, value)`.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.to_string(), v.get()))
            .collect()
    }

    /// Snapshot of all gauges as `(name, value)`.
    pub fn gauge_values(&self) -> Vec<(String, i64)> {
        self.gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.to_string(), v.get()))
            .collect()
    }

    /// Snapshot of all histograms as `(name, count, sum, max, buckets)`.
    #[allow(clippy::type_complexity)]
    pub fn histogram_values(&self) -> Vec<(String, u64, u64, u64, Vec<u64>)> {
        self.histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.to_string(), v.count(), v.sum(), v.max(), v.buckets()))
            .collect()
    }
}

/// The process-wide registry (the global
/// [`ObsContext`](crate::ObsContext)'s).
pub fn registry() -> &'static Registry {
    crate::context::ObsContext::global().registry()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_monotone_and_inverts() {
        let mut prev = 0usize;
        for v in [
            0u64,
            1,
            2,
            15,
            16,
            17,
            31,
            32,
            100,
            1000,
            1 << 20,
            (1 << 20) + 12345,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_of(v);
            assert!(i >= prev, "bucket_of must be monotone at {v}");
            prev = i;
            let (lo, hi) = bucket_range(i);
            assert!(lo <= v && v <= hi, "v={v} outside bucket [{lo}, {hi}]");
            assert!(i < HISTOGRAM_BUCKETS);
        }
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_are_close() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((p50 as f64 - 500.0).abs() / 500.0 < 0.08, "p50 = {p50}");
        assert!((p99 as f64 - 990.0).abs() / 990.0 < 0.08, "p99 = {p99}");
        assert_eq!(h.quantile(1.0), 1000);
        // Exact range: values below 16 are exact.
        let small = Histogram::default();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            small.record(v);
        }
        assert_eq!(small.quantile(0.5), 5);
        assert_eq!(small.quantile(0.1), 1);
    }

    #[test]
    fn scoped_registry_chains_to_parent() {
        let scoped = Registry::scoped(registry());
        let c = scoped.counter("mc.test.metrics.chain");
        let global_before = registry().counter("mc.test.metrics.chain").get();
        c.add(5);
        assert_eq!(c.get(), 5);
        assert_eq!(
            registry().counter("mc.test.metrics.chain").get(),
            global_before + 5
        );
        // A second scoped registry is isolated from the first.
        let scoped2 = Registry::scoped(registry());
        assert_eq!(scoped2.counter("mc.test.metrics.chain").get(), 0);

        let h = scoped.histogram("mc.test.metrics.chain_hist");
        let g_hist_before = registry().histogram("mc.test.metrics.chain_hist").count();
        h.record(7);
        assert_eq!(h.count(), 1);
        assert_eq!(
            registry().histogram("mc.test.metrics.chain_hist").count(),
            g_hist_before + 1
        );
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);
    }
}
